//! Wall-clock timing of the engine hot path on the bench shapes.
//!
//! ```text
//! cargo run --release --example engine_timing
//! ```
//!
//! Criterion owns the statistical benches (`crates/bench`); this
//! example is the quick self-contained timer used to record the
//! before/after numbers quoted in DESIGN.md.

use kdag::generators::{layered_random, LayeredConfig};
use kdag::SelectionPolicy;
use krad_suite::prelude::*;
use kworkloads::heavy_tail::{bursty_releases, heavy_tail_mix, BurstyConfig};
use kworkloads::mixes::{batched_mix, MixConfig};
use kworkloads::rng_for;
use std::hint::black_box;
use std::time::Instant;

fn t12_stress() -> (Vec<JobSpec>, Resources) {
    let mut rng = rng_for(42, 0x7C);
    let mut jobs = heavy_tail_mix(&mut rng, 2, 80, 1.2, 10, 500);
    let cfg = BurstyConfig {
        burst_rate: 4.0,
        idle_rate: 0.02,
        switch_prob: 0.08,
    };
    bursty_releases(&mut jobs, &mut rng, &cfg);
    (jobs, Resources::new(vec![6, 3]))
}

fn large_dag() -> (Vec<JobSpec>, Resources) {
    let cfg = LayeredConfig::uniform(2, 200, 20, 60);
    let dag = layered_random(&mut rng_for(7, 0xDA6), &cfg);
    (vec![JobSpec::batched(dag)], Resources::new(vec![16, 16]))
}

fn many_jobs() -> (Vec<JobSpec>, Resources) {
    let jobs = batched_mix(&mut rng_for(0xBEEF, 300), &MixConfig::new(2, 300, 24));
    (jobs, Resources::new(vec![6, 3]))
}

fn time_shape(name: &str, jobs: &[JobSpec], res: &Resources, iters: u32) {
    // Warm-up.
    let mut sched = KRad::new(res.k());
    let o = simulate(
        &mut sched,
        jobs,
        res,
        &SimConfig::default().with_policy(SelectionPolicy::Fifo),
    );
    let steps = o.busy_steps;

    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let mut sched = KRad::new(res.k());
            let start = Instant::now();
            black_box(
                simulate(
                    &mut sched,
                    jobs,
                    res,
                    &SimConfig::default().with_policy(SelectionPolicy::Fifo),
                )
                .makespan,
            );
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let median = samples[samples.len() / 2];
    println!(
        "{name:>12}: median {:>9.3} ms over {iters} runs  ({steps} busy steps, {:.1} Msteps/s)",
        median * 1e3,
        steps as f64 / median / 1e6,
    );
}

fn main() {
    let (jobs, res) = t12_stress();
    time_shape("t12_stress", &jobs, &res, 101);
    let (jobs, res) = large_dag();
    time_shape("large_dag", &jobs, &res, 51);
    let (jobs, res) = many_jobs();
    time_shape("many_jobs", &jobs, &res, 25);
}
