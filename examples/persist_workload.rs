//! Save a workload to JSON, reload it, and verify the rerun is
//! identical — workload pinning for regression suites.
//!
//! ```text
//! cargo run --release --example persist_workload [path.json]
//! ```

use krad_suite::kworkloads::mixes::{batched_mix, MixConfig};
use krad_suite::kworkloads::persist::{load_jobset, save_jobset};
use krad_suite::kworkloads::rng_for;
use krad_suite::prelude::*;
use std::path::PathBuf;

fn main() {
    let path: PathBuf = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("krad_workload.json"));

    // Generate, run, save.
    let res = Resources::new(vec![4, 2]);
    let jobs = batched_mix(&mut rng_for(99, 0), &MixConfig::new(2, 10, 30));
    let mut sched = KRad::new(res.k());
    let before = simulate(&mut sched, &jobs, &res, &SimConfig::default());
    save_jobset(&path, "demo workload", &jobs).expect("save");
    println!(
        "saved {} jobs ({} tasks) to {}",
        jobs.len(),
        jobs.iter().map(|j| j.dag.total_work()).sum::<u64>(),
        path.display()
    );

    // Load (re-validating every DAG) and rerun.
    let (label, loaded) = load_jobset(&path).expect("load");
    let mut sched = KRad::new(res.k());
    let after = simulate(&mut sched, &loaded, &res, &SimConfig::default());
    println!("reloaded '{label}': {} jobs", loaded.len());
    println!(
        "makespan before/after roundtrip: {} / {}",
        before.makespan, after.makespan
    );
    assert_eq!(before.makespan, after.makespan);
    assert_eq!(before.completions, after.completions);
    println!("roundtrip is bit-identical — workloads can be pinned for regression testing");
}
