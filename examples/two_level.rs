//! Two-level scheduling realism: quanta and A-Greedy desire feedback.
//!
//! ```text
//! cargo run --release --example two_level
//! ```
//!
//! The paper's model consults the scheduler every unit step with exact
//! instantaneous desires. Real runtimes reallocate in quanta and
//! estimate parallelism from history (the RAD lineage's A-Greedy).
//! This example shows both knobs on one workload — including the
//! brittleness of sampling exact desires with long quanta.

use krad_suite::kanalysis::table::{f3, Table};
use krad_suite::ksim::DesireModel;
use krad_suite::kworkloads::mixes::{batched_mix, MixConfig};
use krad_suite::kworkloads::rng_for;
use krad_suite::prelude::*;

fn main() {
    let k = 2usize;
    let res = Resources::uniform(k, 6);
    let jobs = batched_mix(&mut rng_for(2024, 0), &MixConfig::new(k, 24, 40));
    let lb = makespan_bounds(&jobs, &res).lower_bound();

    let mut table = Table::new(
        "K-RAD under two-level realism",
        &["quantum", "desires", "makespan", "T/LB", "mean resp"],
    );
    for quantum in [1u64, 4, 16] {
        for (label, model) in [
            ("exact", DesireModel::Exact),
            ("a-greedy δ=0.8", DesireModel::AGreedy { delta: 0.8 }),
        ] {
            let sim = Simulation::builder()
                .resources(res.clone())
                .jobs(jobs.iter().cloned())
                .quantum(quantum)
                .desire_model(model)
                .build()
                .expect("mix matches the machine");
            let mut sched = KRad::new(k);
            let o = sim.run(&mut sched);
            table.row_owned(vec![
                quantum.to_string(),
                label.to_string(),
                o.makespan.to_string(),
                f3(o.makespan as f64 / lb),
                f3(o.mean_response()),
            ]);
        }
    }
    table.note("exact + q=1 is the paper's model (and the best row)");
    table.note("with long quanta, exact sampling freezes momentarily-idle categories out for a whole quantum; feedback smooths over it");
    println!("{table}");
}
