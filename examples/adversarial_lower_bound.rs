//! Reproduce Figure 3 / Theorem 1 interactively: watch the competitive
//! ratio of *any* non-clairvoyant scheduler approach `K + 1 − 1/Pmax`.
//!
//! ```text
//! cargo run --release --example adversarial_lower_bound [K] [P]
//! ```
//!
//! Builds the paper's adversarial job set for growing scale parameters
//! `m`, runs K-RAD against the critical-path-last adversary, and prints
//! the ratio `T/T*` converging to the bound.

use krad_suite::kworkloads::adversarial::adversarial_workload;
use krad_suite::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let k: usize = args.next().map(|s| s.parse().expect("K")).unwrap_or(3);
    let p: u32 = args.next().map(|s| s.parse().expect("P")).unwrap_or(4);

    println!("Theorem 1 / Figure 3 adversary: K={k}, P={p} per category");
    println!(
        "bound = K + 1 - 1/Pmax = {:.4}\n",
        k as f64 + 1.0 - 1.0 / f64::from(p)
    );
    println!(
        "{:>5} {:>7} {:>8} {:>8} {:>8} {:>10}",
        "m", "jobs", "T", "T*", "ratio", "% of bound"
    );

    for m in [1u64, 2, 4, 8, 16, 32, 64] {
        let w = adversarial_workload(&vec![p; k], m);
        let mut sched = KRad::new(k);
        let cfg = SimConfig::default().with_policy(SelectionPolicy::CriticalLast);
        let outcome = simulate(&mut sched, &w.jobs, &w.resources, &cfg);
        let ratio = outcome.makespan as f64 / w.optimal_makespan as f64;
        println!(
            "{:>5} {:>7} {:>8} {:>8} {:>8.4} {:>9.1}%",
            m,
            w.jobs.len(),
            outcome.makespan,
            w.optimal_makespan,
            ratio,
            100.0 * ratio / w.bound
        );
    }

    println!("\nThe adversary hides the special job's critical path (critical-path-last");
    println!("selection) and floods category α1 with trivial jobs, forcing every type of");
    println!("processor to be used almost sequentially — no deterministic non-clairvoyant");
    println!("scheduler can do better (Theorem 1), and K-RAD never does worse (Theorem 3).");
}
