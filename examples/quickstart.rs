//! Quickstart: schedule a few heterogeneous jobs with K-RAD.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a 2-category machine (CPUs + I/O processors), submits a small
//! mixed job set, runs K-RAD, and prints per-job completion times plus
//! the makespan lower-bound comparison.

use krad_suite::prelude::*;

fn main() {
    // A machine with 4 CPUs (α1) and 2 I/O processors (α2).
    let res = Resources::new(vec![4, 2]);
    let cpu = Category(0);
    let io = Category(1);

    // Three jobs with different shapes:
    // 1. a data-parallel job: wide CPU phases with an I/O phase between,
    let j1 = fork_join(2, &[(cpu, 8), (io, 2), (cpu, 8)]);
    // 2. a sequential pipeline alternating CPU and I/O steps,
    let j2 = chain(2, 12, &[cpu, io]);
    // 3. a custom DAG built by hand: read -> {two parallel computes} -> write.
    let j3 = {
        let mut b = DagBuilder::new(2);
        let read = b.add_task(io);
        let c1 = b.add_task(cpu);
        let c2 = b.add_task(cpu);
        let write = b.add_task(io);
        b.add_edge(read, c1).unwrap();
        b.add_edge(read, c2).unwrap();
        b.add_edge(c1, write).unwrap();
        b.add_edge(c2, write).unwrap();
        b.build().unwrap()
    };

    println!(
        "job 1: fork-join   work={:?} span={}",
        j1.work_by_category(),
        j1.span()
    );
    println!(
        "job 2: chain       work={:?} span={}",
        j2.work_by_category(),
        j2.span()
    );
    println!(
        "job 3: hand-built  work={:?} span={}",
        j3.work_by_category(),
        j3.span()
    );

    let jobs = vec![
        JobSpec::batched(j1),
        JobSpec::batched(j2),
        JobSpec::released(j3, 5), // arrives online at time 5
    ];

    // The Simulation owns the machine, the jobs, and the config; it
    // validates the assembly once and can then be run against any
    // scheduler. K-RAD needs no knowledge of the jobs: it is
    // non-clairvoyant.
    let sim = Simulation::builder()
        .resources(res.clone())
        .jobs(jobs.iter().cloned())
        .build()
        .expect("jobs match the 2-category machine");
    let mut scheduler = KRad::new(res.k());
    let outcome = sim.run(&mut scheduler);

    println!("\nscheduler: {}", outcome.scheduler);
    for i in 0..outcome.job_count() {
        println!(
            "  job {i}: released {:>2}, completed {:>3}, response {:>3}",
            outcome.releases[i],
            outcome.completions[i],
            outcome.response(i)
        );
    }
    println!("makespan: {} steps", outcome.makespan);
    println!("mean response time: {:.2} steps", outcome.mean_response());

    // Compare with the paper's lower bound on ANY scheduler:
    let lb = makespan_bounds(&jobs, &res).lower_bound();
    let bound = makespan_bound(res.k(), res.p_max());
    println!("\nmakespan lower bound (§4):  {lb:.1}");
    println!(
        "measured / LB = {:.3}  (Theorem 3 guarantees ≤ {bound:.3})",
        outcome.makespan as f64 / lb
    );
}
