//! Print the paper's Figure 1 example DAG: structure, parallelism
//! profile, and Graphviz DOT source.
//!
//! ```text
//! cargo run --example visualize_dag > fig1.dot && dot -Tpng fig1.dot -o fig1.png
//! ```
//!
//! (The table and profile go to stderr so stdout stays pipeable DOT.)

use krad_suite::kdag::{dot, parallelism_profile};
use krad_suite::prelude::*;

fn main() {
    let dag = fig1_example();

    eprintln!("Figure 1: a 3-DAG job with 3 different types of tasks");
    eprintln!(
        "tasks={} edges={} span={} work={:?}",
        dag.len(),
        dag.edge_count(),
        dag.span(),
        dag.work_by_category()
    );
    eprintln!("\ntask table:");
    for t in dag.tasks() {
        eprintln!(
            "  {t}: {}  height={}  successors={:?}",
            dag.category(t),
            dag.height(t),
            dag.successors(t)
        );
    }
    eprintln!("\nearliest-start parallelism profile (unit tasks per step):");
    for row in parallelism_profile(&dag) {
        eprintln!("  step {}: {:?}", row.step, row.by_category);
    }

    // DOT on stdout for piping into graphviz.
    print!("{}", dot::to_dot(&dag, "fig1"));
}
