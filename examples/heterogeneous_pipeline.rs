//! A heterogeneous pipeline workload: CPU + vector + I/O jobs competing
//! on one machine, comparing K-RAD against all baselines.
//!
//! ```text
//! cargo run --release --example heterogeneous_pipeline
//! ```
//!
//! This is the paper's motivating setting: programs interleaving
//! computations, I/Os and vector work, where each task only runs on its
//! matching processor type.

use krad_suite::kanalysis::table::{f3, Table};
use krad_suite::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn make_jobs(rng: &mut StdRng, n: usize) -> Vec<JobSpec> {
    let cpu = Category(0);
    let vec_unit = Category(1);
    let io = Category(2);
    (0..n)
        .map(|i| {
            let dag = match i % 3 {
                // Vectorizable compute: wide vector phases between CPU setup.
                0 => fork_join(
                    3,
                    &[
                        (cpu, 2),
                        (vec_unit, rng.gen_range(4..=12)),
                        (cpu, 2),
                        (vec_unit, rng.gen_range(4..=12)),
                        (io, 1),
                    ],
                ),
                // I/O-heavy ETL pipeline.
                1 => chain(3, rng.gen_range(10..=20), &[io, cpu, io]),
                // Balanced map-reduce over CPU and I/O.
                _ => map_reduce(
                    3,
                    &MapReduceSpec {
                        map_category: cpu,
                        map_count: rng.gen_range(4..=10),
                        reduce_category: io,
                        reduce_count: 2,
                        rounds: 2,
                    },
                ),
            };
            JobSpec::batched(dag)
        })
        .collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2007);
    let res = Resources::new(vec![6, 4, 2]); // CPUs, vector units, I/O processors
    let jobs = make_jobs(&mut rng, 18);

    let total_work: u64 = jobs.iter().map(|j| j.dag.total_work()).sum();
    println!(
        "machine: {:?} (K={})  jobs: {}  total tasks: {}\n",
        res.as_slice(),
        res.k(),
        jobs.len(),
        total_work
    );

    let lb = makespan_bounds(&jobs, &res).lower_bound();
    let mut table = Table::new(
        "heterogeneous pipeline: scheduler comparison",
        &["scheduler", "makespan", "T/LB", "mean resp", "max resp"],
    );
    for kind in SchedulerKind::ALL {
        let mut sched = kind.build(res.k());
        let outcome = simulate(sched.as_mut(), &jobs, &res, &SimConfig::default());
        table.row_owned(vec![
            kind.label().to_string(),
            outcome.makespan.to_string(),
            f3(outcome.makespan as f64 / lb),
            f3(outcome.mean_response()),
            outcome.max_response().to_string(),
        ]);
    }
    table.note(&format!("makespan lower bound (§4): {lb:.1}"));
    table.note(&format!(
        "Theorem 3 guarantee for K-RAD: T ≤ {:.3} × optimum",
        makespan_bound(res.k(), res.p_max())
    ));
    println!("{table}");
}
