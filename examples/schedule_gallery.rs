//! Visualize schedules: ASCII Gantt charts of K-RAD vs baselines on a
//! small heterogeneous job set.
//!
//! ```text
//! cargo run --release --example schedule_gallery
//! ```
//!
//! Each chart has one row per (category, processor); cells show which
//! job occupied the processor at each step — the paper's schedule
//! `χ = (τ, π1, …, πK)` made visible. Watch RAD's round-robin cycles
//! interleave jobs where greedy-FCFS runs them back-to-back.

use krad_suite::kanalysis::gantt::gantt;
use krad_suite::prelude::*;

fn main() {
    let cpu = Category(0);
    let io = Category(1);
    let res = Resources::new(vec![3, 1]);

    // Four small jobs with different shapes.
    let jobs = [
        JobSpec::batched(fork_join(2, &[(cpu, 6), (io, 1), (cpu, 6)])),
        JobSpec::batched(chain(2, 8, &[cpu, io])),
        JobSpec::batched(fork_join(2, &[(cpu, 4), (io, 2)])),
        JobSpec::released(chain(2, 6, &[io, cpu]), 4),
    ];

    for kind in [
        SchedulerKind::KRad,
        SchedulerKind::GreedyFcfs,
        SchedulerKind::RrOnly,
    ] {
        let sim = Simulation::builder()
            .resources(res.clone())
            .jobs(jobs.iter().cloned())
            .record_schedule(true)
            .build()
            .expect("gallery jobs match the machine");
        let mut sched = kind.build(res.k());
        let o = sim.run(sched.as_mut());
        println!(
            "=== {} — makespan {}, mean response {:.1} ===",
            kind.label(),
            o.makespan,
            o.mean_response()
        );
        println!("{}", gantt(o.schedule.as_ref().unwrap(), &res, 100));
    }
    println!("legend: cell symbol = job index, '.' = idle processor-step");
}
