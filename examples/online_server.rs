//! An online server: jobs arrive over time (Poisson process) and the
//! non-clairvoyant schedulers must react with no knowledge of future
//! arrivals or job shapes.
//!
//! ```text
//! cargo run --release --example online_server [lambda]
//! ```
//!
//! Prints response-time statistics per scheduler across arrival rates —
//! the online counterpart of the batched response-time theorems.

use krad_suite::kanalysis::stats::percentile;
use krad_suite::kanalysis::table::{f3, Table};
use krad_suite::kworkloads::arrivals::poisson_releases;
use krad_suite::kworkloads::mixes::{batched_mix, MixConfig};
use krad_suite::kworkloads::rng_for;
use krad_suite::prelude::*;

fn main() {
    let lambda: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("lambda"))
        .unwrap_or(0.3);

    let res = Resources::new(vec![8, 4]);
    let mut rng = rng_for(7, 1);
    let mut jobs = batched_mix(&mut rng, &MixConfig::new(2, 60, 40));
    poisson_releases(&mut jobs, &mut rng, lambda);
    let horizon = jobs.last().unwrap().release;

    println!(
        "online server: {} jobs arriving over ~{} steps (λ={lambda}), machine {:?}\n",
        jobs.len(),
        horizon,
        res.as_slice()
    );

    let mut table = Table::new(
        "online response times by scheduler",
        &["scheduler", "makespan", "mean resp", "p95 resp", "max resp"],
    );
    for kind in SchedulerKind::ALL {
        let mut sched = kind.build(res.k());
        let outcome = simulate(sched.as_mut(), &jobs, &res, &SimConfig::default());
        let responses: Vec<f64> = (0..outcome.job_count())
            .map(|i| outcome.response(i) as f64)
            .collect();
        table.row_owned(vec![
            kind.label().to_string(),
            outcome.makespan.to_string(),
            f3(outcome.mean_response()),
            f3(percentile(&responses, 95.0)),
            outcome.max_response().to_string(),
        ]);
    }
    table.note("K-RAD equalizes allotments per category, keeping the response tail short");
    println!("{table}");
}
