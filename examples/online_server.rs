//! An online server, for real this time: a kserve daemon is started
//! in-process, jobs are submitted over the TCP loopback as protocol
//! clients would send them, and response times are measured from the
//! completion events the daemon streams back. One session per
//! scheduler, same arrival sequence each time.
//!
//! ```text
//! cargo run --release --example online_server [jobs_per_batch]
//! ```
//!
//! After each session the recorded arrival trace is replayed through
//! the offline simulator and checked byte-for-byte — the deterministic
//! replay bridge in action.

use kdag::DagSpec;
use krad_suite::kanalysis::stats::percentile;
use krad_suite::kanalysis::table::{f3, Table};
use krad_suite::kserve::protocol::Response;
use krad_suite::kserve::{Client, Event, Server, ServerConfig};
use krad_suite::kworkloads::mixes::{batched_mix, MixConfig};
use krad_suite::kworkloads::rng_for;
use krad_suite::prelude::*;

fn main() {
    let per_batch: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("jobs per batch"))
        .unwrap_or(15);
    let batches = 4;
    let machine = vec![8u32, 4];

    // The same arrival sequence for every scheduler: four batches of
    // mixed-shape jobs, submitted one after another over the loopback.
    let mut rng = rng_for(7, 1);
    let waves: Vec<Vec<DagSpec>> = (0..batches)
        .map(|_| {
            batched_mix(&mut rng, &MixConfig::new(2, per_batch, 40))
                .iter()
                .map(|j| DagSpec::from_dag(&j.dag))
                .collect()
        })
        .collect();

    println!(
        "online server: {} jobs in {batches} submission waves, machine {machine:?}\n",
        batches * per_batch,
    );

    let mut table = Table::new(
        "online response times by scheduler",
        &["scheduler", "makespan", "mean resp", "p95 resp", "max resp"],
    );
    for kind in SchedulerKind::ALL {
        let server = Server::start(ServerConfig {
            machine: machine.clone(),
            scheduler: kind,
            seed: 7,
            queue_capacity: 4 * per_batch,
            ..ServerConfig::default()
        })
        .expect("server starts");
        let mut client = Client::connect(server.addr()).expect("loopback connect");

        let mut responses: Vec<f64> = Vec::new();
        for wave in &waves {
            let (ack, events) = client.submit_watch(wave.clone()).expect("submit");
            assert!(matches!(ack, Response::Submitted { .. }), "{ack:?}");
            for ev in events {
                if let Event::JobDone { response, .. } = ev {
                    responses.push(response as f64);
                }
            }
        }

        let drained = match client.drain().expect("drain") {
            Response::Drained(d) => d,
            other => panic!("expected drained reply, got {other:?}"),
        };
        server.join();
        // The replay bridge: the live session must be reproducible
        // offline, byte for byte.
        drained
            .trace
            .verify()
            .expect("offline replay matches the live session");

        let makespan = drained.trace.completions.iter().copied().max().unwrap_or(0);
        let mean = responses.iter().sum::<f64>() / responses.len() as f64;
        table.row_owned(vec![
            kind.label().to_string(),
            makespan.to_string(),
            f3(mean),
            f3(percentile(&responses, 95.0)),
            format!("{:.0}", percentile(&responses, 100.0)),
        ]);
    }
    table.note("every session's trace was replayed offline and matched byte-for-byte");
    println!("{table}");
}
