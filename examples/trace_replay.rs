//! Replay a cluster trace (SWF format) through every scheduler.
//!
//! ```text
//! cargo run --release --example trace_replay [trace.swf]
//! ```
//!
//! Without an argument a deterministic synthetic trace stands in;
//! pass any Parallel Workloads Archive `.swf` file to replay real
//! arrival processes and job mixes through the K-resource model.

use krad_suite::kexperiments::runner::{compare_schedulers, comparison_table};
use krad_suite::kworkloads::mixes::MixConfig;
use krad_suite::kworkloads::swf::{jobs_from_swf, parse_swf, swf_stats, synthetic_swf, SwfShape};
use krad_suite::prelude::*;

fn main() {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => synthetic_swf(120),
    };
    let records = parse_swf(&text).unwrap_or_else(|e| {
        eprintln!("SWF parse error: {e}");
        std::process::exit(1);
    });
    let stats = swf_stats(&records);
    println!(
        "trace: {} usable jobs, horizon {} s, ≤ {} procs/job, {} proc-seconds of work",
        stats.jobs, stats.horizon, stats.max_processors, stats.total_work
    );

    // Shape the records into 2-category jobs (compute + I/O staging).
    let cfg = MixConfig::new(2, 0, 60);
    let shape = SwfShape {
        k: cfg.k,
        max_width: cfg.max_width,
        max_tasks: cfg.mean_size * 4,
        ..SwfShape::default()
    };
    let jobs = jobs_from_swf(&records, &shape);
    let res = Resources::new(vec![24, 4]);
    println!(
        "replaying on machine {:?} ({} simulation jobs)\n",
        res.as_slice(),
        jobs.len()
    );

    let rows = compare_schedulers(&jobs, &res, SelectionPolicy::Fifo, 0);
    let mut table = comparison_table("trace replay: all schedulers", &rows);
    table.note("60 trace-seconds per simulation step; widths capped at 16");
    println!("{table}");
}
