//! # krad-suite — facade for the K-RAD reproduction
//!
//! Re-exports the whole workspace under one roof for examples,
//! integration tests, and downstream users who want a single
//! dependency:
//!
//! * [`kdag`] — the K-colored DAG job model and generators;
//! * [`ksim`] — the discrete-time K-resource simulator;
//! * [`krad`] — the K-RAD scheduler (the paper's contribution);
//! * [`kbaselines`] — EQUI / DEQ-only / RR-only / Greedy-FCFS;
//! * [`kanalysis`] — lower bounds, squashed work areas, tables;
//! * [`kworkloads`] — seeded workloads and the Figure 3 instance;
//! * [`kexperiments`] — the table/figure regeneration harness;
//! * [`kserve`] — the online scheduling daemon, protocol client,
//!   load generator, and deterministic replay bridge.
//!
//! ## Quickstart
//!
//! ```
//! use krad_suite::prelude::*;
//!
//! // Two categories: 4 CPUs and 2 I/O processors.
//! let res = Resources::new(vec![4, 2]);
//! // One fork-join job alternating CPU and I/O phases.
//! let job = fork_join(2, &[(Category(0), 4), (Category(1), 2), (Category(0), 4)]);
//! let sim = Simulation::builder()
//!     .resources(res)
//!     .job(JobSpec::batched(job))
//!     .build()
//!     .expect("job shape matches the machine");
//! let mut sched = KRad::new(sim.resources().k());
//! let outcome = sim.run(&mut sched);
//! assert_eq!(outcome.makespan, 3); // span-limited
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use kanalysis;
pub use kbaselines;
pub use kdag;
pub use kexperiments;
pub use krad;
pub use kserve;
pub use ksim;
pub use kworkloads;

/// The most common imports in one place.
pub mod prelude {
    pub use kanalysis::bounds::{makespan_bounds, response_bounds};
    pub use kbaselines::{DeqOnly, Equi, GreedyFcfs, RoundRobinOnly, SchedulerKind};
    pub use kdag::generators::{
        adversarial_instance, chain, divide_conquer, fig1_example, fork_join, layered_random,
        map_reduce, phased, series_parallel, wavefront, LayeredConfig, MapReduceSpec, PhaseSpec,
    };
    pub use kdag::{Category, DagBuilder, JobDag, JobId, SelectionPolicy, TaskId};
    pub use krad::{makespan_bound, mrt_bound_heavy, mrt_bound_light, KRad};
    pub use ksim::{
        simulate, JobSpec, JobView, Resources, Scheduler, SimConfig, SimOutcome, Simulation, Time,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_compiles_and_runs() {
        let res = Resources::uniform(2, 2);
        let jobs = vec![JobSpec::batched(chain(2, 4, &[Category(0), Category(1)]))];
        let mut s = KRad::new(2);
        let o = simulate(&mut s, &jobs, &res, &SimConfig::default());
        assert_eq!(o.makespan, 4);
    }

    #[test]
    fn facade_builder_matches_shim() {
        let res = Resources::uniform(2, 2);
        let jobs = vec![JobSpec::batched(chain(2, 4, &[Category(0), Category(1)]))];
        let sim = Simulation::builder()
            .resources(res.clone())
            .jobs(jobs.iter().cloned())
            .build()
            .unwrap();
        let mut a = KRad::new(2);
        let mut b = KRad::new(2);
        assert_eq!(
            sim.run(&mut a).makespan,
            simulate(&mut b, &jobs, &res, &SimConfig::default()).makespan
        );
    }
}
