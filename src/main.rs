//! Root-level `krad-suite` binary: the same front end as the `krad`
//! CLI, reachable via plain `cargo run -- <subcommand>` from a fresh
//! checkout (e.g. `cargo run -- profile --kind t12`).

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match kcli::run(&argv) {
        Ok(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
