//! # ksim — discrete-time K-resource scheduling simulator
//!
//! This crate is the "machine" of the ICPP'07 K-RAD paper: a
//! synchronous, discrete-time multiprocessor with `K` categories of
//! processors (`Pα` processors of category `α`), executing unit-time
//! tasks of [`kdag::JobDag`] jobs step by step.
//!
//! ## The scheduling contract
//!
//! At every time step `t` the engine:
//!
//! 1. activates jobs whose release time has passed,
//! 2. computes each active job's instantaneous per-category **desire**
//!    (number of ready `α`-tasks),
//! 3. asks the [`Scheduler`] for an **allotment** `a(Ji, α, t)` per job
//!    and category — the scheduler sees *only* [`JobView`]s (job id,
//!    release, desires): this is the non-clairvoyance boundary,
//! 4. executes `min(allotment, desire)` ready tasks per job/category,
//!    with the *environment's* [`kdag::SelectionPolicy`] deciding which
//!    ready tasks run (the adversary's knob),
//! 5. records traces / the full schedule `χ = (τ, π1..πK)` if asked.
//!
//! Intervals with no active job and no work are fast-forwarded (they
//! still advance the clock — makespan counts them — but cost no
//! simulation work), matching the paper's treatment of idle intervals.
//!
//! ## Outputs
//!
//! [`SimOutcome`] carries the makespan `T(J)`, per-job completion and
//! response times, utilization, optional per-step traces, and an
//! optional [`checker::RecordedSchedule`] that the [`checker`] can
//! validate against the formal schedule definition of the paper (§2):
//! precedence preserved, one job per processor per step, category
//! matching, every task executed exactly once.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod allot;
mod engine;
mod outcome;
mod resources;
mod scheduler;
mod session;
mod trace;
mod view;

pub mod checker;
pub mod live;
pub mod snapshot;

pub use allot::AllotmentMatrix;
pub use engine::{simulate, DesireModel, JobSpec, SimConfig, SimConfigBuilder, TimePolicy};
pub use live::{InjectError, LiveSimulation, QuantumReport};
pub use outcome::SimOutcome;
pub use resources::Resources;
pub use scheduler::Scheduler;
pub use session::{BuildError, Simulation, SimulationBuilder};
pub use snapshot::EngineSnapshot;
pub use trace::StepTrace;
pub use view::JobView;

// Re-exported so downstream crates can wire sinks into `SimConfig`
// without naming `ktelemetry` directly.
pub use ktelemetry::{TelemetryEvent, TelemetryHandle};

/// Simulated time, in unit steps. Steps are 1-indexed as in the paper;
/// a release time `r` means the job is available from step `r + 1`.
pub type Time = u64;
