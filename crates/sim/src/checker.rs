//! Full-schedule recording and validation.
//!
//! The paper (§2) defines a schedule of a job set as `χ = (τ, π1, …,
//! πK)`: `τ` maps every vertex to a time step and `πα` maps every
//! `α`-vertex to an `α`-processor, subject to:
//!
//! * **precedence**: `u ≺ v ⇒ τ(u) < τ(v)`;
//! * **exclusivity**: two α-vertices may share `(τ, πα)` only if they
//!   are the same vertex;
//! * (implicitly) category matching, processor range, and release
//!   times.
//!
//! The engine can record the full `χ` it produces
//! ([`crate::SimConfig::record_schedule`]); [`validate`] replays a
//! recorded schedule against the job specs and machine and reports the
//! first violation found. Every scheduler in this repository is
//! integration-tested through this checker.

use crate::engine::JobSpec;
use crate::{Resources, Time};
use kdag::{Category, JobId, TaskId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// One task execution: vertex `task` of `job` ran at step `t` on
/// processor `processor` of category `category`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecRecord {
    /// The job the task belongs to.
    pub job: JobId,
    /// The task (vertex) id within the job's DAG.
    pub task: TaskId,
    /// The 1-based step at which the task executed (`τ`).
    pub t: Time,
    /// The processor category the task ran on.
    pub category: Category,
    /// The processor index within the category (`πα`), `0..Pα`.
    pub processor: u32,
}

/// A complete recorded schedule `χ`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RecordedSchedule {
    /// All task executions, in engine emission order (non-decreasing
    /// `t`).
    pub records: Vec<ExecRecord>,
}

impl RecordedSchedule {
    /// Number of recorded task executions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// A violation of the paper's schedule validity conditions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleViolation {
    /// A record referenced a job id outside the job set.
    UnknownJob {
        /// The offending job id.
        job: JobId,
    },
    /// A record referenced a task id outside its job's DAG.
    UnknownTask {
        /// The job whose DAG was indexed.
        job: JobId,
        /// The offending task id.
        task: TaskId,
    },
    /// A task never executed.
    TaskNotExecuted {
        /// The job owning the task.
        job: JobId,
        /// The task that never ran.
        task: TaskId,
    },
    /// A task executed more than once.
    TaskExecutedTwice {
        /// The job owning the task.
        job: JobId,
        /// The task that ran twice.
        task: TaskId,
    },
    /// A task ran on a processor of the wrong category.
    WrongCategory {
        /// The job owning the task.
        job: JobId,
        /// The task.
        task: TaskId,
        /// The category it ran on.
        ran_on: Category,
        /// The category it required.
        required: Category,
    },
    /// A precedence edge `u ≺ v` was violated (`τ(u) ≥ τ(v)`).
    PrecedenceViolated {
        /// The job owning both tasks.
        job: JobId,
        /// The predecessor task.
        u: TaskId,
        /// The successor task.
        v: TaskId,
    },
    /// Two tasks shared a `(t, category, processor)` slot.
    ProcessorConflict {
        /// The step of the conflict.
        t: Time,
        /// The category of the shared processor.
        category: Category,
        /// The shared processor index.
        processor: u32,
    },
    /// A processor index was `≥ Pα`.
    ProcessorOutOfRange {
        /// The category.
        category: Category,
        /// The offending processor index.
        processor: u32,
    },
    /// A task ran at or before its job's release time.
    ExecutedBeforeRelease {
        /// The job.
        job: JobId,
        /// The step the task ran at.
        t: Time,
        /// The job's release time.
        release: Time,
    },
}

impl fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleViolation::UnknownJob { job } => write!(f, "unknown job {job}"),
            ScheduleViolation::UnknownTask { job, task } => {
                write!(f, "unknown task {task} in job {job}")
            }
            ScheduleViolation::TaskNotExecuted { job, task } => {
                write!(f, "task {task} of job {job} never executed")
            }
            ScheduleViolation::TaskExecutedTwice { job, task } => {
                write!(f, "task {task} of job {job} executed twice")
            }
            ScheduleViolation::WrongCategory {
                job,
                task,
                ran_on,
                required,
            } => write!(
                f,
                "task {task} of job {job} ran on {ran_on} but requires {required}"
            ),
            ScheduleViolation::PrecedenceViolated { job, u, v } => {
                write!(f, "precedence {u} ≺ {v} violated in job {job}")
            }
            ScheduleViolation::ProcessorConflict {
                t,
                category,
                processor,
            } => write!(
                f,
                "processor {processor} of {category} used twice at step {t}"
            ),
            ScheduleViolation::ProcessorOutOfRange {
                category,
                processor,
            } => write!(f, "processor {processor} out of range for {category}"),
            ScheduleViolation::ExecutedBeforeRelease { job, t, release } => write!(
                f,
                "job {job} executed at step {t} but released at {release}"
            ),
        }
    }
}

impl std::error::Error for ScheduleViolation {}

/// Validate a recorded schedule against the job set and machine it was
/// produced for. Returns the first violation found (checks are ordered
/// from structural to semantic).
pub fn validate(
    schedule: &RecordedSchedule,
    jobs: &[JobSpec],
    res: &Resources,
) -> Result<(), ScheduleViolation> {
    // Per-job execution times τ, filled from the records.
    let mut tau: Vec<Vec<Option<Time>>> = jobs.iter().map(|j| vec![None; j.dag.len()]).collect();
    // Processor slot occupancy.
    let mut slots: HashMap<(Time, u16, u32), (JobId, TaskId)> = HashMap::new();

    for r in &schedule.records {
        let ji = r.job.index();
        if ji >= jobs.len() {
            return Err(ScheduleViolation::UnknownJob { job: r.job });
        }
        let spec = &jobs[ji];
        if r.task.index() >= spec.dag.len() {
            return Err(ScheduleViolation::UnknownTask {
                job: r.job,
                task: r.task,
            });
        }
        let required = spec.dag.category(r.task);
        if required != r.category {
            return Err(ScheduleViolation::WrongCategory {
                job: r.job,
                task: r.task,
                ran_on: r.category,
                required,
            });
        }
        if r.processor >= res.processors(r.category) {
            return Err(ScheduleViolation::ProcessorOutOfRange {
                category: r.category,
                processor: r.processor,
            });
        }
        if r.t <= spec.release {
            return Err(ScheduleViolation::ExecutedBeforeRelease {
                job: r.job,
                t: r.t,
                release: spec.release,
            });
        }
        if tau[ji][r.task.index()].replace(r.t).is_some() {
            return Err(ScheduleViolation::TaskExecutedTwice {
                job: r.job,
                task: r.task,
            });
        }
        if slots
            .insert((r.t, r.category.0, r.processor), (r.job, r.task))
            .is_some()
        {
            return Err(ScheduleViolation::ProcessorConflict {
                t: r.t,
                category: r.category,
                processor: r.processor,
            });
        }
    }

    // Completeness and precedence.
    for (ji, spec) in jobs.iter().enumerate() {
        let job = JobId(ji as u32);
        for task in spec.dag.tasks() {
            let Some(tu) = tau[ji][task.index()] else {
                return Err(ScheduleViolation::TaskNotExecuted { job, task });
            };
            for &s in spec.dag.successors(task) {
                if let Some(tv) = tau[ji][s.index()] {
                    if tu >= tv {
                        return Err(ScheduleViolation::PrecedenceViolated { job, u: task, v: s });
                    }
                }
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdag::{Category, DagBuilder};
    use std::sync::Arc;

    fn chain_jobs() -> Vec<JobSpec> {
        // One job: t0 -> t1, categories 0 then 1.
        let mut b = DagBuilder::new(2);
        let a = b.add_task(Category(0));
        let c = b.add_task(Category(1));
        b.add_edge(a, c).unwrap();
        vec![JobSpec {
            dag: Arc::new(b.build().unwrap()),
            release: 0,
        }]
    }

    fn rec(task: u32, t: Time, cat: u16, proc_id: u32) -> ExecRecord {
        ExecRecord {
            job: JobId(0),
            task: TaskId(task),
            t,
            category: Category(cat),
            processor: proc_id,
        }
    }

    fn res() -> Resources {
        Resources::new(vec![1, 1])
    }

    #[test]
    fn valid_schedule_passes() {
        let jobs = chain_jobs();
        let sched = RecordedSchedule {
            records: vec![rec(0, 1, 0, 0), rec(1, 2, 1, 0)],
        };
        assert_eq!(validate(&sched, &jobs, &res()), Ok(()));
    }

    #[test]
    fn missing_task_detected() {
        let jobs = chain_jobs();
        let sched = RecordedSchedule {
            records: vec![rec(0, 1, 0, 0)],
        };
        assert_eq!(
            validate(&sched, &jobs, &res()),
            Err(ScheduleViolation::TaskNotExecuted {
                job: JobId(0),
                task: TaskId(1)
            })
        );
    }

    #[test]
    fn precedence_violation_detected() {
        let jobs = chain_jobs();
        let sched = RecordedSchedule {
            records: vec![rec(0, 2, 0, 0), rec(1, 2, 1, 0)],
        };
        assert_eq!(
            validate(&sched, &jobs, &res()),
            Err(ScheduleViolation::PrecedenceViolated {
                job: JobId(0),
                u: TaskId(0),
                v: TaskId(1)
            })
        );
    }

    #[test]
    fn wrong_category_detected() {
        let jobs = chain_jobs();
        let sched = RecordedSchedule {
            records: vec![rec(0, 1, 1, 0), rec(1, 2, 1, 0)],
        };
        assert!(matches!(
            validate(&sched, &jobs, &res()),
            Err(ScheduleViolation::WrongCategory { .. })
        ));
    }

    #[test]
    fn processor_conflict_detected() {
        // Two single-task jobs of category 0 on one processor at the
        // same step.
        let mk = || {
            let mut b = DagBuilder::new(1);
            b.add_task(Category(0));
            Arc::new(b.build().unwrap())
        };
        let jobs = vec![
            JobSpec {
                dag: mk(),
                release: 0,
            },
            JobSpec {
                dag: mk(),
                release: 0,
            },
        ];
        let sched = RecordedSchedule {
            records: vec![
                ExecRecord {
                    job: JobId(0),
                    task: TaskId(0),
                    t: 1,
                    category: Category(0),
                    processor: 0,
                },
                ExecRecord {
                    job: JobId(1),
                    task: TaskId(0),
                    t: 1,
                    category: Category(0),
                    processor: 0,
                },
            ],
        };
        assert_eq!(
            validate(&sched, &jobs, &Resources::new(vec![1])),
            Err(ScheduleViolation::ProcessorConflict {
                t: 1,
                category: Category(0),
                processor: 0
            })
        );
    }

    #[test]
    fn double_execution_detected() {
        let jobs = chain_jobs();
        let sched = RecordedSchedule {
            records: vec![rec(0, 1, 0, 0), rec(0, 2, 0, 0), rec(1, 3, 1, 0)],
        };
        assert_eq!(
            validate(&sched, &jobs, &res()),
            Err(ScheduleViolation::TaskExecutedTwice {
                job: JobId(0),
                task: TaskId(0)
            })
        );
    }

    #[test]
    fn out_of_range_processor_detected() {
        let jobs = chain_jobs();
        let sched = RecordedSchedule {
            records: vec![rec(0, 1, 0, 5), rec(1, 2, 1, 0)],
        };
        assert!(matches!(
            validate(&sched, &jobs, &res()),
            Err(ScheduleViolation::ProcessorOutOfRange { .. })
        ));
    }

    #[test]
    fn early_execution_detected() {
        let mut jobs = chain_jobs();
        jobs[0].release = 5;
        let sched = RecordedSchedule {
            records: vec![rec(0, 5, 0, 0), rec(1, 6, 1, 0)],
        };
        assert!(matches!(
            validate(&sched, &jobs, &res()),
            Err(ScheduleViolation::ExecutedBeforeRelease { .. })
        ));
    }

    #[test]
    fn unknown_ids_detected() {
        let jobs = chain_jobs();
        let bad_job = RecordedSchedule {
            records: vec![ExecRecord {
                job: JobId(9),
                task: TaskId(0),
                t: 1,
                category: Category(0),
                processor: 0,
            }],
        };
        assert_eq!(
            validate(&bad_job, &jobs, &res()),
            Err(ScheduleViolation::UnknownJob { job: JobId(9) })
        );
        let bad_task = RecordedSchedule {
            records: vec![rec(7, 1, 0, 0)],
        };
        assert!(matches!(
            validate(&bad_task, &jobs, &res()),
            Err(ScheduleViolation::UnknownTask { .. })
        ));
    }

    #[test]
    fn violation_messages_render() {
        let v = ScheduleViolation::ProcessorConflict {
            t: 3,
            category: Category(0),
            processor: 1,
        };
        assert!(v.to_string().contains("used twice"));
    }
}
