//! Checkpointable state extraction for the live engine.
//!
//! [`EngineSnapshot`] is the engine's *logical* checkpoint: the clock
//! plus every externally observable accumulator. It deliberately
//! excludes derived internals (per-category ready pools, RAD
//! marks/queues, frozen allotment rows, the RNG) — those are a
//! deterministic function of the configuration, the injected-job
//! stream, and the clock, which is exactly the property the replay
//! bridge proves byte-for-byte. A durability layer therefore persists
//! the *inputs* and uses this digest to verify that a rebuilt engine
//! reached the identical state; see `kjournal` and DESIGN.md §14.

use crate::live::LiveSimulation;
use crate::Time;

/// A consistent digest of a [`LiveSimulation`] at a quantum boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineSnapshot {
    /// Virtual clock.
    pub now: Time,
    /// Jobs injected so far (engine indices `0..jobs`).
    pub jobs: usize,
    /// Jobs activated and incomplete.
    pub active: usize,
    /// Jobs injected but not yet released.
    pub pending: usize,
    /// Cumulative busy steps.
    pub busy_steps: u64,
    /// Cumulative idle steps.
    pub idle_steps: u64,
    /// Per-engine-index completion times (`None` while running).
    pub completions: Vec<Option<Time>>,
    /// Cumulative per-category executed task counts.
    pub executed_by_category: Vec<u64>,
    /// Cumulative per-category allotted processor-steps.
    pub allotted_by_category: Vec<u64>,
}

impl EngineSnapshot {
    /// First field (with values) on which `self` and `other` differ,
    /// or `None` when the digests are identical. Used by recovery to
    /// turn a divergence into an actionable error message.
    pub fn diff(&self, other: &EngineSnapshot) -> Option<String> {
        macro_rules! check {
            ($field:ident) => {
                if self.$field != other.$field {
                    return Some(format!(
                        "{}: {:?} != {:?}",
                        stringify!($field),
                        self.$field,
                        other.$field
                    ));
                }
            };
        }
        check!(now);
        check!(jobs);
        check!(active);
        check!(pending);
        check!(busy_steps);
        check!(idle_steps);
        check!(completions);
        check!(executed_by_category);
        check!(allotted_by_category);
        None
    }
}

impl LiveSimulation {
    /// Extract the logical checkpoint of the current state. Cheap
    /// (one pass over jobs and categories), safe at any point between
    /// [`advance`](Self::advance) calls.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            now: self.now(),
            jobs: self.job_count(),
            active: self.active_jobs(),
            pending: self.pending_jobs(),
            busy_steps: self.busy_steps(),
            idle_steps: self.idle_steps(),
            completions: (0..self.job_count()).map(|i| self.completion(i)).collect(),
            executed_by_category: self.executed_by_category().to_vec(),
            allotted_by_category: self.allotted_by_category().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JobSpec, Resources, SimConfig};
    use kdag::generators::chain;
    use kdag::Category;

    fn engine() -> LiveSimulation {
        LiveSimulation::new(Resources::uniform(1, 2), SimConfig::default()).unwrap()
    }

    struct GreedyAll;
    impl crate::Scheduler for GreedyAll {
        fn name(&self) -> &str {
            "greedy-all"
        }
        fn allot(
            &mut self,
            _t: Time,
            views: &[crate::JobView<'_>],
            res: &Resources,
            out: &mut crate::AllotmentMatrix,
        ) {
            for cat in Category::all(res.k()) {
                let mut left = res.processors(cat);
                for (slot, v) in views.iter().enumerate() {
                    let a = v.desire(cat).min(left);
                    out.set(slot, cat, a);
                    left -= a;
                    if left == 0 {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn snapshot_digest_tracks_replayed_rebuild() {
        let spec = JobSpec::batched(chain(1, 4, &[Category(0)]));
        let mut a = engine();
        a.inject(spec.clone()).unwrap();
        a.inject(JobSpec::released(chain(1, 3, &[Category(0)]), 6))
            .unwrap();
        let mut sched = GreedyAll;
        a.run_until(3, &mut sched);
        let snap = a.snapshot();
        assert_eq!(snap.now, 3);
        assert_eq!(snap.jobs, 2);
        assert_eq!(
            snap.completions,
            vec![None, None],
            "job 0 mid-flight at t=3"
        );
        assert_eq!(snap.active, 1);
        assert_eq!(snap.pending, 1);

        // A second engine fed the same inputs and advanced to the
        // same clock reaches the identical digest — the recovery
        // invariant in miniature.
        let mut b = engine();
        b.inject(spec).unwrap();
        b.inject(JobSpec::released(chain(1, 3, &[Category(0)]), 6))
            .unwrap();
        let mut sched_b = GreedyAll;
        b.run_until(3, &mut sched_b);
        assert_eq!(snap.diff(&b.snapshot()), None);

        // Diverge the rebuild: the diff names the first bad field.
        b.run_until(20, &mut sched_b);
        let diff = snap.diff(&b.snapshot()).unwrap();
        assert!(diff.starts_with("now:"), "{diff}");
    }
}
