//! The builder-first simulation entry point.
//!
//! [`Simulation`] owns everything a run needs — machine, jobs, and
//! configuration (including telemetry) — so callers assemble a run once
//! and execute it against any number of schedulers, instead of
//! threading loose `(jobs, res, cfg)` triples through every call.

use crate::engine::run_engine;
use crate::{JobSpec, Resources, Scheduler, SimConfig, SimOutcome};
use kdag::SelectionPolicy;
use ktelemetry::{SpanRecorder, TelemetryHandle};
use std::fmt;

use crate::DesireModel;

/// Why a [`SimulationBuilder`] refused to produce a [`Simulation`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// No machine was provided ([`SimulationBuilder::resources`]).
    MissingResources,
    /// A job's DAG disagrees with the machine on the number of
    /// processor categories.
    CategoryMismatch {
        /// Index of the offending job.
        job: usize,
        /// `K` of the job's DAG.
        dag_k: usize,
        /// `K` of the machine.
        machine_k: usize,
    },
    /// The scheduling quantum was 0 (must be ≥ 1).
    ZeroQuantum,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::MissingResources => {
                write!(f, "simulation requires resources (machine description)")
            }
            BuildError::CategoryMismatch {
                job,
                dag_k,
                machine_k,
            } => write!(
                f,
                "job {job}: DAG has {dag_k} categories but machine has {machine_k}"
            ),
            BuildError::ZeroQuantum => write!(f, "quantum must be at least 1"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Validate a `(jobs, res, cfg)` triple exactly the way
/// [`SimulationBuilder::build`] does — shared with the borrowing
/// [`crate::simulate`] shim so the legacy path pays no clone.
pub(crate) fn validate(
    jobs: &[JobSpec],
    res: &Resources,
    cfg: &SimConfig,
) -> Result<(), BuildError> {
    if cfg.quantum == 0 {
        return Err(BuildError::ZeroQuantum);
    }
    let k = res.k();
    for (i, j) in jobs.iter().enumerate() {
        if j.dag.k() != k {
            return Err(BuildError::CategoryMismatch {
                job: i,
                dag_k: j.dag.k(),
                machine_k: k,
            });
        }
    }
    Ok(())
}

/// A fully assembled simulation: machine, jobs, and configuration.
///
/// Build one with [`Simulation::builder`]; run it with
/// [`Simulation::run`]. The job/machine shapes are validated once at
/// build time, so `run` can be called repeatedly (e.g. once per
/// scheduler under comparison) with no re-validation and no cloning.
///
/// ```
/// use kdag::generators::fork_join;
/// use kdag::Category;
/// use krad::KRad;
/// use ksim::{JobSpec, Resources, Simulation};
///
/// let sim = Simulation::builder()
///     .resources(Resources::new(vec![4, 2]))
///     .job(JobSpec::batched(fork_join(2, &[(Category(0), 4), (Category(1), 2)])))
///     .build()
///     .unwrap();
/// let outcome = sim.run(&mut KRad::new(2));
/// assert_eq!(outcome.makespan, 2);
/// ```
#[derive(Clone, Debug)]
pub struct Simulation {
    jobs: Vec<JobSpec>,
    res: Resources,
    cfg: SimConfig,
}

impl Simulation {
    /// Start assembling a simulation.
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder {
            res: None,
            jobs: Vec::new(),
            cfg: SimConfig::default(),
        }
    }

    /// Run the simulation under `scheduler` and return the outcome.
    ///
    /// Deterministic: the same `Simulation` and a freshly constructed
    /// scheduler always produce the same [`SimOutcome`].
    pub fn run(&self, scheduler: &mut dyn Scheduler) -> SimOutcome {
        run_engine(scheduler, &self.jobs, &self.res, &self.cfg)
    }

    /// The jobs this simulation will run.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// The machine description.
    pub fn resources(&self) -> &Resources {
        &self.res
    }

    /// The engine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }
}

/// Builder for [`Simulation`] — owns resources, jobs, config, and
/// telemetry as they are assembled.
///
/// Config shortcuts ([`policy`](SimulationBuilder::policy),
/// [`seed`](SimulationBuilder::seed), …) mutate the internal
/// [`SimConfig`]; pass a prebuilt one with
/// [`config`](SimulationBuilder::config) *before* the shortcuts if you
/// want to combine both.
#[derive(Clone, Debug)]
pub struct SimulationBuilder {
    res: Option<Resources>,
    jobs: Vec<JobSpec>,
    cfg: SimConfig,
}

impl SimulationBuilder {
    /// Set the machine description (required).
    pub fn resources(mut self, res: Resources) -> Self {
        self.res = Some(res);
        self
    }

    /// Add one job.
    pub fn job(mut self, job: JobSpec) -> Self {
        self.jobs.push(job);
        self
    }

    /// Add many jobs.
    pub fn jobs<I: IntoIterator<Item = JobSpec>>(mut self, jobs: I) -> Self {
        self.jobs.extend(jobs);
        self
    }

    /// Replace the entire engine configuration.
    pub fn config(mut self, cfg: SimConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Set the [`SelectionPolicy`].
    pub fn policy(mut self, policy: SelectionPolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Set the scheduling quantum `q ≥ 1`.
    pub fn quantum(mut self, quantum: u64) -> Self {
        self.cfg.quantum = quantum;
        self
    }

    /// Set the [`DesireModel`].
    pub fn desire_model(mut self, model: DesireModel) -> Self {
        self.cfg.desire_model = model;
        self
    }

    /// Record per-step [`crate::StepTrace`]s in the outcome.
    pub fn record_trace(mut self, record: bool) -> Self {
        self.cfg.record_trace = record;
        self
    }

    /// Record the full schedule `χ` for the [`crate::checker`].
    pub fn record_schedule(mut self, record: bool) -> Self {
        self.cfg.record_schedule = record;
        self
    }

    /// Wire a [`TelemetryHandle`] into the engine.
    pub fn telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.cfg.telemetry = telemetry;
        self
    }

    /// Wire a [`SpanRecorder`] into the engine's per-phase lap chain
    /// (`ready`/`decide`/`execute`, plus scheduler-internal
    /// `deq_allot`/`rr_cycle` when the scheduler shares the recorder).
    /// Pass [`SpanRecorder::profiler`] for offline per-phase
    /// breakdowns, or [`SpanRecorder::for_registry`] to aggregate into
    /// registry histograms.
    pub fn spans(mut self, spans: SpanRecorder) -> Self {
        self.cfg.spans = spans;
        self
    }

    /// Set the stall limit.
    pub fn stall_limit(mut self, limit: u64) -> Self {
        self.cfg.stall_limit = limit;
        self
    }

    /// Set the step cap.
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.cfg.max_steps = max_steps;
        self
    }

    /// Select how the engine clock advances (see [`crate::TimePolicy`]).
    pub fn time_policy(mut self, policy: crate::TimePolicy) -> Self {
        self.cfg.time_policy = policy;
        self
    }

    /// Validate the assembled run and produce a [`Simulation`].
    pub fn build(self) -> Result<Simulation, BuildError> {
        let res = self.res.ok_or(BuildError::MissingResources)?;
        validate(&self.jobs, &res, &self.cfg)?;
        Ok(Simulation {
            jobs: self.jobs,
            res,
            cfg: self.cfg,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdag::{Category, DagBuilder};

    fn diamond() -> kdag::JobDag {
        let mut b = DagBuilder::new(2);
        let a = b.add_task(Category(0));
        let x = b.add_task(Category(1));
        let y = b.add_task(Category(1));
        let z = b.add_task(Category(0));
        b.add_edge(a, x).unwrap();
        b.add_edge(a, y).unwrap();
        b.add_edge(x, z).unwrap();
        b.add_edge(y, z).unwrap();
        b.build().unwrap()
    }

    /// Gives every job its full desire, clamped to capacity.
    struct GreedyAll;
    impl Scheduler for GreedyAll {
        fn name(&self) -> &str {
            "greedy-all"
        }
        fn allot(
            &mut self,
            _t: crate::Time,
            views: &[crate::JobView<'_>],
            res: &Resources,
            out: &mut crate::AllotmentMatrix,
        ) {
            for cat in Category::all(res.k()) {
                let mut left = res.processors(cat);
                for (slot, v) in views.iter().enumerate() {
                    let a = v.desire(cat).min(left);
                    out.set(slot, cat, a);
                    left -= a;
                    if left == 0 {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn builder_assembles_and_runs() {
        let sim = Simulation::builder()
            .resources(Resources::uniform(2, 4))
            .job(JobSpec::batched(diamond()))
            .job(JobSpec::released(diamond(), 10))
            .policy(SelectionPolicy::Lifo)
            .seed(7)
            .build()
            .expect("valid build");
        assert_eq!(sim.jobs().len(), 2);
        assert_eq!(sim.config().policy, SelectionPolicy::Lifo);
        assert_eq!(sim.config().seed, 7);
        let o = sim.run(&mut GreedyAll);
        assert_eq!(o.completions[0], 3);
        assert_eq!(o.completions[1], 13);
    }

    #[test]
    fn run_is_repeatable_from_one_simulation() {
        let sim = Simulation::builder()
            .resources(Resources::uniform(2, 4))
            .jobs((0..4).map(|i| JobSpec::released(diamond(), i)))
            .build()
            .unwrap();
        let a = sim.run(&mut GreedyAll);
        let b = sim.run(&mut GreedyAll);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.preemptions, b.preemptions);
    }

    #[test]
    fn missing_resources_is_an_error() {
        let err = Simulation::builder()
            .job(JobSpec::batched(diamond()))
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::MissingResources);
        assert!(err.to_string().contains("resources"));
    }

    #[test]
    fn category_mismatch_is_an_error() {
        let err = Simulation::builder()
            .resources(Resources::uniform(3, 4))
            .job(JobSpec::batched(diamond()))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::CategoryMismatch {
                job: 0,
                dag_k: 2,
                machine_k: 3
            }
        );
        assert!(err.to_string().contains("categories but machine"));
    }

    #[test]
    fn zero_quantum_is_an_error() {
        let err = Simulation::builder()
            .resources(Resources::uniform(2, 4))
            .quantum(0)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::ZeroQuantum);
    }

    #[test]
    fn builder_wires_a_phase_profiler() {
        use ktelemetry::SpanKind;
        let spans = SpanRecorder::profiler();
        let sim = Simulation::builder()
            .resources(Resources::uniform(2, 4))
            .job(JobSpec::batched(diamond()))
            .spans(spans.clone())
            .build()
            .unwrap();
        sim.run(&mut GreedyAll);
        // Quantum 1 → ready/decide/execute once per busy step (3 for
        // the diamond), and the profile snapshot covers every kind.
        assert_eq!(spans.count(SpanKind::Ready), 3);
        assert_eq!(spans.count(SpanKind::Decide), 3);
        assert_eq!(spans.count(SpanKind::Execute), 3);
        assert_eq!(spans.profile().unwrap().len(), SpanKind::COUNT);
    }

    #[test]
    fn config_then_shortcuts_compose() {
        let cfg = SimConfig::default()
            .with_quantum(3)
            .with_policy(SelectionPolicy::CriticalFirst);
        let sim = Simulation::builder()
            .resources(Resources::uniform(2, 4))
            .config(cfg)
            .seed(99)
            .build()
            .unwrap();
        assert_eq!(sim.config().quantum, 3);
        assert_eq!(sim.config().policy, SelectionPolicy::CriticalFirst);
        assert_eq!(sim.config().seed, 99);
    }
}
