//! The incremental engine core: a simulation that can be driven one
//! step at a time while new jobs are injected mid-run.
//!
//! [`LiveSimulation`] is the *same* engine the batch [`crate::simulate`]
//! path runs — `run_engine` is a thin driver that injects every job up
//! front and steps to completion. A long-running service (the `kserve`
//! daemon) instead injects jobs as they arrive over the wire and
//! advances virtual time quantum by quantum. Because both paths execute
//! this one step loop, an online session whose arrivals are recorded as
//! `(dag, release)` pairs replays *bit-for-bit* through the offline
//! path: same decision boundaries, same freeze semantics, same RNG
//! stream, same completions.
//!
//! ## Invariants for online injection
//!
//! * A job may only be injected with `release >= now()` — the engine
//!   cannot rewrite history ([`InjectError::ReleaseInPast`]).
//! * Injection order is the job-index order; the offline replay must
//!   present the same jobs in the same order with the same releases.
//! * Virtual time is work-conserving: it only advances while jobs are
//!   active (or fast-forwards to the next pending release), so
//!   wall-clock idle time at the service layer consumes no virtual
//!   steps and leaves no trace in the canonical arrival record.

use crate::checker::{ExecRecord, RecordedSchedule};
use crate::session::BuildError;
use crate::{
    AllotmentMatrix, DesireModel, JobSpec, JobView, Resources, Scheduler, SimConfig, SimOutcome,
    StepTrace, Time, TimePolicy,
};
use kdag::{Category, ExecutionState, JobId, TaskId};
use ktelemetry::{SpanKind, TelemetryEvent, TelemetryHandle};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Cap on A-Greedy estimates (doubling is otherwise unbounded).
const EST_CAP: u32 = 1 << 20;

/// Why [`LiveSimulation::inject`] refused a job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InjectError {
    /// The job's DAG disagrees with the machine on the number of
    /// processor categories.
    CategoryMismatch {
        /// Index the job would have received.
        job: usize,
        /// `K` of the job's DAG.
        dag_k: usize,
        /// `K` of the machine.
        machine_k: usize,
    },
    /// The release time is before the engine's current virtual time —
    /// accepting it would diverge from the offline replay.
    ReleaseInPast {
        /// The offending release time.
        release: Time,
        /// The engine's current virtual time.
        now: Time,
    },
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectError::CategoryMismatch {
                job,
                dag_k,
                machine_k,
            } => write!(
                f,
                "job {job}: DAG has {dag_k} categories but machine has {machine_k}"
            ),
            InjectError::ReleaseInPast { release, now } => {
                write!(f, "release {release} is before the current time {now}")
            }
        }
    }
}

impl std::error::Error for InjectError {}

/// What one [`LiveSimulation::advance`] (or
/// [`LiveSimulation::run_until`]) call did — the typed report of time
/// advanced, allotments, completions, and clock mode.
///
/// Non-exhaustive so the engine can grow the report (e.g. per-category
/// waste) without breaking callers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct QuantumReport {
    /// Virtual time when the call began.
    pub from: Time,
    /// Virtual time when the call returned.
    pub to: Time,
    /// Busy (executed) steps in `(from, to]`.
    pub busy: u64,
    /// Idle (fast-forwarded) steps in `(from, to]`.
    pub idle: u64,
    /// Whether a decision boundary fell inside this call (the
    /// scheduler was consulted and allotments were re-frozen).
    pub decided: bool,
    /// Per-category allotment totals in force at `to`.
    pub allotted: Vec<u32>,
    /// Jobs that completed, as `(job index, completion time)` pairs in
    /// completion order.
    pub completed: Vec<(usize, Time)>,
    /// The clock mode the engine ran this call under.
    pub time_policy: TimePolicy,
}

impl QuantumReport {
    /// Steps of virtual time this call advanced (`to - from`).
    pub fn steps(&self) -> u64 {
        self.to - self.from
    }

    /// Indices of the jobs that completed during this call.
    pub fn completed_jobs(&self) -> impl Iterator<Item = usize> + '_ {
        self.completed.iter().map(|&(idx, _)| idx)
    }
}

/// An incrementally drivable simulation: inject jobs at (or after) the
/// current virtual time, advance with
/// [`advance`](LiveSimulation::advance), and extract the standard
/// [`SimOutcome`] when done.
///
/// ```
/// use kdag::generators::fork_join;
/// use kdag::Category;
/// use krad::KRad;
/// use ksim::{JobSpec, LiveSimulation, Resources, SimConfig};
///
/// let mut live = LiveSimulation::new(Resources::new(vec![4, 2]), SimConfig::default()).unwrap();
/// let mut sched = KRad::new(2);
/// live.inject(JobSpec::batched(fork_join(2, &[(Category(0), 4), (Category(1), 2)])))
///     .unwrap();
/// while live.has_work() {
///     let report = live.advance(&mut sched);
///     assert!(report.to > report.from);
/// }
/// assert_eq!(live.now(), 2);
/// assert_eq!(live.into_outcome("k-rad").makespan, 2);
/// ```
#[derive(Clone, Debug)]
pub struct LiveSimulation {
    res: Resources,
    cfg: SimConfig,
    k: usize,
    rng: StdRng,
    jobs: Vec<JobSpec>,
    states: Vec<ExecutionState>,
    /// Not-yet-activated job indices from `next_arrival` on, sorted by
    /// `(release, index)`; the activated prefix is kept for posterity.
    order: Vec<usize>,
    next_arrival: usize,
    active: Vec<usize>,
    completions: Vec<Time>,
    remaining: usize,
    t: Time,

    // Quantum machinery: allotments frozen between decisions.
    frozen: Vec<u32>,
    frozen_set: Vec<bool>,
    next_decision: Time,
    last_decision: Time,
    zero_row: Vec<u32>,

    // A-Greedy feedback state (flat `jobs × K` matrices, grown only
    // when feedback is enabled).
    feedback_delta: Option<f64>,
    est: Vec<u32>,
    est_set: Vec<bool>,
    reported: Vec<u32>,
    usage: Vec<u64>,
    usage_init: Vec<bool>,

    // Reused per-step buffers (no steady-state allocation).
    desires_buf: Vec<u32>,
    executed_buf: Vec<u32>,
    exec_record: Vec<(Category, TaskId)>,
    out: AllotmentMatrix,
    allotted_totals: Vec<u32>,
    step_executed_totals: Vec<u32>,
    proc_counter: Vec<u32>,
    decision_totals: Vec<u64>,
    /// Active jobs that can still execute under the current frozen
    /// rows — the working set of the event-driven plain-step batcher.
    seg_live: Vec<usize>,
    /// Reused report buffer returned by `advance`/`run_until`.
    report: QuantumReport,

    // Accounting.
    executed_by_category: Vec<u64>,
    allotted_by_category: Vec<u64>,
    busy_steps: u64,
    idle_steps: u64,
    preemptions: u64,
    stalled: u64,
    trace: Vec<StepTrace>,
    schedule: RecordedSchedule,
    tel: TelemetryHandle,

    // ktrace per-job state: first-allotment flags and the currently
    // open execution segment of each job. Only consulted when
    // `job_events` is set, so the uninstrumented hot path pays
    // nothing beyond the cached boolean.
    job_events: bool,
    first_allot_seen: Vec<bool>,
    /// First step of the open execution segment of each job.
    seg_from: Vec<u64>,
    /// Tasks executed in the open segment (`> 0` iff a segment is
    /// open).
    seg_tasks: Vec<u64>,
}

impl LiveSimulation {
    /// An empty live simulation on machine `res` under `cfg`.
    ///
    /// Fails with [`BuildError::ZeroQuantum`] if `cfg.quantum == 0`.
    ///
    /// # Panics
    /// Panics if an [`DesireModel::AGreedy`] delta is outside `[0, 1]`
    /// (a configuration bug, same as the batch path).
    pub fn new(res: Resources, cfg: SimConfig) -> Result<LiveSimulation, BuildError> {
        crate::session::validate(&[], &res, &cfg)?;
        let k = res.k();
        let feedback_delta = match cfg.desire_model {
            DesireModel::Exact => None,
            DesireModel::AGreedy { delta } => {
                assert!(
                    (0.0..=1.0).contains(&delta),
                    "A-Greedy delta must be in [0, 1]"
                );
                Some(delta)
            }
        };
        let rng = StdRng::seed_from_u64(cfg.seed);
        let tel = cfg.telemetry.clone();
        let job_events = tel.is_enabled();
        Ok(LiveSimulation {
            res,
            k,
            rng,
            jobs: Vec::new(),
            states: Vec::new(),
            order: Vec::new(),
            next_arrival: 0,
            active: Vec::new(),
            completions: Vec::new(),
            remaining: 0,
            t: 0,
            frozen: Vec::new(),
            frozen_set: Vec::new(),
            next_decision: 0,
            last_decision: 0,
            zero_row: vec![0; k],
            feedback_delta,
            est: Vec::new(),
            est_set: Vec::new(),
            reported: Vec::new(),
            usage: Vec::new(),
            usage_init: Vec::new(),
            desires_buf: Vec::new(),
            executed_buf: vec![0; k],
            exec_record: Vec::new(),
            out: AllotmentMatrix::new(k),
            allotted_totals: vec![0; k],
            step_executed_totals: vec![0; k],
            proc_counter: vec![0; k],
            decision_totals: vec![0; k],
            seg_live: Vec::new(),
            report: QuantumReport::default(),
            executed_by_category: vec![0; k],
            allotted_by_category: vec![0; k],
            busy_steps: 0,
            idle_steps: 0,
            preemptions: 0,
            stalled: 0,
            trace: Vec::new(),
            schedule: RecordedSchedule::default(),
            tel,
            job_events,
            first_allot_seen: Vec::new(),
            seg_from: Vec::new(),
            seg_tasks: Vec::new(),
            cfg,
        })
    }

    /// Pre-size the per-job matrices for `n` further jobs (the batch
    /// driver knows the job count up front; online callers need not
    /// bother).
    pub fn reserve(&mut self, n: usize) {
        self.jobs.reserve(n);
        self.states.reserve(n);
        self.order.reserve(n);
        self.completions.reserve(n);
        self.frozen.reserve(n * self.k);
        self.frozen_set.reserve(n);
        self.first_allot_seen.reserve(n);
        self.seg_from.reserve(n);
        self.seg_tasks.reserve(n);
    }

    /// Inject one job; returns its index (dense, in injection order).
    ///
    /// The job becomes visible to the scheduler at step `release + 1`;
    /// `release` must be at or after [`now`](LiveSimulation::now).
    pub fn inject(&mut self, spec: JobSpec) -> Result<usize, InjectError> {
        let idx = self.jobs.len();
        if spec.dag.k() != self.k {
            return Err(InjectError::CategoryMismatch {
                job: idx,
                dag_k: spec.dag.k(),
                machine_k: self.k,
            });
        }
        if spec.release < self.t {
            return Err(InjectError::ReleaseInPast {
                release: spec.release,
                now: self.t,
            });
        }
        self.states
            .push(ExecutionState::new(&spec.dag, self.cfg.policy));
        self.completions.push(0);
        self.first_allot_seen.push(false);
        self.seg_from.push(0);
        self.seg_tasks.push(0);
        self.frozen.extend(std::iter::repeat_n(0, self.k));
        self.frozen_set.push(false);
        if self.feedback_delta.is_some() {
            self.est.extend(std::iter::repeat_n(0, self.k));
            self.est_set.push(false);
            self.reported.extend(std::iter::repeat_n(0, self.k));
            self.usage.extend(std::iter::repeat_n(0, self.k));
            self.usage_init.push(false);
        }
        // Sorted insert by (release, index) among the pending tail.
        let key = (spec.release, idx);
        let jobs = &self.jobs;
        let pos = self.next_arrival
            + self.order[self.next_arrival..].partition_point(|&j| (jobs[j].release, j) < key);
        self.order.insert(pos, idx);
        self.jobs.push(spec);
        self.remaining += 1;
        Ok(idx)
    }

    /// The engine's current virtual time (last completed step).
    pub fn now(&self) -> Time {
        self.t
    }

    /// `true` while any injected job is incomplete.
    pub fn has_work(&self) -> bool {
        self.remaining > 0
    }

    /// Number of currently active (released, incomplete) jobs.
    pub fn active_jobs(&self) -> usize {
        self.active.len()
    }

    /// Number of injected jobs whose release is still in the future.
    pub fn pending_jobs(&self) -> usize {
        self.order.len() - self.next_arrival
    }

    /// Total jobs injected so far.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// The injected jobs, in injection order.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Completion time of job `idx`, if it has finished.
    pub fn completion(&self, idx: usize) -> Option<Time> {
        match self.completions.get(idx) {
            Some(&c) if c > 0 => Some(c),
            _ => None,
        }
    }

    /// Busy (simulated) steps so far.
    pub fn busy_steps(&self) -> u64 {
        self.busy_steps
    }

    /// Idle (fast-forwarded) steps so far.
    pub fn idle_steps(&self) -> u64 {
        self.idle_steps
    }

    /// The machine description.
    pub fn resources(&self) -> &Resources {
        &self.res
    }

    /// Sum the *instantaneous* per-category desires of the active jobs
    /// into `out` (resized to `K`). This is the paper's `Σi d(Ji, α, t)`
    /// read straight from the incrementally maintained ready counts —
    /// independent of the desire model the scheduler is shown.
    pub fn desire_totals_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.resize(self.k, 0);
        for &idx in &self.active {
            for (tot, &d) in out.iter_mut().zip(self.states[idx].desires()) {
                *tot += u64::from(d);
            }
        }
    }

    /// Per-category allotment totals of the most recently executed
    /// step (zeros before the first step).
    pub fn last_allotted(&self) -> &[u32] {
        &self.allotted_totals
    }

    /// Cumulative per-category executed task counts.
    pub fn executed_by_category(&self) -> &[u64] {
        &self.executed_by_category
    }

    /// Cumulative per-category allotted processor-steps.
    pub fn allotted_by_category(&self) -> &[u64] {
        &self.allotted_by_category
    }

    /// The engine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// One unit step of the engine: the shared core both clock modes
    /// are built on. Returns whether a decision was taken.
    pub(crate) fn step_once(&mut self, scheduler: &mut dyn Scheduler) -> bool {
        // Phase lap chain: `ready` (arrival activation, desire
        // digestion, view building) → `decide` (scheduler allot, on
        // decision steps only) → `execute` (freeze/commit, task
        // execution, accounting). One clock read per boundary, opened
        // as the first statement so the phases tile the step's wall
        // time exactly; disabled recorders never read the clock.
        let mut lap = self.cfg.spans.start();
        assert!(self.remaining > 0, "step() called with no incomplete jobs");
        let k = self.k;
        let row_range = |idx: usize| idx * k..(idx + 1) * k;
        let cfg = &self.cfg;
        let res = &self.res;
        let jobs = &self.jobs;
        let states = &mut self.states;
        let active = &mut self.active;
        let tel = &self.tel;

        // Fast-forward idle intervals.
        if active.is_empty() {
            let r = jobs[self.order[self.next_arrival]].release;
            let t = self.t;
            if r > t {
                self.idle_steps += r - t;
                tel.emit(|| TelemetryEvent::IdleSkip { from: t, to: r });
                self.t = r;
            }
        }
        self.t += 1;
        let t = self.t;
        assert!(
            t <= cfg.max_steps,
            "simulation exceeded max_steps={} under scheduler '{}'",
            cfg.max_steps,
            scheduler.name()
        );

        // Activate arrivals: release < t means available at step t.
        while self.next_arrival < self.order.len()
            && jobs[self.order[self.next_arrival]].release < t
        {
            let idx = self.order[self.next_arrival];
            let pos = active.partition_point(|&x| x < idx);
            active.insert(pos, idx);
            scheduler.on_arrival(JobId(idx as u32), t);
            tel.emit(|| TelemetryEvent::JobReleased { t, job: idx as u32 });
            self.next_arrival += 1;
        }
        debug_assert!(!active.is_empty(), "stepping with no active jobs");
        tel.emit(|| TelemetryEvent::StepStart {
            t,
            active_jobs: active.len() as u32,
        });

        // Quantum boundary: consult the scheduler and freeze allotments.
        let mut decided = false;
        if t >= self.next_decision {
            // ktrace: a decision re-freezes every row, so the open
            // execution segments are truncated at the boundary — the
            // per-quantum segment of each job ends at `t - 1`.
            if self.job_events {
                for &idx in active.iter() {
                    if self.seg_tasks[idx] > 0 {
                        let (from, tasks) = (self.seg_from[idx], self.seg_tasks[idx]);
                        self.seg_tasks[idx] = 0;
                        tel.emit(|| TelemetryEvent::JobExecSegment {
                            job: idx as u32,
                            from,
                            to: t - 1,
                            tasks,
                        });
                    }
                }
            }

            // A-Greedy: digest the quantum that just ended.
            if let Some(delta) = self.feedback_delta {
                let elapsed = t.saturating_sub(self.last_decision);
                if elapsed > 0 {
                    for &idx in active.iter() {
                        if !self.frozen_set[idx] || !self.est_set[idx] {
                            continue;
                        }
                        let r = row_range(idx);
                        for c in 0..k {
                            let fr = self.frozen[r.start + c];
                            if fr < self.reported[r.start + c] {
                                continue; // deprived: estimate unchanged
                            }
                            let granted = u64::from(fr) * elapsed;
                            let e = &mut self.est[r.start + c];
                            if (self.usage[r.start + c] as f64) >= delta * granted as f64 {
                                *e = e.saturating_mul(2).min(EST_CAP);
                            } else {
                                *e = (*e / 2).max(1);
                            }
                        }
                        self.usage[r].fill(0);
                    }
                }
            }

            // Build the non-clairvoyant views (exact desires — an O(1)
            // read of the incrementally maintained ready counts — or
            // feedback estimates).
            // Every row is fully overwritten below, so no zeroing pass.
            self.desires_buf.resize(active.len() * k, 0);
            for (slot, &idx) in active.iter().enumerate() {
                let row = &mut self.desires_buf[slot * k..(slot + 1) * k];
                match cfg.desire_model {
                    DesireModel::Exact => row.copy_from_slice(states[idx].desires()),
                    DesireModel::AGreedy { .. } => {
                        let r = row_range(idx);
                        if !self.est_set[idx] {
                            self.est[r.clone()].fill(1);
                            self.est_set[idx] = true;
                        }
                        row.copy_from_slice(&self.est[r]);
                        self.usage_init[idx] = true;
                    }
                }
            }
            // The views borrow `desires_buf`, so they cannot persist
            // across steps in safe Rust; a stack array covers the
            // common case and only very wide steps fall back to a
            // heap allocation.
            const VIEW_STACK: usize = 8;
            let desires_buf = &self.desires_buf;
            let make_view = |(slot, &idx): (usize, &usize)| JobView {
                id: JobId(idx as u32),
                release: jobs[idx].release,
                desires: &desires_buf[slot * k..(slot + 1) * k],
            };
            let mut view_stack = [JobView {
                id: JobId(0),
                release: 0,
                desires: &[],
            }; VIEW_STACK];
            let view_heap: Vec<JobView<'_>>;
            let views: &[JobView<'_>] = if active.len() <= VIEW_STACK {
                for (slot, v) in active.iter().enumerate().map(make_view).enumerate() {
                    view_stack[slot] = v;
                }
                &view_stack[..active.len()]
            } else {
                view_heap = active.iter().enumerate().map(make_view).collect();
                &view_heap
            };

            self.out.reset(active.len());
            lap = cfg.spans.lap(SpanKind::Ready, lap);
            scheduler.allot(t, views, res, &mut self.out);
            lap = cfg.spans.lap(SpanKind::Decide, lap);

            // Freeze the decision for the quantum (row copies into the
            // flat matrices — no per-decision allocation), folding the
            // per-category totals for the over-allotment check into
            // the same pass over the rows.
            // Preemption accounting folds in here too: within a quantum
            // the frozen rows never change, so processors can only be
            // withdrawn at a decision boundary — comparing the old
            // frozen row against the new one counts exactly the
            // step-over-step losses (a job that *finished* has
            // `frozen_set` cleared and is not counted).
            self.decision_totals.fill(0);
            for (slot, &idx) in active.iter().enumerate() {
                let r = row_range(idx);
                let row = self.out.row(slot);
                for (tot, &a) in self.decision_totals.iter_mut().zip(row) {
                    *tot += u64::from(a);
                }
                if self.frozen_set[idx] {
                    for (&p, &a) in self.frozen[r.clone()].iter().zip(row) {
                        self.preemptions += u64::from(p.saturating_sub(a));
                    }
                }
                self.frozen[r.clone()].copy_from_slice(row);
                self.frozen_set[idx] = true;
                if self.job_events && !self.first_allot_seen[idx] && row.iter().any(|&a| a > 0) {
                    self.first_allot_seen[idx] = true;
                    tel.emit(|| TelemetryEvent::JobFirstAllot { t, job: idx as u32 });
                }
                if self.feedback_delta.is_some() {
                    self.reported[r].copy_from_slice(&desires_buf[slot * k..(slot + 1) * k]);
                }
            }

            // Contract: never allot more than Pα in any category.
            for cat in Category::all(k) {
                let total = self.decision_totals[cat.index()];
                assert!(
                    total <= u64::from(res.processors(cat)),
                    "scheduler '{}' over-allotted {cat}: {total} > {} at step {t}",
                    scheduler.name(),
                    res.processors(cat)
                );
            }
            self.last_decision = t;
            self.next_decision = t + cfg.quantum;
            decided = true;
        } else {
            lap = cfg.spans.lap(SpanKind::Ready, lap);
        }

        // Execute the step: one pass over the active jobs doing the
        // allotted-total bookkeeping and task execution against the
        // flat frozen rows (zeros for jobs that arrived mid-quantum) —
        // no per-job allocation. On decision steps the allotted totals
        // were already summed while freezing the rows.
        if decided {
            for (tot, &d) in self.allotted_totals.iter_mut().zip(&self.decision_totals) {
                *tot = d as u32;
            }
        } else {
            self.allotted_totals.fill(0);
            for &idx in active.iter() {
                if self.frozen_set[idx] {
                    let r = row_range(idx);
                    for (tot, &a) in self.allotted_totals.iter_mut().zip(&self.frozen[r]) {
                        *tot += a;
                    }
                }
            }
        }
        self.step_executed_totals.fill(0);
        self.proc_counter.fill(0);
        let mut step_total = 0u64;
        let mut any_completed = false;
        for &idx in active.iter() {
            let r = row_range(idx);
            let row: &[u32] = if self.frozen_set[idx] {
                &self.frozen[r.clone()]
            } else {
                &self.zero_row
            };
            self.exec_record.clear();
            let rec = cfg.record_schedule.then_some(&mut self.exec_record);
            let n = states[idx].execute_step(
                &jobs[idx].dag,
                row,
                &mut self.rng,
                &mut self.executed_buf,
                rec,
            );
            step_total += n;
            if self.job_events {
                if n > 0 {
                    if self.seg_tasks[idx] == 0 {
                        self.seg_from[idx] = t;
                    }
                    self.seg_tasks[idx] += n;
                } else if self.seg_tasks[idx] > 0 {
                    // Drained mid-quantum: the segment ended last step.
                    let (from, tasks) = (self.seg_from[idx], self.seg_tasks[idx]);
                    self.seg_tasks[idx] = 0;
                    tel.emit(|| TelemetryEvent::JobExecSegment {
                        job: idx as u32,
                        from,
                        to: t - 1,
                        tasks,
                    });
                }
            }
            for (tot, &e) in self
                .step_executed_totals
                .iter_mut()
                .zip(self.executed_buf.iter())
            {
                *tot += e;
            }
            if self.feedback_delta.is_some() && self.usage_init[idx] {
                for (u, &e) in self.usage[r].iter_mut().zip(self.executed_buf.iter()) {
                    *u += u64::from(e);
                }
            }
            for &(cat, task) in &self.exec_record {
                let p = &mut self.proc_counter[cat.index()];
                self.schedule.records.push(ExecRecord {
                    job: JobId(idx as u32),
                    task,
                    t,
                    category: cat,
                    processor: *p,
                });
                *p += 1;
            }
            if states[idx].is_complete() {
                self.completions[idx] = t;
                scheduler.on_completion(JobId(idx as u32), t);
                if self.job_events && self.seg_tasks[idx] > 0 {
                    let (from, tasks) = (self.seg_from[idx], self.seg_tasks[idx]);
                    self.seg_tasks[idx] = 0;
                    tel.emit(|| TelemetryEvent::JobExecSegment {
                        job: idx as u32,
                        from,
                        to: t,
                        tasks,
                    });
                }
                tel.emit(|| TelemetryEvent::JobCompleted {
                    t,
                    job: idx as u32,
                    response: t - jobs[idx].release,
                });
                self.remaining -= 1;
                any_completed = true;
                self.report.completed.push((idx, t));
                // Losing processors by *finishing* is not a preemption:
                // clearing `frozen_set` excludes this job from the next
                // decision's old-vs-new comparison.
                self.frozen_set[idx] = false;
                if self.feedback_delta.is_some() {
                    self.est_set[idx] = false;
                }
            }
        }
        for (tot, &e) in self
            .executed_by_category
            .iter_mut()
            .zip(&self.step_executed_totals)
        {
            *tot += u64::from(e);
        }
        for (tot, &a) in self
            .allotted_by_category
            .iter_mut()
            .zip(&self.allotted_totals)
        {
            *tot += u64::from(a);
        }
        if any_completed {
            active.retain(|&idx| !states[idx].is_complete());
        }
        self.busy_steps += 1;

        // Stall detection.
        if step_total == 0 && self.remaining > 0 {
            self.stalled += 1;
            assert!(
                self.stalled <= cfg.stall_limit,
                "scheduler '{}' stalled for {} consecutive steps at t={t}",
                scheduler.name(),
                self.stalled
            );
        } else {
            self.stalled = 0;
        }

        tel.emit(|| TelemetryEvent::StepEnd {
            t,
            allotted: self.allotted_totals.clone(),
            executed: self.step_executed_totals.clone(),
        });
        if cfg.record_trace {
            self.trace.push(StepTrace {
                t,
                active_jobs: (self.active.len() + usize::from(any_completed)) as u32,
                allotted: self.allotted_totals.clone(),
                executed: self.step_executed_totals.clone(),
            });
        }
        cfg.spans.finish(SpanKind::Execute, lap);
        decided
    }

    /// Advance the clock by one *event* and return a typed
    /// [`QuantumReport`] of what happened.
    ///
    /// Under [`TimePolicy::UnitStep`] (the default) this is exactly
    /// one unit step. Under
    /// [`TimePolicy::EventDriven`] one call executes the next event
    /// step — a decision boundary, a job activation, or an idle
    /// fast-forward — and then batches the *plain* steps up to the
    /// next event horizon `min(next decision, next activation)` in one
    /// pass: jobs that drain under their frozen rows leave the inner
    /// loop permanently, and once every active job is drained the rest
    /// of the quantum is accounted in O(1). Outcomes, traces,
    /// schedules, and telemetry streams are bit-for-bit identical
    /// under both policies.
    ///
    /// # Panics
    /// Panics if called with no work ([`has_work`](Self::has_work) is
    /// the caller's guard), if the scheduler over-allots a category,
    /// stalls past `cfg.stall_limit`, or `cfg.max_steps` is exceeded —
    /// the same contract enforcement as the batch path.
    pub fn advance(&mut self, scheduler: &mut dyn Scheduler) -> &QuantumReport {
        self.begin_report();
        self.advance_inner(scheduler);
        self.finish_report()
    }

    /// Advance until virtual time reaches at least `target` (or all
    /// work completes), returning one merged [`QuantumReport`] for the
    /// whole span. A single event (e.g. an idle fast-forward to a far
    /// release) may overshoot `target`, exactly as repeated unit
    /// steps would.
    pub fn run_until(&mut self, target: Time, scheduler: &mut dyn Scheduler) -> &QuantumReport {
        self.begin_report();
        while self.remaining > 0 && self.t < target {
            self.advance_inner(scheduler);
        }
        self.finish_report()
    }

    /// The next *scheduled* event time: the earliest step at which the
    /// engine must consult the scheduler or activate an arrival.
    /// `None` when no work remains. Task completions are not
    /// predictable in the non-clairvoyant model — they are discovered
    /// (and reported) by advancing.
    pub fn next_event(&self) -> Option<Time> {
        if self.remaining == 0 {
            return None;
        }
        if self.active.is_empty() {
            // The next event is the activation step of the earliest
            // pending arrival (after any idle fast-forward).
            let r = self.jobs[self.order[self.next_arrival]].release;
            return Some(r.max(self.t) + 1);
        }
        Some(self.plain_horizon().max(self.t + 1))
    }

    /// Reset the report accumulators for a fresh `advance`/`run_until`
    /// call. `busy`/`idle` temporarily hold the starting counters;
    /// `finish_report` converts them to deltas.
    fn begin_report(&mut self) {
        self.report.from = self.t;
        self.report.to = self.t;
        self.report.decided = false;
        self.report.completed.clear();
        self.report.busy = self.busy_steps;
        self.report.idle = self.idle_steps;
    }

    fn finish_report(&mut self) -> &QuantumReport {
        self.report.to = self.t;
        self.report.busy = self.busy_steps - self.report.busy;
        self.report.idle = self.idle_steps - self.report.idle;
        self.report.allotted.clear();
        self.report
            .allotted
            .extend_from_slice(&self.allotted_totals);
        self.report.time_policy = self.cfg.time_policy;
        &self.report
    }

    /// One event step, plus (event-driven only) the batched plain
    /// steps up to the next event horizon.
    fn advance_inner(&mut self, scheduler: &mut dyn Scheduler) {
        if self.step_once(scheduler) {
            self.report.decided = true;
        }
        if self.cfg.time_policy == TimePolicy::EventDriven {
            while self.remaining > 0 && !self.active.is_empty() {
                let horizon = self.plain_horizon();
                if self.t + 1 >= horizon {
                    break;
                }
                self.run_plain_segment(horizon - 1 - self.t, scheduler);
            }
        }
    }

    /// First step index that is *not* plain: the next decision
    /// boundary or the activation step of the next pending arrival.
    /// Steps strictly before the horizon change no frozen state and
    /// admit no arrivals, so they may be batched.
    fn plain_horizon(&self) -> Time {
        let activation = match self.order.get(self.next_arrival) {
            Some(&j) => self.jobs[j].release + 1,
            None => Time::MAX,
        };
        self.next_decision.min(activation)
    }

    /// Execute up to `n` plain steps (no decision, no arrival) in one
    /// batched pass. May stop early when the active set empties; every
    /// state transition, panic, telemetry event, and trace record is
    /// bit-for-bit what `n` unit steps would have produced.
    fn run_plain_segment(&mut self, n: u64, scheduler: &mut dyn Scheduler) {
        debug_assert!(n > 0 && !self.active.is_empty());
        let lap = self.cfg.spans.start();
        let k = self.k;
        let observed = self.cfg.record_trace || self.cfg.record_schedule || self.tel.is_enabled();
        // A job that executes zero tasks on a plain step can never
        // execute again before the next decision: its allotment row is
        // frozen and its ready pools only grow through its own
        // executions. So the live set starts as the active jobs with a
        // nonzero frozen row and only ever shrinks.
        self.seg_live.clear();
        for &idx in &self.active {
            if self.frozen_set[idx] && self.frozen[idx * k..(idx + 1) * k].iter().any(|&a| a > 0) {
                self.seg_live.push(idx);
            }
        }
        self.recompute_allotted_totals();
        let mut left = n;
        while left > 0 && self.remaining > 0 && !self.active.is_empty() {
            if self.seg_live.is_empty() {
                // Nothing can execute until the horizon: O(1) jump.
                self.bulk_idle_active_steps(left, scheduler, observed);
                break;
            }
            if !observed && self.seg_live.len() == 1 {
                // Single live job, no per-step observers: hand the
                // whole remaining segment to the batched kdag run.
                // Any drained co-active jobs draw no RNG and record
                // nothing, so skipping them is observationally exact.
                let idx = self.seg_live[0];
                let cap = left.min(self.cfg.max_steps.saturating_sub(self.t));
                if cap == 0 {
                    self.t += 1;
                    panic!(
                        "simulation exceeded max_steps={} under scheduler '{}'",
                        self.cfg.max_steps,
                        scheduler.name()
                    );
                }
                let row = idx * k..(idx + 1) * k;
                self.executed_buf.fill(0);
                let rep = self.states[idx].execute_run(
                    &self.jobs[idx].dag,
                    &self.frozen[row.clone()],
                    cap,
                    &mut self.rng,
                    &mut self.executed_buf,
                );
                self.t += rep.steps;
                self.busy_steps += rep.steps;
                if rep.steps > 0 {
                    self.stalled = 0;
                }
                left -= rep.steps;
                for (tot, &e) in self.executed_by_category.iter_mut().zip(&self.executed_buf) {
                    *tot += u64::from(e);
                }
                if self.feedback_delta.is_some() && self.usage_init[idx] {
                    for (u, &e) in self.usage[row].iter_mut().zip(&self.executed_buf) {
                        *u += u64::from(e);
                    }
                }
                for (tot, &a) in self
                    .allotted_by_category
                    .iter_mut()
                    .zip(&self.allotted_totals)
                {
                    *tot += u64::from(a) * rep.steps;
                }
                if rep.completed {
                    self.complete_job(idx, scheduler);
                    self.seg_live.clear();
                    self.active.retain(|&x| x != idx);
                    self.recompute_allotted_totals();
                } else if rep.steps < cap {
                    // Drained: the next step executes nothing, forever
                    // within this quantum.
                    self.seg_live.clear();
                } else if left > 0 {
                    // `cap` was the max_steps allowance, not the
                    // horizon: the next step trips the cap.
                    self.t += 1;
                    panic!(
                        "simulation exceeded max_steps={} under scheduler '{}'",
                        self.cfg.max_steps,
                        scheduler.name()
                    );
                }
                continue;
            }
            self.plain_step_lean(scheduler);
            left -= 1;
        }
        self.cfg.spans.finish(SpanKind::Execute, lap);
    }

    /// One plain step, step-major over the live jobs — used when
    /// per-step observers (trace, schedule, telemetry) are on or more
    /// than one job is live, both of which pin the exact per-step,
    /// per-job order of RNG draws and records.
    fn plain_step_lean(&mut self, scheduler: &mut dyn Scheduler) {
        self.t += 1;
        let t = self.t;
        assert!(
            t <= self.cfg.max_steps,
            "simulation exceeded max_steps={} under scheduler '{}'",
            self.cfg.max_steps,
            scheduler.name()
        );
        let active_before = self.active.len() as u32;
        self.tel.emit(|| TelemetryEvent::StepStart {
            t,
            active_jobs: active_before,
        });
        self.step_executed_totals.fill(0);
        self.proc_counter.fill(0);
        let k = self.k;
        let mut step_total = 0u64;
        let mut any_completed = false;
        let mut w = 0usize;
        for i in 0..self.seg_live.len() {
            let idx = self.seg_live[i];
            let row = idx * k..(idx + 1) * k;
            self.exec_record.clear();
            let rec = self.cfg.record_schedule.then_some(&mut self.exec_record);
            let n = self.states[idx].execute_step(
                &self.jobs[idx].dag,
                &self.frozen[row.clone()],
                &mut self.rng,
                &mut self.executed_buf,
                rec,
            );
            step_total += n;
            if self.job_events {
                if n > 0 {
                    if self.seg_tasks[idx] == 0 {
                        self.seg_from[idx] = t;
                    }
                    self.seg_tasks[idx] += n;
                } else if self.seg_tasks[idx] > 0 {
                    // Drained mid-quantum: the segment ended last step.
                    let (from, tasks) = (self.seg_from[idx], self.seg_tasks[idx]);
                    self.seg_tasks[idx] = 0;
                    self.tel.emit(|| TelemetryEvent::JobExecSegment {
                        job: idx as u32,
                        from,
                        to: t - 1,
                        tasks,
                    });
                }
            }
            for (tot, &e) in self
                .step_executed_totals
                .iter_mut()
                .zip(self.executed_buf.iter())
            {
                *tot += e;
            }
            if self.feedback_delta.is_some() && self.usage_init[idx] {
                for (u, &e) in self.usage[row].iter_mut().zip(self.executed_buf.iter()) {
                    *u += u64::from(e);
                }
            }
            for &(cat, task) in &self.exec_record {
                let p = &mut self.proc_counter[cat.index()];
                self.schedule.records.push(ExecRecord {
                    job: JobId(idx as u32),
                    task,
                    t,
                    category: cat,
                    processor: *p,
                });
                *p += 1;
            }
            if self.states[idx].is_complete() {
                any_completed = true;
                self.complete_job(idx, scheduler);
            } else if n > 0 {
                self.seg_live[w] = idx;
                w += 1;
            }
            // `n == 0` without completion: drained, drop from the live
            // set (skipped by not writing back).
        }
        self.seg_live.truncate(w);
        for (tot, &e) in self
            .executed_by_category
            .iter_mut()
            .zip(&self.step_executed_totals)
        {
            *tot += u64::from(e);
        }
        for (tot, &a) in self
            .allotted_by_category
            .iter_mut()
            .zip(&self.allotted_totals)
        {
            *tot += u64::from(a);
        }
        if any_completed {
            let states = &self.states;
            self.active.retain(|&idx| !states[idx].is_complete());
        }
        self.busy_steps += 1;
        if step_total == 0 && self.remaining > 0 {
            self.stalled += 1;
            assert!(
                self.stalled <= self.cfg.stall_limit,
                "scheduler '{}' stalled for {} consecutive steps at t={t}",
                scheduler.name(),
                self.stalled
            );
        } else {
            self.stalled = 0;
        }
        self.tel.emit(|| TelemetryEvent::StepEnd {
            t,
            allotted: self.allotted_totals.clone(),
            executed: self.step_executed_totals.clone(),
        });
        if self.cfg.record_trace {
            self.trace.push(StepTrace {
                t,
                active_jobs: (self.active.len() + usize::from(any_completed)) as u32,
                allotted: self.allotted_totals.clone(),
                executed: self.step_executed_totals.clone(),
            });
        }
        if any_completed {
            self.recompute_allotted_totals();
        }
    }

    /// Account `m` plain steps on which every active job is drained —
    /// state-wise an O(1) jump, with per-step telemetry/trace emitted
    /// only when observers are on, and the unit stepper's stall/cap
    /// panics reproduced at their exact times.
    fn bulk_idle_active_steps(&mut self, m: u64, scheduler: &mut dyn Scheduler, observed: bool) {
        debug_assert!(self.remaining > 0 && !self.active.is_empty());
        // Steps that pass each per-step assert: `max_ok` more steps
        // keep `t <= max_steps`; `stall_ok` more keep the stall counter
        // within the limit.
        let max_ok = self.cfg.max_steps.saturating_sub(self.t);
        let stall_ok = self.cfg.stall_limit.saturating_sub(self.stalled);
        if m <= max_ok && m <= stall_ok {
            self.apply_zero_steps(m, observed);
            return;
        }
        if max_ok <= stall_ok {
            // The step cap trips first: it asserts immediately after
            // the time increment, before any accounting.
            self.apply_zero_steps(max_ok.min(m), observed);
            self.t += 1;
            panic!(
                "simulation exceeded max_steps={} under scheduler '{}'",
                self.cfg.max_steps,
                scheduler.name()
            );
        }
        // The stall limit trips first: the failing step completes its
        // accounting before the assert, exactly like the unit stepper.
        self.apply_zero_steps(stall_ok + 1, observed);
        panic!(
            "scheduler '{}' stalled for {} consecutive steps at t={}",
            scheduler.name(),
            self.stalled,
            self.t
        );
    }

    /// Pure accounting for `m` zero-execution steps (no asserts).
    fn apply_zero_steps(&mut self, m: u64, observed: bool) {
        if m == 0 {
            return;
        }
        let t0 = self.t;
        self.t += m;
        self.busy_steps += m;
        self.stalled += m;
        for (tot, &a) in self
            .allotted_by_category
            .iter_mut()
            .zip(&self.allotted_totals)
        {
            *tot += u64::from(a) * m;
        }
        if observed {
            let active_jobs = self.active.len() as u32;
            for t in t0 + 1..=t0 + m {
                self.tel
                    .emit(|| TelemetryEvent::StepStart { t, active_jobs });
                self.tel.emit(|| TelemetryEvent::StepEnd {
                    t,
                    allotted: self.allotted_totals.clone(),
                    executed: vec![0; self.k],
                });
                if self.cfg.record_trace {
                    self.trace.push(StepTrace {
                        t,
                        active_jobs,
                        allotted: self.allotted_totals.clone(),
                        executed: vec![0; self.k],
                    });
                }
            }
        }
    }

    /// Shared completion bookkeeping for the batched paths (the unit
    /// stepper inlines the same sequence). Does *not* remove the job
    /// from `active`/`seg_live` — callers own those structures.
    fn complete_job(&mut self, idx: usize, scheduler: &mut dyn Scheduler) {
        let t = self.t;
        self.completions[idx] = t;
        scheduler.on_completion(JobId(idx as u32), t);
        if self.job_events && self.seg_tasks[idx] > 0 {
            let (from, tasks) = (self.seg_from[idx], self.seg_tasks[idx]);
            self.seg_tasks[idx] = 0;
            self.tel.emit(|| TelemetryEvent::JobExecSegment {
                job: idx as u32,
                from,
                to: t,
                tasks,
            });
        }
        let release = self.jobs[idx].release;
        self.tel.emit(|| TelemetryEvent::JobCompleted {
            t,
            job: idx as u32,
            response: t - release,
        });
        self.remaining -= 1;
        self.frozen_set[idx] = false;
        if self.feedback_delta.is_some() {
            self.est_set[idx] = false;
        }
        self.report.completed.push((idx, t));
    }

    /// Rebuild the per-category allotment totals from the frozen rows
    /// of the active jobs (what the unit stepper computes per
    /// non-decision step).
    fn recompute_allotted_totals(&mut self) {
        let k = self.k;
        self.allotted_totals.fill(0);
        for &idx in &self.active {
            if self.frozen_set[idx] {
                for (tot, &a) in self
                    .allotted_totals
                    .iter_mut()
                    .zip(&self.frozen[idx * k..(idx + 1) * k])
                {
                    *tot += a;
                }
            }
        }
    }

    /// Consume the engine and produce the standard [`SimOutcome`]
    /// (attributed to `scheduler_name`). Normally called once all work
    /// is done, but a partial outcome mid-run is well-formed too —
    /// incomplete jobs simply carry completion time 0.
    pub fn into_outcome(self, scheduler_name: &str) -> SimOutcome {
        SimOutcome {
            scheduler: scheduler_name.to_string(),
            makespan: self.t,
            releases: self.jobs.iter().map(|j| j.release).collect(),
            completions: self.completions,
            executed_by_category: self.executed_by_category,
            allotted_by_category: self.allotted_by_category,
            busy_steps: self.busy_steps,
            idle_steps: self.idle_steps,
            preemptions: self.preemptions,
            trace: self.cfg.record_trace.then_some(self.trace),
            schedule: self.cfg.record_schedule.then_some(self.schedule),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use kdag::DagBuilder;

    /// Gives every job its full desire, clamped to capacity.
    struct GreedyAll;
    impl Scheduler for GreedyAll {
        fn name(&self) -> &str {
            "greedy-all"
        }
        fn allot(
            &mut self,
            _t: Time,
            views: &[JobView<'_>],
            res: &Resources,
            out: &mut AllotmentMatrix,
        ) {
            for cat in Category::all(res.k()) {
                let mut left = res.processors(cat);
                for (slot, v) in views.iter().enumerate() {
                    let a = v.desire(cat).min(left);
                    out.set(slot, cat, a);
                    left -= a;
                    if left == 0 {
                        break;
                    }
                }
            }
        }
    }

    fn diamond() -> kdag::JobDag {
        let mut b = DagBuilder::new(2);
        let a = b.add_task(Category(0));
        let x = b.add_task(Category(1));
        let y = b.add_task(Category(1));
        let z = b.add_task(Category(0));
        b.add_edge(a, x).unwrap();
        b.add_edge(a, y).unwrap();
        b.add_edge(x, z).unwrap();
        b.add_edge(y, z).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn live_injection_matches_batch_simulation() {
        // Inject jobs online exactly at their release times; the
        // outcome must equal the batch run given the same specs.
        let releases = [0u64, 0, 3, 7, 7, 20];
        let jobs: Vec<JobSpec> = releases
            .iter()
            .map(|&r| JobSpec::released(diamond(), r))
            .collect();
        let res = Resources::uniform(2, 2);
        let cfg = SimConfig::default().with_quantum(3);

        let batch = simulate(&mut GreedyAll, &jobs, &res, &cfg);

        let mut live = LiveSimulation::new(res, cfg).unwrap();
        let mut sched = GreedyAll;
        let mut next = 0usize;
        loop {
            while next < jobs.len() && jobs[next].release <= live.now() {
                live.inject(jobs[next].clone()).unwrap();
                next += 1;
            }
            if !live.has_work() {
                if next >= jobs.len() {
                    break;
                }
                // Idle at the service layer: the next arrival defines
                // the new virtual time, exactly like the batch
                // fast-forward.
                live.inject(jobs[next].clone()).unwrap();
                next += 1;
                continue;
            }
            live.advance(&mut sched);
        }
        let online = live.into_outcome("greedy-all");
        assert_eq!(online.completions, batch.completions);
        assert_eq!(online.makespan, batch.makespan);
        assert_eq!(online.executed_by_category, batch.executed_by_category);
        assert_eq!(online.preemptions, batch.preemptions);
        assert_eq!(online.busy_steps, batch.busy_steps);
        assert_eq!(online.idle_steps, batch.idle_steps);
    }

    #[test]
    fn advance_reports_completions_and_time() {
        let mut live = LiveSimulation::new(Resources::uniform(2, 4), SimConfig::default()).unwrap();
        live.inject(JobSpec::batched(diamond())).unwrap();
        live.inject(JobSpec::released(diamond(), 10)).unwrap();
        let mut sched = GreedyAll;
        let mut done = Vec::new();
        let mut idle = 0u64;
        while live.has_work() {
            let report = live.advance(&mut sched).clone();
            assert_eq!(report.to, live.now());
            assert!(report.to > report.from);
            assert_eq!(report.time_policy, TimePolicy::UnitStep);
            idle += report.idle;
            done.extend(report.completed_jobs());
        }
        assert_eq!(done, vec![0, 1]);
        assert_eq!(live.completion(0), Some(3));
        assert_eq!(live.completion(1), Some(13));
        assert_eq!(idle, 7, "gap between t=3 and release 10");
    }

    #[test]
    fn next_event_and_run_until_walk_the_horizon() {
        let cfg = SimConfig::builder()
            .quantum(5)
            .time_policy(TimePolicy::EventDriven)
            .build();
        let mut live = LiveSimulation::new(Resources::uniform(1, 2), cfg).unwrap();
        let flat = |n: usize| {
            let mut b = DagBuilder::new(1);
            b.add_tasks(Category(0), n);
            b.build().unwrap()
        };
        live.inject(JobSpec::batched(flat(20))).unwrap();
        live.inject(JobSpec::released(flat(2), 2)).unwrap();
        // Before any step: the first event is step 1 (activation).
        assert_eq!(live.next_event(), Some(1));
        let report = live.advance(&mut GreedyAll);
        // Decision at t=1 froze allotments until t=6; job 1 activates
        // at step 3, so the first advance batches steps 1..=2.
        assert!(report.decided);
        assert_eq!((report.from, report.to), (0, 2));
        assert_eq!(live.next_event(), Some(3));
        // run_until pushes through activation + boundary events.
        let report = live.run_until(7, &mut GreedyAll);
        assert_eq!(report.from, 2);
        assert!(report.to >= 7);
        assert!(report.decided, "boundary at t=6 falls in this span");
        assert_eq!(live.next_event(), Some(11), "next boundary after t=6");
        while live.has_work() {
            live.advance(&mut GreedyAll);
        }
        assert_eq!(live.next_event(), None);
        let o = live.into_outcome("greedy-all");
        // 22 tasks on 2 processors, serialized by the shared category.
        assert_eq!(o.busy_steps, 11);
    }

    #[test]
    fn inject_rejects_past_releases_and_k_mismatch() {
        let mut live = LiveSimulation::new(Resources::uniform(2, 4), SimConfig::default()).unwrap();
        live.inject(JobSpec::batched(diamond())).unwrap();
        let mut sched = GreedyAll;
        live.advance(&mut sched);
        assert_eq!(
            live.inject(JobSpec::batched(diamond())).unwrap_err(),
            InjectError::ReleaseInPast { release: 0, now: 1 }
        );
        let mut b = DagBuilder::new(3);
        b.add_task(Category(0));
        let err = live
            .inject(JobSpec::released(b.build().unwrap(), 5))
            .unwrap_err();
        assert!(matches!(err, InjectError::CategoryMismatch { job: 1, .. }));
        assert!(err.to_string().contains("categories but machine"));
    }

    #[test]
    fn spans_and_live_gauge_accessors_track_the_run() {
        use ktelemetry::{MetricsRegistry, SpanRecorder};
        let reg = MetricsRegistry::new();
        let cfg = SimConfig::default().with_spans(SpanRecorder::for_registry(&reg));
        let mut live = LiveSimulation::new(Resources::uniform(2, 2), cfg.clone()).unwrap();
        live.inject(JobSpec::batched(diamond())).unwrap();

        let mut desires = Vec::new();
        live.desire_totals_into(&mut desires);
        assert_eq!(desires, vec![0, 0], "nothing active before the first step");
        assert_eq!(live.last_allotted(), &[0, 0]);

        let mut sched = GreedyAll;
        live.advance(&mut sched);
        // After step 1 the diamond's root ran: one category-0 task.
        assert_eq!(live.executed_by_category(), &[1, 0]);
        assert!(live.last_allotted()[0] >= 1);
        live.desire_totals_into(&mut desires);
        assert_eq!(desires, vec![0, 2], "both middle tasks are now ready");

        while live.has_work() {
            live.advance(&mut sched);
        }
        // Quantum 1 → one decision per busy step (3 for the diamond).
        assert_eq!(cfg.spans.count(SpanKind::Decide), 3);
        // The lap chain times ready/execute on *every* busy step.
        assert_eq!(cfg.spans.count(SpanKind::Ready), 3);
        assert_eq!(cfg.spans.count(SpanKind::Execute), 3);
        assert!(reg
            .render()
            .contains("krad_span_duration_us_count{span=\"decide\"} 3"));
        assert_eq!(live.executed_by_category(), &[2, 2]);
        assert_eq!(live.allotted_by_category(), &[2, 2]);
    }

    #[test]
    fn zero_quantum_is_rejected() {
        let cfg = SimConfig::default().with_quantum(0);
        assert!(matches!(
            LiveSimulation::new(Resources::uniform(1, 1), cfg),
            Err(BuildError::ZeroQuantum)
        ));
    }

    #[test]
    fn trace_events_are_policy_invariant_and_well_formed() {
        use ktelemetry::assemble_traces;
        // Staggered releases exercise idle fast-forwards, mid-quantum
        // arrivals, and drained jobs in both clock modes.
        let releases = [0u64, 0, 3, 7, 20];
        let jobs: Vec<JobSpec> = releases
            .iter()
            .map(|&r| JobSpec::released(diamond(), r))
            .collect();
        let res = Resources::uniform(2, 2);
        let mut streams = Vec::new();
        for policy in [TimePolicy::UnitStep, TimePolicy::EventDriven] {
            let (tel, rec) = ktelemetry::TelemetryHandle::recording();
            let cfg = SimConfig::default()
                .with_quantum(3)
                .with_time_policy(policy)
                .with_telemetry(tel);
            simulate(&mut GreedyAll, &jobs, &res, &cfg);
            streams.push(rec.lock().unwrap().take());
        }
        assert_eq!(
            streams[0], streams[1],
            "telemetry streams must be identical under both clock modes"
        );
        let traces = assemble_traces(&streams[0]);
        assert_eq!(traces.len(), jobs.len());
        for tr in &traces {
            // The diamond has four tasks.
            tr.well_formed(4)
                .unwrap_or_else(|e| panic!("job {}: {e}", tr.job));
        }
    }

    #[test]
    fn late_injection_while_running_matches_batch() {
        // A job injected mid-run (release = now) must behave exactly
        // like a batch job with that release.
        let res = Resources::uniform(1, 2);
        let flat = |n: usize| {
            let mut b = DagBuilder::new(1);
            b.add_tasks(Category(0), n);
            b.build().unwrap()
        };
        let cfg = SimConfig::default().with_quantum(2);

        let mut live = LiveSimulation::new(res.clone(), cfg.clone()).unwrap();
        let mut sched = GreedyAll;
        live.inject(JobSpec::batched(flat(8))).unwrap();
        let mut injected_second = None;
        while live.has_work() {
            live.advance(&mut sched);
            if live.now() == 2 && injected_second.is_none() {
                let r = live.now();
                live.inject(JobSpec::released(flat(4), r)).unwrap();
                injected_second = Some(r);
            }
        }
        let online = live.into_outcome("greedy-all");

        let jobs = vec![
            JobSpec::batched(flat(8)),
            JobSpec::released(flat(4), injected_second.unwrap()),
        ];
        let batch = simulate(&mut GreedyAll, &jobs, &res, &cfg);
        assert_eq!(online.completions, batch.completions);
        assert_eq!(online.makespan, batch.makespan);
    }
}
