//! The non-clairvoyant view of a job.

use crate::Time;
use kdag::{Category, JobId};

/// What a non-clairvoyant scheduler is allowed to see about a job at a
/// time step: its identity, its (already public) release time, and its
/// instantaneous per-category desires `d(Ji, α, t)`.
///
/// Deliberately *not* present: the job's DAG, total work, span, or any
/// future parallelism — the paper's schedulers must work without them.
#[derive(Clone, Copy, Debug)]
pub struct JobView<'a> {
    /// The job's identity (stable across steps).
    pub id: JobId,
    /// When the job was released (≤ current time).
    pub release: Time,
    /// `desires[α]` = number of ready `α`-tasks at this step.
    pub desires: &'a [u32],
}

impl JobView<'_> {
    /// The job's desire for one category.
    #[inline]
    pub fn desire(&self, cat: Category) -> u32 {
        self.desires[cat.index()]
    }

    /// `true` if the job is `α`-active (has at least one ready α-task).
    #[inline]
    pub fn is_active(&self, cat: Category) -> bool {
        self.desire(cat) > 0
    }

    /// Total desire across categories (≥ 1 for any uncompleted job).
    pub fn total_desire(&self) -> u64 {
        self.desires.iter().map(|&d| u64::from(d)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_accessors() {
        let d = [0u32, 3, 1];
        let v = JobView {
            id: JobId(5),
            release: 2,
            desires: &d,
        };
        assert_eq!(v.desire(Category(1)), 3);
        assert!(!v.is_active(Category(0)));
        assert!(v.is_active(Category(2)));
        assert_eq!(v.total_desire(), 4);
    }
}
