//! Per-step simulation traces.

use crate::Time;
use serde::{Deserialize, Serialize};

/// Aggregated record of one simulated time step.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepTrace {
    /// 1-based step index.
    pub t: Time,
    /// Number of active (released, uncompleted) jobs during the step.
    pub active_jobs: u32,
    /// Processors allotted per category (what the scheduler asked for).
    pub allotted: Vec<u32>,
    /// Tasks actually executed per category (`min(allotment, desire)`
    /// summed over jobs) — the difference from `allotted` is waste.
    pub executed: Vec<u32>,
}

impl StepTrace {
    /// Total tasks executed across categories during this step.
    pub fn total_executed(&self) -> u64 {
        self.executed.iter().map(|&x| u64::from(x)).sum()
    }

    /// Total allotment waste this step (allotted but not executed).
    pub fn total_waste(&self) -> u64 {
        self.waste_by_category().into_iter().sum()
    }

    /// Per-category allotment waste this step: `allotted[α] −
    /// executed[α]`. The aggregate [`StepTrace::total_waste`] loses
    /// the per-category signal the paper's `Pα` analysis needs.
    pub fn waste_by_category(&self) -> Vec<u64> {
        self.allotted
            .iter()
            .zip(&self.executed)
            .map(|(&a, &e)| u64::from(a.saturating_sub(e)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_waste() {
        let s = StepTrace {
            t: 3,
            active_jobs: 2,
            allotted: vec![4, 2],
            executed: vec![3, 2],
        };
        assert_eq!(s.total_executed(), 5);
        assert_eq!(s.total_waste(), 1);
    }

    #[test]
    fn waste_by_category_keeps_the_per_alpha_signal() {
        let s = StepTrace {
            t: 1,
            active_jobs: 1,
            allotted: vec![4, 2, 7],
            executed: vec![1, 2, 4],
        };
        assert_eq!(s.waste_by_category(), vec![3, 0, 3]);
        assert_eq!(s.total_waste(), 6);
    }
}
