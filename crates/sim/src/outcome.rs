//! Simulation results and derived metrics.

use crate::checker::RecordedSchedule;
use crate::{Resources, StepTrace, Time};
use kdag::Category;
use serde::{Deserialize, Serialize};

/// The result of simulating one job set under one scheduler.
///
/// Job-indexed vectors (`releases`, `completions`) follow the order of
/// the `JobSpec` slice given to [`crate::simulate`]. Serializes to
/// JSON for tooling (`krad simulate --json FILE`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimOutcome {
    /// The scheduler's [`crate::Scheduler::name`].
    pub scheduler: String,
    /// The makespan `T(J)`: the step at which the last job completed.
    pub makespan: Time,
    /// Release time `r(Ji)` of each job (copied from the specs).
    pub releases: Vec<Time>,
    /// Completion time `T(Ji)` of each job.
    pub completions: Vec<Time>,
    /// Total tasks executed per category (= `T1(J, α)` on success).
    pub executed_by_category: Vec<u64>,
    /// Total processor-steps allotted per category. The difference
    /// from `executed_by_category` is *waste*: allotments a job could
    /// not use (possible under EQUI's desire-blind shares, frozen
    /// quanta, or A-Greedy over-estimates; zero for desire-capped
    /// per-step schedulers).
    pub allotted_by_category: Vec<u64>,
    /// Steps that were actually simulated (some job active).
    pub busy_steps: u64,
    /// Steps skipped in idle intervals (no active job, arrivals
    /// pending). They still count toward completion times.
    pub idle_steps: u64,
    /// Preemption volume: total processor units withdrawn from jobs
    /// that remained active (allotment decreases between consecutive
    /// steps, summed over jobs and categories). A proxy for
    /// context-switch cost: time-sharing schedulers (RR) reassign
    /// processors every step; space-sharing ones (DEQ) rarely do.
    pub preemptions: u64,
    /// Per-step traces if requested in the config.
    pub trace: Option<Vec<StepTrace>>,
    /// Full schedule `χ` if requested in the config.
    pub schedule: Option<RecordedSchedule>,
}

impl SimOutcome {
    /// Number of jobs.
    pub fn job_count(&self) -> usize {
        self.completions.len()
    }

    /// The response time `R(Ji) = T(Ji) − r(Ji)` of job `i`.
    pub fn response(&self, i: usize) -> Time {
        self.completions[i] - self.releases[i]
    }

    /// Total response time `R(J) = Σ R(Ji)`.
    pub fn total_response(&self) -> u64 {
        (0..self.job_count()).map(|i| self.response(i)).sum()
    }

    /// Mean response time `R̄(J) = R(J) / |J|`.
    pub fn mean_response(&self) -> f64 {
        self.total_response() as f64 / self.job_count() as f64
    }

    /// Maximum response time over all jobs.
    pub fn max_response(&self) -> Time {
        (0..self.job_count())
            .map(|i| self.response(i))
            .max()
            .unwrap_or(0)
    }

    /// Utilization of one category over the busy portion of the run:
    /// tasks executed divided by `Pα · busy_steps`.
    pub fn utilization(&self, cat: Category, res: &Resources) -> f64 {
        if self.busy_steps == 0 {
            return 0.0;
        }
        self.executed_by_category[cat.index()] as f64
            / (f64::from(res.processors(cat)) * self.busy_steps as f64)
    }

    /// Total tasks executed across all categories.
    pub fn total_executed(&self) -> u64 {
        self.executed_by_category.iter().sum()
    }

    /// Total allotment waste: processor-steps granted but unused.
    pub fn total_waste(&self) -> u64 {
        self.allotted_by_category
            .iter()
            .zip(&self.executed_by_category)
            .map(|(&a, &e)| a.saturating_sub(e))
            .sum()
    }

    /// Waste as a fraction of everything allotted (0 when nothing was
    /// allotted).
    pub fn waste_fraction(&self) -> f64 {
        let allotted: u64 = self.allotted_by_category.iter().sum();
        if allotted == 0 {
            0.0
        } else {
            self.total_waste() as f64 / allotted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> SimOutcome {
        SimOutcome {
            scheduler: "test".into(),
            makespan: 10,
            releases: vec![0, 2, 4],
            completions: vec![5, 10, 6],
            executed_by_category: vec![12, 6],
            allotted_by_category: vec![14, 6],
            busy_steps: 9,
            idle_steps: 1,
            preemptions: 0,
            trace: None,
            schedule: None,
        }
    }

    #[test]
    fn response_metrics() {
        let o = outcome();
        assert_eq!(o.response(0), 5);
        assert_eq!(o.response(1), 8);
        assert_eq!(o.response(2), 2);
        assert_eq!(o.total_response(), 15);
        assert!((o.mean_response() - 5.0).abs() < 1e-12);
        assert_eq!(o.max_response(), 8);
    }

    #[test]
    fn utilization_math() {
        let o = outcome();
        let res = Resources::new(vec![2, 4]);
        // 12 tasks / (2 procs * 9 steps).
        assert!((o.utilization(Category(0), &res) - 12.0 / 18.0).abs() < 1e-12);
        assert_eq!(o.total_executed(), 18);
    }

    #[test]
    fn waste_accounting() {
        let o = outcome();
        assert_eq!(o.total_waste(), 2);
        assert!((o.waste_fraction() - 2.0 / 20.0).abs() < 1e-12);
    }
}
