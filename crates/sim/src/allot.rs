//! Allotment matrices: the scheduler's per-step decision.

use kdag::Category;

/// A dense `jobs × K` matrix of processor allotments `a(Ji, α, t)`,
/// row-indexed by the job's *slot* (its position in the `&[JobView]`
/// slice passed to the scheduler this step).
///
/// The engine clears the matrix before each [`crate::Scheduler::allot`]
/// call; schedulers only write the entries they want non-zero.
#[derive(Clone, Debug)]
pub struct AllotmentMatrix {
    k: usize,
    rows: usize,
    data: Vec<u32>,
}

impl AllotmentMatrix {
    /// Create an empty matrix for `k` categories.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        AllotmentMatrix {
            k,
            rows: 0,
            data: Vec::new(),
        }
    }

    /// Number of categories `K`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of job slots in the current step.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Resize for `rows` jobs and zero every entry.
    pub fn reset(&mut self, rows: usize) {
        self.rows = rows;
        self.data.clear();
        self.data.resize(rows * self.k, 0);
    }

    /// Set the allotment of job slot `slot` for category `cat`.
    #[inline]
    pub fn set(&mut self, slot: usize, cat: Category, value: u32) {
        self.data[slot * self.k + cat.index()] = value;
    }

    /// Add to the allotment of job slot `slot` for category `cat`.
    #[inline]
    pub fn add(&mut self, slot: usize, cat: Category, value: u32) {
        self.data[slot * self.k + cat.index()] += value;
    }

    /// The allotment of job slot `slot` for category `cat`.
    #[inline]
    pub fn get(&self, slot: usize, cat: Category) -> u32 {
        self.data[slot * self.k + cat.index()]
    }

    /// The full allotment row of a job slot (indexed by category).
    #[inline]
    pub fn row(&self, slot: usize) -> &[u32] {
        &self.data[slot * self.k..(slot + 1) * self.k]
    }

    /// Total allotment of one category across all job slots.
    pub fn category_total(&self, cat: Category) -> u64 {
        (0..self.rows)
            .map(|s| u64::from(self.data[s * self.k + cat.index()]))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_row() {
        let mut m = AllotmentMatrix::new(3);
        m.reset(2);
        m.set(0, Category(1), 4);
        m.set(1, Category(2), 7);
        m.add(1, Category(2), 1);
        assert_eq!(m.get(0, Category(1)), 4);
        assert_eq!(m.row(1), &[0, 0, 8]);
        assert_eq!(m.category_total(Category(2)), 8);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.k(), 3);
    }

    #[test]
    fn reset_zeroes() {
        let mut m = AllotmentMatrix::new(2);
        m.reset(1);
        m.set(0, Category(0), 9);
        m.reset(3);
        assert_eq!(m.rows(), 3);
        for s in 0..3 {
            assert_eq!(m.row(s), &[0, 0]);
        }
    }
}
