//! The scheduler trait — the non-clairvoyance boundary.

use crate::{AllotmentMatrix, JobView, Resources, Time};
use kdag::JobId;

/// An online, non-clairvoyant K-resource scheduler.
///
/// The engine calls [`Scheduler::allot`] once per time step with the
/// active jobs' [`JobView`]s (instantaneous desires only). The
/// scheduler writes allotments into the provided matrix, subject to the
/// contract:
///
/// * for every category `α`, the total allotment over all jobs must not
///   exceed `Pα` (the engine asserts this);
/// * allotments larger than a job's desire are allowed — the engine
///   executes `min(allotment, desire)` — but the surplus is *wasted*
///   (this is exactly how EQUI differs from DEQ).
///
/// [`Scheduler::on_arrival`] / [`Scheduler::on_completion`] let
/// stateful schedulers (like K-RAD's per-category queues) track the job
/// population without peeking at job internals.
pub trait Scheduler {
    /// Human-readable name used in tables and reports.
    ///
    /// Borrowed from the scheduler: implementations return a constant
    /// (or a string cached at construction) instead of allocating per
    /// call; callers that need ownership convert explicitly.
    fn name(&self) -> &str;

    /// Called when a job becomes available (once, before its first
    /// `allot` exposure), in increasing order of release time.
    fn on_arrival(&mut self, _id: JobId, _t: Time) {}

    /// Called right after a job completes its last task.
    fn on_completion(&mut self, _id: JobId, _t: Time) {}

    /// Decide the allotments for time step `t`.
    ///
    /// `views` lists the active (released, uncompleted) jobs in a
    /// stable order (increasing job id); `out` has been reset to
    /// `views.len()` rows of zeros.
    fn allot(&mut self, t: Time, views: &[JobView<'_>], res: &Resources, out: &mut AllotmentMatrix);
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdag::Category;

    /// A trivial scheduler that gives every job its full desire,
    /// ignoring capacity — used to verify the engine's over-allotment
    /// assertion elsewhere; here we just exercise the trait object.
    struct GreedyInfinite;

    impl Scheduler for GreedyInfinite {
        fn name(&self) -> &str {
            "greedy-infinite"
        }
        fn allot(
            &mut self,
            _t: Time,
            views: &[JobView<'_>],
            res: &Resources,
            out: &mut AllotmentMatrix,
        ) {
            for (slot, v) in views.iter().enumerate() {
                for cat in Category::all(res.k()) {
                    out.set(slot, cat, v.desire(cat));
                }
            }
        }
    }

    #[test]
    fn trait_object_is_usable() {
        let mut s: Box<dyn Scheduler> = Box::new(GreedyInfinite);
        assert_eq!(s.name(), "greedy-infinite");
        let res = Resources::uniform(2, 4);
        let desires = [2u32, 0];
        let views = [JobView {
            id: JobId(0),
            release: 0,
            desires: &desires,
        }];
        let mut out = AllotmentMatrix::new(2);
        out.reset(1);
        s.allot(1, &views, &res, &mut out);
        assert_eq!(out.get(0, Category(0)), 2);
    }
}
