//! The K-resource machine description.

use kdag::Category;
use serde::{Deserialize, Serialize};

/// A K-resource machine: `Pα` processors for each category `α`.
///
/// ```
/// use ksim::Resources;
/// let res = Resources::new(vec![4, 2, 8]);
/// assert_eq!(res.k(), 3);
/// assert_eq!(res.p_max(), 8);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Resources {
    p: Vec<u32>,
}

impl Resources {
    /// Create a machine with the given per-category processor counts.
    ///
    /// # Panics
    /// Panics if `p` is empty or any count is zero (the model requires
    /// at least one processor per category).
    pub fn new(p: Vec<u32>) -> Self {
        assert!(!p.is_empty(), "need at least one category");
        assert!(
            p.iter().all(|&x| x > 0),
            "every category needs ≥ 1 processor"
        );
        Resources { p }
    }

    /// A machine with `k` categories of `p` processors each.
    pub fn uniform(k: usize, p: u32) -> Self {
        Resources::new(vec![p; k])
    }

    /// A machine that combines **functional and performance
    /// heterogeneity** — the open challenge in the paper's conclusion:
    /// category `α` has `p[α]` physical processors, each of integer
    /// speed `s[α]` (tasks per step).
    ///
    /// Because tasks are unit-time, a speed-`s` processor is exactly
    /// equivalent to `s` unit-speed *virtual* processors: it can run
    /// `s` **independent** ready tasks per step, but a dependency chain
    /// still advances only one task per step (successors unlock at the
    /// next step regardless of speed). The returned machine therefore
    /// has `p[α] · s[α]` virtual processors per category, and every
    /// bound in the paper holds with `Pα` replaced by `p[α] · s[α]` —
    /// which experiment T9 validates.
    ///
    /// # Panics
    /// Panics if lengths differ or any speed is zero.
    pub fn with_speeds(p: &[u32], s: &[u32]) -> Self {
        assert_eq!(p.len(), s.len(), "one speed per category");
        assert!(s.iter().all(|&x| x > 0), "speeds must be positive");
        Resources::new(p.iter().zip(s).map(|(&p, &s)| p * s).collect())
    }

    /// The number of categories `K`.
    #[inline]
    pub fn k(&self) -> usize {
        self.p.len()
    }

    /// `Pα`: processors of category `cat`.
    #[inline]
    pub fn processors(&self, cat: Category) -> u32 {
        self.p[cat.index()]
    }

    /// All per-category counts, indexed by category.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.p
    }

    /// `Pmax = maxα Pα`, the constant in the paper's bounds.
    #[inline]
    pub fn p_max(&self) -> u32 {
        *self.p.iter().max().expect("non-empty by construction")
    }

    /// Total processors across all categories.
    pub fn total(&self) -> u64 {
        self.p.iter().map(|&x| u64::from(x)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let r = Resources::new(vec![4, 2, 8]);
        assert_eq!(r.k(), 3);
        assert_eq!(r.processors(Category(1)), 2);
        assert_eq!(r.p_max(), 8);
        assert_eq!(r.total(), 14);
        assert_eq!(r.as_slice(), &[4, 2, 8]);
    }

    #[test]
    fn uniform_machine() {
        let r = Resources::uniform(4, 3);
        assert_eq!(r.k(), 4);
        assert_eq!(r.as_slice(), &[3, 3, 3, 3]);
    }

    #[test]
    fn speeds_become_virtual_processors() {
        // 8 slow CPUs + 2 fast (4x) vector units.
        let r = Resources::with_speeds(&[8, 2], &[1, 4]);
        assert_eq!(r.as_slice(), &[8, 8]);
        assert_eq!(r.p_max(), 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_rejected() {
        Resources::with_speeds(&[4], &[0]);
    }

    #[test]
    #[should_panic(expected = "at least one category")]
    fn empty_rejected() {
        Resources::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "1 processor")]
    fn zero_processors_rejected() {
        Resources::new(vec![4, 0]);
    }
}
