//! The discrete-time simulation engine.

use crate::live::LiveSimulation;
use crate::{Resources, Scheduler, SimOutcome, Time};
use kdag::{JobDag, SelectionPolicy};
use ktelemetry::{SpanRecorder, TelemetryEvent, TelemetryHandle};
use std::sync::Arc;

/// One job to simulate: its DAG and its release time.
///
/// `r(Ji) = release` means the job is available for processing from
/// step `release + 1` (the paper counts `release` elapsed steps before
/// the job exists).
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// The job's K-DAG (shared so workloads can reuse shapes cheaply).
    pub dag: Arc<JobDag>,
    /// Release time; `0` for batched jobs.
    pub release: Time,
}

impl JobSpec {
    /// A batched (release 0) job.
    pub fn batched(dag: JobDag) -> Self {
        JobSpec {
            dag: Arc::new(dag),
            release: 0,
        }
    }

    /// A job released at `release`.
    pub fn released(dag: JobDag, release: Time) -> Self {
        JobSpec {
            dag: Arc::new(dag),
            release,
        }
    }
}

/// How the engine derives the desires it exposes to the scheduler.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DesireModel {
    /// The paper's model: `d(Ji, α, t)` is the exact number of ready
    /// `α`-tasks (instantaneous parallelism).
    Exact,
    /// Two-level adaptive scheduling with **A-Greedy parallelism
    /// feedback** (He/Hsu/Leiserson, the RAD lineage's job-level
    /// scheduler): the job reports a multiplicative *estimate* instead
    /// of its true parallelism. Per step and category, with allotment
    /// `a`, reported desire `d`, and observed usage `u`:
    ///
    /// * deprived (`a < d`): estimate unchanged;
    /// * satisfied and *efficient* (`u ≥ delta · a`): estimate doubles;
    /// * satisfied and *inefficient*: estimate halves (min 1).
    ///
    /// `delta ∈ (0, 1)` is the utilization parameter (typically 0.8).
    /// Under feedback the scheduler may allot processors a job cannot
    /// use (waste) or under-serve a suddenly wide job — experiment T11
    /// measures that cost against the exact-desire baseline.
    AGreedy {
        /// Utilization threshold `δ`.
        delta: f64,
    },
}

/// How the engine's virtual clock advances.
///
/// Both policies produce **bit-for-bit identical** outcomes, traces,
/// schedules, and telemetry streams — `UnitStep` is the oracle the
/// event-driven core is property-tested against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TimePolicy {
    /// One unit-time step per engine iteration: the paper's model,
    /// executed literally. Cost is `O(makespan)` engine iterations.
    #[default]
    UnitStep,
    /// Event-driven clock: each [`crate::LiveSimulation::advance`]
    /// call executes one *event* step (decision boundary, job
    /// activation, or idle fast-forward) and then batches the plain
    /// steps up to the next event horizon in one pass — jobs that
    /// drain under their frozen allotments drop out of the inner loop,
    /// and once nothing can execute the remaining quantum is accounted
    /// in O(1). Cost is proportional to steps on which *something
    /// happens*, which is what makes trace-scale (SWF) runs feasible.
    EventDriven,
}

impl TimePolicy {
    /// Stable wire/CLI label (`"unit"` / `"event"`).
    pub fn label(self) -> &'static str {
        match self {
            TimePolicy::UnitStep => "unit",
            TimePolicy::EventDriven => "event",
        }
    }

    /// Parse a wire/CLI label back into a policy.
    pub fn from_label(s: &str) -> Option<TimePolicy> {
        match s {
            "unit" | "unit-step" => Some(TimePolicy::UnitStep),
            "event" | "event-driven" => Some(TimePolicy::EventDriven),
            _ => None,
        }
    }
}

impl std::fmt::Display for TimePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Engine configuration.
///
/// Non-exhaustive: construct via [`SimConfig::default`] (mutating the
/// public fields) or [`SimConfig::builder`]; future knobs can then be
/// added without breaking callers.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct SimConfig {
    /// Which ready tasks run when a job is deprived (environment side).
    pub policy: SelectionPolicy,
    /// Seed for the [`SelectionPolicy::Random`] policy (unused
    /// otherwise, but kept in the config so runs are reproducible by
    /// value).
    pub seed: u64,
    /// Record per-step [`StepTrace`]s in the outcome.
    pub record_trace: bool,
    /// Record the full schedule `χ` for the [`crate::checker`].
    pub record_schedule: bool,
    /// Abort after this many *consecutive* steps in which active jobs
    /// exist but nothing executes (a stalled/broken scheduler).
    pub stall_limit: u64,
    /// Hard cap on simulated steps (safety net against runaways).
    pub max_steps: u64,
    /// Scheduling quantum `q ≥ 1`: the scheduler is consulted only at
    /// steps `t ≡ 1 (mod q)`; between boundaries allotments stay frozen
    /// (jobs arriving mid-quantum wait; processors of jobs completing
    /// mid-quantum idle until the boundary). `q = 1` is the paper's
    /// per-step model.
    pub quantum: u64,
    /// How desires are derived (exact instantaneous parallelism, or
    /// A-Greedy feedback estimates).
    pub desire_model: DesireModel,
    /// Where the engine emits [`TelemetryEvent`]s (run lifecycle, step
    /// accounting, job release/completion, idle skips). Off by
    /// default: a disabled handle costs one branch per emission site
    /// and never constructs the event.
    pub telemetry: TelemetryHandle,
    /// Span-duration recorder for the quantum loop (`decide` spans are
    /// timed by the engine; schedulers add `deq_allot`/`rr_cycle`).
    /// Off by default: a disabled recorder never reads the clock.
    pub spans: SpanRecorder,
    /// How the virtual clock advances ([`TimePolicy::UnitStep`] by
    /// default). Outcomes are identical either way; `EventDriven`
    /// batches the plain steps between events.
    pub time_policy: TimePolicy,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            policy: SelectionPolicy::Fifo,
            seed: 0,
            record_trace: false,
            record_schedule: false,
            stall_limit: 10_000,
            max_steps: 1_000_000_000,
            quantum: 1,
            desire_model: DesireModel::Exact,
            telemetry: TelemetryHandle::off(),
            spans: SpanRecorder::off(),
            time_policy: TimePolicy::UnitStep,
        }
    }
}

impl SimConfig {
    /// Set the [`SelectionPolicy`] (chainable).
    ///
    /// ```
    /// use kdag::SelectionPolicy;
    /// use ksim::SimConfig;
    /// let cfg = SimConfig::default()
    ///     .with_policy(SelectionPolicy::CriticalLast)
    ///     .with_quantum(4)
    ///     .with_trace(true);
    /// assert_eq!(cfg.quantum, 4);
    /// ```
    pub fn with_policy(mut self, policy: SelectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Set the RNG seed (chainable).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable/disable per-step [`StepTrace`] recording (chainable).
    pub fn with_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Enable/disable full-schedule recording (chainable).
    pub fn with_schedule(mut self, record: bool) -> Self {
        self.record_schedule = record;
        self
    }

    /// Set the stall limit (chainable).
    pub fn with_stall_limit(mut self, limit: u64) -> Self {
        self.stall_limit = limit;
        self
    }

    /// Set the step cap (chainable).
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Set the scheduling quantum `q ≥ 1` (chainable).
    pub fn with_quantum(mut self, quantum: u64) -> Self {
        self.quantum = quantum;
        self
    }

    /// Set the [`DesireModel`] (chainable).
    pub fn with_desire_model(mut self, model: DesireModel) -> Self {
        self.desire_model = model;
        self
    }

    /// Wire a [`TelemetryHandle`] into the engine (chainable).
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Wire a [`SpanRecorder`] into the engine (chainable); the engine
    /// times each scheduler `decide` call under it.
    pub fn with_spans(mut self, spans: SpanRecorder) -> Self {
        self.spans = spans;
        self
    }

    /// Set the [`TimePolicy`] (chainable).
    pub fn with_time_policy(mut self, time_policy: TimePolicy) -> Self {
        self.time_policy = time_policy;
        self
    }

    /// A builder over the default configuration, mirroring
    /// [`crate::Simulation::builder`]'s knob names.
    ///
    /// ```
    /// use ksim::{SimConfig, TimePolicy};
    /// let cfg = SimConfig::builder()
    ///     .quantum(4)
    ///     .time_policy(TimePolicy::EventDriven)
    ///     .record_trace(true)
    ///     .build();
    /// assert_eq!(cfg.quantum, 4);
    /// assert_eq!(cfg.time_policy, TimePolicy::EventDriven);
    /// ```
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            cfg: SimConfig::default(),
        }
    }
}

/// Builder for [`SimConfig`], created by [`SimConfig::builder`].
///
/// Knob names mirror [`crate::SimulationBuilder`]; `build()` is
/// infallible — structural validation (e.g. the `q ≥ 1` contract)
/// happens where the config meets jobs and a machine, exactly as with
/// a field-mutated config.
#[derive(Clone, Debug, Default)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Set the [`SelectionPolicy`].
    pub fn policy(mut self, policy: SelectionPolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Set the scheduling quantum `q ≥ 1`.
    pub fn quantum(mut self, quantum: u64) -> Self {
        self.cfg.quantum = quantum;
        self
    }

    /// Set the [`DesireModel`].
    pub fn desire_model(mut self, model: DesireModel) -> Self {
        self.cfg.desire_model = model;
        self
    }

    /// Enable/disable per-step [`crate::StepTrace`] recording.
    pub fn record_trace(mut self, record: bool) -> Self {
        self.cfg.record_trace = record;
        self
    }

    /// Enable/disable full-schedule recording.
    pub fn record_schedule(mut self, record: bool) -> Self {
        self.cfg.record_schedule = record;
        self
    }

    /// Set the stall limit.
    pub fn stall_limit(mut self, limit: u64) -> Self {
        self.cfg.stall_limit = limit;
        self
    }

    /// Set the step cap.
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.cfg.max_steps = max_steps;
        self
    }

    /// Wire a [`TelemetryHandle`] into the engine.
    pub fn telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.cfg.telemetry = telemetry;
        self
    }

    /// Wire a [`SpanRecorder`] into the engine.
    pub fn spans(mut self, spans: SpanRecorder) -> Self {
        self.cfg.spans = spans;
        self
    }

    /// Set the [`TimePolicy`].
    pub fn time_policy(mut self, time_policy: TimePolicy) -> Self {
        self.cfg.time_policy = time_policy;
        self
    }

    /// Finish the configuration.
    pub fn build(self) -> SimConfig {
        self.cfg
    }
}

/// Simulate `jobs` on machine `res` under `scheduler`.
///
/// ```
/// use kdag::{generators::fork_join, Category};
/// use krad::KRad;
/// use ksim::{simulate, JobSpec, Resources, SimConfig};
/// let jobs = vec![JobSpec::batched(fork_join(2, &[(Category(0), 4), (Category(1), 2)]))];
/// let res = Resources::new(vec![4, 2]);
/// let outcome = simulate(&mut KRad::new(2), &jobs, &res, &SimConfig::default());
/// assert_eq!(outcome.makespan, 2);
/// assert_eq!(outcome.total_executed(), 6);
/// ```
///
/// Runs until every job completes and returns the full
/// [`SimOutcome`]. The engine enforces the scheduler contract and the
/// model invariants:
///
/// * per-category allotments never exceed `Pα` (panics otherwise —
///   that is a scheduler bug, not a data condition);
/// * tasks execute only when ready; successors unlock next step;
/// * idle intervals (no active jobs, future releases pending) are
///   fast-forwarded.
///
/// # Panics
/// Panics if a job's DAG has a different `K` than the machine, if the
/// scheduler over-allots a category, if the scheduler stalls for more
/// than [`SimConfig::stall_limit`] consecutive steps, or if
/// [`SimConfig::max_steps`] is exceeded.
pub fn simulate(
    scheduler: &mut dyn Scheduler,
    jobs: &[JobSpec],
    res: &Resources,
    cfg: &SimConfig,
) -> SimOutcome {
    // Thin shim over the builder-first entry point; new code should use
    // [`crate::Simulation::builder`] directly. Shares the builder's
    // validation but borrows `jobs`/`res` as-is — no clones.
    if let Err(e) = crate::session::validate(jobs, res, cfg) {
        panic!("{e}");
    }
    run_engine(scheduler, jobs, res, cfg)
}

/// The engine proper: one run of `jobs` on `res` under `scheduler`.
///
/// Callers ([`crate::Simulation`] and the [`simulate`] shim) have
/// already validated the job/machine shapes. Since the live-engine
/// refactor this is a thin driver over [`LiveSimulation`] — it injects
/// every job up front and steps to completion, so the batch and online
/// paths execute the *same* step loop (the replay-bridge guarantee the
/// `kserve` daemon relies on). The step loop itself holds flat
/// preallocated state and performs no steady-state heap allocation;
/// see [`crate::live`] for the data-structure notes.
pub(crate) fn run_engine(
    scheduler: &mut dyn Scheduler,
    jobs: &[JobSpec],
    res: &Resources,
    cfg: &SimConfig,
) -> SimOutcome {
    let tel = cfg.telemetry.clone();
    tel.emit(|| TelemetryEvent::RunStart {
        scheduler: scheduler.name().to_string(),
        jobs: jobs.len() as u32,
        categories: res.k() as u16,
    });

    let mut live = LiveSimulation::new(res.clone(), cfg.clone())
        .unwrap_or_else(|e| panic!("invalid engine configuration: {e}"));
    live.reserve(jobs.len());
    for j in jobs {
        // Shape validation already ran; a mismatch here is a caller bug.
        live.inject(j.clone()).unwrap_or_else(|e| panic!("{e}"));
    }
    match cfg.time_policy {
        TimePolicy::UnitStep => {
            while live.has_work() {
                live.step_once(scheduler);
            }
        }
        TimePolicy::EventDriven => {
            while live.has_work() {
                live.advance(scheduler);
            }
        }
    }

    tel.emit(|| TelemetryEvent::RunEnd {
        makespan: live.now(),
        busy_steps: live.busy_steps(),
        idle_steps: live.idle_steps(),
    });
    live.into_outcome(scheduler.name())
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker;
    use crate::{AllotmentMatrix, JobView};
    use kdag::{Category, DagBuilder, JobId};

    /// Gives every job its full desire, clamped per category to the
    /// remaining capacity, scanning jobs in slot order.
    struct GreedyAll;
    impl Scheduler for GreedyAll {
        fn name(&self) -> &str {
            "greedy-all"
        }
        fn allot(
            &mut self,
            _t: Time,
            views: &[JobView<'_>],
            res: &Resources,
            out: &mut AllotmentMatrix,
        ) {
            for cat in Category::all(res.k()) {
                let mut left = res.processors(cat);
                for (slot, v) in views.iter().enumerate() {
                    let a = v.desire(cat).min(left);
                    out.set(slot, cat, a);
                    left -= a;
                    if left == 0 {
                        break;
                    }
                }
            }
        }
    }

    /// Never allots anything: must trip the stall detector.
    struct DoNothing;
    impl Scheduler for DoNothing {
        fn name(&self) -> &str {
            "do-nothing"
        }
        fn allot(&mut self, _: Time, _: &[JobView<'_>], _: &Resources, _: &mut AllotmentMatrix) {}
    }

    /// Allots more than Pα: must trip the contract assertion.
    struct OverAllot;
    impl Scheduler for OverAllot {
        fn name(&self) -> &str {
            "over-allot"
        }
        fn allot(
            &mut self,
            _t: Time,
            views: &[JobView<'_>],
            res: &Resources,
            out: &mut AllotmentMatrix,
        ) {
            for (slot, _) in views.iter().enumerate() {
                out.set(slot, Category(0), res.processors(Category(0)) + 1);
            }
        }
    }

    fn diamond() -> JobDag {
        let mut b = DagBuilder::new(2);
        let a = b.add_task(Category(0));
        let x = b.add_task(Category(1));
        let y = b.add_task(Category(1));
        let z = b.add_task(Category(0));
        b.add_edge(a, x).unwrap();
        b.add_edge(a, y).unwrap();
        b.add_edge(x, z).unwrap();
        b.add_edge(y, z).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn single_diamond_runs_in_span_steps() {
        let jobs = vec![JobSpec::batched(diamond())];
        let res = Resources::uniform(2, 4);
        let o = simulate(&mut GreedyAll, &jobs, &res, &SimConfig::default());
        assert_eq!(o.makespan, 3);
        assert_eq!(o.completions, vec![3]);
        assert_eq!(o.executed_by_category, vec![2, 2]);
        assert_eq!(o.busy_steps, 3);
        assert_eq!(o.idle_steps, 0);
    }

    #[test]
    fn release_times_delay_jobs_and_fast_forward() {
        let jobs = vec![JobSpec::released(diamond(), 10)];
        let res = Resources::uniform(2, 4);
        let o = simulate(&mut GreedyAll, &jobs, &res, &SimConfig::default());
        assert_eq!(o.makespan, 13);
        assert_eq!(o.response(0), 3);
        assert_eq!(o.idle_steps, 10);
        assert_eq!(o.busy_steps, 3);
    }

    #[test]
    fn idle_gap_between_jobs_is_fast_forwarded() {
        let jobs = vec![
            JobSpec::batched(diamond()),
            JobSpec::released(diamond(), 100),
        ];
        let res = Resources::uniform(2, 4);
        let o = simulate(&mut GreedyAll, &jobs, &res, &SimConfig::default());
        assert_eq!(o.completions[0], 3);
        assert_eq!(o.completions[1], 103);
        assert_eq!(o.makespan, 103);
        assert_eq!(o.idle_steps, 97);
        assert_eq!(o.busy_steps, 6);
    }

    #[test]
    fn capacity_is_respected_and_serializes_work() {
        // Two flat jobs of 4 tasks each, 2 processors: 4 steps.
        let flat = || {
            let mut b = DagBuilder::new(1);
            b.add_tasks(Category(0), 4);
            b.build().unwrap()
        };
        let jobs = vec![JobSpec::batched(flat()), JobSpec::batched(flat())];
        let res = Resources::uniform(1, 2);
        let o = simulate(&mut GreedyAll, &jobs, &res, &SimConfig::default());
        assert_eq!(o.makespan, 4);
        assert_eq!(o.total_executed(), 8);
    }

    #[test]
    fn recorded_schedule_is_valid() {
        let jobs = vec![JobSpec::batched(diamond()), JobSpec::released(diamond(), 2)];
        let res = Resources::new(vec![1, 1]);
        let mut cfg = SimConfig::default();
        cfg.record_schedule = true;
        let o = simulate(&mut GreedyAll, &jobs, &res, &cfg);
        let sched = o.schedule.expect("schedule recorded");
        assert_eq!(sched.len(), 8);
        checker::validate(&sched, &jobs, &res).expect("engine produces valid schedules");
    }

    #[test]
    fn quantum_freezes_allotments_between_decisions() {
        // A scheduler that counts how often it is consulted.
        struct Counting {
            calls: u64,
        }
        impl Scheduler for Counting {
            fn name(&self) -> &str {
                "counting"
            }
            fn allot(
                &mut self,
                _t: Time,
                views: &[JobView<'_>],
                res: &Resources,
                out: &mut AllotmentMatrix,
            ) {
                self.calls += 1;
                // Give everything to the first job.
                out.set(
                    0,
                    Category(0),
                    res.processors(Category(0))
                        .min(views[0].desire(Category(0))),
                );
            }
        }
        let mut b = DagBuilder::new(1);
        b.add_tasks(Category(0), 12);
        let jobs = vec![JobSpec::batched(b.build().unwrap())];
        let res = Resources::uniform(1, 2);
        let mut cfg = SimConfig::default();
        cfg.quantum = 4;
        let mut s = Counting { calls: 0 };
        let o = simulate(&mut s, &jobs, &res, &cfg);
        // 12 tasks at 2/step = 6 steps; decisions at t = 1 and t = 5.
        assert_eq!(o.makespan, 6);
        assert_eq!(s.calls, 2, "scheduler must only run at quantum boundaries");
    }

    #[test]
    fn mid_quantum_arrival_waits_for_boundary() {
        let flat = |n: usize| {
            let mut b = DagBuilder::new(1);
            b.add_tasks(Category(0), n);
            b.build().unwrap()
        };
        let jobs = vec![
            JobSpec::batched(flat(20)),
            JobSpec::released(flat(2), 1), // arrives at step 2, mid-quantum
        ];
        let res = Resources::uniform(1, 4);
        let mut cfg = SimConfig::default();
        cfg.quantum = 5;
        let o = simulate(&mut GreedyAll, &jobs, &res, &cfg);
        // Job 1 gets nothing until the next boundary at t = 6.
        assert!(
            o.completions[1] >= 6,
            "mid-quantum arrival served early: {}",
            o.completions[1]
        );
    }

    #[test]
    fn agreedy_estimates_ramp_up_to_wide_jobs() {
        // One very wide flat job: A-Greedy starts at estimate 1 and
        // doubles while efficient, so completion is slower than exact
        // desires but far faster than 1 task/step.
        let mut b = DagBuilder::new(1);
        let tasks = b.add_tasks(Category(0), 64);
        let _ = tasks;
        let jobs = vec![JobSpec::batched(b.build().unwrap())];
        let res = Resources::uniform(1, 16);
        let mut cfg = SimConfig::default();
        cfg.desire_model = DesireModel::AGreedy { delta: 0.8 };
        let o = simulate(&mut GreedyAll, &jobs, &res, &cfg);
        let exact = simulate(&mut GreedyAll, &jobs, &res, &SimConfig::default());
        assert_eq!(exact.makespan, 4); // 64/16
                                       // Feedback ramp: 1+2+4+8 = 15 tasks in 4 steps, then 16/step:
                                       // strictly slower than exact but much better than 64 steps.
        assert!(o.makespan > exact.makespan);
        assert!(o.makespan <= 10, "ramp too slow: {}", o.makespan);
        assert_eq!(o.total_executed(), 64);
    }

    #[test]
    fn agreedy_estimates_back_off_on_waste() {
        // A chain job (true parallelism 1): estimates must fall back to
        // 1 and stay there, so the makespan stays near the span.
        let mut b = DagBuilder::new(1);
        let ts = b.add_tasks(Category(0), 30);
        b.add_chain(&ts).unwrap();
        let jobs = vec![JobSpec::batched(b.build().unwrap())];
        let res = Resources::uniform(1, 8);
        let mut cfg = SimConfig::default();
        cfg.desire_model = DesireModel::AGreedy { delta: 0.8 };
        let o = simulate(&mut GreedyAll, &jobs, &res, &cfg);
        assert_eq!(o.makespan, 30, "a chain runs one task per step regardless");
    }

    #[test]
    fn preemptions_counted_only_while_active() {
        // A scheduler that alternates the single processor between two
        // flat jobs each step: every switch withdraws one unit.
        struct Alternator(u64);
        impl Scheduler for Alternator {
            fn name(&self) -> &str {
                "alternator"
            }
            fn allot(
                &mut self,
                _t: Time,
                views: &[JobView<'_>],
                _res: &Resources,
                out: &mut AllotmentMatrix,
            ) {
                let pick = (self.0 as usize) % views.len();
                out.set(pick, Category(0), 1);
                self.0 += 1;
            }
        }
        let flat = || {
            let mut b = DagBuilder::new(1);
            b.add_tasks(Category(0), 3);
            JobSpec::batched(b.build().unwrap())
        };
        let jobs = vec![flat(), flat()];
        let res = Resources::uniform(1, 1);
        let o = simulate(&mut Alternator(0), &jobs, &res, &SimConfig::default());
        assert_eq!(o.makespan, 6);
        // Steps: J0,J1,J0,J1,J0(completes),J1. Withdrawals from a
        // still-active job: steps 2,3,4,5 minus the completion at 5.
        assert!(
            o.preemptions >= 3,
            "alternating must preempt: {}",
            o.preemptions
        );

        // A greedy one-job-at-a-time run has zero preemptions.
        let o2 = simulate(&mut GreedyAll, &jobs, &res, &SimConfig::default());
        assert_eq!(
            o2.preemptions, 0,
            "FCFS completion must not count as preemption"
        );
    }

    #[test]
    fn trace_records_each_busy_step() {
        let jobs = vec![JobSpec::batched(diamond())];
        let res = Resources::uniform(2, 4);
        let mut cfg = SimConfig::default();
        cfg.record_trace = true;
        let o = simulate(&mut GreedyAll, &jobs, &res, &cfg);
        let trace = o.trace.expect("trace recorded");
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].t, 1);
        assert_eq!(trace[0].executed, vec![1, 0]);
        assert_eq!(trace[1].executed, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "stalled")]
    fn stall_detector_fires() {
        let jobs = vec![JobSpec::batched(diamond())];
        let res = Resources::uniform(2, 4);
        let mut cfg = SimConfig::default();
        cfg.stall_limit = 5;
        simulate(&mut DoNothing, &jobs, &res, &cfg);
    }

    #[test]
    #[should_panic(expected = "over-allotted")]
    fn over_allotment_detected() {
        let jobs = vec![JobSpec::batched(diamond())];
        let res = Resources::uniform(2, 4);
        simulate(&mut OverAllot, &jobs, &res, &SimConfig::default());
    }

    #[test]
    #[should_panic(expected = "categories but machine")]
    fn k_mismatch_detected() {
        let jobs = vec![JobSpec::batched(diamond())]; // K = 2
        let res = Resources::uniform(3, 4);
        simulate(&mut GreedyAll, &jobs, &res, &SimConfig::default());
    }

    #[test]
    fn telemetry_events_cover_the_run() {
        use ktelemetry::TelemetryEvent as E;
        let jobs = vec![
            JobSpec::batched(diamond()),
            JobSpec::released(diamond(), 100),
        ];
        let res = Resources::uniform(2, 4);
        let mut cfg = SimConfig::default();
        let (handle, rec) = TelemetryHandle::recording();
        cfg.telemetry = handle;
        let o = simulate(&mut GreedyAll, &jobs, &res, &cfg);
        let events = rec.lock().unwrap().take();

        let E::RunStart {
            scheduler,
            jobs: nj,
            categories,
        } = &events[0]
        else {
            panic!("first event must be run_start: {:?}", events[0]);
        };
        assert_eq!(scheduler, "greedy-all");
        assert_eq!((*nj, *categories), (2, 2));
        let E::RunEnd {
            makespan,
            busy_steps,
            idle_steps,
        } = events.last().unwrap()
        else {
            panic!("last event must be run_end");
        };
        assert_eq!(*makespan, o.makespan);
        assert_eq!(*busy_steps, o.busy_steps);
        assert_eq!(*idle_steps, o.idle_steps);

        // The gap between job 0 (done at 3) and job 1 (released 100)
        // must surface as exactly one idle skip.
        let skips: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, E::IdleSkip { .. }))
            .collect();
        assert_eq!(skips, vec![&E::IdleSkip { from: 3, to: 100 }]);

        // One release and one completion per job, with responses.
        let releases = events
            .iter()
            .filter(|e| matches!(e, E::JobReleased { .. }))
            .count();
        assert_eq!(releases, 2);
        let responses: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                E::JobCompleted { response, .. } => Some(*response),
                _ => None,
            })
            .collect();
        assert_eq!(responses, vec![o.response(0), o.response(1)]);

        // Step accounting: one StepStart + StepEnd per busy step, and
        // the summed StepEnd executed equals the outcome totals.
        let starts = events
            .iter()
            .filter(|e| matches!(e, E::StepStart { .. }))
            .count();
        assert_eq!(starts as u64, o.busy_steps);
        let mut executed_total = vec![0u64; 2];
        for e in &events {
            if let E::StepEnd {
                allotted, executed, ..
            } = e
            {
                for (cat, (&a, &x)) in allotted.iter().zip(executed).enumerate() {
                    assert!(x <= a, "executed must never exceed allotted");
                    executed_total[cat] += u64::from(x);
                }
            }
        }
        assert_eq!(executed_total, o.executed_by_category);
    }

    #[test]
    fn disabled_telemetry_emits_nothing_by_default() {
        // `SimConfig::default()` must stay un-instrumented: the handle
        // is off and the engine never constructs events.
        let cfg = SimConfig::default();
        assert!(!cfg.telemetry.is_enabled());
    }

    #[test]
    fn arrival_and_completion_callbacks_fire_in_order() {
        struct Watcher {
            inner: GreedyAll,
            events: Vec<(char, u32, Time)>,
        }
        impl Scheduler for Watcher {
            fn name(&self) -> &str {
                "watcher"
            }
            fn on_arrival(&mut self, id: JobId, t: Time) {
                self.events.push(('a', id.0, t));
            }
            fn on_completion(&mut self, id: JobId, t: Time) {
                self.events.push(('c', id.0, t));
            }
            fn allot(
                &mut self,
                t: Time,
                views: &[JobView<'_>],
                res: &Resources,
                out: &mut AllotmentMatrix,
            ) {
                self.inner.allot(t, views, res, out);
            }
        }
        let jobs = vec![JobSpec::batched(diamond()), JobSpec::released(diamond(), 1)];
        let res = Resources::uniform(2, 4);
        let mut w = Watcher {
            inner: GreedyAll,
            events: vec![],
        };
        let o = simulate(&mut w, &jobs, &res, &SimConfig::default());
        assert_eq!(w.events[0], ('a', 0, 1));
        assert_eq!(w.events[1], ('a', 1, 2));
        assert!(w.events.contains(&('c', 0, o.completions[0])));
        assert!(w.events.contains(&('c', 1, o.completions[1])));
    }
}
