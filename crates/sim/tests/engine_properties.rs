//! Engine property tests with an arbitrary (random but contract-
//! respecting) scheduler: whatever the scheduler does, the machine
//! model's invariants must hold.

use kdag::generators::{layered_random, LayeredConfig};
use kdag::{Category, SelectionPolicy};
use ksim::{
    checker, simulate, AllotmentMatrix, JobSpec, JobView, Resources, Scheduler, SimConfig, Time,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A chaotic but legal scheduler: allots random subsets of each
/// category's processors to random active jobs (never exceeding Pα).
/// Occasionally allots more than a job's desire (legal: surplus is
/// wasted) and occasionally allots nothing to anyone (legal: the engine
/// only requires eventual progress; randomness guarantees it w.h.p.).
struct Chaotic {
    rng: StdRng,
}

impl Scheduler for Chaotic {
    fn name(&self) -> &str {
        "chaotic"
    }
    fn allot(
        &mut self,
        _t: Time,
        views: &[JobView<'_>],
        res: &Resources,
        out: &mut AllotmentMatrix,
    ) {
        for cat in Category::all(res.k()) {
            let mut left = res.processors(cat);
            // Give random chunks to random jobs until we stop.
            while left > 0 && self.rng.gen_bool(0.8) {
                let slot = self.rng.gen_range(0..views.len());
                let amount = self.rng.gen_range(0..=left);
                out.add(slot, cat, amount);
                left -= amount;
            }
        }
    }
}

fn jobset(seed: u64, k: usize, n: usize) -> Vec<JobSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let cfg = LayeredConfig::uniform(k, 1 + (i % 5), 1, 4);
            let dag = layered_random(&mut rng, &cfg);
            JobSpec::released(dag, rng.gen_range(0..10))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Whatever a legal scheduler does, the run terminates with all
    /// work done, valid completion times, and a valid schedule χ.
    #[test]
    fn chaotic_scheduler_preserves_model_invariants(
        seed in 0u64..5000,
        k in 1usize..4,
        n in 1usize..8,
        p in 1u32..5,
        policy_idx in 0usize..5,
    ) {
        let jobs = jobset(seed, k, n);
        let res = Resources::uniform(k, p);
        let mut cfg = SimConfig::default().with_policy(SelectionPolicy::ALL[policy_idx]);
        cfg.seed = seed;
        cfg.record_schedule = true;
        let mut sched = Chaotic { rng: StdRng::seed_from_u64(seed ^ 0xC11A) };
        let o = simulate(&mut sched, &jobs, &res, &cfg);

        // Conservation.
        let total: u64 = jobs.iter().map(|j| j.dag.total_work()).sum();
        prop_assert_eq!(o.total_executed(), total);

        // Completion vs release, and makespan = max completion.
        for i in 0..o.job_count() {
            prop_assert!(o.completions[i] > o.releases[i]);
        }
        prop_assert_eq!(o.makespan, *o.completions.iter().max().unwrap());

        // Absolute lower bounds (inline: span+release and work/P).
        let lb_span = jobs.iter().map(|j| j.release + j.dag.span()).max().unwrap();
        prop_assert!(o.makespan >= lb_span || o.makespan as f64 >= lb_span as f64);
        for cat in Category::all(k) {
            let w: u64 = jobs.iter().map(|j| j.dag.work(cat)).sum();
            let lb = w.div_ceil(u64::from(p));
            prop_assert!(o.makespan >= lb, "makespan {} below work bound {lb}", o.makespan);
        }

        // Formal schedule validity.
        checker::validate(o.schedule.as_ref().unwrap(), &jobs, &res).unwrap();

        // Accounting: busy + idle partitions time up to the makespan.
        prop_assert_eq!(o.busy_steps + o.idle_steps, o.makespan);
    }

    /// Utilization never exceeds 1 in any category.
    #[test]
    fn utilization_is_bounded(
        seed in 0u64..2000,
        k in 1usize..3,
        p in 1u32..5,
    ) {
        let jobs = jobset(seed, k, 5);
        let res = Resources::uniform(k, p);
        let mut sched = Chaotic { rng: StdRng::seed_from_u64(seed) };
        let o = simulate(&mut sched, &jobs, &res, &SimConfig::default());
        for cat in Category::all(k) {
            let u = o.utilization(cat, &res);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&u), "utilization {u}");
        }
    }
}
