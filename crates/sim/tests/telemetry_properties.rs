//! Conservation properties of the telemetry event stream.
//!
//! Cross-validates `step_end` events against the ground truth the
//! engine reports directly: per step and category, tasks executed
//! never exceed processors allotted, and the executed totals summed
//! from events equal both the DAG work and the outcome's accounting.
//!
//! The invariant lives in a plain function exercised by deterministic
//! cases; the proptest block re-drives it over randomized workloads.

use kdag::generators::{chain, fork_join};
use kdag::{Category, DagBuilder};
use krad::KRad;
use ksim::{simulate, JobSpec, Resources, SimConfig, SimOutcome, TelemetryEvent, TelemetryHandle};
use proptest::prelude::*;

/// Run K-RAD with a recording sink and check every conservation
/// invariant the `step_end` stream must satisfy.
fn assert_stream_conserves(jobs: &[JobSpec], res: &Resources) -> SimOutcome {
    let (tel, rec) = TelemetryHandle::recording();
    let mut cfg = SimConfig::default();
    cfg.telemetry = tel.clone();
    let mut sched = KRad::with_telemetry(res.k(), tel);
    let o = simulate(&mut sched, jobs, res, &cfg);
    let events = rec.lock().unwrap().take();

    let mut executed_total = vec![0u64; res.k()];
    let mut steps = 0u64;
    for e in &events {
        if let TelemetryEvent::StepEnd {
            t,
            allotted,
            executed,
        } = e
        {
            steps += 1;
            assert_eq!(allotted.len(), res.k(), "step {t}: one entry per category");
            assert_eq!(executed.len(), res.k());
            for (cat, (&a, &x)) in allotted.iter().zip(executed).enumerate() {
                assert!(
                    x <= a,
                    "step {t}, category {cat}: executed {x} > allotted {a}"
                );
                assert!(
                    a <= res.as_slice()[cat],
                    "step {t}, category {cat}: allotted {a} > P{cat}"
                );
                executed_total[cat] += u64::from(x);
            }
        }
    }
    assert_eq!(steps, o.busy_steps, "one step_end per busy step");
    assert_eq!(
        executed_total, o.executed_by_category,
        "event totals must match the outcome's accounting"
    );
    let total: u64 = executed_total.iter().sum();
    let work: u64 = jobs.iter().map(|j| j.dag.total_work()).sum();
    assert_eq!(total, work, "every DAG task executes exactly once");
    o
}

#[test]
fn conservation_single_category_overload() {
    let jobs: Vec<JobSpec> = (0..7)
        .map(|i| JobSpec::batched(chain(1, 4 + i, &[Category(0)])))
        .collect();
    assert_stream_conserves(&jobs, &Resources::uniform(1, 3));
}

#[test]
fn conservation_multi_category_mix() {
    let mut jobs: Vec<JobSpec> = (0..5)
        .map(|i| {
            JobSpec::batched(fork_join(
                2,
                &[(Category(i % 2), 4), (Category((i + 1) % 2), 3)],
            ))
        })
        .collect();
    // Wide flat jobs to stress the DEQ branch too.
    for _ in 0..2 {
        let mut b = DagBuilder::new(2);
        b.add_tasks(Category(0), 9);
        b.add_tasks(Category(1), 6);
        jobs.push(JobSpec::batched(b.build().unwrap()));
    }
    assert_stream_conserves(&jobs, &Resources::new(vec![3, 2]));
}

#[test]
fn conservation_with_staggered_releases() {
    let jobs: Vec<JobSpec> = (0..6)
        .map(|i| JobSpec::released(chain(2, 5, &[Category(i % 2)]), (i as u64) * 7))
        .collect();
    let o = assert_stream_conserves(&jobs, &Resources::new(vec![2, 1]));
    assert!(o.idle_steps > 0, "gaps of 7 steps force idle skipping");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Randomized workloads: chains and fork-joins of arbitrary sizes
    /// over 1–3 categories on arbitrary small machines.
    #[test]
    fn conservation_over_random_workloads(
        k in 1usize..4,
        procs in proptest::collection::vec(1u32..5, 3),
        shapes in proptest::collection::vec((0usize..3, 1usize..8, 0u64..12), 1..10),
    ) {
        let jobs: Vec<JobSpec> = shapes
            .iter()
            .map(|&(cat, size, release)| {
                let cat = Category(cat % k);
                JobSpec::released(chain(k, size, &[cat]), release)
            })
            .collect();
        let res = Resources::new(procs[..k].to_vec());
        assert_stream_conserves(&jobs, &res);
    }
}
