//! Property tests for the SWF trace parser: no input may panic it,
//! every error names the offending 1-based line, and valid records
//! round-trip through the synthetic trace generator.

use kworkloads::swf::{jobs_from_swf, parse_swf, swf_stats, synthetic_swf, SwfError, SwfShape};
use proptest::prelude::*;

/// A syntactically valid SWF data line for the given field values
/// (18 columns, the unused ones set to `-1`).
fn swf_line(id: i64, submit: i64, run_time: i64, procs: i64, status: i64) -> String {
    format!("{id} {submit} 0 {run_time} {procs} -1 -1 {procs} -1 {run_time} {status} -1 -1 -1 -1 -1 -1 -1")
}

#[test]
fn garbage_corpus_never_panics() {
    // A hand-picked corpus of hostile inputs: every one must come back
    // as `Ok` (skipped/filtered) or a line-numbered `Err` — never a
    // panic.
    let corpus = [
        "",
        "\n\n\n",
        ";",
        "; only comments\n;and more",
        "1",
        "1 2 3 4 5 6 7 8 9 10",                           // one field short
        "x y z a b c d e f g h",                          // non-numeric everywhere
        "1 2 3 4 5 6 7 8 9 10 eleven",                    // bad status field
        "9223372036854775807 0 0 1 1 -1 -1 1 -1 1 1",     // i64::MAX id
        "-9223372036854775808 0 0 1 1 -1 -1 1 -1 1 1",    // i64::MIN id
        "1 0 0 99999999999999999999 1 -1 -1 1 -1 1 1",    // overflows i64
        "1\t0\t0\t60\t4\t-1\t-1\t4\t-1\t60\t1",           // tabs as separators
        "  1 0 0 60 4 -1 -1 4 -1 60 1  ",                 // padded
        "\u{feff}1 0 0 60 4 -1 -1 4 -1 60 1",             // BOM garbage
        "1 0 0 60 4 -1 -1 4 -1 60 1 trailing junk words", // extra fields are fine
    ];
    for text in corpus {
        let _ = parse_swf(text);
    }
    // Errors still carry line numbers through the corpus shapes.
    assert_eq!(
        parse_swf("; header\n\n1 2 3").unwrap_err(),
        SwfError::TooFewFields { line: 3 }
    );
}

#[test]
fn error_lines_are_one_based_and_skip_comments() {
    // The bad record sits on line 4; two comments and a valid record
    // precede it.
    let text = format!(
        "; c1\n{}\n; c2\n{}",
        swf_line(1, 0, 60, 4, 1),
        "2 0 0 bad 4 -1 -1 4 -1 60 1"
    );
    assert_eq!(
        parse_swf(&text).unwrap_err(),
        SwfError::BadField { line: 4, field: 4 }
    );
    let msg = parse_swf(&text).unwrap_err().to_string();
    assert!(msg.contains("line 4"), "{msg}");
    assert!(msg.contains("field 4"), "{msg}");
}

#[test]
fn synthetic_swf_round_trips() {
    for n in [0, 1, 7, 64] {
        let text = synthetic_swf(n);
        let records = parse_swf(&text).expect("synthetic trace is well-formed");
        assert_eq!(records.len(), n);
        // Submit times are nondecreasing, every record is simulatable.
        for w in records.windows(2) {
            assert!(w[0].submit <= w[1].submit);
        }
        assert!(records.iter().all(|r| r.run_time > 0 && r.processors > 0));
        // And the whole set converts to simulator-ready jobs.
        let jobs = jobs_from_swf(&records, &SwfShape::default());
        assert_eq!(jobs.len(), n);
        assert_eq!(swf_stats(&records).jobs, n);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary bytes (as text) never panic the parser.
    #[test]
    fn arbitrary_text_never_panics(text in "\\PC{0,200}") {
        let _ = parse_swf(&text);
    }

    /// Arbitrary whitespace-separated token soup never panics, and any
    /// error it produces points at a real 1-based line of the input.
    #[test]
    fn token_soup_errors_carry_line_numbers(
        lines in proptest::collection::vec("[ a-z0-9.;-]{0,40}", 0..12),
    ) {
        let text = lines.join("\n");
        if let Err(e) = parse_swf(&text) {
            let line = match e {
                SwfError::TooFewFields { line } => line,
                SwfError::BadField { line, .. } => line,
            };
            prop_assert!(line >= 1);
            prop_assert!(line <= lines.len());
        }
    }

    /// Any valid field combination formatted as an SWF line parses
    /// back to exactly those values (or is filtered for the documented
    /// reasons: unknown runtime or zero processors).
    #[test]
    fn valid_records_round_trip(
        id in 0i64..1_000_000,
        submit in 0i64..1_000_000_000,
        run_time in -1i64..1_000_000,
        procs in 0i64..100_000,
        status in -1i64..6,
    ) {
        let text = swf_line(id, submit, run_time, procs, status);
        let records = parse_swf(&text).expect("well-formed line");
        if run_time <= 0 || procs <= 0 {
            prop_assert!(records.is_empty(), "unsimulatable records are dropped");
        } else {
            prop_assert_eq!(records.len(), 1);
            let r = records[0];
            prop_assert_eq!(r.id, id);
            prop_assert_eq!(r.submit, submit as u64);
            prop_assert_eq!(r.run_time, run_time as u64);
            prop_assert_eq!(r.processors, procs as u32);
            prop_assert_eq!(r.status, status);
        }
    }

    /// Truncating a valid trace mid-line yields either a clean parse of
    /// the surviving prefix or an error on the final (cut) line.
    #[test]
    fn truncation_fails_cleanly(n in 1usize..20, cut in 1usize..400) {
        let text = synthetic_swf(n);
        let cut = cut.min(text.len());
        let Some(prefix) = text.get(..cut) else { return Ok(()); };
        match parse_swf(prefix) {
            Ok(records) => prop_assert!(records.len() <= n),
            Err(e) => {
                let line = match e {
                    SwfError::TooFewFields { line } => line,
                    SwfError::BadField { line, .. } => line,
                };
                prop_assert_eq!(line, prefix.lines().count(), "only the cut line may fail");
            }
        }
    }
}
