//! Random batched job sets mixing DAG shapes.

use kdag::generators::{
    chain, divide_conquer, fork_join, layered_random, phased, series_parallel, wavefront,
    LayeredConfig, PhaseSpec,
};
use kdag::{Category, JobDag};
use ksim::JobSpec;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a random batched mix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MixConfig {
    /// Number of categories `K`.
    pub k: usize,
    /// Number of jobs.
    pub jobs: usize,
    /// Approximate tasks per job (each job's size is drawn uniformly
    /// from `[mean_size/2, 3·mean_size/2]`).
    pub mean_size: usize,
    /// Cap on any single phase/layer width (keeps barrier edge counts
    /// and desires bounded).
    pub max_width: u32,
}

impl MixConfig {
    /// A reasonable default mix.
    pub fn new(k: usize, jobs: usize, mean_size: usize) -> Self {
        MixConfig {
            k,
            jobs,
            mean_size,
            max_width: 16,
        }
    }
}

fn rand_cat(rng: &mut StdRng, k: usize) -> Category {
    Category(rng.gen_range(0..k) as u16)
}

fn rand_pattern(rng: &mut StdRng, k: usize) -> Vec<Category> {
    let len = rng.gen_range(1..=k.min(3));
    (0..len).map(|_| rand_cat(rng, k)).collect()
}

/// Draw one random job of roughly `size` tasks with a random shape.
pub fn random_job(rng: &mut StdRng, cfg: &MixConfig, size: usize) -> JobDag {
    let size = size.max(1);
    let k = cfg.k;
    match rng.gen_range(0..7) {
        0 => chain(k, size, &rand_pattern(rng, k)),
        1 => {
            // Fork-join: a few phases whose widths sum to ~size.
            let phases = rng.gen_range(2..=4usize);
            let per = (size / phases).max(1);
            let specs: Vec<(Category, u32)> = (0..phases)
                .map(|_| {
                    let w = rng.gen_range(1..=(2 * per).min(cfg.max_width as usize).max(1)) as u32;
                    (rand_cat(rng, k), w)
                })
                .collect();
            fork_join(k, &specs)
        }
        2 => {
            let layers = ((size as f64).sqrt().ceil() as usize).max(1);
            let width = ((size / layers).max(1) as u32).min(cfg.max_width);
            let mut lc = LayeredConfig::uniform(k, layers, 1, width.max(1));
            lc.extra_edge_prob = 0.2;
            layered_random(rng, &lc)
        }
        3 => series_parallel(rng, k, size),
        4 => {
            // Wavefront grid of roughly `size` cells, bounded widths.
            let rows = ((size as f64).sqrt().round() as usize).clamp(1, cfg.max_width as usize);
            let cols = (size / rows).max(1);
            wavefront(k, rows, cols, &rand_pattern(rng, k))
        }
        5 => {
            // Divide-and-conquer with ~size tasks: 4·2^depth ≈ size.
            let depth = (((size / 4).max(2) as f64).log2().round() as u32).clamp(1, 6);
            divide_conquer(
                k,
                depth,
                rand_cat(rng, k),
                rand_cat(rng, k),
                rand_cat(rng, k),
            )
        }
        _ => {
            let phases = rng.gen_range(1..=3usize);
            let specs: Vec<PhaseSpec> = (0..phases)
                .map(|_| {
                    let width = rng.gen_range(1..=cfg.max_width);
                    let length = ((size / phases) as u32 / width).max(1);
                    PhaseSpec::new(rand_cat(rng, k), width, length)
                })
                .collect();
            phased(k, &specs)
        }
    }
}

/// Generate a batched (all releases 0) random job set.
pub fn batched_mix(rng: &mut StdRng, cfg: &MixConfig) -> Vec<JobSpec> {
    (0..cfg.jobs)
        .map(|_| {
            let size = rng.gen_range(cfg.mean_size / 2..=cfg.mean_size * 3 / 2);
            JobSpec::batched(random_job(rng, cfg, size))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_for;

    #[test]
    fn mix_is_deterministic_per_seed() {
        let cfg = MixConfig::new(3, 12, 40);
        let a = batched_mix(&mut rng_for(7, 0), &cfg);
        let b = batched_mix(&mut rng_for(7, 0), &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.dag.len(), y.dag.len());
            assert_eq!(x.dag.span(), y.dag.span());
            assert_eq!(x.dag.work_by_category(), y.dag.work_by_category());
        }
    }

    #[test]
    fn sizes_are_in_range() {
        let cfg = MixConfig::new(2, 30, 40);
        let jobs = batched_mix(&mut rng_for(3, 1), &cfg);
        assert_eq!(jobs.len(), 30);
        for j in &jobs {
            assert!(!j.dag.is_empty());
            // Upper bound: a size draw can reach 1.5×mean, and the
            // series-parallel shape adds up to 2× fork/join overhead on
            // top of its target — 4.5×mean overall, rounded up to 5×.
            assert!(j.dag.len() <= 40 * 5, "job too large: {}", j.dag.len());
            assert_eq!(j.release, 0);
        }
    }

    #[test]
    fn all_k_categories_appear_overall() {
        let cfg = MixConfig::new(3, 50, 30);
        let jobs = batched_mix(&mut rng_for(11, 2), &cfg);
        let mut totals = vec![0u64; 3];
        for j in &jobs {
            for (t, w) in totals.iter_mut().zip(j.dag.work_by_category()) {
                *t += w;
            }
        }
        assert!(totals.iter().all(|&t| t > 0), "unused category: {totals:?}");
    }

    #[test]
    fn every_shape_is_generated() {
        // With 100 draws all 5 shape branches should fire; detect by
        // the structural fingerprints being diverse.
        let cfg = MixConfig::new(2, 100, 30);
        let jobs = batched_mix(&mut rng_for(5, 3), &cfg);
        let spans: std::collections::HashSet<u64> = jobs.iter().map(|j| j.dag.span()).collect();
        assert!(spans.len() > 5, "suspiciously uniform shapes");
    }
}
