//! Standard Workload Format (SWF) trace ingestion.
//!
//! SWF is the format of the Parallel Workloads Archive (Feitelson et
//! al.): one job per line, 18 whitespace-separated fields, `;`
//! comments. This module parses SWF text and synthesizes K-DAG jobs
//! from the records — the substitution this reproduction uses in place
//! of proprietary cluster traces: an SWF record gives a release time, a
//! processor count, and a runtime; [`SwfShape`] turns that into a
//! rectangular compute profile (width = processors, length = runtime)
//! optionally bracketed by narrow I/O stage-in/stage-out phases on a
//! second category, preserving the arrival process and the
//! work/parallelism statistics that drive the scheduling behavior.

use crate::mixes::MixConfig;
use kdag::generators::{phased, PhaseSpec};
use kdag::Category;
use ksim::{JobSpec, Time};
use std::fmt;
use std::sync::Arc;

/// One parsed SWF job record (the fields this crate consumes; the
/// remaining SWF columns are parsed but not stored).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwfJob {
    /// Field 1: job number.
    pub id: i64,
    /// Field 2: submit time (seconds since trace start).
    pub submit: u64,
    /// Field 4: run time in seconds (`-1` → unknown, record skipped).
    pub run_time: u64,
    /// Field 5: number of allocated processors.
    pub processors: u32,
    /// Field 11: completion status (1 = completed OK).
    pub status: i64,
}

/// SWF parse errors, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwfError {
    /// A data line had fewer than the 11 leading fields we need.
    TooFewFields {
        /// Offending line number.
        line: usize,
    },
    /// A field failed to parse as an integer.
    BadField {
        /// Offending line number.
        line: usize,
        /// 1-based SWF field index.
        field: usize,
    },
}

impl fmt::Display for SwfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwfError::TooFewFields { line } => write!(f, "line {line}: too few fields"),
            SwfError::BadField { line, field } => {
                write!(f, "line {line}: field {field} is not an integer")
            }
        }
    }
}

impl std::error::Error for SwfError {}

/// Parse SWF text. Comment lines (`;`) and blank lines are skipped;
/// records with unknown runtime or zero processors are dropped (they
/// cannot be simulated); failed jobs (status ≠ 1) are kept — they
/// consumed resources too.
pub fn parse_swf(text: &str) -> Result<Vec<SwfJob>, SwfError> {
    let mut jobs = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() < 11 {
            return Err(SwfError::TooFewFields { line });
        }
        let int = |idx: usize| -> Result<i64, SwfError> {
            fields[idx].parse().map_err(|_| SwfError::BadField {
                line,
                field: idx + 1,
            })
        };
        let submit = int(1)?;
        let run_time = int(3)?;
        let procs = int(4)?;
        let job = SwfJob {
            id: int(0)?,
            submit: submit.max(0) as u64,
            run_time: run_time.max(-1) as u64,
            processors: procs.max(0) as u32,
            status: int(10)?,
        };
        if run_time <= 0 || procs <= 0 {
            continue;
        }
        jobs.push(job);
    }
    Ok(jobs)
}

/// How SWF records become K-DAG jobs.
#[derive(Clone, Debug)]
pub struct SwfShape {
    /// Number of categories of the produced DAGs.
    pub k: usize,
    /// Category of the compute rectangle.
    pub compute: Category,
    /// Optional I/O category: adds a narrow stage-in phase before and
    /// stage-out phase after the compute rectangle.
    pub io: Option<Category>,
    /// Fraction of the compute length spent in each I/O phase.
    pub io_fraction: f64,
    /// Divide SWF seconds by this to get simulation steps (traces are
    /// in seconds; unit steps are coarser).
    pub seconds_per_step: u64,
    /// Cap on the compute width (desires stay simulation-sized).
    pub max_width: u32,
    /// Cap on per-job task count (length is shortened to fit).
    pub max_tasks: usize,
}

impl Default for SwfShape {
    fn default() -> Self {
        SwfShape {
            k: 2,
            compute: Category(0),
            io: Some(Category(1)),
            io_fraction: 0.1,
            seconds_per_step: 60,
            max_width: 32,
            max_tasks: 4096,
        }
    }
}

/// Convert parsed SWF records into simulator-ready jobs (releases come
/// from the trace's submit times, scaled).
pub fn jobs_from_swf(records: &[SwfJob], shape: &SwfShape) -> Vec<JobSpec> {
    records
        .iter()
        .map(|r| {
            let width = r.processors.clamp(1, shape.max_width);
            let mut length = (r.run_time / shape.seconds_per_step).max(1) as u32;
            let max_len = (shape.max_tasks as u32 / width).max(1);
            length = length.min(max_len);
            let mut phases = Vec::new();
            if let Some(io) = shape.io {
                let io_len = ((f64::from(length) * shape.io_fraction).ceil() as u32).max(1);
                phases.push(PhaseSpec::new(io, 1, io_len));
                phases.push(PhaseSpec::new(shape.compute, width, length));
                phases.push(PhaseSpec::new(io, 1, io_len));
            } else {
                phases.push(PhaseSpec::new(shape.compute, width, length));
            }
            JobSpec {
                dag: Arc::new(phased(shape.k, &phases)),
                release: (r.submit / shape.seconds_per_step) as Time,
            }
        })
        .collect()
}

/// A deterministic synthetic SWF trace (no real data needed): `n` jobs
/// whose submit times, sizes, and runtimes follow simple congruential
/// patterns. Useful as a stand-in where a real archive trace would be
/// dropped in, and for tests.
pub fn synthetic_swf(n: usize) -> String {
    let mut out = String::from(
        "; synthetic SWF trace (generated; schema: Feitelson SWF v2)\n; UnixStartTime: 0\n",
    );
    let mut t = 0u64;
    for i in 0..n {
        // Quasi-random but fully deterministic job parameters.
        let gap = (i as u64 * 37 + 13) % 240;
        t += gap;
        let procs = 1 + (i * 7 + 3) % 24;
        let run = 120 + (i as u64 * 397) % 7200;
        let status = 1;
        out.push_str(&format!(
            "{} {} 0 {} {} -1 -1 {} {} -1 {} -1 -1 -1 -1 -1 -1 -1 -1\n",
            i + 1,
            t,
            run,
            procs,
            procs,
            run,
            status
        ));
    }
    out
}

/// Aggregate descriptive statistics of a parsed trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SwfStats {
    /// Number of usable records.
    pub jobs: usize,
    /// Trace horizon (last submit) in seconds.
    pub horizon: u64,
    /// Maximum processors requested by any job.
    pub max_processors: u32,
    /// Total processor-seconds of work.
    pub total_work: u64,
}

/// Compute trace statistics.
pub fn swf_stats(records: &[SwfJob]) -> SwfStats {
    SwfStats {
        jobs: records.len(),
        horizon: records.iter().map(|r| r.submit).max().unwrap_or(0),
        max_processors: records.iter().map(|r| r.processors).max().unwrap_or(0),
        total_work: records
            .iter()
            .map(|r| r.run_time * u64::from(r.processors))
            .sum(),
    }
}

/// Convenience: synthesize a trace-driven workload with the default
/// shape, bounded to mix-compatible sizes.
pub fn synthetic_trace_workload(n: usize, cfg: &MixConfig) -> Vec<JobSpec> {
    let records = parse_swf(&synthetic_swf(n)).expect("synthetic trace is well-formed");
    let shape = SwfShape {
        k: cfg.k,
        max_width: cfg.max_width,
        max_tasks: cfg.mean_size * 4,
        ..SwfShape::default()
    };
    jobs_from_swf(&records, &shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; comment line
  ; indented comment

1 0 5 3600 16 -1 -1 16 -1 3600 1 -1 -1 -1 -1 -1 -1 -1
2 60 0 -1 8 -1 -1 8 -1 600 0 -1 -1 -1 -1 -1 -1 -1
3 120 2 600 0 -1 -1 4 -1 600 1 -1 -1 -1 -1 -1 -1 -1
4 180 1 60 4 -1 -1 4 -1 60 5 -1 -1 -1 -1 -1 -1 -1
";

    #[test]
    fn parses_and_filters() {
        let jobs = parse_swf(SAMPLE).unwrap();
        // Job 2 has unknown runtime, job 3 has zero processors: dropped.
        assert_eq!(jobs.len(), 2);
        assert_eq!(
            jobs[0],
            SwfJob {
                id: 1,
                submit: 0,
                run_time: 3600,
                processors: 16,
                status: 1
            }
        );
        // Failed jobs (status 5) are kept.
        assert_eq!(jobs[1].status, 5);
    }

    #[test]
    fn reports_errors_with_line_numbers() {
        assert_eq!(
            parse_swf("1 2 3").unwrap_err(),
            SwfError::TooFewFields { line: 1 }
        );
        let bad = "1 0 0 x 4 -1 -1 4 -1 60 1";
        assert_eq!(
            parse_swf(bad).unwrap_err(),
            SwfError::BadField { line: 1, field: 4 }
        );
        assert!(parse_swf("1 2 3")
            .unwrap_err()
            .to_string()
            .contains("line 1"));
    }

    #[test]
    fn conversion_shapes_jobs() {
        let jobs = parse_swf(SAMPLE).unwrap();
        let shape = SwfShape::default();
        let specs = jobs_from_swf(&jobs, &shape);
        assert_eq!(specs.len(), 2);
        // Job 1: 16 procs, 3600 s / 60 s-per-step = 60 steps of compute
        // + 2 I/O phases of ceil(60*0.1) = 6 steps each.
        let d = &specs[0].dag;
        assert_eq!(d.k(), 2);
        assert_eq!(d.span(), 6 + 60 + 6);
        assert_eq!(d.work(Category(0)), 16 * 60);
        assert_eq!(d.work(Category(1)), 12);
        assert_eq!(specs[0].release, 0);
        // Job 4: release 180/60 = 3.
        assert_eq!(specs[1].release, 3);
    }

    #[test]
    fn width_and_task_caps_apply() {
        let rec = SwfJob {
            id: 1,
            submit: 0,
            run_time: 1_000_000,
            processors: 500,
            status: 1,
        };
        let shape = SwfShape {
            io: None,
            max_width: 8,
            max_tasks: 100,
            ..SwfShape::default()
        };
        let specs = jobs_from_swf(&[rec], &shape);
        let d = &specs[0].dag;
        assert!(d.total_work() <= 100);
        // Width capped at 8 → profile width ≤ 8.
        let profile = kdag::parallelism_profile(d);
        assert!(profile.iter().all(|r| r.by_category[0] <= 8));
    }

    #[test]
    fn synthetic_trace_roundtrips() {
        let text = synthetic_swf(50);
        let records = parse_swf(&text).unwrap();
        assert_eq!(records.len(), 50);
        let stats = swf_stats(&records);
        assert_eq!(stats.jobs, 50);
        assert!(stats.max_processors <= 24);
        assert!(stats.total_work > 0);
        // Determinism.
        assert_eq!(text, synthetic_swf(50));
    }

    #[test]
    fn workload_is_simulator_ready() {
        let cfg = MixConfig::new(2, 0, 40);
        let jobs = synthetic_trace_workload(20, &cfg);
        assert_eq!(jobs.len(), 20);
        // Releases are monotone in the synthetic trace.
        for w in jobs.windows(2) {
            assert!(w[0].release <= w[1].release);
        }
        assert!(jobs.iter().all(|j| j.dag.k() == 2));
    }
}
