//! The Figure 3 instance packaged for the simulator.

use kdag::generators::{adversarial_instance, AdversarialInstance};
use ksim::{JobSpec, Resources};
use std::sync::Arc;

/// An adversarial workload ready to simulate: the job specs (batched),
/// the machine they target, and the analytically known optimum.
#[derive(Clone, Debug)]
pub struct AdversarialWorkload {
    /// Batched job specs in the adversary's submission order (special
    /// job last).
    pub jobs: Vec<JobSpec>,
    /// The machine the instance was built for.
    pub resources: Resources,
    /// The optimal clairvoyant makespan `T* = K + m·PK − 1`.
    pub optimal_makespan: u64,
    /// The asymptotic competitive-ratio bound `K + 1 − 1/Pmax`.
    pub bound: f64,
    /// The scale parameter `m`.
    pub m: u64,
}

/// Build the Theorem 1 adversarial workload for processor vector `p`
/// (last category must hold `Pmax`) and scale `m`.
///
/// Pair it with [`kdag::SelectionPolicy::CriticalLast`] to realize the
/// adversary: the environment postpones the special job's hidden
/// critical path whenever the scheduler under-allots it.
///
/// ```
/// use kworkloads::adversarial::adversarial_workload;
/// use kdag::SelectionPolicy;
/// use krad::KRad;
/// use ksim::{simulate, SimConfig};
/// let w = adversarial_workload(&[2, 2], 4);
/// let mut sched = KRad::new(2);
/// let cfg = SimConfig::default().with_policy(SelectionPolicy::CriticalLast);
/// let o = simulate(&mut sched, &w.jobs, &w.resources, &cfg);
/// // The proof's exact worst-case trajectory: m·K·PK + m·PK − m.
/// assert_eq!(o.makespan, 4 * 2 * 2 + 4 * 2 - 4);
/// ```
pub fn adversarial_workload(p: &[u32], m: u64) -> AdversarialWorkload {
    let inst: AdversarialInstance = adversarial_instance(p, m);
    let resources = Resources::new(p.to_vec());
    let bound = inst.asymptotic_bound(resources.p_max());
    // Share one Arc across the identical single-task jobs.
    let mut jobs: Vec<JobSpec> = Vec::with_capacity(inst.jobs.len());
    let mut singles: Option<Arc<kdag::JobDag>> = None;
    for (i, dag) in inst.jobs.into_iter().enumerate() {
        if i == inst.special {
            jobs.push(JobSpec {
                dag: Arc::new(dag),
                release: 0,
            });
        } else {
            let arc = singles.get_or_insert_with(|| Arc::new(dag.clone())).clone();
            jobs.push(JobSpec {
                dag: arc,
                release: 0,
            });
        }
    }
    AdversarialWorkload {
        jobs,
        resources,
        optimal_makespan: inst.optimal_makespan,
        bound,
        m: inst.m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_matches_instance_metadata() {
        let w = adversarial_workload(&[2, 4], 3);
        assert_eq!(w.jobs.len() as u64, 3 * 2 * 4);
        assert_eq!(w.optimal_makespan, 2 + 3 * 4 - 1);
        assert!((w.bound - 2.75).abs() < 1e-12);
        assert_eq!(w.resources.as_slice(), &[2, 4]);
        // Special job is last and is the big one.
        let last = w.jobs.last().unwrap();
        assert!(last.dag.len() > 1);
        assert!(w.jobs[0].dag.len() == 1);
    }

    #[test]
    fn singles_share_one_dag_allocation() {
        let w = adversarial_workload(&[2, 2], 2);
        let first = &w.jobs[0].dag;
        let second = &w.jobs[1].dag;
        assert!(Arc::ptr_eq(first, second), "singles must share their DAG");
    }
}
