//! Release-time processes layered on top of job sets.

use ksim::{JobSpec, Time};
use rand::rngs::StdRng;
use rand::Rng;

/// Assign Poisson-process release times: interarrival gaps are
/// exponential with rate `lambda` (mean gap `1/λ` steps), rounded to
/// integer steps. The first job keeps release 0 so the set is never
/// entirely in the future.
///
/// # Panics
/// Panics if `lambda <= 0`.
pub fn poisson_releases(jobs: &mut [JobSpec], rng: &mut StdRng, lambda: f64) {
    assert!(lambda > 0.0, "arrival rate must be positive");
    let mut t = 0.0f64;
    for (i, job) in jobs.iter_mut().enumerate() {
        if i > 0 {
            // Inverse-transform exponential sample.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / lambda;
        }
        job.release = t.floor() as Time;
    }
}

/// Assign releases drawn uniformly from `[0, horizon]`, then sorted so
/// job indices remain in release order.
pub fn uniform_releases(jobs: &mut [JobSpec], rng: &mut StdRng, horizon: Time) {
    let mut times: Vec<Time> = (0..jobs.len())
        .map(|_| rng.gen_range(0..=horizon))
        .collect();
    times.sort_unstable();
    if let Some(first) = times.first_mut() {
        *first = 0;
    }
    for (job, t) in jobs.iter_mut().zip(times) {
        job.release = t;
    }
}

/// Reset every release to 0 (batched).
pub fn batch_releases(jobs: &mut [JobSpec]) {
    for job in jobs {
        job.release = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_for;
    use kdag::{generators::chain, Category};

    fn jobs(n: usize) -> Vec<JobSpec> {
        (0..n)
            .map(|_| JobSpec::batched(chain(1, 3, &[Category(0)])))
            .collect()
    }

    #[test]
    fn poisson_is_monotone_and_starts_at_zero() {
        let mut js = jobs(50);
        poisson_releases(&mut js, &mut rng_for(1, 0), 0.5);
        assert_eq!(js[0].release, 0);
        for w in js.windows(2) {
            assert!(w[0].release <= w[1].release);
        }
        // Mean gap ≈ 2 steps: the last release should be in a sane range.
        let last = js.last().unwrap().release;
        assert!(last > 20 && last < 500, "last release {last}");
    }

    #[test]
    fn uniform_is_sorted_within_horizon() {
        let mut js = jobs(20);
        uniform_releases(&mut js, &mut rng_for(2, 0), 100);
        assert_eq!(js[0].release, 0);
        for w in js.windows(2) {
            assert!(w[0].release <= w[1].release);
        }
        assert!(js.iter().all(|j| j.release <= 100));
    }

    #[test]
    fn batch_resets() {
        let mut js = jobs(5);
        uniform_releases(&mut js, &mut rng_for(3, 0), 50);
        batch_releases(&mut js);
        assert!(js.iter().all(|j| j.release == 0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lambda_panics() {
        let mut js = jobs(2);
        poisson_releases(&mut js, &mut rng_for(0, 0), 0.0);
    }
}
