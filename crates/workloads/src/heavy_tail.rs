//! Heavy-tailed sizes and bursty arrivals — online-stress realism.
//!
//! Real parallel-job traces famously have heavy-tailed service demands
//! and bursty (non-Poisson) arrivals. These generators provide a
//! bounded-Pareto size distribution and a two-state Markov-modulated
//! Poisson process (MMPP) for releases, used by experiment T12 to
//! stress-test the schedulers beyond the smooth mixes.

use crate::mixes::{random_job, MixConfig};
use ksim::{JobSpec, Time};
use rand::rngs::StdRng;
use rand::Rng;

/// Sample a bounded Pareto(α) value in `[min, max]` by inverse
/// transform.
///
/// # Panics
/// Panics if `alpha <= 0` or `min >= max` or `min <= 0`.
pub fn bounded_pareto(rng: &mut StdRng, alpha: f64, min: f64, max: f64) -> f64 {
    assert!(alpha > 0.0, "alpha must be positive");
    assert!(min > 0.0 && min < max, "need 0 < min < max");
    let u: f64 = rng.gen_range(0.0..1.0);
    let la = min.powf(alpha);
    let ha = max.powf(alpha);
    // Inverse CDF of the bounded Pareto.
    (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
}

/// Draw `n` heavy-tailed job sizes (task counts) in `[min, max]`.
pub fn heavy_tailed_sizes(
    rng: &mut StdRng,
    n: usize,
    alpha: f64,
    min: usize,
    max: usize,
) -> Vec<usize> {
    (0..n)
        .map(|_| bounded_pareto(rng, alpha, min as f64, max as f64).round() as usize)
        .collect()
}

/// A batched job set with bounded-Pareto(α) sizes and mixed shapes.
pub fn heavy_tail_mix(
    rng: &mut StdRng,
    k: usize,
    n: usize,
    alpha: f64,
    min_size: usize,
    max_size: usize,
) -> Vec<JobSpec> {
    let cfg = MixConfig::new(k, n, (min_size + max_size) / 2);
    heavy_tailed_sizes(rng, n, alpha, min_size, max_size)
        .into_iter()
        .map(|size| JobSpec::batched(random_job(rng, &cfg, size)))
        .collect()
}

/// Two-state MMPP arrival configuration.
#[derive(Clone, Copy, Debug)]
pub struct BurstyConfig {
    /// Arrival rate while the source is in its burst (ON) state.
    pub burst_rate: f64,
    /// Arrival rate while the source idles (OFF state).
    pub idle_rate: f64,
    /// Probability of switching state after each arrival.
    pub switch_prob: f64,
}

impl Default for BurstyConfig {
    fn default() -> Self {
        BurstyConfig {
            burst_rate: 2.0,
            idle_rate: 0.05,
            switch_prob: 0.15,
        }
    }
}

/// Assign bursty release times: exponential gaps whose rate is
/// modulated by a two-state Markov chain. The first job keeps
/// release 0.
///
/// # Panics
/// Panics on non-positive rates or `switch_prob` outside `[0, 1]`.
pub fn bursty_releases(jobs: &mut [JobSpec], rng: &mut StdRng, cfg: &BurstyConfig) {
    assert!(
        cfg.burst_rate > 0.0 && cfg.idle_rate > 0.0,
        "rates must be positive"
    );
    assert!(
        (0.0..=1.0).contains(&cfg.switch_prob),
        "switch_prob must be a probability"
    );
    let mut t = 0.0f64;
    let mut bursting = true;
    for (i, job) in jobs.iter_mut().enumerate() {
        if i > 0 {
            let rate = if bursting {
                cfg.burst_rate
            } else {
                cfg.idle_rate
            };
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / rate;
            if rng.gen_bool(cfg.switch_prob) {
                bursting = !bursting;
            }
        }
        job.release = t.floor() as Time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_for;

    #[test]
    fn pareto_respects_bounds() {
        let mut rng = rng_for(1, 0xE0);
        for _ in 0..2000 {
            let x = bounded_pareto(&mut rng, 1.2, 4.0, 400.0);
            assert!((4.0..=400.0).contains(&x), "out of bounds: {x}");
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        // With α = 1.1, the max of 500 draws should dwarf the median.
        let mut rng = rng_for(2, 0xE1);
        let mut v: Vec<f64> = (0..500)
            .map(|_| bounded_pareto(&mut rng, 1.1, 2.0, 2000.0))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[250];
        let max = v[499];
        assert!(
            max > median * 20.0,
            "tail too light: median {median:.1}, max {max:.1}"
        );
    }

    #[test]
    fn heavy_tail_mix_builds_valid_jobs() {
        let mut rng = rng_for(3, 0xE2);
        let jobs = heavy_tail_mix(&mut rng, 2, 40, 1.1, 4, 200);
        assert_eq!(jobs.len(), 40);
        let sizes: Vec<usize> = jobs.iter().map(|j| j.dag.len()).collect();
        // Deterministic seed; the spread (not exact values) is the point.
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max > min * 5, "tail too light: min {min}, max {max}");
        assert!(min < 20, "no small jobs: {sizes:?}");
    }

    #[test]
    fn bursty_releases_cluster() {
        let mut rng = rng_for(4, 0xE3);
        let mut jobs = heavy_tail_mix(&mut rng, 1, 60, 1.5, 2, 20);
        bursty_releases(&mut jobs, &mut rng, &BurstyConfig::default());
        assert_eq!(jobs[0].release, 0);
        // Gaps must be wildly uneven: some zero (burst), some huge (idle).
        let gaps: Vec<u64> = jobs
            .windows(2)
            .map(|w| w[1].release - w[0].release)
            .collect();
        let zeros = gaps.iter().filter(|&&g| g == 0).count();
        let max_gap = *gaps.iter().max().unwrap();
        assert!(zeros >= 5, "bursts should pack arrivals: {gaps:?}");
        assert!(max_gap >= 10, "idle phases should space them: {gaps:?}");
    }

    #[test]
    fn releases_are_monotone() {
        let mut rng = rng_for(5, 0xE4);
        let mut jobs = heavy_tail_mix(&mut rng, 1, 30, 1.5, 2, 20);
        bursty_releases(&mut jobs, &mut rng, &BurstyConfig::default());
        for w in jobs.windows(2) {
            assert!(w[0].release <= w[1].release);
        }
    }
}
