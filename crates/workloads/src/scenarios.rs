//! Named end-to-end scenarios for the baseline comparison (T7) and the
//! examples. Each returns jobs + a machine sized for the workload.

use crate::arrivals::poisson_releases;
use crate::mixes::{batched_mix, MixConfig};
use kdag::generators::{chain, map_reduce, phased, MapReduceSpec, PhaseSpec};
use kdag::Category;
use ksim::{JobSpec, Resources};
use rand::rngs::StdRng;
use rand::Rng;

/// A named scenario: jobs, machine, and a label for tables.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Stable label used in tables and reports.
    pub label: &'static str,
    /// The job set (releases may be non-zero).
    pub jobs: Vec<JobSpec>,
    /// The machine the scenario targets.
    pub resources: Resources,
}

/// Heterogeneous pipeline: `n` jobs alternating CPU (α1) computation
/// with I/O (α2) stages — the paper's motivating "interleaving
/// computations and I/Os" programs. Batched.
pub fn pipeline(rng: &mut StdRng, n: usize) -> Scenario {
    let jobs = (0..n)
        .map(|_| {
            let stages = rng.gen_range(4..=10);
            let width = rng.gen_range(1..=6u32);
            if rng.gen_bool(0.5) {
                // Narrow alternating chain.
                JobSpec::batched(chain(2, stages * 2, &[Category(0), Category(1)]))
            } else {
                // Wide compute phases punctuated by narrow I/O.
                let phases: Vec<PhaseSpec> = (0..stages)
                    .flat_map(|_| {
                        [
                            PhaseSpec::new(Category(0), width, 2),
                            PhaseSpec::new(Category(1), 1, 1),
                        ]
                    })
                    .collect();
                JobSpec::batched(phased(2, &phases))
            }
        })
        .collect();
    Scenario {
        label: "pipeline",
        jobs,
        resources: Resources::new(vec![8, 2]),
    }
}

/// Map-reduce cluster: `n` jobs of map (CPU) / reduce (I/O) rounds of
/// varying fan-out. Batched.
pub fn mapreduce(rng: &mut StdRng, n: usize) -> Scenario {
    let jobs = (0..n)
        .map(|_| {
            let spec = MapReduceSpec {
                map_category: Category(0),
                map_count: rng.gen_range(4..=16),
                reduce_category: Category(1),
                reduce_count: rng.gen_range(1..=4),
                rounds: rng.gen_range(1..=4),
            };
            JobSpec::batched(map_reduce(2, &spec))
        })
        .collect();
    Scenario {
        label: "map-reduce",
        jobs,
        resources: Resources::new(vec![8, 4]),
    }
}

/// Mixed server: a 3-category machine (CPU, vector, I/O) receiving a
/// random mix of job shapes via a Poisson arrival process.
pub fn mixed_server(rng: &mut StdRng, n: usize, lambda: f64) -> Scenario {
    let cfg = MixConfig::new(3, n, 48);
    let mut jobs = batched_mix(rng, &cfg);
    poisson_releases(&mut jobs, rng, lambda);
    Scenario {
        label: "mixed-server",
        jobs,
        resources: Resources::new(vec![8, 4, 4]),
    }
}

/// All scenarios at a standard size, for the T7 comparison table.
pub fn standard_suite(rng: &mut StdRng) -> Vec<Scenario> {
    vec![
        pipeline(rng, 24),
        mapreduce(rng, 24),
        mixed_server(rng, 48, 0.25),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_for;

    #[test]
    fn scenarios_are_well_formed() {
        for sc in standard_suite(&mut rng_for(42, 0)) {
            assert!(!sc.jobs.is_empty(), "{}: empty", sc.label);
            for j in &sc.jobs {
                assert_eq!(j.dag.k(), sc.resources.k(), "{}: K mismatch", sc.label);
            }
        }
    }

    #[test]
    fn pipeline_uses_both_categories() {
        let sc = pipeline(&mut rng_for(1, 0), 10);
        let mut totals = [0u64; 2];
        for j in &sc.jobs {
            totals[0] += j.dag.work(Category(0));
            totals[1] += j.dag.work(Category(1));
        }
        assert!(totals[0] > 0 && totals[1] > 0);
    }

    #[test]
    fn mixed_server_has_arrivals() {
        let sc = mixed_server(&mut rng_for(2, 0), 30, 0.2);
        assert!(sc.jobs.iter().any(|j| j.release > 0));
        assert_eq!(sc.jobs[0].release, 0);
    }

    #[test]
    fn suite_is_deterministic() {
        let a = standard_suite(&mut rng_for(9, 9));
        let b = standard_suite(&mut rng_for(9, 9));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.jobs.len(), y.jobs.len());
            let wx: u64 = x.jobs.iter().map(|j| j.dag.total_work()).sum();
            let wy: u64 = y.jobs.iter().map(|j| j.dag.total_work()).sum();
            assert_eq!(wx, wy);
        }
    }
}
