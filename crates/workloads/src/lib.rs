//! # kworkloads — seeded workload suites for the K-RAD experiments
//!
//! Everything here is deterministic given a seed: the experiments and
//! integration tests pin seeds so tables are exactly reproducible.
//!
//! * [`mixes`] — random batched job sets mixing DAG shapes (chains,
//!   fork-join, layered, series-parallel, phased profiles);
//! * [`arrivals`] — release-time processes (batched, Poisson, uniform)
//!   layered on top of any job set;
//! * [`adversarial`] — the Figure 3 instance packaged as
//!   [`ksim::JobSpec`]s together with its analytically known optimum;
//! * [`scenarios`] — named end-to-end scenarios (heterogeneous
//!   pipeline, map-reduce cluster, mixed server) used by the baseline
//!   comparison (T7) and the examples;
//! * [`suite`] — the pinned perf/profiling workload suite shared by
//!   the criterion benches, the `kperf` trajectory harness, and the
//!   CLI `profile`/`timeline` subcommands.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversarial;
pub mod arrivals;
pub mod heavy_tail;
pub mod mixes;
pub mod persist;
pub mod scenarios;
pub mod suite;
pub mod swf;

/// The canonical experiment RNG: `StdRng` seeded with a stable hash of
/// `(seed, salt)` so that sub-streams are independent but reproducible.
pub fn rng_for(seed: u64, salt: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    // SplitMix64 over the pair gives well-spread, stable sub-seeds.
    let mut z = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(salt.wrapping_mul(0xBF58476D1CE4E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    rand::rngs::StdRng::seed_from_u64(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn rng_is_deterministic_and_salted() {
        let mut a = rng_for(1, 2);
        let mut b = rng_for(1, 2);
        let mut c = rng_for(1, 3);
        assert_eq!(a.next_u64(), b.next_u64());
        // Different salt gives a different stream (w.h.p.).
        assert_ne!(rng_for(1, 2).next_u64(), c.next_u64());
    }
}
