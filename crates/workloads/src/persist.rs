//! Saving and loading job sets as JSON.
//!
//! Lets experiments pin exact workloads to disk (or share regression
//! cases) instead of relying on generator/seed stability across
//! versions. Everything re-validates through [`kdag::DagSpec::build`]
//! on load, so a corrupted file can never produce an invalid DAG.

use kdag::{DagError, DagSpec};
use ksim::{JobSpec, Time};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;

/// Serializable form of one job.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobRecord {
    /// The DAG description.
    pub dag: DagSpec,
    /// Release time.
    pub release: Time,
}

/// Serializable form of a whole job set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobSetSpec {
    /// Optional human label.
    pub label: String,
    /// The jobs, in submission order.
    pub jobs: Vec<JobRecord>,
}

/// Errors from loading a job set.
#[derive(Debug)]
pub enum PersistError {
    /// File system error.
    Io(std::io::Error),
    /// JSON parse error.
    Json(serde_json::Error),
    /// A DAG failed validation (index of the offending job + cause).
    InvalidDag(usize, DagError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Json(e) => write!(f, "json error: {e}"),
            PersistError::InvalidDag(i, e) => write!(f, "job {i} has an invalid DAG: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl JobSetSpec {
    /// Capture a job set for saving.
    pub fn capture(label: &str, jobs: &[JobSpec]) -> JobSetSpec {
        JobSetSpec {
            label: label.to_string(),
            jobs: jobs
                .iter()
                .map(|j| JobRecord {
                    dag: DagSpec::from_dag(&j.dag),
                    release: j.release,
                })
                .collect(),
        }
    }

    /// Rebuild (and re-validate) the simulator-ready job specs.
    pub fn restore(&self) -> Result<Vec<JobSpec>, PersistError> {
        self.jobs
            .iter()
            .enumerate()
            .map(|(i, rec)| {
                let dag = rec
                    .dag
                    .build()
                    .map_err(|e| PersistError::InvalidDag(i, e))?;
                Ok(JobSpec {
                    dag: Arc::new(dag),
                    release: rec.release,
                })
            })
            .collect()
    }
}

/// Save a job set to a JSON file.
pub fn save_jobset(path: &Path, label: &str, jobs: &[JobSpec]) -> Result<(), PersistError> {
    let spec = JobSetSpec::capture(label, jobs);
    let json = serde_json::to_string_pretty(&spec).map_err(PersistError::Json)?;
    std::fs::write(path, json).map_err(PersistError::Io)
}

/// Load a job set from a JSON file, re-validating every DAG.
pub fn load_jobset(path: &Path) -> Result<(String, Vec<JobSpec>), PersistError> {
    let text = std::fs::read_to_string(path).map_err(PersistError::Io)?;
    let spec: JobSetSpec = serde_json::from_str(&text).map_err(PersistError::Json)?;
    let jobs = spec.restore()?;
    Ok((spec.label, jobs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixes::{batched_mix, MixConfig};
    use crate::rng_for;

    #[test]
    fn roundtrip_through_disk() {
        let jobs = batched_mix(&mut rng_for(3, 0xF1), &MixConfig::new(2, 6, 20));
        let path = std::env::temp_dir().join(format!("krad-jobs-{}.json", std::process::id()));
        save_jobset(&path, "test-set", &jobs).unwrap();
        let (label, loaded) = load_jobset(&path).unwrap();
        assert_eq!(label, "test-set");
        assert_eq!(loaded.len(), jobs.len());
        for (a, b) in jobs.iter().zip(&loaded) {
            assert_eq!(a.release, b.release);
            assert_eq!(a.dag.len(), b.dag.len());
            assert_eq!(a.dag.span(), b.dag.span());
            assert_eq!(a.dag.work_by_category(), b.dag.work_by_category());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_dag_is_rejected() {
        let spec = JobSetSpec {
            label: "bad".into(),
            jobs: vec![JobRecord {
                dag: kdag::DagSpec {
                    k: 1,
                    categories: vec![0, 0],
                    edges: vec![(0, 1), (1, 0)],
                },
                release: 0,
            }],
        };
        match spec.restore() {
            Err(PersistError::InvalidDag(0, kdag::DagError::Cycle)) => {}
            other => panic!("expected cycle rejection, got {other:?}"),
        }
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_jobset(Path::new("/nonexistent/krad.json")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
        assert!(err.to_string().contains("io error"));
    }
}
