//! The pinned profiling/perf workload suite.
//!
//! One canonical definition of the workloads the perf trajectory is
//! measured on, shared by the `engine_hot_path` criterion bench, the
//! `kperf` harness (which emits `BENCH_*.json`), and the CLI
//! `profile`/`timeline` subcommands — so a number in the trajectory
//! always refers to exactly the same jobs on exactly the same machine.
//!
//! Everything is seeded through [`crate::rng_for`]; a pinned workload
//! is bit-for-bit reproducible across runs and machines.

use crate::heavy_tail::{bursty_releases, heavy_tail_mix, BurstyConfig};
use crate::mixes::{batched_mix, MixConfig};
use crate::rng_for;
use crate::swf::synthetic_trace_workload;
use kdag::generators::{layered_random, LayeredConfig};
use ksim::{JobSpec, Resources};

/// The T12 stress workload, full (non-quick) size: 80 heavy-tailed
/// jobs with bursty MMPP releases on a `[6, 3]` machine — many
/// concurrently active jobs, constant arrival/completion churn.
pub fn t12_stress() -> (Vec<JobSpec>, Resources) {
    let mut rng = rng_for(42, 0x7C);
    let mut jobs = heavy_tail_mix(&mut rng, 2, 80, 1.2, 10, 500);
    let cfg = BurstyConfig {
        burst_rate: 4.0,
        idle_rate: 0.02,
        switch_prob: 0.08,
    };
    bursty_releases(&mut jobs, &mut rng, &cfg);
    (jobs, Resources::new(vec![6, 3]))
}

/// One deep layered DAG (~200 layers of width 20–60, ~8k tasks) on a
/// `[16, 16]` machine: per-step cost is dominated by ready-queue
/// maintenance inside a single execution state.
pub fn large_dag() -> (Vec<JobSpec>, Resources) {
    let cfg = LayeredConfig::uniform(2, 200, 20, 60);
    let dag = layered_random(&mut rng_for(7, 0xDA6), &cfg);
    (vec![JobSpec::batched(dag)], Resources::new(vec![16, 16]))
}

/// Many small jobs: 300 mixed-shape batched jobs on a `[6, 3]`
/// machine — per-step cost is dominated by per-job engine bookkeeping.
pub fn many_jobs() -> (Vec<JobSpec>, Resources) {
    let jobs = batched_mix(&mut rng_for(0xBEEF, 300), &MixConfig::new(2, 300, 24));
    (jobs, Resources::new(vec![6, 3]))
}

/// A deterministic SWF-trace slice: 60 synthetic archive records
/// shaped into rectangular compute + I/O bracket jobs (releases follow
/// the trace's submit times) on a `[16, 2]` machine.
pub fn swf_slice() -> (Vec<JobSpec>, Resources) {
    let cfg = MixConfig::new(2, 0, 40);
    let jobs = synthetic_trace_workload(60, &cfg);
    (jobs, Resources::new(vec![16, 2]))
}

/// One workload of the pinned suite, addressable by name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinnedWorkload {
    /// [`t12_stress`].
    T12Stress,
    /// [`large_dag`].
    LargeDag,
    /// [`many_jobs`].
    ManyJobs,
    /// [`swf_slice`].
    SwfSlice,
}

impl PinnedWorkload {
    /// Every pinned workload, in trajectory order.
    pub const ALL: [PinnedWorkload; 4] = [
        PinnedWorkload::T12Stress,
        PinnedWorkload::LargeDag,
        PinnedWorkload::ManyJobs,
        PinnedWorkload::SwfSlice,
    ];

    /// The canonical suite name (used in `BENCH_*.json` and the CLI).
    pub fn name(self) -> &'static str {
        match self {
            PinnedWorkload::T12Stress => "t12-stress",
            PinnedWorkload::LargeDag => "large-dag",
            PinnedWorkload::ManyJobs => "many-jobs",
            PinnedWorkload::SwfSlice => "swf-slice",
        }
    }

    /// Parse a workload name; short aliases (`t12`, `dag`, `jobs`,
    /// `swf`) are accepted.
    pub fn from_name(name: &str) -> Option<PinnedWorkload> {
        match name {
            "t12-stress" | "t12" => Some(PinnedWorkload::T12Stress),
            "large-dag" | "dag" => Some(PinnedWorkload::LargeDag),
            "many-jobs" | "jobs" => Some(PinnedWorkload::ManyJobs),
            "swf-slice" | "swf" => Some(PinnedWorkload::SwfSlice),
            _ => None,
        }
    }

    /// Build the jobs and the machine they are pinned to.
    pub fn build(self) -> (Vec<JobSpec>, Resources) {
        match self {
            PinnedWorkload::T12Stress => t12_stress(),
            PinnedWorkload::LargeDag => large_dag(),
            PinnedWorkload::ManyJobs => many_jobs(),
            PinnedWorkload::SwfSlice => swf_slice(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_deterministic() {
        for w in PinnedWorkload::ALL {
            let (a, res_a) = w.build();
            let (b, res_b) = w.build();
            assert_eq!(a.len(), b.len(), "{}", w.name());
            assert_eq!(res_a.as_slice(), res_b.as_slice());
            assert_eq!(
                a.iter()
                    .map(|j| (j.release, j.dag.len()))
                    .collect::<Vec<_>>(),
                b.iter()
                    .map(|j| (j.release, j.dag.len()))
                    .collect::<Vec<_>>(),
                "{}",
                w.name()
            );
        }
    }

    #[test]
    fn workloads_match_their_machines() {
        for w in PinnedWorkload::ALL {
            let (jobs, res) = w.build();
            assert!(!jobs.is_empty(), "{}", w.name());
            assert!(jobs.iter().all(|j| j.dag.k() == res.k()), "{}", w.name());
        }
    }

    #[test]
    fn names_round_trip() {
        for w in PinnedWorkload::ALL {
            assert_eq!(PinnedWorkload::from_name(w.name()), Some(w));
        }
        assert_eq!(
            PinnedWorkload::from_name("t12"),
            Some(PinnedWorkload::T12Stress)
        );
        assert_eq!(PinnedWorkload::from_name("nope"), None);
    }
}
