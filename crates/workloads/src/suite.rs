//! The pinned profiling/perf workload suite.
//!
//! One canonical definition of the workloads the perf trajectory is
//! measured on, shared by the `engine_hot_path` criterion bench, the
//! `kperf` harness (which emits `BENCH_*.json`), and the CLI
//! `profile`/`timeline` subcommands — so a number in the trajectory
//! always refers to exactly the same jobs on exactly the same machine.
//!
//! Everything is seeded through [`crate::rng_for`]; a pinned workload
//! is bit-for-bit reproducible across runs and machines.

use crate::heavy_tail::{bursty_releases, heavy_tail_mix, BurstyConfig};
use crate::mixes::{batched_mix, MixConfig};
use crate::rng_for;
use crate::swf::synthetic_trace_workload;
use kdag::generators::{layered_random, phased, LayeredConfig, PhaseSpec};
use kdag::Category;
use ksim::{JobSpec, Resources};
use std::sync::Arc;

/// The T12 stress workload, full (non-quick) size: 80 heavy-tailed
/// jobs with bursty MMPP releases on a `[6, 3]` machine — many
/// concurrently active jobs, constant arrival/completion churn.
pub fn t12_stress() -> (Vec<JobSpec>, Resources) {
    let mut rng = rng_for(42, 0x7C);
    let mut jobs = heavy_tail_mix(&mut rng, 2, 80, 1.2, 10, 500);
    let cfg = BurstyConfig {
        burst_rate: 4.0,
        idle_rate: 0.02,
        switch_prob: 0.08,
    };
    bursty_releases(&mut jobs, &mut rng, &cfg);
    (jobs, Resources::new(vec![6, 3]))
}

/// One deep layered DAG (~200 layers of width 20–60, ~8k tasks) on a
/// `[16, 16]` machine: per-step cost is dominated by ready-queue
/// maintenance inside a single execution state.
pub fn large_dag() -> (Vec<JobSpec>, Resources) {
    let cfg = LayeredConfig::uniform(2, 200, 20, 60);
    let dag = layered_random(&mut rng_for(7, 0xDA6), &cfg);
    (vec![JobSpec::batched(dag)], Resources::new(vec![16, 16]))
}

/// Many small jobs: 300 mixed-shape batched jobs on a `[6, 3]`
/// machine — per-step cost is dominated by per-job engine bookkeeping.
pub fn many_jobs() -> (Vec<JobSpec>, Resources) {
    let jobs = batched_mix(&mut rng_for(0xBEEF, 300), &MixConfig::new(2, 300, 24));
    (jobs, Resources::new(vec![6, 3]))
}

/// A deterministic SWF-trace slice: 60 synthetic archive records
/// shaped into rectangular compute + I/O bracket jobs (releases follow
/// the trace's submit times) on a `[16, 2]` machine.
pub fn swf_slice() -> (Vec<JobSpec>, Resources) {
    let cfg = MixConfig::new(2, 0, 40);
    let jobs = synthetic_trace_workload(60, &cfg);
    (jobs, Resources::new(vec![16, 2]))
}

/// Trace-scale sparse workload: 120 small phased jobs (I/O bracket +
/// compute rectangle, width 1–4) whose releases are separated by
/// 400–2300 steps of quiet, stretching the horizon to ~160k steps on a
/// `[16, 2]` machine. Paired with its pinned quantum of 4096 (see
/// [`PinnedWorkload::quantum`]), arriving jobs sit un-allotted until
/// the next freeze boundary while the machine is otherwise drained —
/// the regime where the unit stepper pays one call per simulated step
/// and the event-driven clock collapses whole segments to O(1).
pub fn trace_sparse() -> (Vec<JobSpec>, Resources) {
    let mut jobs = Vec::with_capacity(120);
    let mut t: u64 = 0;
    for i in 0..120u64 {
        t += 400 + (i * 181) % 1900;
        let width = 1 + (i % 4) as u32;
        let length = 8 + ((i * 7) % 25) as u32;
        let io_len = 1 + (i % 3) as u32;
        let phases = [
            PhaseSpec::new(Category(1), 1, io_len),
            PhaseSpec::new(Category(0), width, length),
            PhaseSpec::new(Category(1), 1, io_len),
        ];
        jobs.push(JobSpec {
            dag: Arc::new(phased(2, &phases)),
            release: t,
        });
    }
    (jobs, Resources::new(vec![16, 2]))
}

/// One workload of the pinned suite, addressable by name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinnedWorkload {
    /// [`t12_stress`].
    T12Stress,
    /// [`large_dag`].
    LargeDag,
    /// [`many_jobs`].
    ManyJobs,
    /// [`swf_slice`].
    SwfSlice,
    /// [`trace_sparse`].
    TraceSparse,
}

impl PinnedWorkload {
    /// Every pinned workload, in trajectory order.
    pub const ALL: [PinnedWorkload; 5] = [
        PinnedWorkload::T12Stress,
        PinnedWorkload::LargeDag,
        PinnedWorkload::ManyJobs,
        PinnedWorkload::SwfSlice,
        PinnedWorkload::TraceSparse,
    ];

    /// The canonical suite name (used in `BENCH_*.json` and the CLI).
    pub fn name(self) -> &'static str {
        match self {
            PinnedWorkload::T12Stress => "t12-stress",
            PinnedWorkload::LargeDag => "large-dag",
            PinnedWorkload::ManyJobs => "many-jobs",
            PinnedWorkload::SwfSlice => "swf-slice",
            PinnedWorkload::TraceSparse => "trace-sparse",
        }
    }

    /// Parse a workload name; short aliases (`t12`, `dag`, `jobs`,
    /// `swf`) are accepted.
    pub fn from_name(name: &str) -> Option<PinnedWorkload> {
        match name {
            "t12-stress" | "t12" => Some(PinnedWorkload::T12Stress),
            "large-dag" | "dag" => Some(PinnedWorkload::LargeDag),
            "many-jobs" | "jobs" => Some(PinnedWorkload::ManyJobs),
            "swf-slice" | "swf" => Some(PinnedWorkload::SwfSlice),
            "trace-sparse" | "sparse" => Some(PinnedWorkload::TraceSparse),
            _ => None,
        }
    }

    /// Build the jobs and the machine they are pinned to.
    pub fn build(self) -> (Vec<JobSpec>, Resources) {
        match self {
            PinnedWorkload::T12Stress => t12_stress(),
            PinnedWorkload::LargeDag => large_dag(),
            PinnedWorkload::ManyJobs => many_jobs(),
            PinnedWorkload::SwfSlice => swf_slice(),
            PinnedWorkload::TraceSparse => trace_sparse(),
        }
    }

    /// The scheduling quantum the workload is pinned to. The dense
    /// workloads are measured at the paper's unit quantum; the sparse
    /// trace shape is measured at a coarse quantum (4096) so allotments
    /// stay frozen across arrival gaps — the trace-scale regime.
    pub fn quantum(self) -> u64 {
        match self {
            PinnedWorkload::TraceSparse => 4096,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_deterministic() {
        for w in PinnedWorkload::ALL {
            let (a, res_a) = w.build();
            let (b, res_b) = w.build();
            assert_eq!(a.len(), b.len(), "{}", w.name());
            assert_eq!(res_a.as_slice(), res_b.as_slice());
            assert_eq!(
                a.iter()
                    .map(|j| (j.release, j.dag.len()))
                    .collect::<Vec<_>>(),
                b.iter()
                    .map(|j| (j.release, j.dag.len()))
                    .collect::<Vec<_>>(),
                "{}",
                w.name()
            );
        }
    }

    #[test]
    fn workloads_match_their_machines() {
        for w in PinnedWorkload::ALL {
            let (jobs, res) = w.build();
            assert!(!jobs.is_empty(), "{}", w.name());
            assert!(jobs.iter().all(|j| j.dag.k() == res.k()), "{}", w.name());
        }
    }

    #[test]
    fn trace_sparse_is_sparse() {
        let (jobs, res) = trace_sparse();
        assert_eq!(jobs.len(), 120);
        assert_eq!(res.as_slice(), &[16, 2]);
        let horizon = jobs.iter().map(|j| j.release).max().unwrap();
        let total_tasks: usize = jobs.iter().map(|j| j.dag.len()).sum();
        // The horizon dwarfs the work: most steps execute nothing.
        assert!(horizon > 100_000, "horizon {horizon}");
        assert!(total_tasks < 10_000, "tasks {total_tasks}");
        // Gaps stay below the pinned quantum + stall limit headroom.
        let mut prev = 0;
        for j in &jobs {
            assert!(j.release - prev < 2400);
            prev = j.release;
        }
    }

    #[test]
    fn names_round_trip() {
        for w in PinnedWorkload::ALL {
            assert_eq!(PinnedWorkload::from_name(w.name()), Some(w));
        }
        assert_eq!(
            PinnedWorkload::from_name("t12"),
            Some(PinnedWorkload::T12Stress)
        );
        assert_eq!(PinnedWorkload::from_name("nope"), None);
    }
}
