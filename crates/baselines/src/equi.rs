//! EQUI: equi-partitioning without desire feedback.

use kdag::Category;
use ksim::{AllotmentMatrix, JobView, Resources, Scheduler, Time};

/// The classic EQUI (equi-partitioning) scheduler: at every step, each
/// category's processors are divided *equally* among the α-active jobs
/// — `floor(Pα / |J(α,t)|)` each, remainder rotated — **without**
/// looking at how much each job can actually use.
///
/// This is the algorithm Edmonds et al. proved `(2 + √3)`-competitive
/// for mean response time on homogeneous machines. Its weakness versus
/// DEQ: a job desiring less than its share strands the surplus, which
/// DEQ would have redistributed — the engine executes
/// `min(allotment, desire)`, so EQUI's surplus is simply wasted.
#[derive(Clone, Debug, Default)]
pub struct Equi {
    spill: usize,
}

impl Equi {
    /// Create an EQUI scheduler.
    pub fn new() -> Self {
        Equi::default()
    }
}

impl Scheduler for Equi {
    fn name(&self) -> &str {
        "equi"
    }

    fn allot(
        &mut self,
        _t: Time,
        views: &[JobView<'_>],
        res: &Resources,
        out: &mut AllotmentMatrix,
    ) {
        for cat in Category::all(res.k()) {
            let active: Vec<usize> = (0..views.len())
                .filter(|&s| views[s].is_active(cat))
                .collect();
            if active.is_empty() {
                continue;
            }
            let p = res.processors(cat);
            let n = active.len();
            let share = p / n as u32;
            let extra = (p % n as u32) as usize;
            let start = self.spill % n;
            for (r, &slot) in active.iter().enumerate() {
                let bonus = ((r + n - start) % n < extra) as u32;
                out.set(slot, cat, share + bonus);
            }
        }
        self.spill = self.spill.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdag::JobId;

    fn views<'a>(desires: &'a [[u32; 1]]) -> Vec<JobView<'a>> {
        desires
            .iter()
            .enumerate()
            .map(|(i, d)| JobView {
                id: JobId(i as u32),
                release: 0,
                desires: d,
            })
            .collect()
    }

    #[test]
    fn equal_shares_ignore_desires() {
        let d = [[1u32], [100], [100], [100]];
        let v = views(&d);
        let res = Resources::uniform(1, 8);
        let mut out = AllotmentMatrix::new(1);
        out.reset(4);
        Equi::new().allot(1, &v, &res, &mut out);
        // 8/4 = 2 each — including the job that only wants 1 (waste).
        for s in 0..4 {
            assert_eq!(out.get(s, Category(0)), 2);
        }
    }

    #[test]
    fn inactive_jobs_excluded() {
        let d = [[0u32], [5], [5]];
        let v = views(&d);
        let res = Resources::uniform(1, 4);
        let mut out = AllotmentMatrix::new(1);
        out.reset(3);
        Equi::new().allot(1, &v, &res, &mut out);
        assert_eq!(out.get(0, Category(0)), 0);
        assert_eq!(out.get(1, Category(0)), 2);
        assert_eq!(out.get(2, Category(0)), 2);
    }

    #[test]
    fn remainder_rotates_across_steps() {
        let d = [[9u32], [9], [9]];
        let v = views(&d);
        let res = Resources::uniform(1, 8);
        let mut e = Equi::new();
        let mut shorts = Vec::new();
        for _ in 0..3 {
            let mut out = AllotmentMatrix::new(1);
            out.reset(3);
            e.allot(1, &v, &res, &mut out);
            let a: Vec<u32> = (0..3).map(|s| out.get(s, Category(0))).collect();
            assert_eq!(a.iter().sum::<u32>(), 8);
            shorts.push(a.iter().position(|&x| x == 2).unwrap());
        }
        shorts.sort_unstable();
        assert_eq!(shorts, vec![0, 1, 2], "short straw must rotate");
    }

    #[test]
    fn never_exceeds_capacity() {
        let d = [[3u32], [3], [3], [3], [3]];
        let v = views(&d);
        let res = Resources::uniform(1, 3);
        let mut out = AllotmentMatrix::new(1);
        out.reset(5);
        Equi::new().allot(1, &v, &res, &mut out);
        assert!(out.category_total(Category(0)) <= 3);
    }
}
