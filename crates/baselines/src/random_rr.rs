//! Randomized round-robin.

use kdag::{Category, JobId};
use ksim::{AllotmentMatrix, JobView, Resources, Scheduler, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Randomized round-robin: at every step, each category gives one
/// processor to each of `min(Pα, |J(α,t)|)` α-active jobs chosen
/// *uniformly at random* (a fresh partial Fisher-Yates per step).
///
/// The paper's §4 cites Shmoys et al.'s `(2 − 1/√P)` lower bound for
/// randomized algorithms against oblivious adversaries: randomization
/// can beat the deterministic `2 − 1/P` barrier because the adversary
/// can no longer predict who is served last. `RandomRr` is the natural
/// randomized strawman for that comparison — fair in expectation, but
/// (like RR-only) never gives a job more than one processor, so it
/// inherits the light-load span dilation.
#[derive(Clone, Debug)]
pub struct RandomRr {
    rng: StdRng,
}

impl RandomRr {
    /// Create with an explicit seed (determinism for experiments).
    pub fn seeded(seed: u64) -> Self {
        RandomRr {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Default for RandomRr {
    fn default() -> Self {
        RandomRr::seeded(0xC0FFEE)
    }
}

impl Scheduler for RandomRr {
    fn name(&self) -> &str {
        "random-rr"
    }

    fn on_arrival(&mut self, _id: JobId, _t: Time) {}
    fn on_completion(&mut self, _id: JobId, _t: Time) {}

    fn allot(
        &mut self,
        _t: Time,
        views: &[JobView<'_>],
        res: &Resources,
        out: &mut AllotmentMatrix,
    ) {
        for cat in Category::all(res.k()) {
            let mut active: Vec<usize> = (0..views.len())
                .filter(|&s| views[s].is_active(cat))
                .collect();
            let take = (res.processors(cat) as usize).min(active.len());
            // Partial Fisher-Yates: the first `take` entries become a
            // uniform random subset.
            for i in 0..take {
                let j = self.rng.gen_range(i..active.len());
                active.swap(i, j);
                out.set(active[i], cat, 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views<'a>(desires: &'a [[u32; 1]]) -> Vec<JobView<'a>> {
        desires
            .iter()
            .enumerate()
            .map(|(i, d)| JobView {
                id: JobId(i as u32),
                release: 0,
                desires: d,
            })
            .collect()
    }

    #[test]
    fn allots_exactly_min_p_active_ones() {
        let d = [[3u32], [3], [3], [3], [3]];
        let v = views(&d);
        let res = Resources::uniform(1, 2);
        let mut s = RandomRr::seeded(1);
        for _ in 0..10 {
            let mut out = AllotmentMatrix::new(1);
            out.reset(5);
            s.allot(1, &v, &res, &mut out);
            let a: Vec<u32> = (0..5).map(|i| out.get(i, Category(0))).collect();
            assert_eq!(a.iter().sum::<u32>(), 2);
            assert!(a.iter().all(|&x| x <= 1));
        }
    }

    #[test]
    fn selection_is_uniform_ish() {
        let d = [[3u32], [3], [3], [3]];
        let v = views(&d);
        let res = Resources::uniform(1, 1);
        let mut s = RandomRr::seeded(7);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            let mut out = AllotmentMatrix::new(1);
            out.reset(4);
            s.allot(1, &v, &res, &mut out);
            for (i, c) in counts.iter_mut().enumerate() {
                *c += out.get(i, Category(0));
            }
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed selection: {counts:?}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let d = [[3u32], [3], [3]];
        let v = views(&d);
        let res = Resources::uniform(1, 1);
        let run = |seed| {
            let mut s = RandomRr::seeded(seed);
            let mut picks = Vec::new();
            for _ in 0..20 {
                let mut out = AllotmentMatrix::new(1);
                out.reset(3);
                s.allot(1, &v, &res, &mut out);
                picks.push((0..3).position(|i| out.get(i, Category(0)) == 1).unwrap());
            }
            picks
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn skips_inactive() {
        let d = [[0u32], [3]];
        let v = views(&d);
        let res = Resources::uniform(1, 2);
        let mut s = RandomRr::seeded(2);
        let mut out = AllotmentMatrix::new(1);
        out.reset(2);
        s.allot(1, &v, &res, &mut out);
        assert_eq!(out.get(0, Category(0)), 0);
        assert_eq!(out.get(1, Category(0)), 1);
    }
}
