//! Scheduler factory for the experiment harness.

use crate::{DeqOnly, Drf, Equi, GreedyFcfs, Las, RandomRr, RoundRobinOnly};
use krad::KRad;
use ksim::Scheduler;
use ktelemetry::{SpanRecorder, TelemetryHandle};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Every scheduler the experiments compare, including K-RAD itself.
///
/// ```
/// use kbaselines::SchedulerKind;
/// use kdag::{generators::chain, Category};
/// use ksim::{simulate, JobSpec, Resources, SimConfig};
/// let jobs = vec![JobSpec::batched(chain(1, 5, &[Category(0)]))];
/// let res = Resources::uniform(1, 2);
/// for kind in SchedulerKind::ALL {
///     let mut sched = kind.build(res.k());
///     let o = simulate(sched.as_mut(), &jobs, &res, &SimConfig::default());
///     assert_eq!(o.makespan, 5, "{kind}: a chain takes span steps");
/// }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// The paper's K-RAD (one RAD per category).
    KRad,
    /// Equi-partitioning without desire feedback.
    Equi,
    /// DEQ at every load level (no RR cycle).
    DeqOnly,
    /// Round-robin at every load level (no DEQ).
    RrOnly,
    /// Greedy first-come-first-served.
    GreedyFcfs,
    /// Least attained service (foreground-background).
    Las,
    /// Randomized round-robin (uniform random subset each step).
    RandomRr,
    /// Dominant Resource Fairness (progressive filling).
    Drf,
}

impl SchedulerKind {
    /// All kinds, in canonical table order (K-RAD first).
    pub const ALL: [SchedulerKind; 8] = [
        SchedulerKind::KRad,
        SchedulerKind::Equi,
        SchedulerKind::DeqOnly,
        SchedulerKind::RrOnly,
        SchedulerKind::GreedyFcfs,
        SchedulerKind::Las,
        SchedulerKind::RandomRr,
        SchedulerKind::Drf,
    ];

    /// Instantiate a fresh scheduler for a `k`-category machine.
    /// Randomized schedulers use a fixed default seed; use
    /// [`SchedulerKind::build_seeded`] to vary it.
    pub fn build(self, k: usize) -> Box<dyn Scheduler + Send> {
        self.build_seeded(k, 0xC0FFEE)
    }

    /// Instantiate with an explicit seed for randomized schedulers
    /// (ignored by the deterministic ones).
    pub fn build_seeded(self, k: usize, seed: u64) -> Box<dyn Scheduler + Send> {
        match self {
            SchedulerKind::KRad => Box::new(KRad::new(k)),
            SchedulerKind::Equi => Box::new(Equi::new()),
            SchedulerKind::DeqOnly => Box::new(DeqOnly::new()),
            SchedulerKind::RrOnly => Box::new(RoundRobinOnly::new()),
            SchedulerKind::GreedyFcfs => Box::new(GreedyFcfs::new()),
            SchedulerKind::Las => Box::new(Las::new()),
            SchedulerKind::RandomRr => Box::new(RandomRr::seeded(seed)),
            SchedulerKind::Drf => Box::new(Drf::new()),
        }
    }

    /// Instantiate with a telemetry handle: schedulers that emit
    /// decision events (currently K-RAD) record into `tel`; the rest
    /// behave exactly like [`SchedulerKind::build_seeded`]. Pass a
    /// clone of the handle wired into `ksim::SimConfig::telemetry` so
    /// scheduler decisions interleave with engine step events.
    pub fn build_instrumented(
        self,
        k: usize,
        seed: u64,
        tel: TelemetryHandle,
    ) -> Box<dyn Scheduler + Send> {
        self.build_observed(k, seed, tel, SpanRecorder::off())
    }

    /// Instantiate with full observability: telemetry events into
    /// `tel` *and* `deq_allot`/`rr_cycle` span durations into `spans`
    /// (currently K-RAD; other kinds ignore both). The service daemon
    /// uses this so live scrapes see scheduler-internal timing.
    pub fn build_observed(
        self,
        k: usize,
        seed: u64,
        tel: TelemetryHandle,
        spans: SpanRecorder,
    ) -> Box<dyn Scheduler + Send> {
        match self {
            SchedulerKind::KRad => Box::new(KRad::with_instrumentation(k, tel, spans)),
            other => other.build_seeded(k, seed),
        }
    }

    /// Short stable label for tables.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::KRad => "k-rad",
            SchedulerKind::Equi => "equi",
            SchedulerKind::DeqOnly => "deq-only",
            SchedulerKind::RrOnly => "rr-only",
            SchedulerKind::GreedyFcfs => "greedy-fcfs",
            SchedulerKind::Las => "las",
            SchedulerKind::RandomRr => "random-rr",
            SchedulerKind::Drf => "drf",
        }
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_named_schedulers() {
        for kind in SchedulerKind::ALL {
            let s = kind.build(2);
            assert!(!s.name().is_empty(), "{kind} has a name");
        }
    }

    #[test]
    fn build_instrumented_wires_krad_and_leaves_the_rest_silent() {
        use kdag::JobId;
        use ksim::{AllotmentMatrix, Resources};

        let res = Resources::uniform(2, 1);
        for kind in SchedulerKind::ALL {
            let (tel, rec) = TelemetryHandle::recording();
            let mut s = kind.build_instrumented(2, 7, tel);
            for i in 0..4 {
                s.on_arrival(JobId(i), 1);
            }
            let rows = [[2u32, 2], [2, 2], [2, 2], [2, 2]];
            let views: Vec<ksim::JobView<'_>> = rows
                .iter()
                .enumerate()
                .map(|(i, d)| ksim::JobView {
                    id: JobId(i as u32),
                    release: 0,
                    desires: d,
                })
                .collect();
            let mut out = AllotmentMatrix::new(2);
            out.reset(views.len());
            s.allot(1, &views, &res, &mut out);
            let n = rec.lock().unwrap().events().len();
            if kind == SchedulerKind::KRad {
                assert!(n > 0, "k-rad must emit decision events");
            } else {
                assert_eq!(n, 0, "{kind} emits no telemetry");
            }
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut l: Vec<&str> = SchedulerKind::ALL.iter().map(|k| k.label()).collect();
        l.sort_unstable();
        l.dedup();
        assert_eq!(l.len(), SchedulerKind::ALL.len());
    }
}
