//! Greedy first-come-first-served allotment.

use kdag::Category;
use ksim::{AllotmentMatrix, JobView, Resources, Scheduler, Time};

/// Greedy FCFS: per category, jobs are served in order of release time
/// (ties by id); each job takes `min(desire, remaining processors)`
/// until the category is exhausted.
///
/// Work-conserving and simple — a reasonable makespan heuristic — but
/// spectacularly unfair: under sustained load, late jobs wait for every
/// earlier job's entire α-demand, so mean response time degrades
/// relative to K-RAD's equalized allotments.
#[derive(Clone, Debug, Default)]
pub struct GreedyFcfs;

impl GreedyFcfs {
    /// Create a greedy FCFS scheduler.
    pub fn new() -> Self {
        GreedyFcfs
    }
}

impl Scheduler for GreedyFcfs {
    fn name(&self) -> &str {
        "greedy-fcfs"
    }

    fn allot(
        &mut self,
        _t: Time,
        views: &[JobView<'_>],
        res: &Resources,
        out: &mut AllotmentMatrix,
    ) {
        // FCFS priority: (release, id).
        let mut order: Vec<usize> = (0..views.len()).collect();
        order.sort_unstable_by_key(|&s| (views[s].release, views[s].id));
        for cat in Category::all(res.k()) {
            let mut left = res.processors(cat);
            for &slot in &order {
                if left == 0 {
                    break;
                }
                let a = views[slot].desire(cat).min(left);
                if a > 0 {
                    out.set(slot, cat, a);
                    left -= a;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdag::JobId;

    #[test]
    fn earliest_release_wins() {
        let d = [[6u32], [6]];
        let v = vec![
            JobView {
                id: JobId(0),
                release: 5,
                desires: &d[0],
            },
            JobView {
                id: JobId(1),
                release: 1,
                desires: &d[1],
            },
        ];
        let res = Resources::uniform(1, 8);
        let mut out = AllotmentMatrix::new(1);
        out.reset(2);
        GreedyFcfs::new().allot(1, &v, &res, &mut out);
        // Job 1 released first: takes 6; job 0 gets the leftover 2.
        assert_eq!(out.get(1, Category(0)), 6);
        assert_eq!(out.get(0, Category(0)), 2);
    }

    #[test]
    fn ties_break_by_id() {
        let d = [[8u32], [8]];
        let v = vec![
            JobView {
                id: JobId(0),
                release: 0,
                desires: &d[0],
            },
            JobView {
                id: JobId(1),
                release: 0,
                desires: &d[1],
            },
        ];
        let res = Resources::uniform(1, 8);
        let mut out = AllotmentMatrix::new(1);
        out.reset(2);
        GreedyFcfs::new().allot(1, &v, &res, &mut out);
        assert_eq!(out.get(0, Category(0)), 8);
        assert_eq!(out.get(1, Category(0)), 0);
    }

    #[test]
    fn is_work_conserving() {
        let d = [[3u32], [2], [9]];
        let v: Vec<JobView<'_>> = d
            .iter()
            .enumerate()
            .map(|(i, dd)| JobView {
                id: JobId(i as u32),
                release: 0,
                desires: dd,
            })
            .collect();
        let res = Resources::uniform(1, 10);
        let mut out = AllotmentMatrix::new(1);
        out.reset(3);
        GreedyFcfs::new().allot(1, &v, &res, &mut out);
        assert_eq!(out.category_total(Category(0)), 10);
    }
}
