//! Dominant Resource Fairness (DRF), adapted to the K-resource model.

use kdag::{Category, JobId};
use ksim::{AllotmentMatrix, JobView, Resources, Scheduler, Time};

/// Per-step Dominant Resource Fairness (Ghodsi et al., NSDI'11) —
/// the canonical *modern* multi-resource allocator, here as a
/// contemporary comparator for K-RAD.
///
/// Progressive filling, re-run each step from zero: repeatedly pick
/// the job with the smallest **dominant share** (its maximum over
/// categories of `allocated_α / Pα`) among jobs that can still be
/// served, and grant it one processor in its most-constrained servable
/// category (largest `unmet_α / Pα`). Ties break by job id.
///
/// Differences from K-RAD worth measuring (experiment T15): DRF
/// equalizes *shares of the machine* across jobs, K-RAD equalizes
/// *per-category allotments among the α-active*; DRF has no round-robin
/// cycle, so under heavy single-category load it degenerates to
/// deterministic 0/1 shares like DEQ-only.
#[derive(Clone, Debug, Default)]
pub struct Drf;

impl Drf {
    /// Create a DRF scheduler.
    pub fn new() -> Self {
        Drf
    }
}

impl Scheduler for Drf {
    fn name(&self) -> &str {
        "drf"
    }

    fn on_arrival(&mut self, _id: JobId, _t: Time) {}
    fn on_completion(&mut self, _id: JobId, _t: Time) {}

    fn allot(
        &mut self,
        _t: Time,
        views: &[JobView<'_>],
        res: &Resources,
        out: &mut AllotmentMatrix,
    ) {
        let k = res.k();
        let n = views.len();
        let mut free: Vec<u32> = res.as_slice().to_vec();
        let mut unmet: Vec<Vec<u32>> = views.iter().map(|v| v.desires.to_vec()).collect();
        let mut alloc: Vec<Vec<u32>> = vec![vec![0; k]; n];

        // Progressive filling: total grants ≤ Σ Pα, machine sizes are
        // simulation-scale, so linear scans per grant are fine.
        loop {
            let mut best: Option<(f64, usize)> = None;
            for (slot, u) in unmet.iter().enumerate() {
                let servable = u.iter().zip(&free).any(|(&need, &f)| need > 0 && f > 0);
                if !servable {
                    continue;
                }
                let dominant = alloc[slot]
                    .iter()
                    .zip(res.as_slice())
                    .map(|(&a, &p)| f64::from(a) / f64::from(p))
                    .fold(0.0f64, f64::max);
                let better = match best {
                    None => true,
                    Some((d, s)) => dominant < d - 1e-12 || (dominant < d + 1e-12 && slot < s),
                };
                if better {
                    best = Some((dominant, slot));
                }
            }
            let Some((_, slot)) = best else { break };
            // Most-constrained servable category: largest unmet/Pα.
            let cat = (0..k)
                .filter(|&c| unmet[slot][c] > 0 && free[c] > 0)
                .max_by(|&a, &b| {
                    let ra = f64::from(unmet[slot][a]) / f64::from(res.as_slice()[a]);
                    let rb = f64::from(unmet[slot][b]) / f64::from(res.as_slice()[b]);
                    ra.partial_cmp(&rb).expect("finite ratios").then(b.cmp(&a)) // ties: smaller category index
                })
                .expect("servable category exists");
            alloc[slot][cat] += 1;
            unmet[slot][cat] -= 1;
            free[cat] -= 1;
        }

        for (slot, row) in alloc.iter().enumerate() {
            for (c, &a) in row.iter().enumerate() {
                if a > 0 {
                    out.set(slot, Category(c as u16), a);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views<'a>(desires: &'a [Vec<u32>]) -> Vec<JobView<'a>> {
        desires
            .iter()
            .enumerate()
            .map(|(i, d)| JobView {
                id: JobId(i as u32),
                release: 0,
                desires: d,
            })
            .collect()
    }

    fn allot(desires: &[Vec<u32>], p: Vec<u32>) -> Vec<Vec<u32>> {
        let res = Resources::new(p);
        let v = views(desires);
        let mut out = AllotmentMatrix::new(res.k());
        out.reset(v.len());
        Drf::new().allot(1, &v, &res, &mut out);
        (0..v.len())
            .map(|s| {
                (0..res.k())
                    .map(|c| out.get(s, Category(c as u16)))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn classic_drf_example() {
        // The NSDI'11 flavor: job 0 is CPU-dominant, job 1 is
        // IO-dominant; DRF equalizes dominant shares.
        let a = allot(&[vec![9, 1], vec![1, 9]], vec![9, 9]);
        // Both jobs can be fully satisfied here (total demand 10 ≤ 18
        // per... no: cat0 demand 10 > 9). Dominant shares equalize:
        // each ends close to half the machine in its dominant resource.
        let total0: u32 = a.iter().map(|r| r[0]).sum();
        let total1: u32 = a.iter().map(|r| r[1]).sum();
        assert!(total0 <= 9 && total1 <= 9);
        let dom0 = f64::from(a[0][0]) / 9.0;
        let dom1 = f64::from(a[1][1]) / 9.0;
        assert!(
            (dom0 - dom1).abs() <= 1.0 / 9.0 + 1e-9,
            "dominant shares should equalize: {a:?}"
        );
    }

    #[test]
    fn work_conserving_when_demand_exceeds_capacity() {
        let a = allot(&[vec![5, 5], vec![5, 5], vec![5, 5]], vec![4, 4]);
        let t0: u32 = a.iter().map(|r| r[0]).sum();
        let t1: u32 = a.iter().map(|r| r[1]).sum();
        assert_eq!((t0, t1), (4, 4), "all processors granted: {a:?}");
    }

    #[test]
    fn never_exceeds_desire_or_capacity() {
        let desires = vec![vec![2, 0], vec![0, 1], vec![7, 7]];
        let a = allot(&desires, vec![4, 2]);
        for (row, d) in a.iter().zip(&desires) {
            for (got, want) in row.iter().zip(d) {
                assert!(got <= want);
            }
        }
    }

    #[test]
    fn lone_job_gets_full_desire() {
        let a = allot(&[vec![3, 2]], vec![8, 8]);
        assert_eq!(a[0], vec![3, 2]);
    }

    #[test]
    fn single_category_degenerates_to_equal_split() {
        let a = allot(&[vec![8], vec![8], vec![8], vec![8]], vec![8]);
        let shares: Vec<u32> = a.iter().map(|r| r[0]).collect();
        assert_eq!(shares.iter().sum::<u32>(), 8);
        assert!(shares.iter().all(|&s| s == 2), "equal split: {shares:?}");
    }
}
