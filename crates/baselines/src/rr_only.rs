//! Round-robin at every load level — the "no DEQ" ablation.

use kdag::{Category, JobId};
use ksim::{AllotmentMatrix, JobView, Resources, Scheduler, Time};

/// Pure round-robin: each category keeps a rotating queue of jobs; at
/// every step the first `Pα` α-active jobs (in queue order) receive
/// **one** processor each and rotate to the back of the queue.
///
/// This is the RAD ablation that motivates DEQ: RR is perfectly fair
/// and `2`-competitive for mean response time on saturated homogeneous
/// machines (Motwani et al.), but under light load it never gives a job
/// more than one processor, so a single wide job on an otherwise idle
/// machine runs `min(desire, 1)` tasks per step — dilating makespan by
/// up to a factor of the job's average parallelism.
#[derive(Clone, Debug, Default)]
pub struct RoundRobinOnly {
    /// Per-category rotating queue (filled lazily on first allot).
    queues: Vec<Vec<JobId>>,
    arrivals: Vec<JobId>,
}

impl RoundRobinOnly {
    /// Create an RR-only scheduler.
    pub fn new() -> Self {
        RoundRobinOnly::default()
    }

    fn ensure_queues(&mut self, k: usize) {
        if self.queues.len() != k {
            self.queues.resize_with(k, Vec::new);
        }
    }
}

impl Scheduler for RoundRobinOnly {
    fn name(&self) -> &str {
        "rr-only"
    }

    fn on_arrival(&mut self, id: JobId, _t: Time) {
        self.arrivals.push(id);
    }

    fn on_completion(&mut self, id: JobId, _t: Time) {
        for q in &mut self.queues {
            q.retain(|&x| x != id);
        }
        self.arrivals.retain(|&x| x != id);
    }

    fn allot(
        &mut self,
        _t: Time,
        views: &[JobView<'_>],
        res: &Resources,
        out: &mut AllotmentMatrix,
    ) {
        let k = res.k();
        self.ensure_queues(k);
        // Move pending arrivals to every category queue tail.
        if !self.arrivals.is_empty() {
            for q in &mut self.queues {
                q.extend(self.arrivals.iter().copied());
            }
            self.arrivals.clear();
        }

        let slot_of = |id: JobId| -> Option<usize> {
            let s = views.partition_point(|v| v.id < id);
            (s < views.len() && views[s].id == id).then_some(s)
        };

        for cat in Category::all(k) {
            let p = res.processors(cat) as usize;
            let q = &mut self.queues[cat.index()];
            let mut picked: Vec<JobId> = Vec::new();
            for &id in q.iter() {
                if picked.len() == p {
                    break;
                }
                if let Some(slot) = slot_of(id) {
                    if views[slot].is_active(cat) {
                        out.set(slot, cat, 1);
                        picked.push(id);
                    }
                }
            }
            if !picked.is_empty() {
                // Rotate the served jobs to the back, preserving order.
                q.retain(|id| !picked.contains(id));
                q.extend(picked);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views<'a>(desires: &'a [[u32; 1]]) -> Vec<JobView<'a>> {
        desires
            .iter()
            .enumerate()
            .map(|(i, d)| JobView {
                id: JobId(i as u32),
                release: 0,
                desires: d,
            })
            .collect()
    }

    fn step(s: &mut RoundRobinOnly, v: &[JobView<'_>], p: u32) -> Vec<u32> {
        let res = Resources::uniform(1, p);
        let mut out = AllotmentMatrix::new(1);
        out.reset(v.len());
        s.allot(1, v, &res, &mut out);
        (0..v.len()).map(|i| out.get(i, Category(0))).collect()
    }

    #[test]
    fn rotates_across_steps() {
        let mut s = RoundRobinOnly::new();
        for id in 0..4 {
            s.on_arrival(JobId(id), 1);
        }
        let d = [[5u32], [5], [5], [5]];
        let v = views(&d);
        assert_eq!(step(&mut s, &v, 2), vec![1, 1, 0, 0]);
        assert_eq!(step(&mut s, &v, 2), vec![0, 0, 1, 1]);
        assert_eq!(step(&mut s, &v, 2), vec![1, 1, 0, 0]);
    }

    #[test]
    fn never_more_than_one_processor_per_job() {
        let mut s = RoundRobinOnly::new();
        s.on_arrival(JobId(0), 1);
        let d = [[100u32]];
        let v = views(&d);
        // Lone wide job on 8 processors still gets just 1: the RR-only
        // weakness under light load.
        assert_eq!(step(&mut s, &v, 8), vec![1]);
    }

    #[test]
    fn skips_inactive_jobs() {
        let mut s = RoundRobinOnly::new();
        for id in 0..3 {
            s.on_arrival(JobId(id), 1);
        }
        let d = [[0u32], [2], [2]];
        let v = views(&d);
        assert_eq!(step(&mut s, &v, 2), vec![0, 1, 1]);
    }

    #[test]
    fn completion_removes_job() {
        let mut s = RoundRobinOnly::new();
        for id in 0..3 {
            s.on_arrival(JobId(id), 1);
        }
        let d = [[2u32], [2], [2]];
        let v = views(&d);
        let _ = step(&mut s, &v, 1);
        s.on_completion(JobId(1), 2);
        // Remaining rotation covers only jobs 0 and 2.
        let d2 = [[2u32], [2]];
        let v2: Vec<JobView<'_>> = vec![
            JobView {
                id: JobId(0),
                release: 0,
                desires: &d2[0],
            },
            JobView {
                id: JobId(2),
                release: 0,
                desires: &d2[1],
            },
        ];
        let a = step(&mut s, &v2, 1);
        assert_eq!(a.iter().sum::<u32>(), 1);
    }
}
