//! # kbaselines — baseline schedulers for the K-RAD comparison
//!
//! The paper proves K-RAD optimal but implements no comparators; these
//! baselines make the "who wins, and why" experiments possible. Each
//! is an online non-clairvoyant [`ksim::Scheduler`] operating under the
//! same rules as K-RAD (instantaneous desires only):
//!
//! | Scheduler | Idea | Known weakness it exhibits |
//! |-----------|------|----------------------------|
//! | [`Equi`] | equal share of `Pα` to every α-active job, regardless of desire | wastes processors that DEQ would redistribute (low utilization on skewed desires) |
//! | [`DeqOnly`] | the paper's DEQ at *every* load level, no round-robin cycle | starves late jobs when `\|J(α,t)\| > Pα` (deterministic 0/1 shares go to the same jobs every step) |
//! | [`RoundRobinOnly`] | one processor per α-active job in rotating order, at every load level | dilates span-limited jobs under light load (never gives more than 1 processor) |
//! | [`GreedyFcfs`] | full desire to the earliest-released jobs first | unfair: late jobs see huge response times under load |
//! | [`Las`] | least attained service first (foreground-background) | starves long jobs under sustained load |
//! | [`RandomRr`] | one processor to a uniform random subset of α-active jobs | span dilation under light load (like RR-only), but immune to deterministic adversaries |
//! | [`Drf`] | dominant-resource-fairness progressive filling (Ghodsi et al.) | no time-sharing cycle: deterministic 0/1 shares under heavy single-category load |
//!
//! [`SchedulerKind`] enumerates these plus K-RAD itself for the
//! experiment harness.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod deq_only;
mod drf;
mod equi;
mod greedy_fcfs;
mod kind;
mod las;
mod random_rr;
mod rr_only;

pub use deq_only::DeqOnly;
pub use drf::Drf;
pub use equi::Equi;
pub use greedy_fcfs::GreedyFcfs;
pub use kind::SchedulerKind;
pub use las::Las;
pub use random_rr::RandomRr;
pub use rr_only::RoundRobinOnly;
