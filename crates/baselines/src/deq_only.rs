//! DEQ at every load level — the "no round-robin" ablation.

use kdag::Category;
use krad::deq::deq_allot_into;
use ksim::{AllotmentMatrix, JobView, Resources, Scheduler, Time};

/// Pure DEQ: the paper's dynamic equi-partitioning applied at *every*
/// step, even when there are more α-active jobs than `α`-processors.
///
/// This is the RAD ablation that motivates the round-robin cycle: when
/// `|J(α,t)| > Pα`, the fair share drops below one processor and DEQ's
/// discrete shares degenerate to 0/1. `DeqOnly` is deliberately
/// deterministic (no remainder rotation, unlike RAD's internal DEQ), so
/// the same first jobs get the 1s every step and later jobs starve
/// until the early ones finish — exhibiting the unbounded response-time
/// unfairness RAD's marked cycles repair.
#[derive(Clone, Debug, Default)]
pub struct DeqOnly {
    desires: Vec<u32>,
    allot_buf: Vec<u32>,
}

impl DeqOnly {
    /// Create a DEQ-only scheduler.
    pub fn new() -> Self {
        DeqOnly::default()
    }
}

impl Scheduler for DeqOnly {
    fn name(&self) -> &str {
        "deq-only"
    }

    fn allot(
        &mut self,
        _t: Time,
        views: &[JobView<'_>],
        res: &Resources,
        out: &mut AllotmentMatrix,
    ) {
        for cat in Category::all(res.k()) {
            let active: Vec<usize> = (0..views.len())
                .filter(|&s| views[s].is_active(cat))
                .collect();
            if active.is_empty() {
                continue;
            }
            self.desires.clear();
            self.desires
                .extend(active.iter().map(|&s| views[s].desire(cat)));
            self.allot_buf.clear();
            self.allot_buf.resize(active.len(), 0);
            // spill = 0 always: deterministic, starvation-prone.
            deq_allot_into(&self.desires, res.processors(cat), 0, &mut self.allot_buf);
            for (&slot, &a) in active.iter().zip(&self.allot_buf) {
                out.set(slot, cat, a);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdag::JobId;

    fn views<'a>(desires: &'a [[u32; 1]]) -> Vec<JobView<'a>> {
        desires
            .iter()
            .enumerate()
            .map(|(i, d)| JobView {
                id: JobId(i as u32),
                release: 0,
                desires: d,
            })
            .collect()
    }

    #[test]
    fn light_load_matches_deq_semantics() {
        let d = [[2u32], [5], [9]];
        let v = views(&d);
        let res = Resources::uniform(1, 8);
        let mut out = AllotmentMatrix::new(1);
        out.reset(3);
        DeqOnly::new().allot(1, &v, &res, &mut out);
        assert_eq!(
            (0..3).map(|s| out.get(s, Category(0))).collect::<Vec<_>>(),
            vec![2, 3, 3]
        );
    }

    #[test]
    fn heavy_load_starves_the_same_jobs_every_step() {
        // 5 jobs, 2 processors: shares 0/1 and — crucially — the SAME
        // two jobs win on every step.
        let d = [[4u32], [4], [4], [4], [4]];
        let v = views(&d);
        let res = Resources::uniform(1, 2);
        let mut s = DeqOnly::new();
        let mut winners_per_step = Vec::new();
        for _ in 0..3 {
            let mut out = AllotmentMatrix::new(1);
            out.reset(5);
            s.allot(1, &v, &res, &mut out);
            let w: Vec<usize> = (0..5).filter(|&i| out.get(i, Category(0)) > 0).collect();
            winners_per_step.push(w);
        }
        assert_eq!(winners_per_step[0], winners_per_step[1]);
        assert_eq!(winners_per_step[1], winners_per_step[2]);
        assert_eq!(winners_per_step[0].len(), 2);
    }
}
