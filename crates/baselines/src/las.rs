//! LAS / foreground-background: least attained service first.

use kdag::{Category, JobId};
use ksim::{AllotmentMatrix, JobView, Resources, Scheduler, Time};
use std::collections::HashMap;

/// Least-Attained-Service (a.k.a. foreground-background) generalized to
/// K resources: at each step, jobs are prioritized by the total service
/// they have received so far (fewest first), and each category's
/// processors are handed out greedily in that order, capped by desire.
///
/// LAS is non-clairvoyant — attained service is information the
/// scheduler generates itself (its own past allotments, which equal
/// executed work because allotments are desire-capped). It mimics SRPT
/// when job sizes correlate with age, giving strong *mean* response
/// times, but it can starve long jobs under sustained load — the
/// opposite trade-off from K-RAD's equalized allotments.
#[derive(Clone, Debug, Default)]
pub struct Las {
    attained: HashMap<JobId, u64>,
}

impl Las {
    /// Create a LAS scheduler.
    pub fn new() -> Self {
        Las::default()
    }
}

impl Scheduler for Las {
    fn name(&self) -> &str {
        "las"
    }

    fn on_arrival(&mut self, id: JobId, _t: Time) {
        self.attained.insert(id, 0);
    }

    fn on_completion(&mut self, id: JobId, _t: Time) {
        self.attained.remove(&id);
    }

    fn allot(
        &mut self,
        _t: Time,
        views: &[JobView<'_>],
        res: &Resources,
        out: &mut AllotmentMatrix,
    ) {
        // Priority: least attained service, ties by id (FCFS-ish).
        let mut order: Vec<usize> = (0..views.len()).collect();
        order.sort_unstable_by_key(|&s| {
            (
                self.attained.get(&views[s].id).copied().unwrap_or(0),
                views[s].id,
            )
        });
        for cat in Category::all(res.k()) {
            let mut left = res.processors(cat);
            for &slot in &order {
                if left == 0 {
                    break;
                }
                let a = views[slot].desire(cat).min(left);
                if a > 0 {
                    out.set(slot, cat, a);
                    left -= a;
                    // Allotments are desire-capped, so they all execute:
                    // safe to count as attained service immediately.
                    *self.attained.entry(views[slot].id).or_insert(0) += u64::from(a);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views<'a>(desires: &'a [[u32; 1]]) -> Vec<JobView<'a>> {
        desires
            .iter()
            .enumerate()
            .map(|(i, d)| JobView {
                id: JobId(i as u32),
                release: 0,
                desires: d,
            })
            .collect()
    }

    fn step(s: &mut Las, v: &[JobView<'_>], p: u32) -> Vec<u32> {
        let res = Resources::uniform(1, p);
        let mut out = AllotmentMatrix::new(1);
        out.reset(v.len());
        s.allot(1, v, &res, &mut out);
        (0..v.len()).map(|i| out.get(i, Category(0))).collect()
    }

    #[test]
    fn youngest_job_gets_priority() {
        let mut s = Las::new();
        for id in 0..2 {
            s.on_arrival(JobId(id), 1);
        }
        let d = [[4u32], [4]];
        let v = views(&d);
        // Step 1: tie on attained (0, 0) → job 0 first, takes all 4.
        assert_eq!(step(&mut s, &v, 4), vec![4, 0]);
        // Step 2: job 1 has attained 0 < 4 → job 1 first.
        assert_eq!(step(&mut s, &v, 4), vec![0, 4]);
        // Step 3: both at 4 → job 0 again.
        assert_eq!(step(&mut s, &v, 4), vec![4, 0]);
    }

    #[test]
    fn completion_clears_state() {
        let mut s = Las::new();
        s.on_arrival(JobId(0), 1);
        let d = [[2u32]];
        let v = views(&d);
        step(&mut s, &v, 4);
        s.on_completion(JobId(0), 2);
        assert!(s.attained.is_empty());
    }

    #[test]
    fn respects_capacity_and_desire() {
        let mut s = Las::new();
        for id in 0..3 {
            s.on_arrival(JobId(id), 1);
        }
        let d = [[1u32], [10], [10]];
        let v = views(&d);
        let a = step(&mut s, &v, 8);
        assert!(a[0] <= 1);
        assert_eq!(a.iter().sum::<u32>(), 8);
    }
}
