//! A multi-threaded closed-loop load generator for the daemon.
//!
//! Each client thread generates its own deterministic job stream
//! (seeded per client), submits it in chunks with `watch: true`, and
//! records the virtual response time of every completion the server
//! streams back. Rejected chunks are counted as backpressure and not
//! retried — the rejection rate is part of the measurement.

use crate::client::Client;
use crate::protocol::{Event, Response, StatsReply};
use kanalysis::stats::percentile;
use kanalysis::table::{f3, Table};
use kdag::DagSpec;
use kworkloads::heavy_tail::heavy_tail_mix;
use kworkloads::mixes::{batched_mix, MixConfig};
use kworkloads::rng_for;
use kworkloads::swf::synthetic_trace_workload;
use rand::Rng;
use std::io;
use std::thread;
use std::time::{Duration, Instant};

/// The arrival/shape family each client thread draws from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalKind {
    /// Uniform-size mixed-shape jobs, submitted back to back (paced by
    /// `pace` alone).
    Burst,
    /// Poisson arrivals: exponential inter-submission gaps with rate
    /// `lambda` (in submissions per `pace` unit).
    Poisson {
        /// Arrival rate.
        lambda: f64,
    },
    /// Bounded-Pareto job sizes (heavy tail), back-to-back submission.
    HeavyTail {
        /// Pareto shape parameter (heavier below 2).
        alpha: f64,
    },
    /// Jobs shaped from a deterministic synthetic SWF trace.
    Trace,
}

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Jobs each client submits.
    pub jobs_per_client: usize,
    /// Jobs per submit request.
    pub chunk: usize,
    /// Arrival process and job-shape family.
    pub arrivals: ArrivalKind,
    /// Base seed; client `i` derives its stream from `(seed, i)`.
    pub seed: u64,
    /// Categories the generated DAGs use (must match the server's
    /// machine).
    pub k: usize,
    /// Mean job size in tasks.
    pub mean_size: usize,
    /// Wall-clock pacing unit between submissions; `ZERO` runs flat
    /// out.
    pub pace: Duration,
    /// Concurrent sessions to drive. `0` or `1` keeps the legacy
    /// behaviour (every client in the implicit default session);
    /// above that, sessions `lg-0 … lg-(N-1)` are opened and client
    /// `i` submits into session `i % N` (round robin).
    pub sessions: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            clients: 4,
            jobs_per_client: 50,
            chunk: 5,
            arrivals: ArrivalKind::Burst,
            seed: 0,
            k: 2,
            mean_size: 30,
            pace: Duration::ZERO,
            sessions: 0,
        }
    }
}

/// What one loadgen run measured.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Jobs offered across all clients.
    pub submitted: u64,
    /// Jobs the server acknowledged.
    pub accepted: u64,
    /// Jobs refused with backpressure.
    pub rejected: u64,
    /// Completions observed via watch streams.
    pub completed: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Virtual response times (completion − release) of every
    /// completed job.
    pub responses: Vec<f64>,
    /// Server-side metrics snapshots taken just before and just after
    /// the run (absent if the `stats` fetch failed). Default session.
    pub server_stats: Option<(StatsReply, StatsReply)>,
    /// Per-session response samples when the run drove more than one
    /// session (`(session name, responses)`, session order).
    pub per_session: Vec<(String, Vec<f64>)>,
}

impl LoadgenReport {
    /// Accepted jobs per wall-clock second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.accepted as f64 / secs
        } else {
            0.0
        }
    }

    /// Render the report as a table.
    pub fn render(&self) -> String {
        let mut t = Table::new("loadgen", &["metric", "value"]);
        t.row_owned(vec!["offered jobs".to_string(), self.submitted.to_string()]);
        t.row_owned(vec!["accepted".to_string(), self.accepted.to_string()]);
        t.row_owned(vec![
            "rejected (backpressure)".to_string(),
            self.rejected.to_string(),
        ]);
        t.row_owned(vec!["completed".to_string(), self.completed.to_string()]);
        t.row_owned(vec![
            "wall-clock seconds".to_string(),
            f3(self.elapsed.as_secs_f64()),
        ]);
        t.row_owned(vec![
            "throughput (jobs/s)".to_string(),
            f3(self.throughput()),
        ]);
        if !self.responses.is_empty() {
            let mean = self.responses.iter().sum::<f64>() / self.responses.len() as f64;
            t.row_owned(vec!["mean response (steps)".to_string(), f3(mean)]);
            for q in [50.0, 95.0, 99.0] {
                t.row_owned(vec![
                    format!("p{q:.0} response (steps)"),
                    f3(percentile(&self.responses, q)),
                ]);
            }
        }
        for (name, responses) in &self.per_session {
            if responses.is_empty() {
                continue;
            }
            t.row_owned(vec![
                format!("session {name} p50/p95/p99 (steps)"),
                format!(
                    "{} / {} / {}",
                    f3(percentile(responses, 50.0)),
                    f3(percentile(responses, 95.0)),
                    f3(percentile(responses, 99.0)),
                ),
            ]);
        }
        if let Some((before, after)) = &self.server_stats {
            t.row_owned(vec![
                "server admitted (delta)".to_string(),
                (after.admitted - before.admitted).to_string(),
            ]);
            t.row_owned(vec![
                "server rejected (delta)".to_string(),
                (after.rejected - before.rejected).to_string(),
            ]);
            t.row_owned(vec![
                "server completed (delta)".to_string(),
                (after.completed - before.completed).to_string(),
            ]);
            t.row_owned(vec![
                "server quanta (delta)".to_string(),
                (after.quanta - before.quanta).to_string(),
            ]);
            t.row_owned(vec![
                "server quantum p95 (us)".to_string(),
                f3(after.quantum_latency_p95_us),
            ]);
        }
        t.render()
    }
}

/// Generate client `idx`'s job stream as wire-level DAG specs.
fn client_jobs(cfg: &LoadgenConfig, idx: usize) -> Vec<DagSpec> {
    let mut rng = rng_for(cfg.seed, idx as u64 + 1);
    let mix = MixConfig::new(cfg.k, cfg.jobs_per_client, cfg.mean_size);
    let specs = match cfg.arrivals {
        ArrivalKind::Burst | ArrivalKind::Poisson { .. } => batched_mix(&mut rng, &mix),
        ArrivalKind::HeavyTail { alpha } => heavy_tail_mix(
            &mut rng,
            cfg.k,
            cfg.jobs_per_client,
            alpha,
            (cfg.mean_size / 4).max(1),
            cfg.mean_size * 4,
        ),
        ArrivalKind::Trace => synthetic_trace_workload(cfg.jobs_per_client, &mix),
    };
    specs.iter().map(|j| DagSpec::from_dag(&j.dag)).collect()
}

struct ClientTally {
    accepted: u64,
    rejected: u64,
    responses: Vec<f64>,
}

/// The session client `idx` submits into (empty = implicit default).
fn session_for(cfg: &LoadgenConfig, idx: usize) -> String {
    if cfg.sessions > 1 {
        format!("lg-{}", idx % cfg.sessions)
    } else {
        String::new()
    }
}

/// One client thread: submit in watched chunks, closed loop.
fn run_client(addr: &str, cfg: &LoadgenConfig, idx: usize) -> io::Result<ClientTally> {
    let mut client = Client::connect(addr)?;
    let session = session_for(cfg, idx);
    let mut rng = rng_for(cfg.seed, 0x10AD + idx as u64);
    let jobs = client_jobs(cfg, idx);
    let mut tally = ClientTally {
        accepted: 0,
        rejected: 0,
        responses: Vec::new(),
    };
    for chunk in jobs.chunks(cfg.chunk.max(1)) {
        if cfg.pace > Duration::ZERO {
            let gap = match cfg.arrivals {
                ArrivalKind::Poisson { lambda } => {
                    let u: f64 = rng.gen_range(0.0..1.0);
                    -(1.0 - u).ln() / lambda.max(1e-9)
                }
                _ => 1.0,
            };
            thread::sleep(cfg.pace.mul_f64(gap.min(50.0)));
        }
        let (ack, events) = client.submit_watch_to(&session, chunk.to_vec())?;
        match ack {
            Response::Submitted { jobs, .. } => {
                tally.accepted += jobs.len() as u64;
                for ev in events {
                    if let Event::JobDone { response, .. } = ev {
                        tally.responses.push(response as f64);
                    }
                }
            }
            Response::Rejected { .. } => {
                tally.rejected += chunk.len() as u64;
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected submit reply: {other:?}"),
                ));
            }
        }
    }
    Ok(tally)
}

/// Run the load generator against a daemon at `addr`.
pub fn run_loadgen(addr: &str, cfg: &LoadgenConfig) -> io::Result<LoadgenReport> {
    // Multi-session runs open their sessions up front so a client
    // never races an implicit open against another client's submit.
    if cfg.sessions > 1 {
        let mut control = Client::connect(addr)?;
        for s in 0..cfg.sessions {
            match control.open(&format!("lg-{s}"), crate::protocol::SessionSpec::default())? {
                Response::Opened { .. } => {}
                Response::Error { message } => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, message))
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected open reply: {other:?}"),
                    ))
                }
            }
        }
    }
    // Snapshot the server's counters around the run so the report can
    // show exactly what this run contributed (admitted/rejected/
    // completed deltas survive other clients only approximately, but a
    // dedicated session gets exact attribution).
    let stats_before = Client::connect(addr).and_then(|mut c| c.stats_reply()).ok();
    let start = Instant::now();
    let tallies: Vec<io::Result<ClientTally>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|idx| scope.spawn(move || run_client(addr, cfg, idx)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(io::Error::other("loadgen client thread panicked")))
            })
            .collect()
    });
    let elapsed = start.elapsed();
    let stats_after = Client::connect(addr).and_then(|mut c| c.stats_reply()).ok();
    let mut report = LoadgenReport {
        submitted: (cfg.clients * cfg.jobs_per_client) as u64,
        accepted: 0,
        rejected: 0,
        completed: 0,
        elapsed,
        responses: Vec::new(),
        server_stats: stats_before.zip(stats_after),
        per_session: if cfg.sessions > 1 {
            (0..cfg.sessions)
                .map(|s| (format!("lg-{s}"), Vec::new()))
                .collect()
        } else {
            Vec::new()
        },
    };
    for (idx, tally) in tallies.into_iter().enumerate() {
        let tally = tally?;
        report.accepted += tally.accepted;
        report.rejected += tally.rejected;
        report.completed += tally.responses.len() as u64;
        if cfg.sessions > 1 {
            report.per_session[idx % cfg.sessions]
                .1
                .extend(tally.responses.iter().copied());
        }
        report.responses.extend(tally.responses);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_streams_are_deterministic_per_client() {
        let cfg = LoadgenConfig {
            jobs_per_client: 6,
            ..LoadgenConfig::default()
        };
        assert_eq!(client_jobs(&cfg, 0), client_jobs(&cfg, 0));
        assert_ne!(client_jobs(&cfg, 0), client_jobs(&cfg, 1));
        assert!(client_jobs(&cfg, 0).iter().all(|d| d.k == cfg.k));
    }

    #[test]
    fn report_renders_percentiles() {
        let report = LoadgenReport {
            submitted: 10,
            accepted: 8,
            rejected: 2,
            completed: 8,
            elapsed: Duration::from_millis(250),
            responses: (1..=8).map(f64::from).collect(),
            server_stats: None,
            per_session: Vec::new(),
        };
        let text = report.render();
        assert!(text.contains("throughput"));
        assert!(text.contains("p95"));
        assert!(!text.contains("server admitted"));
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn report_renders_per_session_percentiles() {
        let report = LoadgenReport {
            submitted: 8,
            accepted: 8,
            rejected: 0,
            completed: 8,
            elapsed: Duration::from_millis(100),
            responses: (1..=8).map(f64::from).collect(),
            server_stats: None,
            per_session: vec![
                ("lg-0".to_string(), vec![1.0, 2.0, 3.0, 4.0]),
                ("lg-1".to_string(), vec![5.0, 6.0, 7.0, 8.0]),
                ("lg-2".to_string(), Vec::new()),
            ],
        };
        let text = report.render();
        assert!(text.contains("session lg-0 p50/p95/p99"));
        assert!(text.contains("session lg-1 p50/p95/p99"));
        assert!(!text.contains("session lg-2"));
    }

    #[test]
    fn round_robin_session_assignment() {
        let mut cfg = LoadgenConfig::default();
        assert_eq!(session_for(&cfg, 3), "");
        cfg.sessions = 1;
        assert_eq!(session_for(&cfg, 0), "");
        cfg.sessions = 3;
        assert_eq!(session_for(&cfg, 0), "lg-0");
        assert_eq!(session_for(&cfg, 4), "lg-1");
        assert_eq!(session_for(&cfg, 5), "lg-2");
    }

    #[test]
    fn report_renders_server_deltas_when_present() {
        let before = StatsReply {
            admitted: 2,
            quanta: 10,
            ..StatsReply::default()
        };
        let after = StatsReply {
            admitted: 10,
            completed: 8,
            quanta: 60,
            quantum_latency_p95_us: 40.0,
            ..StatsReply::default()
        };
        let report = LoadgenReport {
            submitted: 8,
            accepted: 8,
            rejected: 0,
            completed: 8,
            elapsed: Duration::from_millis(100),
            responses: Vec::new(),
            server_stats: Some((before, after)),
            per_session: Vec::new(),
        };
        let text = report.render();
        assert!(text.contains("server admitted (delta)"));
        assert!(text.contains("server quanta (delta)"));
        assert!(text.contains('8') && text.contains("50"));
    }
}
