//! kswarm session registry: named scheduling sessions behind one
//! daemon.
//!
//! A [`Session`] is everything the single-tenant daemon used to be:
//! its own [`LiveSimulation`] + scheduler instance (the
//! [`EngineState`]), its own admission queue and job table
//! ([`Inner`]), its own telemetry fanout, trace assembler, flight
//! ring, optional journal directory, and metric series. The [`Swarm`]
//! owns the map from session name to session, the shared metrics
//! registry every session renders into, the shard handles the worker
//! pool parks on, and the cross-session drain-ack ledger the reactor
//! settles before the process may exit.
//!
//! Determinism is preserved per session because nothing is shared
//! *inside* the scheduling domain: each session's engine is pumped
//! only by the one worker its shard is pinned to, injections are
//! serialized through the session's own queue in admission order, and
//! the per-session journal/replay bridge sees exactly the inputs a
//! single-tenant daemon would have seen. The implicit `default`
//! session (wire name: the absent/empty `"session"` field) keeps its
//! metric series unlabeled and its journal at the configured root, so
//! every v4 client, scrape parser, and recovery path observes
//! byte-identical output.

use crate::journal::{self, SessionJournal};
use crate::metrics::{ModeTracker, ServiceMetrics};
use crate::protocol::{Event, SessionSpec};
use crate::reactor::Waker;
use crate::replay::{SessionTrace, TraceJob};
use crate::server::ServerConfig;
use crate::shard::ShardHandle;
use kbaselines::SchedulerKind;
use kdag::{DagSpec, JobDag, SelectionPolicy};
use kjournal::{JobImage, JobPhase, JournalStore, SessionImage};
use ksim::{LiveSimulation, Resources, Scheduler, SimConfig, Time, TimePolicy};
use ktelemetry::{
    CounterHandle, FanoutSink, FlightRecorder, GaugeHandle, HistogramHandle, MetricsRegistry,
    SharedSink, SpanRecorder, TelemetryHandle, TraceAssembler, TraceStamps,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Lifecycle of one admitted job.
pub(crate) enum Slot {
    Queued(Arc<JobDag>),
    Cancelled,
    Running { release: Time },
    Done { release: Time, completion: Time },
}

/// A simple token bucket: `rate` jobs/second refilled continuously up
/// to `burst`. `rate == 0` disables the limit entirely.
pub(crate) struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    pub(crate) fn new(rate: f64, burst: u64) -> Self {
        let burst = if burst == 0 {
            rate.ceil().max(1.0)
        } else {
            burst as f64
        };
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: Instant::now(),
        }
    }

    /// Take `n` tokens if the bucket holds them; `true` on success.
    /// Unlimited (`rate == 0`) always succeeds.
    pub(crate) fn try_take(&mut self, n: u64) -> bool {
        if self.rate <= 0.0 {
            return true;
        }
        let now = Instant::now();
        let elapsed = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        if self.tokens >= n as f64 {
            self.tokens -= n as f64;
            true
        } else {
            false
        }
    }
}

/// Shared state between connection handling and the session's worker.
pub(crate) struct Inner {
    pub(crate) queue: VecDeque<u64>,
    pub(crate) slots: Vec<Slot>,
    // `DagSpec` per admitted id, kept for journal snapshots (the DAG
    // itself is dropped from `Slot` once a job is injected).
    pub(crate) dag_specs: Vec<DagSpec>,
    pub(crate) engine_to_id: Vec<u64>,
    pub(crate) inflight: usize,
    pub(crate) draining: bool,
    pub(crate) drained: bool,
    pub(crate) trace: Option<SessionTrace>,
    // Canonical session record, filled at injection / completion.
    pub(crate) trace_jobs: Vec<TraceJob>,
    pub(crate) completions: Vec<Time>,
    // `(id, completion)` in completion order — the journal's view.
    pub(crate) completed_log: Vec<(u64, Time)>,
    // Mirrored engine scalars (the engine lives on the session's
    // pinned worker; these are refreshed after every quantum).
    pub(crate) now: Time,
    pub(crate) active: u64,
    pub(crate) busy_steps: u64,
    pub(crate) idle_steps: u64,
    // Theorem 3 accumulators over injected jobs: Σ T1(J, α) per
    // category, and max (T∞(J) + r(J)).
    pub(crate) work_by_cat: Vec<u64>,
    pub(crate) span_release_max: u64,
    // ktrace wall-clock stamps per admitted id, nanoseconds since the
    // session's monotonic epoch (`ServiceMetrics::started`).
    pub(crate) stamps: Vec<TraceStamps>,
    // Dominant work category and span per admitted id, fixed at
    // admission — the slowdown denominator and histogram label.
    pub(crate) cat_span: Vec<(usize, u64)>,
    // Edge-trigger state for the SLO alert: set while the mean
    // response sits above the threshold so one crossing fires once.
    pub(crate) slo_breached: bool,
    // Per-session admission rate limit, checked before enqueue.
    pub(crate) quota: TokenBucket,
    // Service metrics (registry-backed atomic handles; clones of the
    // instruments in `Session::metrics`).
    pub(crate) admitted: CounterHandle,
    pub(crate) rejections: CounterHandle,
    pub(crate) completed: CounterHandle,
    pub(crate) cancelled: CounterHandle,
    pub(crate) quanta: CounterHandle,
    pub(crate) queue_depth: HistogramHandle,
    pub(crate) quantum_latency_us: HistogramHandle,
    pub(crate) max_queue_depth: u64,
    pub(crate) watchers: Vec<mpsc::Sender<Event>>,
}

/// The engine half of a session: owned exclusively by the worker the
/// session's shard is pinned to. The mutex is uncontended in steady
/// state — it exists so session creation, recovery, and the worker
/// hand the state over without `unsafe`.
pub(crate) struct EngineState {
    pub(crate) live: LiveSimulation,
    pub(crate) scheduler: Box<dyn Scheduler + Send>,
    pub(crate) spans: SpanRecorder,
    pub(crate) done_buf: Vec<usize>,
    pub(crate) desires_buf: Vec<u64>,
    // Wall-clock pacing: the next quantum may not start before this
    // instant (`cfg.tick`; `None` = due now).
    pub(crate) next_due: Option<Instant>,
}

/// One named scheduling session: a full single-tenant daemon's worth
/// of state, pinned to one shard.
pub(crate) struct Session {
    /// Registry name; empty for the implicit default session.
    pub(crate) name: String,
    /// Effective per-session configuration (base config with the
    /// `open` overrides and the per-session journal directory applied).
    pub(crate) cfg: ServerConfig,
    pub(crate) inner: Mutex<Inner>,
    pub(crate) cv: Condvar,
    /// `None` once the session has drained and the engine retired.
    pub(crate) engine: Mutex<Option<EngineState>>,
    pub(crate) metrics: ServiceMetrics,
    pub(crate) mode_tracker: ModeTracker,
    pub(crate) flight: Option<Arc<Mutex<FlightRecorder>>>,
    pub(crate) journal: Option<SessionJournal>,
    // Live span-tree view: assembles engine trace events on the fly;
    // the `trace` verb reads it, `admit` never touches it.
    pub(crate) traces: Arc<Mutex<TraceAssembler>>,
    // Session nonce baked into every trace id (`<nonce:x>-<job>`), so
    // ids from different sessions never collide in downstream stores.
    pub(crate) nonce: u64,
    /// The worker shard this session is pinned to.
    pub(crate) shard: usize,
}

impl Session {
    /// Nanoseconds since the session's monotonic epoch, for ktrace
    /// wall-clock stamps.
    pub(crate) fn elapsed_ns(&self) -> u64 {
        self.metrics
            .started()
            .elapsed()
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64
    }

    /// The wire-visible trace id of job `id` in this session.
    pub(crate) fn trace_id(&self, id: u64) -> String {
        format!("{:x}-{id}", self.nonce)
    }

    /// The display name clients see in stats replies.
    pub(crate) fn display_name(&self) -> &str {
        if self.name.is_empty() {
            "default"
        } else {
            &self.name
        }
    }

    /// The telemetry handle the engine and scheduler record into: the
    /// user's configured sink, the trace assembler, the mode tracker,
    /// and the flight recorder, fanned out. The flight ring (the one
    /// sink that keeps the event) goes last so the read-only sinks
    /// ahead of it are fed by reference and never force a clone.
    fn telemetry_fanout(&self) -> TelemetryHandle {
        let mut sinks: Vec<SharedSink> = Vec::new();
        if self.cfg.telemetry.is_enabled() {
            sinks.push(Arc::new(Mutex::new(self.cfg.telemetry.clone())));
        }
        sinks.push(Arc::clone(&self.traces) as SharedSink);
        sinks.push(Arc::new(Mutex::new(self.mode_tracker.clone())));
        if let Some(flight) = &self.flight {
            sinks.push(Arc::clone(flight) as SharedSink);
        }
        TelemetryHandle::new(FanoutSink::new(sinks))
    }

    pub(crate) fn notify(&self) {
        self.cv.notify_all();
    }

    pub(crate) fn broadcast(inner: &mut Inner, event: Event) {
        inner.watchers.retain(|w| w.send(event.clone()).is_ok());
    }
}

/// A per-process session nonce for trace ids: wall-clock nanoseconds
/// folded with the pid, so restarts (and concurrent daemons) mint
/// distinct id spaces without coordination.
pub(crate) fn session_nonce() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    (nanos ^ u64::from(std::process::id()).rotate_left(32)) | 1
}

/// The dominant work category (argmax of per-category work, ties to
/// the lowest index) and critical-path span of a DAG — the histogram
/// label and slowdown denominator fixed at admission.
pub(crate) fn dominant_cat_span(dag: &JobDag) -> (usize, u64) {
    let cat = dag
        .work_by_category()
        .iter()
        .enumerate()
        .max_by_key(|&(i, &w)| (w, std::cmp::Reverse(i)))
        .map_or(0, |(i, _)| i);
    (cat, dag.span())
}

/// The journal's view of a session, built from the job table under
/// the `Inner` lock (the mirrored scalars were refreshed by the same
/// quantum that triggered the snapshot).
pub(crate) fn session_image(cfg: &ServerConfig, g: &Inner) -> SessionImage {
    let mut image = SessionImage::new(journal::session_meta(cfg));
    image.clock = g.now;
    image.busy = g.busy_steps;
    image.idle = g.idle_steps;
    image.completed = g.completed_log.clone();
    image.jobs = g
        .slots
        .iter()
        .enumerate()
        .map(|(id, slot)| JobImage {
            id: id as u64,
            dag: g.dag_specs[id].clone(),
            phase: match slot {
                Slot::Queued(_) => JobPhase::Queued,
                Slot::Cancelled => JobPhase::Cancelled,
                Slot::Running { release } | Slot::Done { release, .. } => {
                    JobPhase::Injected { release: *release }
                }
            },
        })
        .collect();
    image
}

/// Seed the job table from a verified recovery: the inverse of
/// [`session_image`], plus the engine-side vectors (`engine_to_id`,
/// trace, Theorem 3 accumulators) that replay re-derives.
fn rebuild_inner(
    g: &mut Inner,
    metrics: &ServiceMetrics,
    image: &SessionImage,
    jobs: &[journal::RecoveredJob],
    live: &LiveSimulation,
) {
    let mut done = 0u64;
    let mut cancelled = 0u64;
    for job in jobs {
        g.dag_specs.push(image.jobs[job.id as usize].dag.clone());
        // Wall-clock stamps do not survive a restart (the monotonic
        // epoch is new); slowdown accounting re-derives its inputs.
        g.stamps.push(TraceStamps::default());
        g.cat_span.push(dominant_cat_span(&job.dag));
        match job.phase {
            JobPhase::Queued => {
                g.slots.push(Slot::Queued(Arc::clone(&job.dag)));
                g.queue.push_back(job.id);
                g.inflight += 1;
            }
            JobPhase::Cancelled => {
                g.slots.push(Slot::Cancelled);
                cancelled += 1;
            }
            JobPhase::Injected { release } => {
                g.engine_to_id.push(job.id);
                g.trace_jobs.push(TraceJob {
                    dag: image.jobs[job.id as usize].dag.clone(),
                    release,
                });
                g.completions.push(job.completion.unwrap_or(0));
                for (cat, &w) in g.work_by_cat.iter_mut().zip(job.dag.work_by_category()) {
                    *cat += w;
                }
                g.span_release_max = g.span_release_max.max(job.dag.span() + release);
                match job.completion {
                    Some(completion) => {
                        g.slots.push(Slot::Done {
                            release,
                            completion,
                        });
                        done += 1;
                    }
                    None => {
                        g.slots.push(Slot::Running { release });
                        g.inflight += 1;
                    }
                }
            }
        }
    }
    g.completed_log = image.completed.clone();
    g.now = live.now();
    g.active = live.active_jobs() as u64;
    g.busy_steps = live.busy_steps();
    g.idle_steps = live.idle_steps();
    g.admitted.add(jobs.len() as u64);
    g.completed.add(done);
    g.cancelled.add(cancelled);
    metrics.virtual_time.set_u64(live.now());
    metrics.busy_steps.set_u64(live.busy_steps());
    metrics.idle_steps.set_u64(live.idle_steps());
    metrics.active_jobs.set_u64(live.active_jobs() as u64);
}

/// Registry-level swarm instruments, on the shared registry.
pub(crate) struct SwarmMetrics {
    /// Sessions currently registered — `kswarm_sessions_live`.
    pub(crate) sessions_live: GaugeHandle,
    /// Sessions opened since start — `kswarm_sessions_opened_total`.
    pub(crate) opened: CounterHandle,
    /// Sessions closed since start — `kswarm_sessions_closed_total`.
    pub(crate) closed: CounterHandle,
    /// Queued jobs across each shard's sessions —
    /// `kswarm_shard_queue_depth{shard}`.
    pub(crate) shard_depth: Vec<GaugeHandle>,
    /// Live reactor connections — `kswarm_reactor_connections`.
    pub(crate) reactor_connections: GaugeHandle,
}

impl SwarmMetrics {
    fn new(registry: &MetricsRegistry, shards: usize) -> Self {
        let shard_depth = (0..shards)
            .map(|i| {
                let label = i.to_string();
                registry.gauge_with(
                    "kswarm_shard_queue_depth",
                    "Queued jobs across the sessions pinned to each worker shard",
                    &[("shard", &label)],
                )
            })
            .collect();
        SwarmMetrics {
            sessions_live: registry.gauge(
                "kswarm_sessions_live",
                "Sessions currently registered (including the default session)",
            ),
            opened: registry.counter(
                "kswarm_sessions_opened_total",
                "Sessions opened since the daemon started",
            ),
            closed: registry.counter(
                "kswarm_sessions_closed_total",
                "Sessions closed since the daemon started",
            ),
            shard_depth,
            reactor_connections: registry.gauge(
                "kswarm_reactor_connections",
                "Client connections currently multiplexed by the reactor",
            ),
        }
    }
}

/// The multi-tenant runtime: every session, the shared registry, the
/// shard handles, and the cross-session shutdown bookkeeping.
pub(crate) struct Swarm {
    /// Base (template) configuration sessions derive from.
    pub(crate) cfg: ServerConfig,
    /// The one registry every session's series lives in.
    pub(crate) registry: MetricsRegistry,
    pub(crate) metrics: SwarmMetrics,
    pub(crate) sessions: Mutex<HashMap<String, Arc<Session>>>,
    pub(crate) shards: Vec<ShardHandle>,
    pub(crate) stop: AtomicBool,
    /// Set by a daemon-wide `drain`; refuses new sessions.
    pub(crate) global_draining: AtomicBool,
    // Final replies (drained/closed) adopted by the reactor but not
    // yet flushed to their sockets. `Server::join` waits for zero so
    // the process cannot exit while any session's reply is pending —
    // aggregated across sessions, so one slow drain cannot drop
    // another session's ack.
    pub(crate) acks: Mutex<usize>,
    pub(crate) acks_cv: Condvar,
    waker: Mutex<Option<Waker>>,
}

impl Swarm {
    /// Build the swarm: the shared registry, the default session
    /// (recovering its journal when one exists), and every named
    /// session found under `journal_dir/sessions/`.
    pub(crate) fn new(cfg: ServerConfig) -> io::Result<Arc<Swarm>> {
        let workers = effective_workers(&cfg);
        let registry = MetricsRegistry::new();
        let metrics = SwarmMetrics::new(&registry, workers);
        let swarm = Swarm {
            cfg: cfg.clone(),
            registry: registry.clone(),
            metrics,
            sessions: Mutex::new(HashMap::new()),
            shards: (0..workers).map(|_| ShardHandle::new()).collect(),
            stop: AtomicBool::new(false),
            global_draining: AtomicBool::new(false),
            acks: Mutex::new(0),
            acks_cv: Condvar::new(),
            waker: Mutex::new(None),
        };
        // The default session always exists; its journal lives at the
        // configured root so single-tenant recovery is unchanged.
        let default = create_session(cfg.clone(), String::new(), &registry, 0)?;
        swarm
            .sessions
            .lock()
            .unwrap()
            .insert(String::new(), default);
        swarm.metrics.sessions_live.set_u64(1);

        let swarm = Arc::new(swarm);
        swarm.recover_named_sessions()?;
        Ok(swarm)
    }

    /// Recover every named session journaled under
    /// `journal_dir/sessions/<name>/`. A directory with no recoverable
    /// session (e.g. left by a crash mid-close) is skipped.
    fn recover_named_sessions(&self) -> io::Result<()> {
        let Some(root) = self.cfg.journal_dir.as_ref() else {
            return Ok(());
        };
        let dir = root.join("sessions");
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => return Ok(()),
        };
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if validate_session_name(&name).is_err() || !entry.path().is_dir() {
                continue;
            }
            // Peek the journaled meta to rebuild the session's config
            // (scheduler, quantum, seed, …) exactly as journaled.
            let (store, recovered) = JournalStore::open(&entry.path(), self.cfg.fsync)?;
            drop(store);
            let Some(rec) = recovered else { continue };
            let mut cfg = derive_session_cfg(&self.cfg, &name, &SessionSpec::default())
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
            let meta = &rec.image.meta;
            cfg.machine = meta.machine.clone();
            cfg.scheduler = parse_scheduler(&meta.scheduler).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "session '{name}': unknown journaled scheduler '{}'",
                        meta.scheduler
                    ),
                )
            })?;
            cfg.policy = parse_policy(&meta.policy).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "session '{name}': unknown journaled policy '{}'",
                        meta.policy
                    ),
                )
            })?;
            cfg.time_policy = TimePolicy::from_label(&meta.time_policy).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "session '{name}': unknown journaled time policy '{}'",
                        meta.time_policy
                    ),
                )
            })?;
            cfg.quantum = meta.quantum;
            cfg.seed = meta.seed;
            let shard = self.shard_of(&name);
            let session = create_session(cfg, name.clone(), &self.registry, shard)?;
            let mut sessions = self.sessions.lock().unwrap();
            sessions.insert(name, session);
            self.metrics.sessions_live.set_u64(sessions.len() as u64);
        }
        Ok(())
    }

    /// The shard a session name is pinned to (stable for its lifetime;
    /// the default session rides shard 0).
    pub(crate) fn shard_of(&self, name: &str) -> usize {
        if name.is_empty() {
            return 0;
        }
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Look a session up by wire name (`""` and `"default"` are the
    /// default session).
    pub(crate) fn resolve(&self, name: &str) -> Option<Arc<Session>> {
        let key = if name == "default" { "" } else { name };
        self.sessions.lock().unwrap().get(key).cloned()
    }

    /// Every registered session (snapshot).
    pub(crate) fn all_sessions(&self) -> Vec<Arc<Session>> {
        self.sessions.lock().unwrap().values().cloned().collect()
    }

    /// Sessions pinned to one shard (snapshot).
    pub(crate) fn sessions_for_shard(&self, shard: usize) -> Vec<Arc<Session>> {
        self.sessions
            .lock()
            .unwrap()
            .values()
            .filter(|s| s.shard == shard)
            .cloned()
            .collect()
    }

    /// Number of registered sessions.
    pub(crate) fn session_count(&self) -> u64 {
        self.sessions.lock().unwrap().len() as u64
    }

    /// Open (or idempotently attach to) a named session. Returns the
    /// session and whether it already existed.
    pub(crate) fn open(
        self: &Arc<Self>,
        name: &str,
        spec: &SessionSpec,
    ) -> Result<(Arc<Session>, bool), String> {
        validate_session_name(name)?;
        if self.global_draining.load(Ordering::SeqCst) {
            return Err("draining".to_string());
        }
        // Fast path outside the creation work: attach to a live session.
        if let Some(existing) = self.sessions.lock().unwrap().get(name).cloned() {
            if existing.inner.lock().unwrap().draining {
                return Err(format!("session '{name}' is closing"));
            }
            check_spec_matches(&existing.cfg, spec)?;
            return Ok((existing, true));
        }
        let cfg = derive_session_cfg(&self.cfg, name, spec)?;
        let shard = self.shard_of(name);
        let session = create_session(cfg, name.to_string(), &self.registry, shard)
            .map_err(|e| e.to_string())?;
        let mut sessions = self.sessions.lock().unwrap();
        // Raced another open of the same name: first one wins.
        if let Some(existing) = sessions.get(name).cloned() {
            drop(sessions);
            check_spec_matches(&existing.cfg, spec)?;
            return Ok((existing, true));
        }
        sessions.insert(name.to_string(), Arc::clone(&session));
        self.metrics.sessions_live.set_u64(sessions.len() as u64);
        drop(sessions);
        self.metrics.opened.incr();
        self.shards[shard].wake();
        Ok((session, false))
    }

    /// Remove a drained session from the registry and destroy its
    /// journal directory (close = destroy; drain keeps the journal).
    pub(crate) fn finish_close(&self, session: &Arc<Session>) {
        let mut sessions = self.sessions.lock().unwrap();
        let removed = sessions.remove(&session.name).is_some();
        self.metrics.sessions_live.set_u64(sessions.len() as u64);
        drop(sessions);
        if removed {
            self.metrics.closed.incr();
            // Retire the tenant's labeled series so /metrics stops
            // exporting a destroyed session.
            self.registry.remove_labeled("session", &session.name);
            if let Some(dir) = &session.cfg.journal_dir {
                let _ = std::fs::remove_dir_all(dir);
            }
        }
    }

    /// Install the reactor's wake handle (once, at reactor startup).
    pub(crate) fn set_waker(&self, waker: Waker) {
        *self.waker.lock().unwrap() = Some(waker);
    }

    /// Wake the reactor so it notices completions, drains, and acks.
    pub(crate) fn wake_reactor(&self) {
        if let Some(w) = self.waker.lock().unwrap().as_ref() {
            w.wake();
        }
    }

    /// Wake every worker shard (used at stop).
    pub(crate) fn wake_all_shards(&self) {
        for s in &self.shards {
            s.wake();
        }
    }

    /// Adopt one pending final reply into the cross-session ledger.
    pub(crate) fn adopt_ack(&self) {
        *self.acks.lock().unwrap() += 1;
    }

    /// Settle `n` pending final replies (flushed or their connection
    /// died); wakes `Server::join`.
    pub(crate) fn settle_acks(&self, n: usize) {
        if n == 0 {
            return;
        }
        let mut acks = self.acks.lock().unwrap();
        *acks = acks.saturating_sub(n);
        self.acks_cv.notify_all();
    }
}

/// Resolve the worker-pool width: `cfg.workers`, or the machine's
/// available parallelism (at least 1) when zero.
pub(crate) fn effective_workers(cfg: &ServerConfig) -> usize {
    if cfg.workers > 0 {
        return cfg.workers;
    }
    std::thread::available_parallelism().map_or(2, usize::from)
}

/// Session names are path- and label-safe: 1–64 chars from
/// `[A-Za-z0-9._-]`, not `.`/`..`, and not the reserved `default`.
pub(crate) fn validate_session_name(name: &str) -> Result<(), String> {
    if name.is_empty() || name.len() > 64 {
        return Err("session name must be 1–64 characters".to_string());
    }
    if name == "." || name == ".." || name == "default" {
        return Err(format!("session name '{name}' is reserved"));
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-')
    {
        return Err(format!(
            "session name '{name}' has characters outside [A-Za-z0-9._-]"
        ));
    }
    Ok(())
}

fn parse_scheduler(label: &str) -> Option<SchedulerKind> {
    SchedulerKind::ALL
        .iter()
        .copied()
        .find(|k| k.label() == label)
}

fn parse_policy(name: &str) -> Option<SelectionPolicy> {
    SelectionPolicy::ALL
        .iter()
        .copied()
        .find(|p| p.name() == name)
}

/// Derive a named session's effective config from the base config and
/// the `open` overrides.
fn derive_session_cfg(
    base: &ServerConfig,
    name: &str,
    spec: &SessionSpec,
) -> Result<ServerConfig, String> {
    let mut cfg = base.clone();
    // Named sessions journal under `<root>/sessions/<name>/` (the
    // validated name cannot traverse) and never share the default
    // session's flight-dump path or external telemetry sink.
    cfg.journal_dir = base
        .journal_dir
        .as_ref()
        .map(|d| d.join("sessions").join(name));
    cfg.flight_dump = None;
    if let Some(s) = &spec.scheduler {
        cfg.scheduler = parse_scheduler(s).ok_or_else(|| format!("unknown scheduler '{s}'"))?;
    }
    if let Some(p) = &spec.policy {
        cfg.policy = parse_policy(p).ok_or_else(|| format!("unknown policy '{p}'"))?;
    }
    if let Some(q) = spec.quantum {
        if q == 0 {
            return Err("quantum must be at least 1".to_string());
        }
        cfg.quantum = q;
    }
    if let Some(s) = spec.seed {
        cfg.seed = s;
    }
    if let Some(c) = spec.queue_capacity {
        cfg.queue_capacity = c as usize;
    }
    if let Some(m) = spec.max_inflight {
        cfg.max_inflight = m as usize;
    }
    if let Some(r) = spec.rate_per_sec {
        if r.is_nan() || r < 0.0 {
            return Err("rate_per_sec must be ≥ 0".to_string());
        }
        cfg.session_rate = r;
    }
    if let Some(b) = spec.burst {
        cfg.session_burst = b;
    }
    Ok(cfg)
}

/// Idempotent-open compatibility: an explicit override that disagrees
/// with the live session's config is an error, not a silent attach.
fn check_spec_matches(cfg: &ServerConfig, spec: &SessionSpec) -> Result<(), String> {
    let mut diffs = Vec::new();
    if let Some(s) = &spec.scheduler {
        if parse_scheduler(s) != Some(cfg.scheduler) {
            diffs.push(format!("scheduler {s} vs live {}", cfg.scheduler.label()));
        }
    }
    if let Some(p) = &spec.policy {
        if parse_policy(p) != Some(cfg.policy) {
            diffs.push(format!("policy {p} vs live {}", cfg.policy.name()));
        }
    }
    if let Some(q) = spec.quantum {
        if q != cfg.quantum {
            diffs.push(format!("quantum {q} vs live {}", cfg.quantum));
        }
    }
    if let Some(s) = spec.seed {
        if s != cfg.seed {
            diffs.push(format!("seed {s} vs live {}", cfg.seed));
        }
    }
    if diffs.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "open conflicts with the live session configuration: {}",
            diffs.join(", ")
        ))
    }
}

/// Build one session: metrics series (labeled for named sessions),
/// journal open + verified recovery replay, engine + scheduler
/// construction — everything `Server::start` used to do once, now per
/// session.
pub(crate) fn create_session(
    cfg: ServerConfig,
    name: String,
    registry: &MetricsRegistry,
    shard: usize,
) -> io::Result<Arc<Session>> {
    if cfg.machine.is_empty() || cfg.machine.contains(&0) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "machine needs at least one category with ≥ 1 processor",
        ));
    }
    if cfg.quantum == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "quantum must be at least 1",
        ));
    }
    let session_label = (!name.is_empty()).then_some(name.as_str());
    let metrics = ServiceMetrics::with_registry(registry, &cfg.machine, session_label);
    let mode_tracker = ModeTracker::with_session(cfg.machine.len(), registry, session_label);
    let flight = (cfg.flight_capacity > 0)
        .then(|| Arc::new(Mutex::new(FlightRecorder::new(cfg.flight_capacity))));
    let (journal, recovered) = match &cfg.journal_dir {
        Some(dir) => {
            let (store, recovered) = JournalStore::open(dir, cfg.fsync)?;
            (
                Some(SessionJournal::new(store, &metrics, cfg.snapshot_every)),
                recovered,
            )
        }
        None => (None, None),
    };
    let k = cfg.machine.len();
    let session = Arc::new(Session {
        name,
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            slots: Vec::new(),
            dag_specs: Vec::new(),
            engine_to_id: Vec::new(),
            inflight: 0,
            draining: false,
            drained: false,
            trace: None,
            trace_jobs: Vec::new(),
            completions: Vec::new(),
            completed_log: Vec::new(),
            now: 0,
            active: 0,
            busy_steps: 0,
            idle_steps: 0,
            work_by_cat: vec![0; k],
            span_release_max: 0,
            stamps: Vec::new(),
            cat_span: Vec::new(),
            slo_breached: false,
            quota: TokenBucket::new(cfg.session_rate, cfg.session_burst),
            admitted: metrics.admitted.clone(),
            rejections: metrics.rejected.clone(),
            completed: metrics.completed.clone(),
            cancelled: metrics.cancelled.clone(),
            quanta: metrics.quanta.clone(),
            queue_depth: metrics.queue_depth_at_admit.clone(),
            quantum_latency_us: metrics.quantum_latency_us.clone(),
            max_queue_depth: 0,
            watchers: Vec::new(),
        }),
        cv: Condvar::new(),
        engine: Mutex::new(None),
        metrics,
        mode_tracker,
        flight,
        journal,
        traces: Arc::new(Mutex::new(TraceAssembler::new())),
        nonce: session_nonce(),
        cfg,
        shard,
    });

    let cfg = &session.cfg;
    let tel = session.telemetry_fanout();
    let spans = SpanRecorder::for_registry(session.metrics.registry());
    let res = Resources::new(cfg.machine.clone());
    let sim_cfg = SimConfig::default()
        .with_policy(cfg.policy)
        .with_seed(cfg.seed)
        .with_quantum(cfg.quantum)
        .with_time_policy(cfg.time_policy)
        .with_telemetry(tel.clone())
        .with_spans(spans.clone());
    let mut live = LiveSimulation::new(res, sim_cfg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    // The scheduler is built here (not in the worker) so a journal
    // recovery replays through the *same* instance that then keeps
    // serving — its internal state (RAD marks, RR cursors, RNG) is
    // part of the determinism argument.
    let mut scheduler =
        cfg.scheduler
            .build_observed(live.resources().k(), cfg.seed, tel, spans.clone());

    match recovered {
        Some(rec) => {
            let t0 = Instant::now();
            journal::validate_meta(cfg, &rec.image.meta)?;
            let jobs = journal::replay_session(&mut live, scheduler.as_mut(), &rec.image)?;
            let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
            let counts = rec.image.counts();
            {
                let mut g = session.inner.lock().unwrap();
                rebuild_inner(&mut g, &session.metrics, &rec.image, &jobs, &live);
            }
            session.metrics.recovery_duration_ms.set(recovery_ms);
            // Compact immediately: a crash-restart loop must not grow
            // the WAL without bound.
            if let Some(j) = &session.journal {
                let g = session.inner.lock().unwrap();
                j.snapshot(&session_image(cfg, &g))?;
            }
            let who = if session.name.is_empty() {
                String::new()
            } else {
                format!(" '{}'", session.name)
            };
            eprintln!(
                "kserve: recovered session{who} from journal ({} jobs: {} done, {} running, \
                 {} queued, {} cancelled; clock {}; {} WAL records{}), replay verified \
                 in {recovery_ms:.1} ms",
                rec.image.jobs.len(),
                counts.3,
                counts.1,
                counts.0,
                counts.2,
                rec.image.clock,
                rec.wal_records,
                if rec.dropped_bytes > 0 {
                    format!(", {} torn bytes truncated", rec.dropped_bytes)
                } else {
                    String::new()
                },
            );
        }
        None => {
            if let Some(j) = &session.journal {
                j.log_open(&journal::session_meta(cfg))?;
            }
        }
    }

    *session.engine.lock().unwrap() = Some(EngineState {
        live,
        scheduler,
        spans,
        done_buf: Vec::new(),
        desires_buf: Vec::new(),
        next_due: None,
    });
    Ok(session)
}
