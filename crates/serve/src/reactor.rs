//! kswarm reactor: one `poll(2)`-driven thread multiplexing every
//! client connection.
//!
//! Replaces thread-per-connection accept with a single event loop,
//! hand-rolled on the raw `poll(2)` syscall (no async runtime, no new
//! dependencies — the only `unsafe` in the crate is the one FFI call,
//! quarantined in [`sys`]). Each connection carries its own read and
//! write buffer; request lines are parsed and dispatched only while
//! the connection is idle, watch subscriptions are pumped from their
//! completion channels without blocking, and drain/close replies are
//! deferred until every targeted session reports drained. A self-pipe
//! [`Waker`] lets worker threads (completions, drain finalization) and
//! the registry (new sessions) interrupt the poll immediately instead
//! of riding out the timeout.
//!
//! The reactor also keeps the swarm's drain-ack ledger honest: a
//! drain/close reply is *adopted* at dispatch and *settled* only when
//! its bytes reach the socket (or the peer dies), so `Server::join`'s
//! bounded wait aggregates across sessions — a slow-draining session
//! cannot drop another session's final replies.

use crate::protocol::{Event, Response};
use crate::registry::Swarm;
use crate::server::{dispatch, drain_reply_for, DrainKind, Outcome, WatchState};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc::TryRecvError;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Raw `poll(2)`. The syscall's ABI types are stable on every unix the
/// repo targets; the non-unix fallback degrades to a short sleep that
/// reports every registered interest as ready (correct, just not
/// event-driven — reads/writes are non-blocking either way).
#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x1;
    pub const POLLOUT: i16 = 0x4;
    pub const POLLERR: i16 = 0x8;
    pub const POLLHUP: i16 = 0x10;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: i32) -> i32;
    }

    /// Block until something is ready or `timeout_ms` passes; returns
    /// the number of ready descriptors (0 on timeout, -1 on error —
    /// the loop treats EINTR like a timeout).
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        if fds.is_empty() {
            std::thread::sleep(std::time::Duration::from_millis(timeout_ms.max(0) as u64));
            return 0;
        }
        // SAFETY: `fds` is a valid, exclusive slice of `repr(C)`
        // pollfd structs for the duration of the call; the kernel
        // writes only `revents` within the slice bounds.
        unsafe {
            poll(
                fds.as_mut_ptr(),
                fds.len() as std::os::raw::c_ulong,
                timeout_ms,
            )
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x1;
    pub const POLLOUT: i16 = 0x4;
    pub const POLLERR: i16 = 0x8;
    pub const POLLHUP: i16 = 0x10;

    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        // Level-triggered approximation: report everything ready after
        // a short nap; non-blocking I/O sorts out the false positives.
        std::thread::sleep(std::time::Duration::from_millis(
            (timeout_ms.max(0) as u64).min(5),
        ));
        for f in fds.iter_mut() {
            f.revents = f.events;
        }
        fds.len() as i32
    }
}

/// Poll timeout: the latency bound on anything that arrives without a
/// waker nudge.
const POLL_TIMEOUT_MS: i32 = 50;

/// How long after stop the reactor keeps flushing pending final
/// replies before giving up on their sockets.
const FLUSH_DEADLINE: Duration = Duration::from_secs(5);

/// A connected client stream, TCP or unix-domain, unified.
pub(crate) enum ConnStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl ConnStream {
    fn raw_fd(&self) -> i32 {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            match self {
                ConnStream::Tcp(s) => s.as_raw_fd(),
                ConnStream::Unix(s) => s.as_raw_fd(),
            }
        }
        #[cfg(not(unix))]
        {
            -1
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ConnStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ConnStream::Unix(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ConnStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ConnStream::Unix(s) => s.write(buf),
        }
    }

    fn set_blocking(&self) -> io::Result<()> {
        match self {
            ConnStream::Tcp(s) => s.set_nonblocking(false),
            #[cfg(unix)]
            ConnStream::Unix(s) => s.set_nonblocking(false),
        }
    }
}

/// A bound accept socket, TCP or unix-domain, unified.
pub(crate) enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn raw_fd(&self) -> i32 {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            match self {
                Listener::Tcp(l) => l.as_raw_fd(),
                Listener::Unix(l) => l.as_raw_fd(),
            }
        }
        #[cfg(not(unix))]
        {
            -1
        }
    }

    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(true),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(true),
        }
    }

    fn accept(&self) -> io::Result<ConnStream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(true)?;
                let _ = s.set_nodelay(true);
                Ok(ConnStream::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(true)?;
                Ok(ConnStream::Unix(s))
            }
        }
    }
}

/// The write half of the reactor's self-pipe. Worker threads call
/// [`Waker::wake`] (via `Swarm::wake_reactor`) to interrupt the poll.
pub(crate) struct Waker {
    #[cfg(unix)]
    tx: UnixStream,
}

impl Waker {
    pub(crate) fn wake(&self) {
        #[cfg(unix)]
        {
            // A full pipe already means a wake is pending; WouldBlock
            // (and any other error) is therefore ignorable.
            let _ = (&self.tx).write(&[1]);
        }
    }
}

/// Build the self-pipe: the [`Waker`] goes to the swarm, the read end
/// into the reactor's poll set. On non-unix there is no pipe — the
/// fallback poll's short timeout bounds wake latency instead.
pub(crate) fn waker_pair() -> io::Result<(Waker, Option<ConnStream>)> {
    #[cfg(unix)]
    {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((Waker { tx }, Some(ConnStream::Unix(rx))))
    }
    #[cfg(not(unix))]
    {
        Ok((Waker {}, None))
    }
}

/// What a connection is currently doing between request lines.
enum Mode {
    /// Parsing request lines as they arrive.
    Idle,
    /// Streaming completion events for one watched submission; request
    /// parsing is paused (pipelined bytes stay buffered) until the
    /// watch ends, matching the blocking protocol's semantics.
    Watching(WatchState),
    /// A drain/close reply is pending until every targeted session
    /// reports drained.
    AwaitDrain(DrainKind),
}

/// One multiplexed connection.
struct Conn {
    stream: ConnStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    // Bytes of `wbuf` already written to the socket.
    wpos: usize,
    mode: Mode,
    // Final (drain/close) replies adopted by this connection but not
    // yet settled against the swarm's ack ledger.
    owed_acks: usize,
    dead: bool,
}

impl Conn {
    fn new(stream: ConnStream) -> Self {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            mode: Mode::Idle,
            owed_acks: 0,
            dead: false,
        }
    }

    fn push_line(&mut self, line: &str) {
        self.wbuf.extend_from_slice(line.as_bytes());
        self.wbuf.push(b'\n');
    }

    /// Write as much of `wbuf` as the socket accepts right now.
    fn flush(&mut self) {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
    }

    fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }
}

/// The reactor thread body. Owns every client connection until the
/// swarm stops and all pending final replies are flushed (or the
/// flush deadline passes).
pub(crate) fn reactor_loop(
    swarm: &Arc<Swarm>,
    listeners: Vec<Listener>,
    mut wake_rx: Option<ConnStream>,
    metrics_addr: Option<SocketAddr>,
) {
    for l in &listeners {
        let _ = l.set_nonblocking();
    }
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = [0u8; 4096];
    let mut stop_seen: Option<Instant> = None;

    loop {
        // Assemble the poll set: waker, listeners (while accepting),
        // then one slot per connection.
        let stopping = swarm.stop.load(Ordering::SeqCst);
        let mut fds: Vec<sys::PollFd> = Vec::with_capacity(1 + listeners.len() + conns.len());
        let wake_slot = wake_rx.as_ref().map(|rx| {
            fds.push(sys::PollFd {
                fd: rx.raw_fd(),
                events: sys::POLLIN,
                revents: 0,
            });
            fds.len() - 1
        });
        let listener_base = fds.len();
        if !stopping {
            for l in &listeners {
                fds.push(sys::PollFd {
                    fd: l.raw_fd(),
                    events: sys::POLLIN,
                    revents: 0,
                });
            }
        }
        let conn_base = fds.len();
        for c in &conns {
            let mut events = 0i16;
            if matches!(c.mode, Mode::Idle) {
                events |= sys::POLLIN;
            }
            if c.wants_write() {
                events |= sys::POLLOUT;
            }
            fds.push(sys::PollFd {
                fd: c.stream.raw_fd(),
                events,
                revents: 0,
            });
        }

        sys::poll_fds(&mut fds, POLL_TIMEOUT_MS);

        // Drain the self-pipe (its content is meaningless; its
        // readability was the signal).
        if let (Some(slot), Some(rx)) = (wake_slot, wake_rx.as_mut()) {
            if fds[slot].revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP) != 0 {
                while let Ok(n) = rx.read(&mut scratch) {
                    if n == 0 {
                        break;
                    }
                }
            }
        }

        // Accept everything pending on every listener.
        if !stopping {
            for (i, l) in listeners.iter().enumerate() {
                if fds[listener_base + i].revents & sys::POLLIN == 0 {
                    continue;
                }
                loop {
                    match l.accept() {
                        Ok(stream) => conns.push(Conn::new(stream)),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
            }
        }

        // Per-connection work. Indexed loop: `conns` only grows here
        // via accepts above, never inside this loop.
        for (i, c) in conns.iter_mut().enumerate() {
            if c.dead {
                continue;
            }
            let revents = fds.get(conn_base + i).map_or(0, |f| f.revents);
            if revents & (sys::POLLERR | sys::POLLHUP) != 0 && !c.wants_write() {
                // Peer is gone and nothing is owed to the socket; a
                // half-closed peer still waiting on replies keeps the
                // connection until the flush fails or completes.
                if matches!(c.mode, Mode::Idle) && revents & sys::POLLIN == 0 {
                    c.dead = true;
                    continue;
                }
            }
            if c.wants_write() {
                c.flush();
            }
            if matches!(c.mode, Mode::Idle) && revents & (sys::POLLIN | sys::POLLHUP) != 0 {
                read_ready(c, &mut scratch);
            }
            if matches!(c.mode, Mode::Idle) {
                parse_lines(c, swarm);
            }
            progress_watch(c);
            progress_drain(c, swarm);
            if c.wants_write() {
                c.flush();
            }
            // A settled connection is one whose final replies are all
            // on the wire (or whose peer died): square the ledger.
            if c.owed_acks > 0
                && ((!c.wants_write() && !matches!(c.mode, Mode::AwaitDrain(_))) || c.dead)
            {
                swarm.settle_acks(c.owed_acks);
                c.owed_acks = 0;
            }
        }

        conns.retain(|c| !c.dead);
        swarm
            .metrics
            .reactor_connections
            .set_u64(conns.len() as u64);

        if swarm.stop.load(Ordering::SeqCst) {
            let deadline = *stop_seen.get_or_insert_with(Instant::now) + FLUSH_DEADLINE;
            let pending = conns
                .iter()
                .any(|c| c.wants_write() || matches!(c.mode, Mode::AwaitDrain(_)));
            if !pending || Instant::now() >= deadline {
                // Whatever is still owed can never be delivered.
                let owed: usize = conns.iter().map(|c| c.owed_acks).sum();
                swarm.settle_acks(owed);
                // Idle connections outlive the reactor: clients may
                // still query stats/status/metrics on a connection that
                // watched the drain, so each one gets a detached
                // blocking tail thread until the peer hangs up.
                for c in conns.drain(..) {
                    if c.dead || c.wants_write() || !matches!(c.mode, Mode::Idle) {
                        continue;
                    }
                    let tail_swarm = Arc::clone(swarm);
                    let stream = c.stream;
                    let rbuf = c.rbuf;
                    let _ = std::thread::Builder::new()
                        .name("kserve-tail".into())
                        .spawn(move || serve_tail(stream, &tail_swarm, rbuf));
                }
                break;
            }
        }
    }

    swarm.metrics.reactor_connections.set_u64(0);
    // Unblock the (blocking) metrics accept thread so the process can
    // exit; it re-checks the stop flag per connection.
    if let Some(addr) = metrics_addr {
        let _ = TcpStream::connect(addr);
    }
}

fn write_all(stream: &mut ConnStream, buf: &[u8]) -> io::Result<()> {
    let mut written = 0;
    while written < buf.len() {
        match stream.write(&buf[written..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Serve one connection after the daemon has stopped: every session is
/// sealed, so every request resolves immediately (drain/close replies
/// included) with simple blocking I/O until the peer hangs up.
fn serve_tail(mut stream: ConnStream, swarm: &Arc<Swarm>, mut rbuf: Vec<u8>) {
    if stream.set_blocking().is_err() {
        return;
    }
    let mut scratch = [0u8; 4096];
    loop {
        while let Some(nl) = rbuf.iter().position(|&b| b == b'\n') {
            let line = String::from_utf8_lossy(&rbuf[..nl]).into_owned();
            rbuf.drain(..=nl);
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let mut settle = 0usize;
            let mut lines = Vec::new();
            match dispatch(trimmed, swarm) {
                Outcome::Reply(response) => lines.push(response.encode()),
                Outcome::ReplyWatch(response, watch) => {
                    // Sealed sessions reject admission, so this arm is
                    // effectively unreachable — but resolving from the
                    // final job table is correct either way.
                    lines.push(response.encode());
                    for event in watch.resolve_stragglers() {
                        lines.push(event.encode());
                    }
                    lines.push(Event::WatchEnd.encode());
                }
                Outcome::Drain(kind) => {
                    settle = 1;
                    let response = match &kind {
                        DrainKind::Global => {
                            let default = swarm
                                .resolve("")
                                .expect("default session always registered");
                            Response::Drained(drain_reply_for(&default))
                        }
                        DrainKind::Session(s) => Response::Drained(drain_reply_for(s)),
                        DrainKind::Close(s) => {
                            let report = drain_reply_for(s);
                            swarm.finish_close(s);
                            Response::Closed {
                                session: s.name.clone(),
                                report,
                            }
                        }
                    };
                    lines.push(response.encode());
                }
            }
            let mut ok = true;
            for l in &lines {
                let mut bytes = l.clone().into_bytes();
                bytes.push(b'\n');
                if write_all(&mut stream, &bytes).is_err() {
                    ok = false;
                    break;
                }
            }
            if settle > 0 {
                swarm.settle_acks(settle);
            }
            if !ok {
                return;
            }
        }
        match stream.read(&mut scratch) {
            Ok(0) => return,
            Ok(n) => rbuf.extend_from_slice(&scratch[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Pull everything the socket has into the read buffer; EOF or a hard
/// error marks the connection dead (any complete buffered lines are
/// still parsed this iteration).
fn read_ready(c: &mut Conn, scratch: &mut [u8]) {
    loop {
        match c.stream.read(scratch) {
            Ok(0) => {
                c.dead = true;
                return;
            }
            Ok(n) => c.rbuf.extend_from_slice(&scratch[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                c.dead = true;
                return;
            }
        }
    }
}

/// Parse and dispatch every complete line in the read buffer, stopping
/// early if a dispatch changes the connection's mode (watch or drain):
/// later pipelined lines stay buffered until the mode returns to idle.
fn parse_lines(c: &mut Conn, swarm: &Arc<Swarm>) {
    let mut consumed = 0;
    while matches!(c.mode, Mode::Idle) {
        let Some(nl) = c.rbuf[consumed..].iter().position(|&b| b == b'\n') else {
            break;
        };
        let end = consumed + nl;
        let line = String::from_utf8_lossy(&c.rbuf[consumed..end]).into_owned();
        consumed = end + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match dispatch(trimmed, swarm) {
            Outcome::Reply(response) => c.push_line(&response.encode()),
            Outcome::ReplyWatch(response, watch) => {
                c.push_line(&response.encode());
                c.mode = Mode::Watching(watch);
            }
            Outcome::Drain(kind) => {
                // The ack was adopted into the swarm ledger by
                // dispatch; this connection owes its settlement.
                c.owed_acks += 1;
                c.mode = Mode::AwaitDrain(kind);
            }
        }
    }
    c.rbuf.drain(..consumed);
}

/// Pump a watching connection: forward buffered completion events,
/// and when the subscription ends (all jobs resolved, or the session
/// sealed), resolve stragglers from the final job table and return to
/// idle.
fn progress_watch(c: &mut Conn) {
    let Mode::Watching(watch) = &mut c.mode else {
        return;
    };
    let mut finished = false;
    while !watch.remaining.is_empty() {
        let event = match watch.rx.try_recv() {
            Ok(e) => e,
            Err(TryRecvError::Empty) => break,
            // Session sealed (drained): resolve the rest from state.
            Err(TryRecvError::Disconnected) => {
                finished = true;
                break;
            }
        };
        match event {
            Event::JobDone { job, .. } => {
                if let Some(pos) = watch.remaining.iter().position(|&id| id == job) {
                    watch.remaining.swap_remove(pos);
                    c.wbuf.extend_from_slice(event.encode().as_bytes());
                    c.wbuf.push(b'\n');
                }
            }
            Event::JobCancelled { job } => {
                if let Some(pos) = watch.remaining.iter().position(|&id| id == job) {
                    watch.remaining.swap_remove(pos);
                    c.wbuf.extend_from_slice(event.encode().as_bytes());
                    c.wbuf.push(b'\n');
                }
            }
            Event::WatchEnd => {
                finished = true;
                break;
            }
        }
    }
    if !(finished || watch.remaining.is_empty()) {
        return;
    }
    // Anything still unresolved (a drain raced us) is reported from
    // the final job table.
    let stragglers = watch.resolve_stragglers();
    for event in stragglers {
        c.wbuf.extend_from_slice(event.encode().as_bytes());
        c.wbuf.push(b'\n');
    }
    c.wbuf
        .extend_from_slice(Event::WatchEnd.encode().as_bytes());
    c.wbuf.push(b'\n');
    c.mode = Mode::Idle;
}

/// Check a pending drain/close: once every targeted session reports
/// drained, build and queue the final reply (and for `close`, retire
/// the session from the registry).
fn progress_drain(c: &mut Conn, swarm: &Arc<Swarm>) {
    let Mode::AwaitDrain(kind) = &c.mode else {
        return;
    };
    let ready = match kind {
        DrainKind::Global => swarm
            .all_sessions()
            .iter()
            .all(|s| s.inner.lock().unwrap().drained),
        DrainKind::Session(s) | DrainKind::Close(s) => s.inner.lock().unwrap().drained,
    };
    if !ready {
        return;
    }
    let Mode::AwaitDrain(kind) = std::mem::replace(&mut c.mode, Mode::Idle) else {
        unreachable!("mode checked above");
    };
    let response = match &kind {
        DrainKind::Global => {
            // v4 byte compatibility: the daemon-wide reply carries the
            // default session's counters and trace.
            let default = swarm
                .resolve("")
                .expect("default session always registered");
            let reply = drain_reply_for(&default);
            // Everything is sealed — stop the workers and begin the
            // reactor's own flush-and-exit phase.
            swarm.stop.store(true, Ordering::SeqCst);
            swarm.wake_all_shards();
            Response::Drained(reply)
        }
        DrainKind::Session(s) => Response::Drained(drain_reply_for(s)),
        DrainKind::Close(s) => {
            let report = drain_reply_for(s);
            swarm.finish_close(s);
            Response::Closed {
                session: s.name.clone(),
                report,
            }
        }
    };
    c.push_line(&response.encode());
}
