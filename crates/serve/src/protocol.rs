//! The newline-delimited JSON protocol the daemon speaks.
//!
//! One request per line, one reply line per request; a `submit` with
//! `"watch": true` additionally streams [`Event`] lines after the
//! reply until every job of that submission has completed.
//!
//! Encoding is canonical — fixed field order, no whitespace — so a
//! reply can be compared byte-for-byte (the replay bridge relies on
//! this for completion vectors).

use crate::replay::SessionTrace;
use crate::wire::{self, need_arr, need_str, need_u64, Value};
use kdag::DagSpec;
use ksim::Time;
use ktelemetry::{ExecSegment, JobTrace, TraceStamps};

/// Wire-protocol version, reported in `hello` and `stats` replies.
///
/// Version history:
/// * **1** — the original verb set (implicit: replies carry no
///   `"version"` field; decoders treat its absence as 1).
/// * **2** — adds the `hello` verb, the `"version"` field on
///   `hello`/`stats`, and `"time_policy"` on `stats`.
/// * **3** — adds `"durability"` on `hello` and the journal health
///   fields (`"durability"`, `"journal_*"`, `"last_recovery_ms"`) on
///   `stats`. All decode tolerantly: absent means journaling off.
/// * **4** — ktrace: adds the `trace` verb (per-job span tree),
///   `"trace_ids"` on `submitted` replies, `"trace_id"` on `job_done`
///   events, and the response-time/slowdown fields (`"response_*"`,
///   `"slowdown_*"`) on `stats`. All decode tolerantly: absent means
///   a pre-tracing server.
/// * **5** — kswarm multi-tenancy: adds the `open`/`close` verb pair
///   (named sessions with per-session scheduler/quota overrides), an
///   optional `"session"` field on `submit`/`status`/`stats`/
///   `cancel`/`trace`/`drain` (absent means the implicit `default`
///   session — every v4 line is a valid v5 line), and `"session"`/
///   `"sessions"` on `stats` replies. A bare `drain` still drains the
///   whole daemon and replies with the default session's report, so
///   v4 clients observe identical bytes.
pub const PROTOCOL_VERSION: u64 = 5;

/// A reference to a server-side generated `kworkloads` scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioRef {
    /// Scenario family: `pipeline`, `mapreduce`, or `mixed-server`.
    pub name: String,
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Generator seed.
    pub seed: u64,
}

/// Per-session configuration overrides carried by an `open` request
/// (v5+). Every field is optional; absent fields inherit the daemon's
/// defaults.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SessionSpec {
    /// Scheduler label (e.g. `k-rad`, `equi`).
    pub scheduler: Option<String>,
    /// Selection-policy label (e.g. `fifo`).
    pub policy: Option<String>,
    /// Scheduling quantum in engine steps.
    pub quantum: Option<u64>,
    /// Engine/scheduler RNG seed.
    pub seed: Option<u64>,
    /// Submission-queue bound.
    pub queue_capacity: Option<u64>,
    /// Admitted-but-incomplete bound.
    pub max_inflight: Option<u64>,
    /// Admission rate limit in jobs per second (token bucket); absent
    /// or 0 disables the limit.
    pub rate_per_sec: Option<f64>,
    /// Token-bucket burst size (jobs admitted above the steady rate).
    pub burst: Option<u64>,
}

/// A client request (one per line).
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit jobs: inline DAG specs, or a scenario reference the
    /// server expands. `watch` keeps the connection streaming
    /// completion events for the submitted jobs.
    Submit {
        /// Inline K-DAGs.
        jobs: Vec<DagSpec>,
        /// Server-side scenario expansion (used when `jobs` is empty).
        scenario: Option<ScenarioRef>,
        /// Stream completion events after the reply.
        watch: bool,
        /// Target session (v5+; empty means `default`).
        session: String,
    },
    /// Identify the server: protocol version, scheduler, clock policy.
    Hello,
    /// Per-job states and engine clock.
    Status {
        /// Target session (v5+; empty means `default`).
        session: String,
    },
    /// Service counters and latency metrics.
    Stats {
        /// Target session (v5+; empty means `default`).
        session: String,
    },
    /// The live metrics registry in Prometheus text exposition format.
    Metrics,
    /// Cancel a still-queued job.
    Cancel {
        /// Server-assigned job id.
        job: u64,
        /// Target session (v5+; empty means `default`).
        session: String,
    },
    /// The assembled ktrace span tree of one job (v4+).
    Trace {
        /// Server-assigned job id.
        job: u64,
        /// Target session (v5+; empty means `default`).
        session: String,
    },
    /// Create (or attach to) a named session (v5+).
    Open {
        /// Session name (`[A-Za-z0-9._-]`, at most 64 chars).
        session: String,
        /// Configuration overrides for a newly created session.
        spec: SessionSpec,
    },
    /// Drain and destroy a named session (v5+). The reply carries the
    /// session's final counters and canonical trace.
    Close {
        /// Session name.
        session: String,
    },
    /// Stop admission, finish in-flight work, report the session
    /// trace. With a session name this drains that session only; bare
    /// `drain` drains every session and stops the daemon (legacy v4
    /// semantics).
    Drain {
        /// Target session (v5+; empty drains the whole daemon).
        session: String,
    },
}

/// The lifecycle of one submitted job, as reported by `status`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for the quantum loop to inject it.
    Queued,
    /// Cancelled while still queued.
    Cancelled,
    /// Injected into the engine and not yet complete.
    Running,
    /// Complete.
    Done,
}

impl JobState {
    fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Cancelled => "cancelled",
            JobState::Running => "running",
            JobState::Done => "done",
        }
    }

    fn from_name(s: &str) -> Result<JobState, String> {
        Ok(match s {
            "queued" => JobState::Queued,
            "cancelled" => JobState::Cancelled,
            "running" => JobState::Running,
            "done" => JobState::Done,
            other => return Err(format!("unknown job state '{other}'")),
        })
    }
}

/// One row of a `status` reply.
#[derive(Clone, Debug, PartialEq)]
pub struct JobStatus {
    /// Server-assigned job id.
    pub job: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// Virtual release time (assigned at injection).
    pub release: Option<Time>,
    /// Virtual completion time (once done).
    pub completion: Option<Time>,
}

/// The `hello` reply body: enough for a client to pick compatible
/// verbs and for wire-protocol evolution to be detectable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HelloReply {
    /// [`PROTOCOL_VERSION`] of the serving daemon (absent on the wire
    /// means a pre-versioning v1 server).
    pub version: u64,
    /// Label of the scheduling policy serving the session.
    pub scheduler: String,
    /// Engine clock policy label (`unit` or `event`).
    pub time_policy: String,
    /// Scheduling quantum (engine steps per decision).
    pub quantum: u64,
    /// Engine virtual time at the reply.
    pub now: Time,
    /// Durability mode: `off` (no journal) or `wal:<fsync policy>`,
    /// e.g. `wal:interval:50`. Decodes as `off` from older servers.
    pub durability: String,
}

/// The `status` reply body.
#[derive(Clone, Debug, PartialEq)]
pub struct StatusReply {
    /// Engine virtual time.
    pub now: Time,
    /// Jobs admitted but not yet injected.
    pub queued: u64,
    /// Jobs running in the engine.
    pub active: u64,
    /// Whether the server is draining.
    pub draining: bool,
    /// Per-job states, in id order.
    pub jobs: Vec<JobStatus>,
}

/// The `stats` reply body.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsReply {
    /// Jobs accepted (acked) so far.
    pub admitted: u64,
    /// Submissions refused with backpressure.
    pub rejected: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs cancelled while queued.
    pub cancelled: u64,
    /// Current submission-queue depth.
    pub queue_depth: u64,
    /// High-water mark of the submission queue.
    pub max_queue_depth: u64,
    /// Engine virtual time.
    pub now: Time,
    /// Simulated busy steps.
    pub busy_steps: u64,
    /// Fast-forwarded idle steps.
    pub idle_steps: u64,
    /// Quantum-loop iterations executed.
    pub quanta: u64,
    /// Mean wall-clock latency of one quantum, in microseconds.
    pub quantum_latency_mean_us: f64,
    /// Median quantum latency (histogram-interpolated), microseconds.
    pub quantum_latency_p50_us: f64,
    /// 95th-percentile quantum latency, microseconds.
    pub quantum_latency_p95_us: f64,
    /// 99th-percentile quantum latency, microseconds.
    pub quantum_latency_p99_us: f64,
    /// Wall-clock seconds since the daemon started.
    pub uptime_secs: f64,
    /// Mean wall time of the ready-set maintenance phase per busy
    /// step, microseconds (0 until the engine records spans).
    pub phase_ready_mean_us: f64,
    /// Mean wall time of one scheduler decide phase, microseconds.
    pub phase_decide_mean_us: f64,
    /// Mean wall time of one DEQ allotment branch, microseconds.
    pub phase_deq_allot_mean_us: f64,
    /// Mean wall time of one RR cycling branch, microseconds.
    pub phase_rr_cycle_mean_us: f64,
    /// Mean wall time of the execute/commit phase per busy step,
    /// microseconds.
    pub phase_execute_mean_us: f64,
    /// Label of the scheduling policy serving the session.
    pub scheduler: String,
    /// [`PROTOCOL_VERSION`] of the serving daemon (decoded as 1 when
    /// the field is absent — a pre-versioning server).
    pub version: u64,
    /// Engine clock policy label (`unit` or `event`; empty from
    /// pre-versioning servers).
    pub time_policy: String,
    /// Durability mode: `off` or `wal:<fsync policy>` (v3+; decodes
    /// as `off` from older servers).
    pub durability: String,
    /// Records appended to the journal since open.
    pub journal_records: u64,
    /// Bytes committed to the journal since open.
    pub journal_bytes: u64,
    /// fsync(2) calls issued by the journal since open.
    pub journal_fsyncs: u64,
    /// Snapshots written since open.
    pub journal_snapshots: u64,
    /// WAL records past the last snapshot — the replay lag a restart
    /// would pay.
    pub journal_tail_records: u64,
    /// Wall-clock milliseconds the last journal recovery took
    /// (0 when the session did not start from a journal).
    pub last_recovery_ms: f64,
    /// Completed jobs with recorded response times (v4+).
    pub response_jobs: u64,
    /// Mean response time over completed jobs, engine steps (v4+).
    pub response_mean_steps: f64,
    /// 99th-percentile response time, engine steps (v4+).
    pub response_p99_steps: f64,
    /// Mean slowdown (response/span) in milli-units (v4+).
    pub slowdown_mean_milli: f64,
    /// 99th-percentile slowdown in milli-units (v4+).
    pub slowdown_p99_milli: f64,
    /// Mean response per dominant category, engine steps (v4+).
    pub response_mean_steps_by_cat: Vec<f64>,
    /// Mean slowdown per dominant category, milli-units (v4+).
    pub slowdown_mean_milli_by_cat: Vec<f64>,
    /// Name of the session these stats describe (v5+; empty from
    /// older servers, meaning the only session there is).
    pub session: String,
    /// Sessions currently live in the daemon's registry (v5+; 0 from
    /// older single-session servers).
    pub sessions: u64,
}

/// The `trace` reply body: one job's assembled lifecycle span tree
/// (v4+). Engine-time fields are absent until the corresponding event
/// has been observed; wall-clock stamps are nanoseconds since the
/// daemon's monotonic epoch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceReply {
    /// Server-assigned job id.
    pub job: u64,
    /// Session-unique trace id (`<session-nonce>-<job>`).
    pub trace_id: String,
    /// Lifecycle state (`queued`/`cancelled`/`running`/`done`).
    pub state: String,
    /// Virtual release time `r(Ji)`.
    pub release: Option<u64>,
    /// Step at which the job entered the active set.
    pub activated: Option<u64>,
    /// Decision step of the first nonzero allotment.
    pub first_allot: Option<u64>,
    /// Execution segments in ascending step order.
    pub segments: Vec<ExecSegment>,
    /// Virtual completion time.
    pub completion: Option<u64>,
    /// `completion − release`.
    pub response: Option<u64>,
    /// When the submit request was read off the wire (ns).
    pub submit_ns: Option<u64>,
    /// When admission committed (ns).
    pub admit_ns: Option<u64>,
    /// When the job was injected into the engine (ns).
    pub inject_ns: Option<u64>,
    /// When the completion was published (ns).
    pub complete_ns: Option<u64>,
}

impl TraceReply {
    /// Convert into the `ktelemetry` trace model (for rendering the
    /// span tree and for equality checks against offline replays).
    pub fn to_job_trace(&self) -> JobTrace {
        JobTrace {
            job: self.job as u32,
            release: self.release,
            activated: self.activated,
            first_allot: self.first_allot,
            segments: self.segments.clone(),
            completion: self.completion,
            response: self.response,
            stamps: TraceStamps {
                submit_ns: self.submit_ns,
                admit_ns: self.admit_ns,
                inject_ns: self.inject_ns,
                complete_ns: self.complete_ns,
            },
        }
    }
}

/// The `drain` reply body: final counters plus the canonical trace.
#[derive(Clone, Debug, PartialEq)]
pub struct DrainReply {
    /// Jobs accepted over the session.
    pub admitted: u64,
    /// Jobs completed (equals injected jobs after a clean drain).
    pub completed: u64,
    /// Jobs cancelled while queued.
    pub cancelled: u64,
    /// Submissions refused with backpressure.
    pub rejected: u64,
    /// The canonical session trace for offline replay.
    pub trace: SessionTrace,
}

/// A server reply (one line per request).
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Jobs accepted; ids are in submission order.
    Submitted {
        /// Server-assigned ids.
        jobs: Vec<u64>,
        /// Trace ids, parallel to `jobs` (v4+; empty from older
        /// servers).
        trace_ids: Vec<String>,
    },
    /// Backpressure: the submission was refused outright.
    Rejected {
        /// Why (queue full, too many in flight, draining).
        reason: String,
        /// Queue depth at rejection time.
        queue_depth: u64,
        /// Configured queue capacity.
        capacity: u64,
    },
    /// `hello` body.
    Hello(HelloReply),
    /// `status` body.
    Status(StatusReply),
    /// `stats` body.
    Stats(StatsReply),
    /// `metrics` body: the Prometheus text exposition.
    Metrics {
        /// The rendered exposition text.
        text: String,
    },
    /// The job was cancelled while queued.
    Cancelled {
        /// Its id.
        job: u64,
    },
    /// `trace` body.
    Trace(TraceReply),
    /// A named session was created or attached (v5+).
    Opened {
        /// Session name.
        session: String,
        /// Scheduler label serving it.
        scheduler: String,
        /// Engine clock policy label.
        time_policy: String,
        /// Scheduling quantum.
        quantum: u64,
        /// `true` when the name was already live (attach) or was
        /// rebuilt from its journal; `false` for a fresh session.
        existing: bool,
    },
    /// A named session drained and was destroyed (v5+).
    Closed {
        /// Session name.
        session: String,
        /// Final counters and canonical trace, as a drain would report.
        report: DrainReply,
    },
    /// Drain finished; the session is over.
    Drained(DrainReply),
    /// Malformed request or invalid argument.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

/// A streamed event line (only on watching connections).
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// One watched job completed.
    JobDone {
        /// Its id.
        job: u64,
        /// Virtual release time.
        release: Time,
        /// Virtual completion time.
        completion: Time,
        /// `completion - release`.
        response: Time,
        /// Trace id (v4+; empty from older servers).
        trace_id: String,
    },
    /// One watched job was cancelled while still queued.
    JobCancelled {
        /// Its id.
        job: u64,
    },
    /// Every watched job has completed; the stream ends.
    WatchEnd,
}

/// Encode a [`DagSpec`] canonically.
pub fn encode_dag(out: &mut String, dag: &DagSpec) {
    out.push_str("{\"k\":");
    out.push_str(&dag.k.to_string());
    out.push_str(",\"categories\":[");
    for (i, c) in dag.categories.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&c.to_string());
    }
    out.push_str("],\"edges\":[");
    for (i, (u, v)) in dag.edges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        out.push_str(&u.to_string());
        out.push(',');
        out.push_str(&v.to_string());
        out.push(']');
    }
    out.push_str("]}");
}

/// Decode a [`DagSpec`] (structure only; DAG validity is checked by
/// [`DagSpec::build`] at admission).
pub fn decode_dag(v: &Value) -> Result<DagSpec, String> {
    let k = need_u64(v, "k")? as usize;
    let categories = need_arr(v, "categories")?
        .iter()
        .map(|c| {
            c.as_u64()
                .filter(|&c| c <= u64::from(u16::MAX))
                .map(|c| c as u16)
                .ok_or_else(|| "bad category".to_string())
        })
        .collect::<Result<Vec<u16>, String>>()?;
    let edges = need_arr(v, "edges")?
        .iter()
        .map(|e| {
            let pair = e.as_arr().filter(|p| p.len() == 2);
            let (u, v) = match pair {
                Some(p) => (p[0].as_u64(), p[1].as_u64()),
                None => (None, None),
            };
            match (u, v) {
                (Some(u), Some(v)) if u <= u64::from(u32::MAX) && v <= u64::from(u32::MAX) => {
                    Ok((u as u32, v as u32))
                }
                _ => Err("bad edge".to_string()),
            }
        })
        .collect::<Result<Vec<(u32, u32)>, String>>()?;
    Ok(DagSpec {
        k,
        categories,
        edges,
    })
}

/// Append a [`DrainReply`]'s canonical field run (`"admitted"` …
/// `"trace"`, no surrounding braces) — shared by the `drained` and
/// `closed` encodings so both stay byte-identical per field.
fn push_drain_fields(s: &mut String, d: &DrainReply) {
    s.push_str(&format!(
        "\"admitted\":{},\"completed\":{},\"cancelled\":{},\"rejected\":{},\"trace\":",
        d.admitted, d.completed, d.cancelled, d.rejected
    ));
    s.push_str(&d.trace.encode());
}

/// Decode a [`DrainReply`]'s field run from a parsed object.
fn decode_drain_fields(v: &Value) -> Result<DrainReply, String> {
    Ok(DrainReply {
        admitted: need_u64(v, "admitted")?,
        completed: need_u64(v, "completed")?,
        cancelled: need_u64(v, "cancelled")?,
        rejected: need_u64(v, "rejected")?,
        trace: SessionTrace::decode_value(v.get("trace").ok_or("missing field 'trace'")?)?,
    })
}

/// Tolerantly decode an optional `f64` array field (absent or
/// malformed entries → empty / 0.0).
fn decode_f64_arr(v: &Value, key: &str) -> Vec<f64> {
    match v.get(key).and_then(Value::as_arr) {
        Some(arr) => arr.iter().map(|x| x.as_f64().unwrap_or(0.0)).collect(),
        None => Vec::new(),
    }
}

/// Append `,"session":"<name>"` when the session is not the implicit
/// default — so v5 request lines targeting `default` are bytewise the
/// v4 lines.
fn push_session(s: &mut String, session: &str) {
    if !session.is_empty() {
        s.push_str(",\"session\":");
        wire::push_str_lit(s, session);
    }
}

/// Tolerantly decode the optional `"session"` field (absent → empty,
/// meaning the implicit default session).
fn decode_session(v: &Value) -> String {
    v.get("session")
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string()
}

impl Request {
    /// Canonical one-line encoding.
    pub fn encode(&self) -> String {
        let mut s = String::new();
        match self {
            Request::Submit {
                jobs,
                scenario,
                watch,
                session,
            } => {
                s.push_str("{\"cmd\":\"submit\"");
                if !jobs.is_empty() {
                    s.push_str(",\"jobs\":[");
                    for (i, dag) in jobs.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        encode_dag(&mut s, dag);
                    }
                    s.push(']');
                }
                if let Some(sc) = scenario {
                    s.push_str(",\"scenario\":{\"name\":");
                    wire::push_str_lit(&mut s, &sc.name);
                    s.push_str(",\"jobs\":");
                    s.push_str(&sc.jobs.to_string());
                    s.push_str(",\"seed\":");
                    s.push_str(&sc.seed.to_string());
                    s.push('}');
                }
                if *watch {
                    s.push_str(",\"watch\":true");
                }
                push_session(&mut s, session);
                s.push('}');
            }
            Request::Hello => s.push_str("{\"cmd\":\"hello\"}"),
            Request::Status { session } => {
                s.push_str("{\"cmd\":\"status\"");
                push_session(&mut s, session);
                s.push('}');
            }
            Request::Stats { session } => {
                s.push_str("{\"cmd\":\"stats\"");
                push_session(&mut s, session);
                s.push('}');
            }
            Request::Metrics => s.push_str("{\"cmd\":\"metrics\"}"),
            Request::Cancel { job, session } => {
                s.push_str("{\"cmd\":\"cancel\",\"job\":");
                s.push_str(&job.to_string());
                push_session(&mut s, session);
                s.push('}');
            }
            Request::Trace { job, session } => {
                s.push_str("{\"cmd\":\"trace\",\"job\":");
                s.push_str(&job.to_string());
                push_session(&mut s, session);
                s.push('}');
            }
            Request::Open { session, spec } => {
                s.push_str("{\"cmd\":\"open\",\"session\":");
                wire::push_str_lit(&mut s, session);
                let opt_u64 = |s: &mut String, key: &str, v: Option<u64>| {
                    if let Some(v) = v {
                        s.push_str(&format!(",\"{key}\":{v}"));
                    }
                };
                if let Some(x) = &spec.scheduler {
                    s.push_str(",\"scheduler\":");
                    wire::push_str_lit(&mut s, x);
                }
                if let Some(x) = &spec.policy {
                    s.push_str(",\"policy\":");
                    wire::push_str_lit(&mut s, x);
                }
                opt_u64(&mut s, "quantum", spec.quantum);
                opt_u64(&mut s, "seed", spec.seed);
                opt_u64(&mut s, "queue_capacity", spec.queue_capacity);
                opt_u64(&mut s, "max_inflight", spec.max_inflight);
                if let Some(r) = spec.rate_per_sec {
                    s.push_str(&format!(",\"rate_per_sec\":{r}"));
                }
                opt_u64(&mut s, "burst", spec.burst);
                s.push('}');
            }
            Request::Close { session } => {
                s.push_str("{\"cmd\":\"close\",\"session\":");
                wire::push_str_lit(&mut s, session);
                s.push('}');
            }
            Request::Drain { session } => {
                s.push_str("{\"cmd\":\"drain\"");
                push_session(&mut s, session);
                s.push('}');
            }
        }
        s
    }

    /// Decode one request line.
    pub fn decode(line: &str) -> Result<Request, String> {
        let v = wire::parse(line).map_err(|e| e.to_string())?;
        let cmd = need_str(&v, "cmd")?;
        Ok(match cmd {
            "submit" => {
                let jobs = match v.get("jobs") {
                    Some(arr) => arr
                        .as_arr()
                        .ok_or("'jobs' must be an array")?
                        .iter()
                        .map(decode_dag)
                        .collect::<Result<Vec<_>, _>>()?,
                    None => Vec::new(),
                };
                let scenario = match v.get("scenario") {
                    Some(sc) => Some(ScenarioRef {
                        name: need_str(sc, "name")?.to_string(),
                        jobs: need_u64(sc, "jobs")? as usize,
                        seed: need_u64(sc, "seed")?,
                    }),
                    None => None,
                };
                if jobs.is_empty() && scenario.is_none() {
                    return Err("submit needs 'jobs' or 'scenario'".to_string());
                }
                let watch = v.get("watch").and_then(Value::as_bool).unwrap_or(false);
                Request::Submit {
                    jobs,
                    scenario,
                    watch,
                    session: decode_session(&v),
                }
            }
            "hello" => Request::Hello,
            "status" => Request::Status {
                session: decode_session(&v),
            },
            "stats" => Request::Stats {
                session: decode_session(&v),
            },
            "metrics" => Request::Metrics,
            "cancel" => Request::Cancel {
                job: need_u64(&v, "job")?,
                session: decode_session(&v),
            },
            "trace" => Request::Trace {
                job: need_u64(&v, "job")?,
                session: decode_session(&v),
            },
            "open" => Request::Open {
                session: need_str(&v, "session")?.to_string(),
                spec: SessionSpec {
                    scheduler: v
                        .get("scheduler")
                        .and_then(Value::as_str)
                        .map(str::to_string),
                    policy: v.get("policy").and_then(Value::as_str).map(str::to_string),
                    quantum: v.get("quantum").and_then(Value::as_u64),
                    seed: v.get("seed").and_then(Value::as_u64),
                    queue_capacity: v.get("queue_capacity").and_then(Value::as_u64),
                    max_inflight: v.get("max_inflight").and_then(Value::as_u64),
                    rate_per_sec: v.get("rate_per_sec").and_then(Value::as_f64),
                    burst: v.get("burst").and_then(Value::as_u64),
                },
            },
            "close" => Request::Close {
                session: need_str(&v, "session")?.to_string(),
            },
            "drain" => Request::Drain {
                session: decode_session(&v),
            },
            other => return Err(format!("unknown command '{other}'")),
        })
    }
}

impl Response {
    /// Canonical one-line encoding.
    pub fn encode(&self) -> String {
        let mut s = String::new();
        match self {
            Response::Submitted { jobs, trace_ids } => {
                s.push_str("{\"reply\":\"submitted\",\"jobs\":");
                wire::push_u64_arr(&mut s, jobs);
                if !trace_ids.is_empty() {
                    s.push_str(",\"trace_ids\":[");
                    for (i, id) in trace_ids.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        wire::push_str_lit(&mut s, id);
                    }
                    s.push(']');
                }
                s.push('}');
            }
            Response::Rejected {
                reason,
                queue_depth,
                capacity,
            } => {
                s.push_str("{\"reply\":\"rejected\",\"reason\":");
                wire::push_str_lit(&mut s, reason);
                s.push_str(&format!(
                    ",\"queue_depth\":{queue_depth},\"capacity\":{capacity}}}"
                ));
            }
            Response::Hello(h) => {
                s.push_str(&format!(
                    "{{\"reply\":\"hello\",\"version\":{},\"scheduler\":",
                    h.version
                ));
                wire::push_str_lit(&mut s, &h.scheduler);
                s.push_str(",\"time_policy\":");
                wire::push_str_lit(&mut s, &h.time_policy);
                s.push_str(&format!(",\"quantum\":{},\"now\":{}", h.quantum, h.now));
                s.push_str(",\"durability\":");
                wire::push_str_lit(&mut s, &h.durability);
                s.push('}');
            }
            Response::Status(st) => {
                s.push_str(&format!(
                    "{{\"reply\":\"status\",\"now\":{},\"queued\":{},\"active\":{},\"draining\":{},\"jobs\":[",
                    st.now, st.queued, st.active, st.draining
                ));
                for (i, j) in st.jobs.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!(
                        "{{\"job\":{},\"state\":\"{}\"",
                        j.job,
                        j.state.name()
                    ));
                    if let Some(r) = j.release {
                        s.push_str(&format!(",\"release\":{r}"));
                    }
                    if let Some(c) = j.completion {
                        s.push_str(&format!(",\"completion\":{c}"));
                    }
                    s.push('}');
                }
                s.push_str("]}");
            }
            Response::Stats(x) => {
                s.push_str(&format!(
                    "{{\"reply\":\"stats\",\"admitted\":{},\"rejected\":{},\"completed\":{},\"cancelled\":{},\"queue_depth\":{},\"max_queue_depth\":{},\"now\":{},\"busy_steps\":{},\"idle_steps\":{},\"quanta\":{},\"quantum_latency_mean_us\":{},\"quantum_latency_p50_us\":{},\"quantum_latency_p95_us\":{},\"quantum_latency_p99_us\":{},\"uptime_secs\":{},\"phase_ready_mean_us\":{},\"phase_decide_mean_us\":{},\"phase_deq_allot_mean_us\":{},\"phase_rr_cycle_mean_us\":{},\"phase_execute_mean_us\":{},\"scheduler\":",
                    x.admitted,
                    x.rejected,
                    x.completed,
                    x.cancelled,
                    x.queue_depth,
                    x.max_queue_depth,
                    x.now,
                    x.busy_steps,
                    x.idle_steps,
                    x.quanta,
                    x.quantum_latency_mean_us,
                    x.quantum_latency_p50_us,
                    x.quantum_latency_p95_us,
                    x.quantum_latency_p99_us,
                    x.uptime_secs,
                    x.phase_ready_mean_us,
                    x.phase_decide_mean_us,
                    x.phase_deq_allot_mean_us,
                    x.phase_rr_cycle_mean_us,
                    x.phase_execute_mean_us,
                ));
                wire::push_str_lit(&mut s, &x.scheduler);
                s.push_str(&format!(",\"version\":{},\"time_policy\":", x.version));
                wire::push_str_lit(&mut s, &x.time_policy);
                s.push_str(",\"durability\":");
                wire::push_str_lit(&mut s, &x.durability);
                s.push_str(&format!(
                    ",\"journal_records\":{},\"journal_bytes\":{},\"journal_fsyncs\":{},\"journal_snapshots\":{},\"journal_tail_records\":{},\"last_recovery_ms\":{}",
                    x.journal_records,
                    x.journal_bytes,
                    x.journal_fsyncs,
                    x.journal_snapshots,
                    x.journal_tail_records,
                    x.last_recovery_ms,
                ));
                s.push_str(&format!(
                    ",\"response_jobs\":{},\"response_mean_steps\":{},\"response_p99_steps\":{},\"slowdown_mean_milli\":{},\"slowdown_p99_milli\":{}",
                    x.response_jobs,
                    x.response_mean_steps,
                    x.response_p99_steps,
                    x.slowdown_mean_milli,
                    x.slowdown_p99_milli,
                ));
                let f64_arr = |s: &mut String, key: &str, vals: &[f64]| {
                    s.push_str(",\"");
                    s.push_str(key);
                    s.push_str("\":[");
                    for (i, v) in vals.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        s.push_str(&v.to_string());
                    }
                    s.push(']');
                };
                f64_arr(
                    &mut s,
                    "response_mean_steps_by_cat",
                    &x.response_mean_steps_by_cat,
                );
                f64_arr(
                    &mut s,
                    "slowdown_mean_milli_by_cat",
                    &x.slowdown_mean_milli_by_cat,
                );
                s.push_str(",\"session\":");
                wire::push_str_lit(&mut s, &x.session);
                s.push_str(&format!(",\"sessions\":{}", x.sessions));
                s.push('}');
            }
            Response::Metrics { text } => {
                s.push_str("{\"reply\":\"metrics\",\"text\":");
                wire::push_str_lit(&mut s, text);
                s.push('}');
            }
            Response::Cancelled { job } => {
                s.push_str(&format!("{{\"reply\":\"cancelled\",\"job\":{job}}}"));
            }
            Response::Trace(t) => {
                s.push_str(&format!("{{\"reply\":\"trace\",\"job\":{}", t.job));
                s.push_str(",\"trace_id\":");
                wire::push_str_lit(&mut s, &t.trace_id);
                s.push_str(",\"state\":");
                wire::push_str_lit(&mut s, &t.state);
                let opt = |s: &mut String, key: &str, v: Option<u64>| {
                    if let Some(v) = v {
                        s.push_str(&format!(",\"{key}\":{v}"));
                    }
                };
                opt(&mut s, "release", t.release);
                opt(&mut s, "activated", t.activated);
                opt(&mut s, "first_allot", t.first_allot);
                s.push_str(",\"segments\":[");
                for (i, seg) in t.segments.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!(
                        "{{\"from\":{},\"to\":{},\"tasks\":{}}}",
                        seg.from, seg.to, seg.tasks
                    ));
                }
                s.push(']');
                opt(&mut s, "completion", t.completion);
                opt(&mut s, "response", t.response);
                opt(&mut s, "submit_ns", t.submit_ns);
                opt(&mut s, "admit_ns", t.admit_ns);
                opt(&mut s, "inject_ns", t.inject_ns);
                opt(&mut s, "complete_ns", t.complete_ns);
                s.push('}');
            }
            Response::Opened {
                session,
                scheduler,
                time_policy,
                quantum,
                existing,
            } => {
                s.push_str("{\"reply\":\"opened\",\"session\":");
                wire::push_str_lit(&mut s, session);
                s.push_str(",\"scheduler\":");
                wire::push_str_lit(&mut s, scheduler);
                s.push_str(",\"time_policy\":");
                wire::push_str_lit(&mut s, time_policy);
                s.push_str(&format!(",\"quantum\":{quantum},\"existing\":{existing}}}"));
            }
            Response::Closed { session, report } => {
                s.push_str("{\"reply\":\"closed\",\"session\":");
                wire::push_str_lit(&mut s, session);
                s.push(',');
                push_drain_fields(&mut s, report);
                s.push('}');
            }
            Response::Drained(d) => {
                s.push_str("{\"reply\":\"drained\",");
                push_drain_fields(&mut s, d);
                s.push('}');
            }
            Response::Error { message } => {
                s.push_str("{\"reply\":\"error\",\"message\":");
                wire::push_str_lit(&mut s, message);
                s.push('}');
            }
        }
        s
    }

    /// Decode one reply line.
    pub fn decode(line: &str) -> Result<Response, String> {
        let v = wire::parse(line).map_err(|e| e.to_string())?;
        let reply = need_str(&v, "reply")?;
        Ok(match reply {
            "submitted" => Response::Submitted {
                jobs: need_arr(&v, "jobs")?
                    .iter()
                    .map(|x| x.as_u64().ok_or("bad job id"))
                    .collect::<Result<Vec<_>, _>>()?,
                trace_ids: match v.get("trace_ids").and_then(Value::as_arr) {
                    Some(arr) => arr
                        .iter()
                        .map(|x| {
                            x.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| "bad trace id".to_string())
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    None => Vec::new(),
                },
            },
            "rejected" => Response::Rejected {
                reason: need_str(&v, "reason")?.to_string(),
                queue_depth: need_u64(&v, "queue_depth")?,
                capacity: need_u64(&v, "capacity")?,
            },
            "hello" => Response::Hello(HelloReply {
                version: v.get("version").and_then(Value::as_u64).unwrap_or(1),
                scheduler: v
                    .get("scheduler")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string(),
                time_policy: v
                    .get("time_policy")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string(),
                quantum: v.get("quantum").and_then(Value::as_u64).unwrap_or(1),
                now: v.get("now").and_then(Value::as_u64).unwrap_or(0),
                durability: v
                    .get("durability")
                    .and_then(Value::as_str)
                    .unwrap_or("off")
                    .to_string(),
            }),
            "status" => {
                let jobs = need_arr(&v, "jobs")?
                    .iter()
                    .map(|j| {
                        Ok(JobStatus {
                            job: need_u64(j, "job")?,
                            state: JobState::from_name(need_str(j, "state")?)?,
                            release: j.get("release").and_then(Value::as_u64),
                            completion: j.get("completion").and_then(Value::as_u64),
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Response::Status(StatusReply {
                    now: need_u64(&v, "now")?,
                    queued: need_u64(&v, "queued")?,
                    active: need_u64(&v, "active")?,
                    draining: v.get("draining").and_then(Value::as_bool).unwrap_or(false),
                    jobs,
                })
            }
            "stats" => Response::Stats(StatsReply {
                admitted: need_u64(&v, "admitted")?,
                rejected: need_u64(&v, "rejected")?,
                completed: need_u64(&v, "completed")?,
                cancelled: need_u64(&v, "cancelled")?,
                queue_depth: need_u64(&v, "queue_depth")?,
                max_queue_depth: need_u64(&v, "max_queue_depth")?,
                now: need_u64(&v, "now")?,
                busy_steps: need_u64(&v, "busy_steps")?,
                idle_steps: need_u64(&v, "idle_steps")?,
                quanta: need_u64(&v, "quanta")?,
                quantum_latency_mean_us: v
                    .get("quantum_latency_mean_us")
                    .and_then(Value::as_f64)
                    .ok_or("missing quantum_latency_mean_us")?,
                quantum_latency_p50_us: v
                    .get("quantum_latency_p50_us")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
                quantum_latency_p95_us: v
                    .get("quantum_latency_p95_us")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
                quantum_latency_p99_us: v
                    .get("quantum_latency_p99_us")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
                uptime_secs: v.get("uptime_secs").and_then(Value::as_f64).unwrap_or(0.0),
                phase_ready_mean_us: v
                    .get("phase_ready_mean_us")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
                phase_decide_mean_us: v
                    .get("phase_decide_mean_us")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
                phase_deq_allot_mean_us: v
                    .get("phase_deq_allot_mean_us")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
                phase_rr_cycle_mean_us: v
                    .get("phase_rr_cycle_mean_us")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
                phase_execute_mean_us: v
                    .get("phase_execute_mean_us")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
                scheduler: v
                    .get("scheduler")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string(),
                version: v.get("version").and_then(Value::as_u64).unwrap_or(1),
                time_policy: v
                    .get("time_policy")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string(),
                durability: v
                    .get("durability")
                    .and_then(Value::as_str)
                    .unwrap_or("off")
                    .to_string(),
                journal_records: v
                    .get("journal_records")
                    .and_then(Value::as_u64)
                    .unwrap_or(0),
                journal_bytes: v.get("journal_bytes").and_then(Value::as_u64).unwrap_or(0),
                journal_fsyncs: v.get("journal_fsyncs").and_then(Value::as_u64).unwrap_or(0),
                journal_snapshots: v
                    .get("journal_snapshots")
                    .and_then(Value::as_u64)
                    .unwrap_or(0),
                journal_tail_records: v
                    .get("journal_tail_records")
                    .and_then(Value::as_u64)
                    .unwrap_or(0),
                last_recovery_ms: v
                    .get("last_recovery_ms")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
                response_jobs: v.get("response_jobs").and_then(Value::as_u64).unwrap_or(0),
                response_mean_steps: v
                    .get("response_mean_steps")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
                response_p99_steps: v
                    .get("response_p99_steps")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
                slowdown_mean_milli: v
                    .get("slowdown_mean_milli")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
                slowdown_p99_milli: v
                    .get("slowdown_p99_milli")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
                response_mean_steps_by_cat: decode_f64_arr(&v, "response_mean_steps_by_cat"),
                slowdown_mean_milli_by_cat: decode_f64_arr(&v, "slowdown_mean_milli_by_cat"),
                session: decode_session(&v),
                sessions: v.get("sessions").and_then(Value::as_u64).unwrap_or(0),
            }),
            "metrics" => Response::Metrics {
                text: need_str(&v, "text")?.to_string(),
            },
            "cancelled" => Response::Cancelled {
                job: need_u64(&v, "job")?,
            },
            "trace" => {
                let segments = match v.get("segments").and_then(Value::as_arr) {
                    Some(arr) => arr
                        .iter()
                        .map(|seg| {
                            Ok(ExecSegment {
                                from: need_u64(seg, "from")?,
                                to: need_u64(seg, "to")?,
                                tasks: need_u64(seg, "tasks")?,
                            })
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                    None => Vec::new(),
                };
                let opt = |key: &str| v.get(key).and_then(Value::as_u64);
                Response::Trace(TraceReply {
                    job: need_u64(&v, "job")?,
                    trace_id: v
                        .get("trace_id")
                        .and_then(Value::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    state: need_str(&v, "state")?.to_string(),
                    release: opt("release"),
                    activated: opt("activated"),
                    first_allot: opt("first_allot"),
                    segments,
                    completion: opt("completion"),
                    response: opt("response"),
                    submit_ns: opt("submit_ns"),
                    admit_ns: opt("admit_ns"),
                    inject_ns: opt("inject_ns"),
                    complete_ns: opt("complete_ns"),
                })
            }
            "drained" => Response::Drained(decode_drain_fields(&v)?),
            "opened" => Response::Opened {
                session: need_str(&v, "session")?.to_string(),
                scheduler: v
                    .get("scheduler")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string(),
                time_policy: v
                    .get("time_policy")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string(),
                quantum: v.get("quantum").and_then(Value::as_u64).unwrap_or(1),
                existing: v.get("existing").and_then(Value::as_bool).unwrap_or(false),
            },
            "closed" => Response::Closed {
                session: need_str(&v, "session")?.to_string(),
                report: decode_drain_fields(&v)?,
            },
            "error" => Response::Error {
                message: need_str(&v, "message")?.to_string(),
            },
            other => return Err(format!("unknown reply '{other}'")),
        })
    }
}

impl Event {
    /// Canonical one-line encoding.
    pub fn encode(&self) -> String {
        match self {
            Event::JobDone {
                job,
                release,
                completion,
                response,
                trace_id,
            } => {
                let mut s = format!(
                    "{{\"event\":\"job_done\",\"job\":{job},\"release\":{release},\"completion\":{completion},\"response\":{response}"
                );
                if !trace_id.is_empty() {
                    s.push_str(",\"trace_id\":");
                    wire::push_str_lit(&mut s, trace_id);
                }
                s.push('}');
                s
            }
            Event::JobCancelled { job } => {
                format!("{{\"event\":\"job_cancelled\",\"job\":{job}}}")
            }
            Event::WatchEnd => "{\"event\":\"watch_end\"}".to_string(),
        }
    }

    /// Decode one event line; `Ok(None)` if the line is a reply, not
    /// an event.
    pub fn decode(line: &str) -> Result<Option<Event>, String> {
        let v = wire::parse(line).map_err(|e| e.to_string())?;
        let Some(ev) = v.get("event").and_then(Value::as_str) else {
            return Ok(None);
        };
        Ok(Some(match ev {
            "job_done" => Event::JobDone {
                job: need_u64(&v, "job")?,
                release: need_u64(&v, "release")?,
                completion: need_u64(&v, "completion")?,
                response: need_u64(&v, "response")?,
                trace_id: v
                    .get("trace_id")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string(),
            },
            "job_cancelled" => Event::JobCancelled {
                job: need_u64(&v, "job")?,
            },
            "watch_end" => Event::WatchEnd,
            other => return Err(format!("unknown event '{other}'")),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbaselines::SchedulerKind;
    use kdag::generators::fork_join;
    use kdag::{Category, SelectionPolicy};

    fn spec() -> DagSpec {
        DagSpec::from_dag(&fork_join(2, &[(Category(0), 3), (Category(1), 2)]))
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request::Submit {
                jobs: vec![spec(), spec()],
                scenario: None,
                watch: true,
                session: String::new(),
            },
            Request::Submit {
                jobs: vec![],
                scenario: Some(ScenarioRef {
                    name: "pipeline".into(),
                    jobs: 8,
                    seed: 3,
                }),
                watch: false,
                session: "tenant-a".into(),
            },
            Request::Hello,
            Request::Status {
                session: String::new(),
            },
            Request::Stats {
                session: "tenant-a".into(),
            },
            Request::Metrics,
            Request::Cancel {
                job: 17,
                session: String::new(),
            },
            Request::Trace {
                job: 4,
                session: "tenant-b".into(),
            },
            Request::Drain {
                session: String::new(),
            },
            Request::Drain {
                session: "tenant-a".into(),
            },
            Request::Open {
                session: "tenant-a".into(),
                spec: SessionSpec::default(),
            },
            Request::Open {
                session: "tenant-b".into(),
                spec: SessionSpec {
                    scheduler: Some("equi".into()),
                    policy: Some("spread".into()),
                    quantum: Some(4),
                    seed: Some(7),
                    queue_capacity: Some(32),
                    max_inflight: Some(128),
                    rate_per_sec: Some(250.5),
                    burst: Some(64),
                },
            },
            Request::Close {
                session: "tenant-a".into(),
            },
        ];
        for r in reqs {
            let line = r.encode();
            assert!(!line.contains('\n'));
            assert_eq!(Request::decode(&line).unwrap(), r, "{line}");
        }
        // A default-session request encodes byte-identically to v4: no
        // "session" key appears anywhere on the line.
        let bare = Request::Stats {
            session: String::new(),
        }
        .encode();
        assert!(!bare.contains("session"), "{bare}");
        // And v4 lines (no "session") decode into the default session.
        match Request::decode(r#"{"cmd":"cancel","job":3}"#).unwrap() {
            Request::Cancel { job, session } => {
                assert_eq!(job, 3);
                assert_eq!(session, "");
            }
            other => panic!("expected cancel, got {other:?}"),
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = [
            Response::Submitted {
                jobs: vec![0, 1],
                trace_ids: vec!["a1b2-0".into(), "a1b2-1".into()],
            },
            Response::Submitted {
                jobs: vec![7],
                trace_ids: vec![],
            },
            Response::Trace(TraceReply {
                job: 3,
                trace_id: "a1b2-3".into(),
                state: "done".into(),
                release: Some(5),
                activated: Some(6),
                first_allot: Some(8),
                segments: vec![
                    ExecSegment {
                        from: 8,
                        to: 10,
                        tasks: 5,
                    },
                    ExecSegment {
                        from: 12,
                        to: 14,
                        tasks: 4,
                    },
                ],
                completion: Some(14),
                response: Some(9),
                submit_ns: Some(1_000),
                admit_ns: Some(2_000),
                inject_ns: Some(3_000),
                complete_ns: Some(9_000),
            }),
            Response::Trace(TraceReply {
                job: 9,
                trace_id: "a1b2-9".into(),
                state: "queued".into(),
                ..TraceReply::default()
            }),
            Response::Hello(HelloReply {
                version: PROTOCOL_VERSION,
                scheduler: "k-rad".into(),
                time_policy: "event".into(),
                quantum: 4,
                now: 17,
                durability: "wal:interval:50".into(),
            }),
            Response::Rejected {
                reason: "queue full".into(),
                queue_depth: 64,
                capacity: 64,
            },
            Response::Status(StatusReply {
                now: 12,
                queued: 1,
                active: 2,
                draining: false,
                jobs: vec![
                    JobStatus {
                        job: 0,
                        state: JobState::Done,
                        release: Some(0),
                        completion: Some(9),
                    },
                    JobStatus {
                        job: 1,
                        state: JobState::Queued,
                        release: None,
                        completion: None,
                    },
                ],
            }),
            Response::Stats(StatsReply {
                admitted: 9,
                rejected: 2,
                completed: 7,
                cancelled: 1,
                queue_depth: 3,
                max_queue_depth: 5,
                now: 40,
                busy_steps: 38,
                idle_steps: 2,
                quanta: 20,
                quantum_latency_mean_us: 12.5,
                quantum_latency_p50_us: 8.5,
                quantum_latency_p95_us: 30.25,
                quantum_latency_p99_us: 64.5,
                uptime_secs: 1.5,
                phase_ready_mean_us: 2.25,
                phase_decide_mean_us: 4.5,
                phase_deq_allot_mean_us: 3.75,
                phase_rr_cycle_mean_us: 0.5,
                phase_execute_mean_us: 6.25,
                scheduler: "k-rad".into(),
                version: PROTOCOL_VERSION,
                time_policy: "event".into(),
                durability: "wal:always".into(),
                journal_records: 44,
                journal_bytes: 2048,
                journal_fsyncs: 44,
                journal_snapshots: 2,
                journal_tail_records: 7,
                last_recovery_ms: 1.25,
                response_jobs: 7,
                response_mean_steps: 18.5,
                response_p99_steps: 64.0,
                slowdown_mean_milli: 2250.5,
                slowdown_p99_milli: 8192.0,
                response_mean_steps_by_cat: vec![20.0, 17.5],
                slowdown_mean_milli_by_cat: vec![2000.0, 2500.0],
                session: "tenant-a".into(),
                sessions: 3,
            }),
            Response::Opened {
                session: "tenant-a".into(),
                scheduler: "k-rad".into(),
                time_policy: "event".into(),
                quantum: 2,
                existing: false,
            },
            Response::Opened {
                session: "tenant-b".into(),
                scheduler: "equi".into(),
                time_policy: "unit".into(),
                quantum: 1,
                existing: true,
            },
            Response::Metrics {
                text: "# HELP krad_quanta_total x\nkrad_quanta_total 3\n".into(),
            },
            Response::Cancelled { job: 3 },
            Response::Error {
                message: "bad \"quote\"".into(),
            },
        ];
        for r in resps {
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn drain_and_close_replies_roundtrip() {
        let report = DrainReply {
            admitted: 5,
            completed: 4,
            cancelled: 1,
            rejected: 2,
            trace: SessionTrace {
                machine: vec![4, 2],
                scheduler: SchedulerKind::KRad,
                policy: SelectionPolicy::Fifo,
                quantum: 2,
                seed: 42,
                jobs: vec![],
                completions: vec![],
            },
        };
        let drained = Response::Drained(report.clone());
        assert_eq!(Response::decode(&drained.encode()).unwrap(), drained);
        let closed = Response::Closed {
            session: "tenant-a".into(),
            report,
        };
        let line = closed.encode();
        assert!(line.contains("\"reply\":\"closed\""), "{line}");
        assert_eq!(Response::decode(&line).unwrap(), closed);
    }

    #[test]
    fn version_fields_are_backward_tolerant() {
        // A v1 server never sends "version"/"time_policy"; a v2 client
        // must decode its stats reply and see version 1.
        let v1 = r#"{"reply":"stats","admitted":1,"rejected":0,"completed":1,"cancelled":0,"queue_depth":0,"max_queue_depth":1,"now":5,"busy_steps":5,"idle_steps":0,"quanta":5,"quantum_latency_mean_us":1.0,"scheduler":"k-rad"}"#;
        match Response::decode(v1).unwrap() {
            Response::Stats(x) => {
                assert_eq!(x.version, 1);
                assert_eq!(x.time_policy, "");
                assert_eq!(x.durability, "off", "journal fields default off");
                assert_eq!(x.journal_records, 0);
                assert_eq!(x.response_jobs, 0, "tracing fields default empty");
                assert_eq!(x.response_mean_steps, 0.0);
                assert!(x.response_mean_steps_by_cat.is_empty());
                assert_eq!(x.session, "", "v4 stats decode into the default session");
                assert_eq!(x.sessions, 0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        // A v2 hello (no "durability") decodes with journaling off.
        let v2 = r#"{"reply":"hello","version":2,"scheduler":"k-rad","time_policy":"event","quantum":1,"now":0}"#;
        match Response::decode(v2).unwrap() {
            Response::Hello(h) => assert_eq!(h.durability, "off"),
            other => panic!("expected hello, got {other:?}"),
        }
        // And a current reply advertises the current protocol version.
        let line = Response::Hello(HelloReply {
            version: PROTOCOL_VERSION,
            scheduler: "equi".into(),
            time_policy: "unit".into(),
            quantum: 1,
            now: 0,
            durability: "off".into(),
        })
        .encode();
        let tag = format!("\"version\":{PROTOCOL_VERSION}");
        assert!(line.contains(&tag), "{line}");

        // A v3 submitted reply (no "trace_ids") and a v3 job_done
        // event (no "trace_id") decode with empty trace ids.
        match Response::decode(r#"{"reply":"submitted","jobs":[0,1]}"#).unwrap() {
            Response::Submitted { jobs, trace_ids } => {
                assert_eq!(jobs, vec![0, 1]);
                assert!(trace_ids.is_empty());
            }
            other => panic!("expected submitted, got {other:?}"),
        }
        match Event::decode(
            r#"{"event":"job_done","job":2,"release":0,"completion":9,"response":9}"#,
        )
        .unwrap()
        {
            Some(Event::JobDone { trace_id, .. }) => assert_eq!(trace_id, ""),
            other => panic!("expected job_done, got {other:?}"),
        }
    }

    #[test]
    fn trace_reply_converts_to_the_telemetry_model() {
        let reply = TraceReply {
            job: 3,
            trace_id: "n-3".into(),
            state: "done".into(),
            release: Some(5),
            activated: Some(6),
            first_allot: Some(8),
            segments: vec![ExecSegment {
                from: 8,
                to: 14,
                tasks: 9,
            }],
            completion: Some(14),
            response: Some(9),
            admit_ns: Some(500),
            ..TraceReply::default()
        };
        let trace = reply.to_job_trace();
        trace.well_formed(9).unwrap();
        assert_eq!(trace.wait(), Some(2));
        assert_eq!(trace.service(), Some(7));
        assert_eq!(trace.stamps.admit_ns, Some(500));
        let tree = trace.render_tree("3");
        assert!(tree.contains("wait"), "{tree}");
    }

    #[test]
    fn submit_requires_jobs_or_scenario() {
        let err = Request::decode(r#"{"cmd":"submit"}"#).unwrap_err();
        assert!(err.contains("jobs"), "{err}");
    }

    #[test]
    fn events_roundtrip_and_replies_are_not_events() {
        let e = Event::JobDone {
            job: 5,
            release: 10,
            completion: 31,
            response: 21,
            trace_id: "f00-5".into(),
        };
        assert_eq!(Event::decode(&e.encode()).unwrap(), Some(e));
        let bare = Event::JobDone {
            job: 5,
            release: 10,
            completion: 31,
            response: 21,
            trace_id: String::new(),
        };
        assert!(!bare.encode().contains("trace_id"));
        assert_eq!(Event::decode(&bare.encode()).unwrap(), Some(bare));
        let c = Event::JobCancelled { job: 2 };
        assert_eq!(Event::decode(&c.encode()).unwrap(), Some(c));
        assert_eq!(
            Event::decode(&Event::WatchEnd.encode()).unwrap(),
            Some(Event::WatchEnd)
        );
        assert_eq!(
            Event::decode(
                &Response::Submitted {
                    jobs: vec![1],
                    trace_ids: vec![],
                }
                .encode()
            )
            .unwrap(),
            None
        );
    }

    #[test]
    fn dag_spec_decodes_structurally() {
        let mut s = String::new();
        encode_dag(&mut s, &spec());
        let v = crate::wire::parse(&s).unwrap();
        assert_eq!(decode_dag(&v).unwrap(), spec());
        // Structure errors are data errors, not panics.
        assert!(decode_dag(
            &crate::wire::parse(r#"{"k":2,"categories":[70000],"edges":[]}"#).unwrap()
        )
        .is_err());
        assert!(decode_dag(
            &crate::wire::parse(r#"{"k":2,"categories":[0],"edges":[[0]]}"#).unwrap()
        )
        .is_err());
    }
}
