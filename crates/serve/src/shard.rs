//! kswarm worker pool: N threads, each pinned to a shard of sessions.
//!
//! Every session is pinned to exactly one shard for its whole life
//! (`Swarm::shard_of`), and each shard is pumped by exactly one worker
//! thread — so a session's engine is only ever stepped sequentially,
//! by one thread, which is what keeps per-session replay byte-for-byte
//! deterministic. The worker runs the same quantum loop the old
//! single-tenant scheduler thread ran ([`pump_session`]), round-robin
//! across its sessions: inject admitted jobs, advance one quantum
//! unlocked, publish completions (journal commit *before* any
//! broadcast), then move on. A worker with no runnable session parks
//! on its [`ShardHandle`] condvar; admissions, cancels, and drains
//! wake only the owning shard, so submits never contend across shards.

use crate::protocol::Event;
use crate::registry::{session_image, EngineState, Inner, Session, Slot, Swarm};
use crate::replay::{SessionTrace, TraceJob};
use ksim::{JobSpec, LiveSimulation, Time};
use ktelemetry::{FlightRecorder, SpanKind, TelemetryEvent, TelemetrySink};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How long an idle worker parks before re-scanning its shard: the
/// latency bound on work arriving without an explicit wake (e.g. a
/// session's `tick` pacing coming due).
const IDLE_PARK: Duration = Duration::from_millis(10);

/// A wakeable parking spot for one worker shard.
pub(crate) struct ShardHandle {
    pending: Mutex<bool>,
    cv: Condvar,
}

impl ShardHandle {
    pub(crate) fn new() -> Self {
        ShardHandle {
            pending: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Flag work for this shard and wake its worker.
    pub(crate) fn wake(&self) {
        *self.pending.lock().unwrap() = true;
        self.cv.notify_all();
    }

    /// Park until woken or `timeout`, consuming the pending flag.
    fn wait_timeout(&self, timeout: Duration) {
        let mut pending = self.pending.lock().unwrap();
        if !*pending {
            let (back, _) = self.cv.wait_timeout(pending, timeout).unwrap();
            pending = back;
        }
        *pending = false;
    }
}

/// The worker thread body: pump every session pinned to `shard` until
/// the swarm stops.
pub(crate) fn worker_loop(swarm: &Arc<Swarm>, shard: usize) {
    // Only the default session can have a flight-dump path (named
    // sessions never do — see `derive_session_cfg`), and it is pinned
    // to shard 0; dump its ring if this worker panics mid-quantum.
    let _guard = (shard == 0)
        .then(|| swarm.resolve(""))
        .flatten()
        .map(|s| FlightDumpGuard {
            flight: s.flight.clone(),
            path: s.cfg.flight_dump.clone(),
        });
    loop {
        let sessions = swarm.sessions_for_shard(shard);
        let mut busy = false;
        let mut depth = 0u64;
        for s in &sessions {
            busy |= pump_session(s, swarm);
            depth += s.inner.lock().unwrap().queue.len() as u64;
        }
        swarm.metrics.shard_depth[shard].set_u64(depth);
        if swarm.stop.load(Ordering::SeqCst) {
            return;
        }
        if !busy {
            swarm.shards[shard].wait_timeout(IDLE_PARK);
        }
    }
}

/// Run one session for one quantum (or finalize its drain). Returns
/// `true` if it did work — `false` means the session is idle (parked,
/// paced, or already retired) and contributes nothing to the worker's
/// busy check.
///
/// Lock order: the engine mutex first (held across the whole pump; it
/// is uncontended — only this worker and session teardown touch it),
/// the `Inner` mutex second, a journal commit inside that. Never the
/// reverse.
pub(crate) fn pump_session(s: &Arc<Session>, swarm: &Swarm) -> bool {
    let mut eng_guard = s.engine.lock().unwrap();
    let Some(eng) = eng_guard.as_mut() else {
        // Drained and retired; the registry entry survives so late
        // stats/drain verbs still resolve.
        return false;
    };
    let cfg = &s.cfg;

    // Admit queued jobs, or bail if there is nothing to run.
    {
        let mut g = s.inner.lock().unwrap();
        if let Some(due) = eng.next_due {
            // Wall-clock pacing: not due yet (draining ignores pacing,
            // matching the single-tenant loop's skip of the tick sleep).
            if !g.draining && Instant::now() < due {
                return false;
            }
            eng.next_due = None;
        }
        inject_queued(&mut eng.live, &mut g, s);
        if !eng.live.has_work() {
            if g.draining {
                finalize_drain(&eng.live, &mut g, s);
                s.notify();
                drop(g);
                // Retire the engine: the session keeps its final state
                // (trace, counters, journal) but can never step again.
                *eng_guard = None;
                swarm.wake_reactor();
                return true;
            }
            return false;
        }
    }

    let EngineState {
        live,
        scheduler,
        spans,
        done_buf,
        desires_buf,
        next_due,
    } = eng;

    // One quantum of engine work, unlocked. `run_until` follows the
    // configured [`ksim::TimePolicy`]: under the event-driven clock
    // the whole quantum is usually a handful of batched segments.
    let start = Instant::now();
    let quantum_span = spans.start();
    done_buf.clear();
    let target = live.now() + cfg.quantum.max(1);
    if live.has_work() {
        let report = live.run_until(target, scheduler.as_mut());
        done_buf.extend(report.completed_jobs());
    }
    spans.finish(SpanKind::Quantum, quantum_span);
    let latency_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;

    // Refresh the scrapeable gauges (atomic handles — no lock).
    live.desire_totals_into(desires_buf);
    s.metrics.update_per_category(
        &cfg.machine,
        desires_buf,
        live.last_allotted(),
        live.executed_by_category(),
        live.allotted_by_category(),
        live.now(),
    );
    s.metrics.active_jobs.set_u64(live.active_jobs() as u64);
    s.metrics.virtual_time.set_u64(live.now());
    s.metrics.busy_steps.set_u64(live.busy_steps());
    s.metrics.idle_steps.set_u64(live.idle_steps());
    s.metrics.refresh_uptime();
    s.mode_tracker.refresh();

    // Publish.
    {
        let mut g = s.inner.lock().unwrap();
        g.quanta.incr();
        g.quantum_latency_us.record(latency_us);
        g.now = live.now();
        g.active = live.active_jobs() as u64;
        g.busy_steps = live.busy_steps();
        g.idle_steps = live.idle_steps();
        s.metrics
            .update_bounds(&cfg.machine, &g.work_by_cat, g.span_release_max);
        let done_jobs: Vec<(u64, Time)> = done_buf
            .iter()
            .map(|&engine_idx| {
                let completion = live
                    .completion(engine_idx)
                    .expect("just-completed job has a completion time");
                (g.engine_to_id[engine_idx], completion)
            })
            .collect();
        // Commit the quantum (and any injections buffered at its
        // start) before a single completion is broadcast: a
        // `kill -9` after this point replays to the same state.
        let mut snapshot_due = false;
        if let Some(j) = &s.journal {
            snapshot_due = j
                .log_quantum(live.now(), live.busy_steps(), live.idle_steps(), &done_jobs)
                .expect("journal commit failed; cannot acknowledge unjournaled completions");
        }
        let complete_ns = s.elapsed_ns();
        for (&engine_idx, &(id, completion)) in done_buf.iter().zip(&done_jobs) {
            let release = match g.slots[id as usize] {
                Slot::Running { release } => release,
                _ => unreachable!("completed job must be running"),
            };
            g.slots[id as usize] = Slot::Done {
                release,
                completion,
            };
            g.completions[engine_idx] = completion;
            g.completed_log.push((id, completion));
            g.inflight -= 1;
            g.completed.incr();
            g.stamps[id as usize].complete_ns = Some(complete_ns);
            let (cat, span) = g.cat_span[id as usize];
            s.metrics.record_completion(cat, completion - release, span);
            Session::broadcast(
                &mut g,
                Event::JobDone {
                    job: id,
                    release,
                    completion,
                    response: completion - release,
                    trace_id: s.trace_id(id),
                },
            );
        }
        // SLO check, edge-triggered on the running mean response
        // crossing `slo_factor ×` the live Theorem-3 bound. The alert
        // annotates the flight ring only — it is a service
        // observation, not an engine event, so deterministic replay
        // stays byte-for-byte comparable.
        if cfg.slo_factor > 0.0 && !done_buf.is_empty() {
            let mean = s.metrics.response_all.mean();
            let threshold = cfg.slo_factor * s.metrics.bound_theorem3.get();
            if threshold > 0.0 && mean > threshold {
                if !g.slo_breached {
                    g.slo_breached = true;
                    s.metrics.slo_breaches.incr();
                    if let Some(flight) = &s.flight {
                        if let Ok(mut ring) = flight.lock() {
                            ring.record(TelemetryEvent::SloAlert {
                                t: live.now(),
                                mean_response_milli: (mean * 1e3) as u64,
                                threshold_milli: (threshold * 1e3) as u64,
                            });
                        }
                    }
                }
            } else {
                g.slo_breached = false;
            }
        }
        if snapshot_due {
            if let Some(j) = &s.journal {
                if let Err(e) = j.snapshot(&session_image(cfg, &g)) {
                    // The WAL is still intact — degraded, not fatal.
                    eprintln!("kserve: journal snapshot failed: {e}");
                }
            }
        }
        if cfg.tick > Duration::ZERO && !g.draining {
            *next_due = Some(start + cfg.tick);
        }
        if !done_buf.is_empty() {
            s.notify();
            swarm.wake_reactor();
        }
    }
    true
}

/// Move every queued job into the engine with `release = now()`.
/// Injection records are buffered into the journal (not yet
/// committed): they ride the quantum's group commit, and nothing
/// observable depends on them until that commit lands.
fn inject_queued(live: &mut LiveSimulation, g: &mut Inner, s: &Session) {
    let journal = s.journal.as_ref();
    while let Some(id) = g.queue.pop_front() {
        let dag = match &g.slots[id as usize] {
            Slot::Queued(dag) => Arc::clone(dag),
            Slot::Cancelled => continue,
            _ => unreachable!("queued id must be queued or cancelled"),
        };
        let release = live.now();
        g.stamps[id as usize].inject_ns = Some(s.elapsed_ns());
        let spec = JobSpec {
            dag: Arc::clone(&dag),
            release,
        };
        let engine_idx = live
            .inject(spec)
            .expect("admission validated the DAG and release = now() is never in the past");
        debug_assert_eq!(engine_idx, g.engine_to_id.len());
        if let Some(j) = journal {
            j.note_injected(id, release);
        }
        for (cat, &w) in g.work_by_cat.iter_mut().zip(dag.work_by_category()) {
            *cat += w;
        }
        g.span_release_max = g.span_release_max.max(dag.span() + release);
        g.engine_to_id.push(id);
        g.trace_jobs.push(TraceJob {
            dag: g.dag_specs[id as usize].clone(),
            release,
        });
        g.completions.push(0);
        g.slots[id as usize] = Slot::Running { release };
    }
}

/// Seal a session: build the canonical trace, dump the flight
/// recorder, and mark drained.
fn finalize_drain(live: &LiveSimulation, g: &mut Inner, s: &Session) {
    let cfg = &s.cfg;
    g.now = live.now();
    g.active = 0;
    g.busy_steps = live.busy_steps();
    g.idle_steps = live.idle_steps();
    s.metrics.active_jobs.set_u64(0);
    s.metrics.virtual_time.set_u64(live.now());
    s.metrics.busy_steps.set_u64(live.busy_steps());
    s.metrics.idle_steps.set_u64(live.idle_steps());
    dump_flight(s.flight.as_ref(), cfg.flight_dump.as_deref());
    // Seal the journal: one final snapshot (fsync'd regardless of
    // policy) so the directory holds the complete session compactly.
    if let Some(j) = &s.journal {
        if let Err(e) = j.snapshot(&session_image(cfg, g)).and_then(|()| j.sync()) {
            eprintln!("kserve: journal drain snapshot failed: {e}");
        }
    }
    g.trace = Some(SessionTrace {
        machine: cfg.machine.clone(),
        scheduler: cfg.scheduler,
        policy: cfg.policy,
        quantum: cfg.quantum,
        seed: cfg.seed,
        jobs: std::mem::take(&mut g.trace_jobs),
        completions: g.completions.clone(),
    });
    g.drained = true;
    let mut watchers = std::mem::take(&mut g.watchers);
    watchers.retain(|w| w.send(Event::WatchEnd).is_ok());
}

/// Write the flight recorder's contents (oldest first) to `path` as
/// JSONL. A no-op unless both the recorder and the path are configured.
pub(crate) fn dump_flight(flight: Option<&Arc<Mutex<FlightRecorder>>>, path: Option<&Path>) {
    let (Some(flight), Some(path)) = (flight, path) else {
        return;
    };
    if let Ok(recorder) = flight.lock() {
        let _ = std::fs::write(path, recorder.to_jsonl());
    }
}

/// Dumps the flight recorder from `Drop` when a worker thread panics,
/// so the last events before the crash survive on disk.
struct FlightDumpGuard {
    flight: Option<Arc<Mutex<FlightRecorder>>>,
    path: Option<PathBuf>,
}

impl Drop for FlightDumpGuard {
    fn drop(&mut self) {
        if thread::panicking() {
            dump_flight(self.flight.as_ref(), self.path.as_deref());
        }
    }
}
