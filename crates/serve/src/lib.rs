//! # kserve — an online K-RAD scheduling service
//!
//! Turns the offline simulator into a daemon: jobs arrive over a
//! newline-delimited JSON protocol (TCP, and a Unix socket on Unix),
//! are admitted into a bounded queue with explicit backpressure, and
//! are injected into the *same* [`ksim::LiveSimulation`] step loop the
//! offline batch path uses, one quantum at a time. That shared engine
//! is the deterministic replay bridge: every session records a
//! canonical arrival trace ([`SessionTrace`]) which, replayed through
//! offline [`ksim::simulate`], reproduces the live per-job completion
//! times byte for byte — so the paper's bounds and checkers apply to
//! live sessions unmodified.
//!
//! Since the kswarm rework the daemon is multi-tenant: a session
//! *registry* maps names to fully isolated scheduling domains (own
//! engine, scheduler, journal, trace assembler), a *sharded worker
//! pool* runs their quantum loops across cores, and a poll-based
//! *reactor* multiplexes every client connection on one thread. The
//! implicit `default` session keeps the single-tenant wire behaviour
//! byte for byte.
//!
//! * [`wire`] — a minimal canonical JSON layer (no serialization
//!   framework in the hot path);
//! * [`protocol`] — requests, replies, streamed completion events;
//! * [`server`] — protocol dispatch, admission, and daemon lifecycle;
//! * [`metrics`] — the live metrics registry (admission counters,
//!   paper-semantic per-category gauges, Theorem 3 bound accumulators,
//!   DEQ/RR mode-residency tracking) behind the `metrics` verb and the
//!   optional plain-HTTP `/metrics` scrape listener;
//! * [`journal`] — the durability bridge: write-ahead session journal,
//!   snapshot images, and deterministic-replay recovery for hot restart;
//! * [`client`] — a blocking protocol client;
//! * [`loadgen`] — a multi-threaded closed-loop load generator;
//! * [`replay`] — the session trace and its byte-for-byte verifier.
//!
//! The daemon also carries a [`ktelemetry::FlightRecorder`]: a
//! fixed-capacity ring holding the last engine/scheduler events, dumped
//! as JSONL at drain (and on a scheduler-thread panic) so the tail of
//! any session can be cross-checked against the deterministic replay.

#![deny(missing_docs)]
// The reactor's poll(2) binding is the single audited exception to the
// crate's no-unsafe rule (hand-rolled FFI; no libc dependency).
#![deny(unsafe_code)]

pub mod client;
pub mod journal;
pub mod loadgen;
pub mod metrics;
pub mod protocol;
pub(crate) mod reactor;
pub(crate) mod registry;
pub mod replay;
pub mod server;
pub(crate) mod shard;
pub mod wire;

pub use client::Client;
pub use journal::{JournalHealth, SessionJournal};
pub use loadgen::{run_loadgen, ArrivalKind, LoadgenConfig, LoadgenReport};
pub use metrics::{ModeTracker, ServiceMetrics};
pub use protocol::{Event, HelloReply, Request, Response, TraceReply, PROTOCOL_VERSION};
pub use replay::{SessionTrace, TraceJob};
pub use server::{Server, ServerConfig};
