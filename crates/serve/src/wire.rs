//! A minimal JSON value model for the newline-delimited wire protocol.
//!
//! The service layer follows [`ktelemetry::json`]'s lead and hand-rolls
//! its JSON instead of pulling a serialization framework into the
//! daemon's hot path: the protocol is small, the encoder output is
//! *canonical* (field order is fixed by the caller, no whitespace), and
//! canonical bytes are what the deterministic replay bridge compares.
//!
//! Only what the protocol needs is supported: objects, arrays, strings
//! with `\uXXXX`/escape handling, booleans, null, and numbers (parsed
//! as `f64`, which is exact for the `u64` virtual times the protocol
//! carries — they stay far below 2^53).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Sorted keys give parse → encode a canonical form.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an unsigned integer (rejects negatives and
    /// non-integral numbers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// This value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Why a wire line failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("bad keyword"))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the
                            // protocol; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

/// Append a JSON string literal (with escaping) to `out`.
pub fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a `u64` array (the canonical completions/ids encoding).
pub fn push_u64_arr(out: &mut String, xs: &[u64]) {
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&x.to_string());
    }
    out.push(']');
}

/// Read a required `u64` field from an object.
pub fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or bad field '{key}'"))
}

/// Read a required string field from an object.
pub fn need_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing or bad field '{key}'"))
}

/// Read a required array field from an object.
pub fn need_arr<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("missing or bad field '{key}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"cmd":"submit","jobs":[{"k":2,"categories":[0,1],"edges":[[0,1]]}],"watch":true,"x":null,"y":-1.5}"#).unwrap();
        assert_eq!(v.get("cmd").unwrap().as_str(), Some("submit"));
        assert_eq!(v.get("watch").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("y").unwrap().as_f64(), Some(-1.5));
        let jobs = v.get("jobs").unwrap().as_arr().unwrap();
        assert_eq!(need_u64(&jobs[0], "k").unwrap(), 2);
        let edges = need_arr(&jobs[0], "edges").unwrap();
        assert_eq!(edges[0].as_arr().unwrap()[1].as_u64(), Some(1));
    }

    #[test]
    fn strings_escape_and_roundtrip() {
        let mut out = String::new();
        push_str_lit(&mut out, "a\"b\\c\nd\u{1}");
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\u{1}"));
    }

    #[test]
    fn rejects_garbage_with_offsets() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "tru", "1e", "{} x"] {
            let err = parse(bad).unwrap_err();
            assert!(!err.message.is_empty(), "{bad}: {err}");
        }
        assert_eq!(parse("[1, 2]x").unwrap_err().message, "trailing characters");
    }

    #[test]
    fn u64_guards() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-2").unwrap().as_u64(), None);
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
    }
}
