//! A blocking client for the kserve NDJSON protocol.
//!
//! One request per call; `submit_watch` additionally collects the
//! streamed completion events until the server's `watch_end` marker.
//!
//! Every verb comes in two forms: the legacy method (`submit`,
//! `stats`, …) addresses the implicit `default` session — byte-for-
//! byte the v4 wire encoding — and a `…_to`/`…_of`/`…_in` variant
//! addresses a named session opened with [`Client::open`].

use crate::protocol::{Event, Request, Response, ScenarioRef, SessionSpec};
use kdag::DagSpec;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn bad_data(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

impl Client {
    /// Connect to a daemon at `addr` (any `ToSocketAddrs`).
    pub fn connect<A: std::net::ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim().to_string())
    }

    /// Send one request, read one reply.
    pub fn roundtrip(&mut self, req: &Request) -> io::Result<Response> {
        writeln!(self.writer, "{}", req.encode())?;
        self.writer.flush()?;
        let line = self.read_line()?;
        Response::decode(&line).map_err(bad_data)
    }

    /// Open (or attach to) a named session with the given overrides.
    pub fn open(&mut self, session: &str, spec: SessionSpec) -> io::Result<Response> {
        self.roundtrip(&Request::Open {
            session: session.to_string(),
            spec,
        })
    }

    /// Close a named session: drain it, publish its final report, and
    /// remove it (journal included) from the daemon.
    pub fn close(&mut self, session: &str) -> io::Result<Response> {
        self.roundtrip(&Request::Close {
            session: session.to_string(),
        })
    }

    /// Submit inline DAGs; the reply is `Submitted` or `Rejected`.
    pub fn submit(&mut self, jobs: Vec<DagSpec>) -> io::Result<Response> {
        self.submit_to("", jobs)
    }

    /// Submit inline DAGs into a named session.
    pub fn submit_to(&mut self, session: &str, jobs: Vec<DagSpec>) -> io::Result<Response> {
        self.roundtrip(&Request::Submit {
            jobs,
            scenario: None,
            watch: false,
            session: session.to_string(),
        })
    }

    /// Submit a server-side scenario expansion.
    pub fn submit_scenario(&mut self, scenario: ScenarioRef) -> io::Result<Response> {
        self.roundtrip(&Request::Submit {
            jobs: Vec::new(),
            scenario: Some(scenario),
            watch: false,
            session: String::new(),
        })
    }

    /// Submit inline DAGs and, if accepted, block until every job has
    /// completed (or been cancelled), returning the ack plus the
    /// streamed events in arrival order.
    pub fn submit_watch(&mut self, jobs: Vec<DagSpec>) -> io::Result<(Response, Vec<Event>)> {
        self.submit_watch_to("", jobs)
    }

    /// `submit_watch` against a named session.
    pub fn submit_watch_to(
        &mut self,
        session: &str,
        jobs: Vec<DagSpec>,
    ) -> io::Result<(Response, Vec<Event>)> {
        writeln!(
            self.writer,
            "{}",
            Request::Submit {
                jobs,
                scenario: None,
                watch: true,
                session: session.to_string(),
            }
            .encode()
        )?;
        self.writer.flush()?;
        let ack = Response::decode(&self.read_line()?).map_err(bad_data)?;
        let mut events = Vec::new();
        if matches!(ack, Response::Submitted { .. }) {
            loop {
                let line = self.read_line()?;
                match Event::decode(&line).map_err(bad_data)? {
                    Some(Event::WatchEnd) => break,
                    Some(ev) => events.push(ev),
                    None => return Err(bad_data(format!("expected an event line, got: {line}"))),
                }
            }
        }
        Ok((ack, events))
    }

    /// Identify the server (protocol version, scheduler, clock).
    pub fn hello(&mut self) -> io::Result<Response> {
        self.roundtrip(&Request::Hello)
    }

    /// Fetch the decoded `hello` body (errors on any other reply).
    pub fn hello_reply(&mut self) -> io::Result<crate::protocol::HelloReply> {
        match self.hello()? {
            Response::Hello(reply) => Ok(reply),
            other => Err(bad_data(format!("expected a hello reply, got {other:?}"))),
        }
    }

    /// Fetch per-job states and the engine clock.
    pub fn status(&mut self) -> io::Result<Response> {
        self.status_of("")
    }

    /// `status` against a named session.
    pub fn status_of(&mut self, session: &str) -> io::Result<Response> {
        self.roundtrip(&Request::Status {
            session: session.to_string(),
        })
    }

    /// Fetch service counters and latency metrics.
    pub fn stats(&mut self) -> io::Result<Response> {
        self.stats_of("")
    }

    /// `stats` against a named session.
    pub fn stats_of(&mut self, session: &str) -> io::Result<Response> {
        self.roundtrip(&Request::Stats {
            session: session.to_string(),
        })
    }

    /// Fetch the decoded `stats` body (errors on any other reply).
    pub fn stats_reply(&mut self) -> io::Result<crate::protocol::StatsReply> {
        self.stats_reply_of("")
    }

    /// Fetch a named session's decoded `stats` body.
    pub fn stats_reply_of(&mut self, session: &str) -> io::Result<crate::protocol::StatsReply> {
        match self.stats_of(session)? {
            Response::Stats(reply) => Ok(reply),
            Response::Error { message } => Err(bad_data(message)),
            other => Err(bad_data(format!("expected a stats reply, got {other:?}"))),
        }
    }

    /// Fetch the live metrics registry as Prometheus exposition text.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.roundtrip(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            other => Err(bad_data(format!("expected a metrics reply, got {other:?}"))),
        }
    }

    /// Fetch one job's ktrace span tree (lifecycle state, engine-time
    /// spans, wall-clock stamps).
    pub fn trace(&mut self, job: u64) -> io::Result<Response> {
        self.trace_in("", job)
    }

    /// `trace` against a named session.
    pub fn trace_in(&mut self, session: &str, job: u64) -> io::Result<Response> {
        self.roundtrip(&Request::Trace {
            job,
            session: session.to_string(),
        })
    }

    /// Fetch the decoded `trace` body (errors on any other reply).
    pub fn trace_reply(&mut self, job: u64) -> io::Result<crate::protocol::TraceReply> {
        self.trace_reply_in("", job)
    }

    /// Fetch a named session's decoded `trace` body.
    pub fn trace_reply_in(
        &mut self,
        session: &str,
        job: u64,
    ) -> io::Result<crate::protocol::TraceReply> {
        match self.trace_in(session, job)? {
            Response::Trace(reply) => Ok(reply),
            Response::Error { message } => Err(bad_data(message)),
            other => Err(bad_data(format!("expected a trace reply, got {other:?}"))),
        }
    }

    /// Cancel a still-queued job.
    pub fn cancel(&mut self, job: u64) -> io::Result<Response> {
        self.cancel_in("", job)
    }

    /// `cancel` against a named session.
    pub fn cancel_in(&mut self, session: &str, job: u64) -> io::Result<Response> {
        self.roundtrip(&Request::Cancel {
            job,
            session: session.to_string(),
        })
    }

    /// Drain the server: stop admission everywhere, finish in-flight
    /// work in every session, and return the default session's final
    /// counters plus its canonical session trace.
    pub fn drain(&mut self) -> io::Result<Response> {
        self.roundtrip(&Request::Drain {
            session: String::new(),
        })
    }

    /// Drain one named session (the daemon keeps running).
    pub fn drain_session(&mut self, session: &str) -> io::Result<Response> {
        self.roundtrip(&Request::Drain {
            session: session.to_string(),
        })
    }
}
