//! The threaded scheduling daemon.
//!
//! One *scheduler thread* owns the [`LiveSimulation`] and drives it
//! quantum by quantum; per-connection *handler threads* speak the
//! NDJSON protocol and interact with the scheduler only through a
//! mutex-protected [`Inner`] (admission queue, job table, counters)
//! and a condvar. The engine itself is never stepped under a client's
//! request — submissions land in a bounded queue and are injected at
//! the next quantum boundary with `release = now()`, which is what
//! makes the recorded session trace replayable offline (see
//! [`crate::replay`]).
//!
//! Admission control is explicit: a full queue or too many in-flight
//! jobs produces a `rejected` reply (backpressure), never unbounded
//! buffering. Draining stops admission, finishes every acknowledged
//! job, publishes the canonical [`SessionTrace`], and shuts the
//! listeners down.

use crate::journal::{self, SessionJournal};
use crate::metrics::{ModeTracker, ServiceMetrics};
use crate::protocol::{
    DrainReply, Event, HelloReply, JobState, JobStatus, Request, Response, ScenarioRef, StatsReply,
    StatusReply, TraceReply, PROTOCOL_VERSION,
};
use crate::replay::{SessionTrace, TraceJob};
use kbaselines::SchedulerKind;
use kdag::{DagSpec, JobDag, SelectionPolicy};
use kjournal::{FsyncPolicy, JobImage, JobPhase, JournalStore, SessionImage};
use ksim::{JobSpec, LiveSimulation, Resources, Scheduler, SimConfig, Time, TimePolicy};
use ktelemetry::{
    CounterHandle, FanoutSink, FlightRecorder, HistogramHandle, SharedSink, SpanKind, SpanRecorder,
    TelemetryEvent, TelemetryHandle, TelemetrySink, TraceAssembler, TraceStamps,
};
use kworkloads::{rng_for, scenarios};
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Processors per category.
    pub machine: Vec<u32>,
    /// The scheduling policy serving the session.
    pub scheduler: SchedulerKind,
    /// The environment's task-selection policy.
    pub policy: SelectionPolicy,
    /// Scheduling quantum (engine steps per decision).
    pub quantum: u64,
    /// How the engine clock advances inside a service quantum (see
    /// [`ksim::TimePolicy`]); the event-driven clock batches idle and
    /// frozen spans so sparse sessions cost O(events), not O(steps).
    pub time_policy: TimePolicy,
    /// Seed for the engine RNG and randomized schedulers.
    pub seed: u64,
    /// Bound on the submission queue (admitted, not yet injected).
    pub queue_capacity: usize,
    /// Bound on admitted-but-incomplete jobs (queued + running).
    pub max_inflight: usize,
    /// Wall-clock pacing per quantum; `ZERO` runs flat out (tests,
    /// benches). Ignored while draining.
    pub tick: Duration,
    /// TCP bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Optional Unix-domain listener path (removed and re-created).
    pub unix_path: Option<std::path::PathBuf>,
    /// Engine telemetry sink (run/step/job events).
    pub telemetry: TelemetryHandle,
    /// Plain-HTTP `/metrics` scrape listener bind address (no scrape
    /// endpoint when `None`; the `metrics` protocol verb still works).
    pub metrics_addr: Option<String>,
    /// Flight-recorder capacity in events (0 disables the recorder).
    pub flight_capacity: usize,
    /// Where the flight recorder is dumped (JSONL) at drain — and on a
    /// scheduler-thread panic, for post-mortem replay.
    pub flight_dump: Option<PathBuf>,
    /// Directory for the write-ahead session journal. `None` runs
    /// without durability; with a directory, every admission,
    /// cancellation, and quantum boundary is committed to the WAL
    /// *before* it is acknowledged on the wire, and a restart pointed
    /// at the same directory rebuilds the session by verified replay.
    pub journal_dir: Option<PathBuf>,
    /// When the WAL escalates from `write(2)` to `fsync(2)` (see
    /// [`kjournal::FsyncPolicy`]). Irrelevant without `journal_dir`.
    pub fsync: FsyncPolicy,
    /// Write a snapshot (truncating the WAL behind it) every this many
    /// quanta; 0 disables periodic snapshots. Drain and recovery
    /// always snapshot.
    pub snapshot_every: u64,
    /// Alert when the observed mean response exceeds this multiple of
    /// the running Theorem-3 makespan bound (`krad_bound_theorem3`).
    /// Crossing the threshold bumps `krad_slo_breaches_total` and
    /// drops an `slo_alert` annotation into the flight recorder;
    /// `0.0` disables the check.
    pub slo_factor: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            machine: vec![4, 2],
            scheduler: SchedulerKind::KRad,
            policy: SelectionPolicy::Fifo,
            quantum: 1,
            time_policy: TimePolicy::EventDriven,
            seed: 0,
            queue_capacity: 64,
            max_inflight: 1024,
            tick: Duration::ZERO,
            addr: "127.0.0.1:0".to_string(),
            unix_path: None,
            telemetry: TelemetryHandle::off(),
            metrics_addr: None,
            flight_capacity: 4096,
            flight_dump: None,
            journal_dir: None,
            fsync: FsyncPolicy::Interval(Duration::from_millis(50)),
            snapshot_every: 256,
            slo_factor: 0.0,
        }
    }
}

/// Lifecycle of one admitted job.
enum Slot {
    Queued(Arc<JobDag>),
    Cancelled,
    Running { release: Time },
    Done { release: Time, completion: Time },
}

/// Shared state between handlers and the scheduler thread.
struct Inner {
    queue: VecDeque<u64>,
    slots: Vec<Slot>,
    // `DagSpec` per admitted id, kept for journal snapshots (the DAG
    // itself is dropped from `Slot` once a job is injected).
    dag_specs: Vec<DagSpec>,
    engine_to_id: Vec<u64>,
    inflight: usize,
    draining: bool,
    drained: bool,
    // Drained replies built but not yet written to their sockets.
    // `Server::join` waits for this to hit zero so the process cannot
    // exit (closing every connection) while a reply is in flight.
    drain_acks: usize,
    trace: Option<SessionTrace>,
    // Canonical session record, filled at injection / completion.
    trace_jobs: Vec<TraceJob>,
    completions: Vec<Time>,
    // `(id, completion)` in completion order — the journal's view.
    completed_log: Vec<(u64, Time)>,
    // Mirrored engine scalars (the engine lives on the scheduler
    // thread; these are refreshed after every quantum).
    now: Time,
    active: u64,
    busy_steps: u64,
    idle_steps: u64,
    // Theorem 3 accumulators over injected jobs: Σ T1(J, α) per
    // category, and max (T∞(J) + r(J)).
    work_by_cat: Vec<u64>,
    span_release_max: u64,
    // ktrace wall-clock stamps per admitted id, nanoseconds since the
    // daemon's monotonic epoch (`ServiceMetrics::started`).
    stamps: Vec<TraceStamps>,
    // Dominant work category and span per admitted id, fixed at
    // admission — the slowdown denominator and histogram label.
    cat_span: Vec<(usize, u64)>,
    // Edge-trigger state for the SLO alert: set while the mean
    // response sits above the threshold so one crossing fires once.
    slo_breached: bool,
    // Service metrics (registry-backed atomic handles; clones of the
    // instruments in `Shared::metrics`).
    admitted: CounterHandle,
    rejections: CounterHandle,
    completed: CounterHandle,
    cancelled: CounterHandle,
    quanta: CounterHandle,
    queue_depth: HistogramHandle,
    quantum_latency_us: HistogramHandle,
    max_queue_depth: u64,
    watchers: Vec<mpsc::Sender<Event>>,
}

struct Shared {
    inner: Mutex<Inner>,
    cv: Condvar,
    stop: AtomicBool,
    cfg: ServerConfig,
    metrics: ServiceMetrics,
    mode_tracker: ModeTracker,
    flight: Option<Arc<Mutex<FlightRecorder>>>,
    journal: Option<SessionJournal>,
    // Live span-tree view: assembles engine trace events on the fly;
    // the `trace` verb reads it, `admit` never touches it.
    traces: Arc<Mutex<TraceAssembler>>,
    // Session nonce baked into every trace id (`<nonce:x>-<job>`), so
    // ids from different sessions never collide in downstream stores.
    nonce: u64,
}

impl Shared {
    /// Build the shared state, opening the journal directory when one
    /// is configured. Returns the session the journal recovered, if
    /// any — `Server::start` replays it into the engine before the
    /// scheduler thread exists.
    fn new(cfg: ServerConfig) -> io::Result<(Arc<Shared>, Option<kjournal::RecoveredSession>)> {
        let metrics = ServiceMetrics::new(&cfg.machine);
        let mode_tracker = ModeTracker::new(cfg.machine.len(), metrics.registry());
        let flight = (cfg.flight_capacity > 0)
            .then(|| Arc::new(Mutex::new(FlightRecorder::new(cfg.flight_capacity))));
        let (journal, recovered) = match &cfg.journal_dir {
            Some(dir) => {
                let (store, recovered) = JournalStore::open(dir, cfg.fsync)?;
                (
                    Some(SessionJournal::new(store, &metrics, cfg.snapshot_every)),
                    recovered,
                )
            }
            None => (None, None),
        };
        let k = cfg.machine.len();
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                slots: Vec::new(),
                dag_specs: Vec::new(),
                engine_to_id: Vec::new(),
                inflight: 0,
                draining: false,
                drained: false,
                drain_acks: 0,
                trace: None,
                trace_jobs: Vec::new(),
                completions: Vec::new(),
                completed_log: Vec::new(),
                now: 0,
                active: 0,
                busy_steps: 0,
                idle_steps: 0,
                work_by_cat: vec![0; k],
                span_release_max: 0,
                stamps: Vec::new(),
                cat_span: Vec::new(),
                slo_breached: false,
                admitted: metrics.admitted.clone(),
                rejections: metrics.rejected.clone(),
                completed: metrics.completed.clone(),
                cancelled: metrics.cancelled.clone(),
                quanta: metrics.quanta.clone(),
                queue_depth: metrics.queue_depth_at_admit.clone(),
                quantum_latency_us: metrics.quantum_latency_us.clone(),
                max_queue_depth: 0,
                watchers: Vec::new(),
            }),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            cfg,
            metrics,
            mode_tracker,
            flight,
            journal,
            traces: Arc::new(Mutex::new(TraceAssembler::new())),
            nonce: session_nonce(),
        });
        Ok((shared, recovered))
    }

    /// Nanoseconds since the daemon's monotonic epoch, for ktrace
    /// wall-clock stamps.
    fn elapsed_ns(&self) -> u64 {
        self.metrics
            .started()
            .elapsed()
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64
    }

    /// The wire-visible trace id of job `id` in this session.
    fn trace_id(&self, id: u64) -> String {
        format!("{:x}-{id}", self.nonce)
    }

    /// The telemetry handle the engine and scheduler record into: the
    /// user's configured sink, the trace assembler, the mode tracker,
    /// and the flight recorder, fanned out. The flight ring (the one
    /// sink that keeps the event) goes last so the read-only sinks
    /// ahead of it are fed by reference and never force a clone.
    fn telemetry_fanout(&self) -> TelemetryHandle {
        let mut sinks: Vec<SharedSink> = Vec::new();
        if self.cfg.telemetry.is_enabled() {
            sinks.push(Arc::new(Mutex::new(self.cfg.telemetry.clone())));
        }
        sinks.push(Arc::clone(&self.traces) as SharedSink);
        sinks.push(Arc::new(Mutex::new(self.mode_tracker.clone())));
        if let Some(flight) = &self.flight {
            sinks.push(Arc::clone(flight) as SharedSink);
        }
        TelemetryHandle::new(FanoutSink::new(sinks))
    }

    fn notify(&self) {
        self.cv.notify_all();
    }

    fn broadcast(inner: &mut Inner, event: Event) {
        inner.watchers.retain(|w| w.send(event.clone()).is_ok());
    }
}

/// A per-process session nonce for trace ids: wall-clock nanoseconds
/// folded with the pid, so restarts (and concurrent daemons) mint
/// distinct id spaces without coordination.
fn session_nonce() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    (nanos ^ u64::from(std::process::id()).rotate_left(32)) | 1
}

/// The dominant work category (argmax of per-category work, ties to
/// the lowest index) and critical-path span of a DAG — the histogram
/// label and slowdown denominator fixed at admission.
fn dominant_cat_span(dag: &JobDag) -> (usize, u64) {
    let cat = dag
        .work_by_category()
        .iter()
        .enumerate()
        .max_by_key(|&(i, &w)| (w, std::cmp::Reverse(i)))
        .map_or(0, |(i, _)| i);
    (cat, dag.span())
}

/// A running daemon: its address and its thread handles.
pub struct Server {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind the listeners, start the scheduler thread, and return.
    ///
    /// Configuration errors (empty machine, zero quantum, unknown
    /// scenario later at submit time) surface as `InvalidInput`.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        if cfg.machine.is_empty() || cfg.machine.contains(&0) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "machine needs at least one category with ≥ 1 processor",
            ));
        }
        if cfg.quantum == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "quantum must be at least 1",
            ));
        }
        let (shared, recovered) = Shared::new(cfg.clone())?;
        let tel = shared.telemetry_fanout();
        let spans = SpanRecorder::for_registry(shared.metrics.registry());

        let res = Resources::new(cfg.machine.clone());
        let sim_cfg = SimConfig::default()
            .with_policy(cfg.policy)
            .with_seed(cfg.seed)
            .with_quantum(cfg.quantum)
            .with_time_policy(cfg.time_policy)
            .with_telemetry(tel.clone())
            .with_spans(spans.clone());
        let mut live = LiveSimulation::new(res, sim_cfg)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;

        // The scheduler is built here (not in the loop) so a journal
        // recovery replays through the *same* instance that then keeps
        // serving — its internal state (RAD marks, RR cursors, RNG) is
        // part of the determinism argument.
        let mut scheduler =
            cfg.scheduler
                .build_observed(live.resources().k(), cfg.seed, tel, spans.clone());

        match recovered {
            Some(rec) => {
                let t0 = Instant::now();
                journal::validate_meta(&cfg, &rec.image.meta)?;
                let jobs = journal::replay_session(&mut live, scheduler.as_mut(), &rec.image)?;
                let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
                let counts = rec.image.counts();
                {
                    let mut g = shared.inner.lock().unwrap();
                    rebuild_inner(&mut g, &shared.metrics, &rec.image, &jobs, &live);
                }
                shared.metrics.recovery_duration_ms.set(recovery_ms);
                // Compact immediately: a crash-restart loop must not
                // grow the WAL without bound.
                if let Some(j) = &shared.journal {
                    j.snapshot(&rec.image)?;
                }
                eprintln!(
                    "kserve: recovered session from journal ({} jobs: {} done, {} running, \
                     {} queued, {} cancelled; clock {}; {} WAL records{}), replay verified \
                     in {recovery_ms:.1} ms",
                    rec.image.jobs.len(),
                    counts.3,
                    counts.1,
                    counts.0,
                    counts.2,
                    rec.image.clock,
                    rec.wal_records,
                    if rec.dropped_bytes > 0 {
                        format!(", {} torn bytes truncated", rec.dropped_bytes)
                    } else {
                        String::new()
                    },
                );
            }
            None => {
                if let Some(j) = &shared.journal {
                    j.log_open(&journal::session_meta(&cfg))?;
                }
            }
        }

        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;

        let metrics_listener = match &cfg.metrics_addr {
            Some(a) => Some(TcpListener::bind(a)?),
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };

        #[cfg(unix)]
        let unix_listener = match &cfg.unix_path {
            Some(path) => {
                let _ = std::fs::remove_file(path);
                Some(std::os::unix::net::UnixListener::bind(path)?)
            }
            None => None,
        };

        let mut threads = Vec::new();

        let sched_shared = Arc::clone(&shared);
        let sched_addr = addr;
        let sched_metrics_addr = metrics_addr;
        let unix_path = cfg.unix_path.clone();
        threads.push(
            thread::Builder::new()
                .name("kserve-sched".into())
                .spawn(move || {
                    // Dump the flight recorder even if the quantum loop
                    // panics, so the tail of the event stream survives
                    // for post-mortem replay.
                    let _guard = FlightDumpGuard {
                        flight: sched_shared.flight.clone(),
                        path: sched_shared.cfg.flight_dump.clone(),
                    };
                    scheduler_loop(live, &sched_shared, scheduler, spans);
                    // Unblock the accept loops so the process can exit.
                    sched_shared.stop.store(true, Ordering::SeqCst);
                    let _ = TcpStream::connect(sched_addr);
                    if let Some(maddr) = sched_metrics_addr {
                        let _ = TcpStream::connect(maddr);
                    }
                    #[cfg(unix)]
                    if let Some(path) = &unix_path {
                        let _ = std::os::unix::net::UnixStream::connect(path);
                    }
                    #[cfg(not(unix))]
                    let _ = unix_path;
                })?,
        );

        if let Some(metrics_listener) = metrics_listener {
            let scrape_shared = Arc::clone(&shared);
            threads.push(thread::Builder::new().name("kserve-metrics".into()).spawn(
                move || {
                    for stream in metrics_listener.incoming() {
                        if scrape_shared.stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let conn_shared = Arc::clone(&scrape_shared);
                        let _ = thread::Builder::new()
                            .name("kserve-scrape".into())
                            .spawn(move || serve_scrape(stream, &conn_shared));
                    }
                },
            )?);
        }

        let tcp_shared = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name("kserve-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if tcp_shared.stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let conn_shared = Arc::clone(&tcp_shared);
                        let _ =
                            thread::Builder::new()
                                .name("kserve-conn".into())
                                .spawn(move || {
                                    if let Ok(writer) = stream.try_clone() {
                                        handle_connection(
                                            BufReader::new(stream),
                                            writer,
                                            &conn_shared,
                                        );
                                    }
                                });
                    }
                })?,
        );

        #[cfg(unix)]
        if let Some(unix_listener) = unix_listener {
            let unix_shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name("kserve-accept-unix".into())
                    .spawn(move || {
                        for stream in unix_listener.incoming() {
                            if unix_shared.stop.load(Ordering::SeqCst) {
                                break;
                            }
                            let Ok(stream) = stream else { continue };
                            let conn_shared = Arc::clone(&unix_shared);
                            let _ = thread::Builder::new().name("kserve-conn".into()).spawn(
                                move || {
                                    if let Ok(writer) = stream.try_clone() {
                                        handle_connection(
                                            BufReader::new(stream),
                                            writer,
                                            &conn_shared,
                                        );
                                    }
                                },
                            );
                        }
                    })?,
            );
        }

        Ok(Server {
            addr,
            metrics_addr,
            shared,
            threads,
        })
    }

    /// The bound TCP address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound `/metrics` scrape address, if a listener was
    /// configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Wait until the daemon has drained and every thread has exited.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Drained replies are written by detached connection threads;
        // give every pending one a bounded window to reach its socket
        // before the caller is free to exit the process (which would
        // sever the connections mid-reply).
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut g = self.shared.inner.lock().unwrap();
        while g.drain_acks > 0 && Instant::now() < deadline {
            let (back, _) = self
                .shared
                .cv
                .wait_timeout(g, Duration::from_millis(50))
                .unwrap();
            g = back;
        }
        drop(g);
        #[cfg(unix)]
        if let Some(path) = &self.shared.cfg.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// The quantum loop: inject admitted jobs, advance one quantum,
/// publish completions; park on the condvar when there is nothing to
/// do (wall-clock idle consumes no virtual time).
fn scheduler_loop(
    mut live: LiveSimulation,
    shared: &Shared,
    mut scheduler: Box<dyn Scheduler + Send>,
    spans: SpanRecorder,
) {
    let cfg = &shared.cfg;
    let mut done_buf: Vec<usize> = Vec::new();
    let mut desires_buf: Vec<u64> = Vec::new();
    loop {
        // Admit, or park until there is work.
        {
            let mut g = shared.inner.lock().unwrap();
            loop {
                inject_queued(&mut live, &mut g, shared);
                if live.has_work() {
                    break;
                }
                if g.draining {
                    finalize_drain(&live, &mut g, shared);
                    shared.notify();
                    return;
                }
                g = shared.cv.wait(g).unwrap();
            }
        }

        // One quantum of engine work, unlocked. `run_until` follows
        // the configured [`TimePolicy`]: under the event-driven clock
        // the whole quantum is usually a handful of batched segments.
        let start = Instant::now();
        let quantum_span = spans.start();
        done_buf.clear();
        let target = live.now() + cfg.quantum.max(1);
        if live.has_work() {
            let report = live.run_until(target, scheduler.as_mut());
            done_buf.extend(report.completed_jobs());
        }
        spans.finish(SpanKind::Quantum, quantum_span);
        let latency_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;

        // Refresh the scrapeable gauges (atomic handles — no lock).
        live.desire_totals_into(&mut desires_buf);
        shared.metrics.update_per_category(
            &cfg.machine,
            &desires_buf,
            live.last_allotted(),
            live.executed_by_category(),
            live.allotted_by_category(),
            live.now(),
        );
        shared
            .metrics
            .active_jobs
            .set_u64(live.active_jobs() as u64);
        shared.metrics.virtual_time.set_u64(live.now());
        shared.metrics.busy_steps.set_u64(live.busy_steps());
        shared.metrics.idle_steps.set_u64(live.idle_steps());
        shared.metrics.refresh_uptime();
        shared.mode_tracker.refresh();

        // Publish.
        {
            let mut g = shared.inner.lock().unwrap();
            g.quanta.incr();
            g.quantum_latency_us.record(latency_us);
            g.now = live.now();
            g.active = live.active_jobs() as u64;
            g.busy_steps = live.busy_steps();
            g.idle_steps = live.idle_steps();
            shared
                .metrics
                .update_bounds(&cfg.machine, &g.work_by_cat, g.span_release_max);
            let done_jobs: Vec<(u64, Time)> = done_buf
                .iter()
                .map(|&engine_idx| {
                    let completion = live
                        .completion(engine_idx)
                        .expect("just-completed job has a completion time");
                    (g.engine_to_id[engine_idx], completion)
                })
                .collect();
            // Commit the quantum (and any injections buffered at its
            // start) before a single completion is broadcast: a
            // `kill -9` after this point replays to the same state.
            let mut snapshot_due = false;
            if let Some(j) = &shared.journal {
                snapshot_due = j
                    .log_quantum(live.now(), live.busy_steps(), live.idle_steps(), &done_jobs)
                    .expect("journal commit failed; cannot acknowledge unjournaled completions");
            }
            let complete_ns = shared.elapsed_ns();
            for (&engine_idx, &(id, completion)) in done_buf.iter().zip(&done_jobs) {
                let release = match g.slots[id as usize] {
                    Slot::Running { release } => release,
                    _ => unreachable!("completed job must be running"),
                };
                g.slots[id as usize] = Slot::Done {
                    release,
                    completion,
                };
                g.completions[engine_idx] = completion;
                g.completed_log.push((id, completion));
                g.inflight -= 1;
                g.completed.incr();
                g.stamps[id as usize].complete_ns = Some(complete_ns);
                let (cat, span) = g.cat_span[id as usize];
                shared
                    .metrics
                    .record_completion(cat, completion - release, span);
                Shared::broadcast(
                    &mut g,
                    Event::JobDone {
                        job: id,
                        release,
                        completion,
                        response: completion - release,
                        trace_id: shared.trace_id(id),
                    },
                );
            }
            // SLO check, edge-triggered on the running mean response
            // crossing `slo_factor ×` the live Theorem-3 bound. The
            // alert annotates the flight ring only — it is a service
            // observation, not an engine event, so deterministic
            // replay stays byte-for-byte comparable.
            if cfg.slo_factor > 0.0 && !done_buf.is_empty() {
                let mean = shared.metrics.response_all.mean();
                let threshold = cfg.slo_factor * shared.metrics.bound_theorem3.get();
                if threshold > 0.0 && mean > threshold {
                    if !g.slo_breached {
                        g.slo_breached = true;
                        shared.metrics.slo_breaches.incr();
                        if let Some(flight) = &shared.flight {
                            if let Ok(mut ring) = flight.lock() {
                                ring.record(TelemetryEvent::SloAlert {
                                    t: live.now(),
                                    mean_response_milli: (mean * 1e3) as u64,
                                    threshold_milli: (threshold * 1e3) as u64,
                                });
                            }
                        }
                    }
                } else {
                    g.slo_breached = false;
                }
            }
            if snapshot_due {
                if let Some(j) = &shared.journal {
                    if let Err(e) = j.snapshot(&session_image(cfg, &g)) {
                        // The WAL is still intact — degraded, not fatal.
                        eprintln!("kserve: journal snapshot failed: {e}");
                    }
                }
            }
            if !done_buf.is_empty() {
                shared.notify();
            }
        }

        if cfg.tick > Duration::ZERO {
            let draining = shared.inner.lock().unwrap().draining;
            if !draining {
                thread::sleep(cfg.tick);
            }
        }
    }
}

/// Move every queued job into the engine with `release = now()`.
/// Injection records are buffered into the journal (not yet
/// committed): they ride the quantum's group commit, and nothing
/// observable depends on them until that commit lands.
fn inject_queued(live: &mut LiveSimulation, g: &mut Inner, shared: &Shared) {
    let journal = shared.journal.as_ref();
    while let Some(id) = g.queue.pop_front() {
        let dag = match &g.slots[id as usize] {
            Slot::Queued(dag) => Arc::clone(dag),
            Slot::Cancelled => continue,
            _ => unreachable!("queued id must be queued or cancelled"),
        };
        let release = live.now();
        g.stamps[id as usize].inject_ns = Some(shared.elapsed_ns());
        let spec = JobSpec {
            dag: Arc::clone(&dag),
            release,
        };
        let engine_idx = live
            .inject(spec)
            .expect("admission validated the DAG and release = now() is never in the past");
        debug_assert_eq!(engine_idx, g.engine_to_id.len());
        if let Some(j) = journal {
            j.note_injected(id, release);
        }
        for (cat, &w) in g.work_by_cat.iter_mut().zip(dag.work_by_category()) {
            *cat += w;
        }
        g.span_release_max = g.span_release_max.max(dag.span() + release);
        g.engine_to_id.push(id);
        g.trace_jobs.push(TraceJob {
            dag: g.dag_specs[id as usize].clone(),
            release,
        });
        g.completions.push(0);
        g.slots[id as usize] = Slot::Running { release };
    }
}

/// The journal's view of the current session, built from the job
/// table under the `Inner` lock (the mirrored scalars were refreshed
/// by the same quantum that triggered the snapshot).
fn session_image(cfg: &ServerConfig, g: &Inner) -> SessionImage {
    let mut image = SessionImage::new(journal::session_meta(cfg));
    image.clock = g.now;
    image.busy = g.busy_steps;
    image.idle = g.idle_steps;
    image.completed = g.completed_log.clone();
    image.jobs = g
        .slots
        .iter()
        .enumerate()
        .map(|(id, slot)| JobImage {
            id: id as u64,
            dag: g.dag_specs[id].clone(),
            phase: match slot {
                Slot::Queued(_) => JobPhase::Queued,
                Slot::Cancelled => JobPhase::Cancelled,
                Slot::Running { release } | Slot::Done { release, .. } => {
                    JobPhase::Injected { release: *release }
                }
            },
        })
        .collect();
    image
}

/// Seed the job table from a verified recovery: the inverse of
/// [`session_image`], plus the engine-side vectors (`engine_to_id`,
/// trace, Theorem 3 accumulators) that replay re-derives.
fn rebuild_inner(
    g: &mut Inner,
    metrics: &ServiceMetrics,
    image: &SessionImage,
    jobs: &[journal::RecoveredJob],
    live: &LiveSimulation,
) {
    let mut done = 0u64;
    let mut cancelled = 0u64;
    for job in jobs {
        g.dag_specs.push(image.jobs[job.id as usize].dag.clone());
        // Wall-clock stamps do not survive a restart (the monotonic
        // epoch is new); slowdown accounting re-derives its inputs.
        g.stamps.push(TraceStamps::default());
        g.cat_span.push(dominant_cat_span(&job.dag));
        match job.phase {
            JobPhase::Queued => {
                g.slots.push(Slot::Queued(Arc::clone(&job.dag)));
                g.queue.push_back(job.id);
                g.inflight += 1;
            }
            JobPhase::Cancelled => {
                g.slots.push(Slot::Cancelled);
                cancelled += 1;
            }
            JobPhase::Injected { release } => {
                g.engine_to_id.push(job.id);
                g.trace_jobs.push(TraceJob {
                    dag: image.jobs[job.id as usize].dag.clone(),
                    release,
                });
                g.completions.push(job.completion.unwrap_or(0));
                for (cat, &w) in g.work_by_cat.iter_mut().zip(job.dag.work_by_category()) {
                    *cat += w;
                }
                g.span_release_max = g.span_release_max.max(job.dag.span() + release);
                match job.completion {
                    Some(completion) => {
                        g.slots.push(Slot::Done {
                            release,
                            completion,
                        });
                        done += 1;
                    }
                    None => {
                        g.slots.push(Slot::Running { release });
                        g.inflight += 1;
                    }
                }
            }
        }
    }
    g.completed_log = image.completed.clone();
    g.now = live.now();
    g.active = live.active_jobs() as u64;
    g.busy_steps = live.busy_steps();
    g.idle_steps = live.idle_steps();
    g.admitted.add(jobs.len() as u64);
    g.completed.add(done);
    g.cancelled.add(cancelled);
    metrics.virtual_time.set_u64(live.now());
    metrics.busy_steps.set_u64(live.busy_steps());
    metrics.idle_steps.set_u64(live.idle_steps());
    metrics.active_jobs.set_u64(live.active_jobs() as u64);
}

/// Seal the session: build the canonical trace, dump the flight
/// recorder, and mark drained.
fn finalize_drain(live: &LiveSimulation, g: &mut Inner, shared: &Shared) {
    let cfg = &shared.cfg;
    g.now = live.now();
    g.active = 0;
    g.busy_steps = live.busy_steps();
    g.idle_steps = live.idle_steps();
    shared.metrics.active_jobs.set_u64(0);
    shared.metrics.virtual_time.set_u64(live.now());
    shared.metrics.busy_steps.set_u64(live.busy_steps());
    shared.metrics.idle_steps.set_u64(live.idle_steps());
    dump_flight(shared.flight.as_ref(), cfg.flight_dump.as_deref());
    // Seal the journal: one final snapshot (fsync'd regardless of
    // policy) so the directory holds the complete session compactly.
    if let Some(j) = &shared.journal {
        if let Err(e) = j.snapshot(&session_image(cfg, g)).and_then(|()| j.sync()) {
            eprintln!("kserve: journal drain snapshot failed: {e}");
        }
    }
    g.trace = Some(SessionTrace {
        machine: cfg.machine.clone(),
        scheduler: cfg.scheduler,
        policy: cfg.policy,
        quantum: cfg.quantum,
        seed: cfg.seed,
        jobs: std::mem::take(&mut g.trace_jobs),
        completions: g.completions.clone(),
    });
    g.drained = true;
    let mut watchers = std::mem::take(&mut g.watchers);
    watchers.retain(|w| w.send(Event::WatchEnd).is_ok());
}

/// Write the flight recorder's contents (oldest first) to `path` as
/// JSONL. A no-op unless both the recorder and the path are configured.
fn dump_flight(flight: Option<&Arc<Mutex<FlightRecorder>>>, path: Option<&Path>) {
    let (Some(flight), Some(path)) = (flight, path) else {
        return;
    };
    if let Ok(recorder) = flight.lock() {
        let _ = std::fs::write(path, recorder.to_jsonl());
    }
}

/// Dumps the flight recorder from `Drop` when the scheduler thread
/// panics, so the last events before the crash survive on disk.
struct FlightDumpGuard {
    flight: Option<Arc<Mutex<FlightRecorder>>>,
    path: Option<PathBuf>,
}

impl Drop for FlightDumpGuard {
    fn drop(&mut self) {
        if thread::panicking() {
            dump_flight(self.flight.as_ref(), self.path.as_deref());
        }
    }
}

/// Render one scrape: refresh the wall-clock and lock-guarded gauges,
/// then encode the registry in Prometheus text exposition format.
fn render_scrape(shared: &Shared) -> String {
    shared.metrics.refresh_uptime();
    shared.mode_tracker.refresh();
    {
        let g = shared.inner.lock().unwrap();
        shared.metrics.queue_depth.set_u64(g.queue.len() as u64);
        shared.metrics.draining.set_u64(u64::from(g.draining));
    }
    shared.metrics.registry().render()
}

/// Serve one plain-HTTP scrape connection: read the request head,
/// answer `GET /metrics` (or `/`) with the text exposition, `HEAD`
/// with the headers alone, any other method with 405, unknown paths
/// with 404, and close.
fn serve_scrape(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the header block so the peer sees a clean close.
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => {}
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let mut writer = stream;
    let (status, body, allow) = match (method, path == "/metrics" || path == "/") {
        ("GET" | "HEAD", true) => ("200 OK", render_scrape(shared), false),
        ("GET" | "HEAD", false) => ("404 Not Found", "not found\n".to_string(), false),
        _ => (
            "405 Method Not Allowed",
            "method not allowed\n".to_string(),
            true,
        ),
    };
    // HEAD carries the headers (including the Content-Length the GET
    // would have) with no body.
    let payload = if method == "HEAD" { "" } else { body.as_str() };
    let _ = write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n{payload}",
        body.len(),
        if allow { "Allow: GET, HEAD\r\n" } else { "" },
    );
    let _ = writer.flush();
}

/// Admission: validate, then accept into the bounded queue or reject
/// with explicit backpressure.
fn admit(shared: &Shared, dags: Vec<JobDag>, watch: bool) -> (Response, Option<WatchSession>) {
    let cfg = &shared.cfg;
    let k = cfg.machine.len();
    // ktrace: the submit stamp is taken before validation or locking —
    // it marks when the request came off the wire.
    let submit_ns = shared.elapsed_ns();
    for (i, dag) in dags.iter().enumerate() {
        if dag.k() != k {
            return (
                Response::Error {
                    message: format!(
                        "job {i}: DAG has {} categories but machine has {k}",
                        dag.k()
                    ),
                },
                None,
            );
        }
    }
    let n = dags.len();
    let mut g = shared.inner.lock().unwrap();
    if g.draining {
        g.rejections.add(n as u64);
        let depth = g.queue.len() as u64;
        return (
            Response::Rejected {
                reason: "draining".to_string(),
                queue_depth: depth,
                capacity: cfg.queue_capacity as u64,
            },
            None,
        );
    }
    if g.queue.len() + n > cfg.queue_capacity {
        g.rejections.add(n as u64);
        let depth = g.queue.len() as u64;
        return (
            Response::Rejected {
                reason: "queue full".to_string(),
                queue_depth: depth,
                capacity: cfg.queue_capacity as u64,
            },
            None,
        );
    }
    if g.inflight + n > cfg.max_inflight {
        g.rejections.add(n as u64);
        let depth = g.queue.len() as u64;
        return (
            Response::Rejected {
                reason: "too many jobs in flight".to_string(),
                queue_depth: depth,
                capacity: cfg.queue_capacity as u64,
            },
            None,
        );
    }
    // Write-ahead: the admission must be durable before anything is
    // mutated or acknowledged. On a journal error nothing changed, so
    // the client sees an error and can retry safely.
    let specs: Vec<DagSpec> = dags.iter().map(DagSpec::from_dag).collect();
    if let Some(j) = &shared.journal {
        let base = g.slots.len() as u64;
        if let Err(e) = j.log_admitted(base, &specs) {
            return (
                Response::Error {
                    message: format!("journal write failed, submission not accepted: {e}"),
                },
                None,
            );
        }
    }
    let admit_ns = shared.elapsed_ns();
    let mut ids = Vec::with_capacity(n);
    for (dag, spec) in dags.into_iter().zip(specs) {
        let id = g.slots.len() as u64;
        g.cat_span.push(dominant_cat_span(&dag));
        g.stamps.push(TraceStamps {
            submit_ns: Some(submit_ns),
            admit_ns: Some(admit_ns),
            ..TraceStamps::default()
        });
        g.slots.push(Slot::Queued(Arc::new(dag)));
        g.dag_specs.push(spec);
        g.queue.push_back(id);
        ids.push(id);
    }
    g.inflight += n;
    g.admitted.add(n as u64);
    let depth = g.queue.len() as u64;
    g.queue_depth.record(depth);
    g.max_queue_depth = g.max_queue_depth.max(depth);
    // Register the watcher under the same lock so no completion can
    // slip between the ack and the subscription.
    let watch_session = watch.then(|| {
        let (tx, rx) = mpsc::channel();
        g.watchers.push(tx);
        WatchSession {
            rx,
            remaining: ids.clone(),
        }
    });
    drop(g);
    shared.notify();
    let trace_ids = ids.iter().map(|&id| shared.trace_id(id)).collect();
    (
        Response::Submitted {
            jobs: ids,
            trace_ids,
        },
        watch_session,
    )
}

/// A registered completion-event subscription for one submission.
struct WatchSession {
    rx: mpsc::Receiver<Event>,
    remaining: Vec<u64>,
}

/// Expand a scenario reference into its DAGs (releases are assigned by
/// the server at injection, so only the shapes are used).
fn expand_scenario(sc: &ScenarioRef, k: usize) -> Result<Vec<JobDag>, String> {
    let mut rng = rng_for(sc.seed, 0x5EED);
    let scenario = match sc.name.as_str() {
        "pipeline" => scenarios::pipeline(&mut rng, sc.jobs),
        "mapreduce" => scenarios::mapreduce(&mut rng, sc.jobs),
        "mixed-server" => scenarios::mixed_server(&mut rng, sc.jobs, 0.25),
        other => return Err(format!("unknown scenario '{other}'")),
    };
    let jobs: Vec<JobDag> = scenario.jobs.iter().map(|j| (*j.dag).clone()).collect();
    if jobs.iter().any(|d| d.k() != k) {
        return Err(format!(
            "scenario '{}' generates {}-category jobs but the machine has {k}",
            sc.name,
            jobs.first().map_or(0, JobDag::k)
        ));
    }
    Ok(jobs)
}

fn status_reply(g: &Inner) -> StatusReply {
    StatusReply {
        now: g.now,
        queued: g.queue.len() as u64,
        active: g.active,
        draining: g.draining,
        jobs: g
            .slots
            .iter()
            .enumerate()
            .map(|(id, slot)| match slot {
                Slot::Queued(_) => JobStatus {
                    job: id as u64,
                    state: JobState::Queued,
                    release: None,
                    completion: None,
                },
                Slot::Cancelled => JobStatus {
                    job: id as u64,
                    state: JobState::Cancelled,
                    release: None,
                    completion: None,
                },
                Slot::Running { release } => JobStatus {
                    job: id as u64,
                    state: JobState::Running,
                    release: Some(*release),
                    completion: None,
                },
                Slot::Done {
                    release,
                    completion,
                } => JobStatus {
                    job: id as u64,
                    state: JobState::Done,
                    release: Some(*release),
                    completion: Some(*completion),
                },
            })
            .collect(),
    }
}

fn stats_reply(g: &Inner, shared: &Shared) -> StatsReply {
    let latency = g.quantum_latency_us.snapshot();
    let response = shared.metrics.response_all.snapshot();
    let slowdown = shared.metrics.slowdown_all.snapshot();
    let health = shared
        .journal
        .as_ref()
        .map(SessionJournal::health)
        .unwrap_or_default();
    // Span family handles are shared by label, so re-attaching to the
    // registry reads the same histograms the quantum loop records into.
    let spans = SpanRecorder::for_registry(shared.metrics.registry());
    StatsReply {
        admitted: g.admitted.get(),
        rejected: g.rejections.get(),
        completed: g.completed.get(),
        cancelled: g.cancelled.get(),
        queue_depth: g.queue.len() as u64,
        max_queue_depth: g.max_queue_depth,
        now: g.now,
        busy_steps: g.busy_steps,
        idle_steps: g.idle_steps,
        quanta: g.quanta.get(),
        quantum_latency_mean_us: latency.mean(),
        quantum_latency_p50_us: latency.quantile(0.50),
        quantum_latency_p95_us: latency.quantile(0.95),
        quantum_latency_p99_us: latency.quantile(0.99),
        uptime_secs: shared.metrics.uptime_secs(),
        phase_ready_mean_us: spans.mean_micros(SpanKind::Ready),
        phase_decide_mean_us: spans.mean_micros(SpanKind::Decide),
        phase_deq_allot_mean_us: spans.mean_micros(SpanKind::DeqAllot),
        phase_rr_cycle_mean_us: spans.mean_micros(SpanKind::RrCycle),
        phase_execute_mean_us: spans.mean_micros(SpanKind::Execute),
        scheduler: shared.cfg.scheduler.label().to_string(),
        version: PROTOCOL_VERSION,
        time_policy: shared.cfg.time_policy.label().to_string(),
        durability: durability_label(shared),
        journal_records: health.records,
        journal_bytes: health.bytes,
        journal_fsyncs: health.fsyncs,
        journal_snapshots: health.snapshots,
        journal_tail_records: health.tail_records,
        last_recovery_ms: shared.metrics.recovery_duration_ms.get(),
        response_jobs: shared.metrics.response_all.count(),
        response_mean_steps: response.mean(),
        response_p99_steps: response.quantile(0.99),
        slowdown_mean_milli: slowdown.mean(),
        slowdown_p99_milli: slowdown.quantile(0.99),
        response_mean_steps_by_cat: shared
            .metrics
            .response_steps
            .iter()
            .map(|h| h.mean())
            .collect(),
        slowdown_mean_milli_by_cat: shared
            .metrics
            .slowdown_milli
            .iter()
            .map(|h| h.mean())
            .collect(),
    }
}

/// Assemble the `trace` reply for one admitted job: lifecycle state
/// from the job table, engine-time spans from the live
/// [`TraceAssembler`], wall stamps from the admission/injection/
/// completion bookkeeping. `None` for ids never admitted.
fn trace_reply(g: &Inner, shared: &Shared, job: u64) -> Option<TraceReply> {
    let slot = g.slots.get(job as usize)?;
    let state = match slot {
        Slot::Queued(_) => "queued",
        Slot::Cancelled => "cancelled",
        Slot::Running { .. } => "running",
        Slot::Done { .. } => "done",
    };
    let mut reply = TraceReply {
        job,
        trace_id: shared.trace_id(job),
        state: state.to_string(),
        ..TraceReply::default()
    };
    if let Some(stamps) = g.stamps.get(job as usize) {
        reply.submit_ns = stamps.submit_ns;
        reply.admit_ns = stamps.admit_ns;
        reply.inject_ns = stamps.inject_ns;
        reply.complete_ns = stamps.complete_ns;
    }
    // Engine-side spans exist only once the job was injected; the
    // engine indexes jobs by injection order, not admission id.
    if let Some(engine_idx) = g.engine_to_id.iter().position(|&id| id == job) {
        if let Ok(assembler) = shared.traces.lock() {
            if let Some(trace) = assembler.job(engine_idx as u32) {
                reply.release = trace.release;
                reply.activated = trace.activated;
                reply.first_allot = trace.first_allot;
                reply.completion = trace.completion;
                reply.response = trace.response;
                reply.segments = trace.segments.clone();
            }
        }
    }
    Some(reply)
}

/// The durability mode clients see: `off`, or `wal:<fsync policy>`.
fn durability_label(shared: &Shared) -> String {
    shared
        .journal
        .as_ref()
        .map_or_else(|| "off".to_string(), SessionJournal::durability)
}

/// Serve one connection until EOF.
fn handle_connection<R: BufRead, W: Write>(mut reader: R, mut writer: W, shared: &Arc<Shared>) {
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let (response, watch_session) = dispatch(trimmed, shared);
        let is_drain_ack = matches!(response, Response::Drained(_));
        let written = writeln!(writer, "{}", response.encode()).is_ok() && writer.flush().is_ok();
        if is_drain_ack {
            // Whether the write succeeded or the client vanished, the
            // reply is no longer pending — unblock `Server::join`.
            let mut g = shared.inner.lock().unwrap();
            g.drain_acks -= 1;
            shared.cv.notify_all();
        }
        if !written {
            return;
        }
        if let Some(session) = watch_session {
            if !stream_watch(session, &mut writer, shared) {
                return;
            }
        }
    }
}

/// Forward completion events for one watched submission until every
/// job is done (or cancelled); returns `false` if the client went away.
fn stream_watch<W: Write>(session: WatchSession, writer: &mut W, shared: &Arc<Shared>) -> bool {
    let WatchSession { rx, mut remaining } = session;
    // Jobs may complete strictly after the ack but before this loop
    // starts; the channel was registered under the admission lock, so
    // every such completion is already buffered in `rx`.
    while !remaining.is_empty() {
        let event = match rx.recv() {
            Ok(e) => e,
            // Scheduler gone (drained): resolve the rest from state.
            Err(_) => break,
        };
        match event {
            Event::JobDone { job, .. } => {
                if let Some(pos) = remaining.iter().position(|&id| id == job) {
                    remaining.swap_remove(pos);
                    if writeln!(writer, "{}", event.encode()).is_err() {
                        return false;
                    }
                }
            }
            Event::JobCancelled { job } => {
                if let Some(pos) = remaining.iter().position(|&id| id == job) {
                    remaining.swap_remove(pos);
                    if writeln!(writer, "{}", event.encode()).is_err() {
                        return false;
                    }
                }
            }
            Event::WatchEnd => break,
        }
    }
    // Anything still unresolved (drain raced us) is reported from the
    // final job table.
    if !remaining.is_empty() {
        let g = shared.inner.lock().unwrap();
        for id in remaining {
            let event = match &g.slots[id as usize] {
                Slot::Done {
                    release,
                    completion,
                } => Event::JobDone {
                    job: id,
                    release: *release,
                    completion: *completion,
                    response: *completion - *release,
                    trace_id: shared.trace_id(id),
                },
                _ => Event::JobCancelled { job: id },
            };
            if writeln!(writer, "{}", event.encode()).is_err() {
                return false;
            }
        }
    }
    writeln!(writer, "{}", Event::WatchEnd.encode()).is_ok() && writer.flush().is_ok()
}

/// Decode one request line and produce its reply (plus a watch
/// subscription for `submit` with `watch: true`).
fn dispatch(line: &str, shared: &Arc<Shared>) -> (Response, Option<WatchSession>) {
    let request = match Request::decode(line) {
        Ok(r) => r,
        Err(message) => return (Response::Error { message }, None),
    };
    match request {
        Request::Submit {
            jobs,
            scenario,
            watch,
        } => {
            let mut dags = Vec::with_capacity(jobs.len());
            for (i, spec) in jobs.iter().enumerate() {
                match spec.build() {
                    Ok(dag) => dags.push(dag),
                    Err(e) => {
                        return (
                            Response::Error {
                                message: format!("job {i} has an invalid DAG: {e}"),
                            },
                            None,
                        )
                    }
                }
            }
            if let Some(sc) = &scenario {
                match expand_scenario(sc, shared.cfg.machine.len()) {
                    Ok(mut extra) => dags.append(&mut extra),
                    Err(message) => return (Response::Error { message }, None),
                }
            }
            admit(shared, dags, watch)
        }
        Request::Hello => {
            let g = shared.inner.lock().unwrap();
            (
                Response::Hello(HelloReply {
                    version: PROTOCOL_VERSION,
                    scheduler: shared.cfg.scheduler.label().to_string(),
                    time_policy: shared.cfg.time_policy.label().to_string(),
                    quantum: shared.cfg.quantum,
                    now: g.now,
                    durability: durability_label(shared),
                }),
                None,
            )
        }
        Request::Status => {
            let g = shared.inner.lock().unwrap();
            (Response::Status(status_reply(&g)), None)
        }
        Request::Stats => {
            let g = shared.inner.lock().unwrap();
            (Response::Stats(stats_reply(&g, shared)), None)
        }
        Request::Trace { job } => {
            let g = shared.inner.lock().unwrap();
            match trace_reply(&g, shared, job) {
                Some(reply) => (Response::Trace(reply), None),
                None => (
                    Response::Error {
                        message: format!("unknown job {job}"),
                    },
                    None,
                ),
            }
        }
        Request::Metrics => (
            Response::Metrics {
                text: render_scrape(shared),
            },
            None,
        ),
        Request::Cancel { job } => {
            let mut g = shared.inner.lock().unwrap();
            match g.slots.get(job as usize) {
                Some(Slot::Queued(_)) => {
                    // Write-ahead, like admission: durable before the
                    // slot flips or the ack goes out.
                    if let Some(j) = &shared.journal {
                        if let Err(e) = j.log_cancelled(job) {
                            return (
                                Response::Error {
                                    message: format!(
                                        "journal write failed, job {job} not cancelled: {e}"
                                    ),
                                },
                                None,
                            );
                        }
                    }
                    g.slots[job as usize] = Slot::Cancelled;
                    g.queue.retain(|&id| id != job);
                    g.inflight -= 1;
                    g.cancelled.incr();
                    Shared::broadcast(&mut g, Event::JobCancelled { job });
                    (Response::Cancelled { job }, None)
                }
                Some(_) => (
                    Response::Error {
                        message: format!("job {job} is not cancellable (already injected)"),
                    },
                    None,
                ),
                None => (
                    Response::Error {
                        message: format!("unknown job {job}"),
                    },
                    None,
                ),
            }
        }
        Request::Drain => {
            let mut g = shared.inner.lock().unwrap();
            g.draining = true;
            // Registered before `drained` can possibly be set, so
            // `Server::join` (which runs after the scheduler thread
            // exits) always sees this reply as pending until it is on
            // the wire — see the ack in `handle_connection`.
            g.drain_acks += 1;
            shared.metrics.draining.set_u64(1);
            shared.cv.notify_all();
            while !g.drained {
                g = shared.cv.wait(g).unwrap();
            }
            let trace = g.trace.clone().expect("drained session has a trace");
            let reply = DrainReply {
                admitted: g.admitted.get(),
                completed: g.completed.get(),
                cancelled: g.cancelled.get(),
                rejected: g.rejections.get(),
                trace,
            };
            (Response::Drained(reply), None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_machine() {
        let cfg = ServerConfig {
            machine: vec![],
            ..ServerConfig::default()
        };
        assert!(Server::start(cfg).is_err());
        let cfg = ServerConfig {
            machine: vec![4, 0],
            ..ServerConfig::default()
        };
        assert!(Server::start(cfg).is_err());
    }

    #[test]
    fn rejects_zero_quantum() {
        let cfg = ServerConfig {
            quantum: 0,
            ..ServerConfig::default()
        };
        assert!(Server::start(cfg).is_err());
    }

    // Dispatch against a bare `Shared` (no scheduler thread): jobs
    // stay queued forever, which makes the admission, backpressure,
    // and cancel paths fully deterministic.
    fn bare_shared(queue_capacity: usize, max_inflight: usize) -> Arc<Shared> {
        Shared::new(ServerConfig {
            queue_capacity,
            max_inflight,
            ..ServerConfig::default()
        })
        .expect("no journal configured")
        .0
    }

    fn submit_line(n: usize) -> String {
        use kdag::generators::fork_join;
        use kdag::Category;
        let dag = DagSpec::from_dag(&fork_join(2, &[(Category(0), 2), (Category(1), 1)]));
        Request::Submit {
            jobs: vec![dag; n],
            scenario: None,
            watch: false,
        }
        .encode()
    }

    #[test]
    fn admission_backpressure_is_explicit() {
        let shared = bare_shared(4, 100);
        let (r, _) = dispatch(&submit_line(3), &shared);
        assert!(matches!(r, Response::Submitted { ref jobs, .. } if jobs == &[0, 1, 2]));
        // 3 queued + 2 > capacity 4 → rejected, queue untouched.
        let (r, _) = dispatch(&submit_line(2), &shared);
        match r {
            Response::Rejected {
                reason,
                queue_depth,
                capacity,
            } => {
                assert_eq!(reason, "queue full");
                assert_eq!((queue_depth, capacity), (3, 4));
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // A single job still fits.
        let (r, _) = dispatch(&submit_line(1), &shared);
        assert!(matches!(r, Response::Submitted { ref jobs, .. } if jobs == &[3]));
        let g = shared.inner.lock().unwrap();
        assert_eq!(g.admitted.get(), 4);
        assert_eq!(g.rejections.get(), 2);
        assert_eq!(g.max_queue_depth, 4);
    }

    #[test]
    fn inflight_cap_rejects() {
        let shared = bare_shared(100, 2);
        let (r, _) = dispatch(&submit_line(2), &shared);
        assert!(matches!(r, Response::Submitted { .. }));
        let (r, _) = dispatch(&submit_line(1), &shared);
        assert!(matches!(r, Response::Rejected { ref reason, .. } if reason.contains("in flight")));
    }

    #[test]
    fn cancel_lifecycle() {
        let shared = bare_shared(10, 10);
        let (r, _) = dispatch(&submit_line(2), &shared);
        assert!(matches!(r, Response::Submitted { .. }));
        let (r, _) = dispatch(r#"{"cmd":"cancel","job":1}"#, &shared);
        assert_eq!(r, Response::Cancelled { job: 1 });
        // Cancelling twice is an error; unknown ids too.
        let (r, _) = dispatch(r#"{"cmd":"cancel","job":1}"#, &shared);
        assert!(matches!(r, Response::Error { .. }));
        let (r, _) = dispatch(r#"{"cmd":"cancel","job":9}"#, &shared);
        assert!(matches!(r, Response::Error { ref message } if message.contains("unknown")));
        // Status reflects the cancellation; the slot frees capacity.
        let (r, _) = dispatch(r#"{"cmd":"status"}"#, &shared);
        match r {
            Response::Status(st) => {
                assert_eq!(st.queued, 1);
                assert_eq!(st.jobs[1].state, crate::protocol::JobState::Cancelled);
            }
            other => panic!("expected status, got {other:?}"),
        }
        assert_eq!(shared.inner.lock().unwrap().inflight, 1);
    }

    #[test]
    fn malformed_lines_and_bad_dags_are_errors() {
        let shared = bare_shared(10, 10);
        let (r, _) = dispatch("not json", &shared);
        assert!(matches!(r, Response::Error { .. }));
        // A k-mismatched DAG is refused before admission.
        let line = r#"{"cmd":"submit","jobs":[{"k":3,"categories":[0],"edges":[]}]}"#;
        let (r, _) = dispatch(line, &shared);
        assert!(matches!(r, Response::Error { ref message } if message.contains("categories")));
        // A cyclic DAG fails validation.
        let line = r#"{"cmd":"submit","jobs":[{"k":2,"categories":[0,1],"edges":[[0,1],[1,0]]}]}"#;
        let (r, _) = dispatch(line, &shared);
        assert!(matches!(r, Response::Error { ref message } if message.contains("invalid DAG")));
        assert_eq!(shared.inner.lock().unwrap().admitted.get(), 0);
    }

    #[test]
    fn trace_verb_reports_lifecycle_and_stamps() {
        let shared = bare_shared(10, 10);
        let (r, _) = dispatch(&submit_line(2), &shared);
        let ids = match r {
            Response::Submitted { jobs, trace_ids } => {
                assert_eq!(jobs, vec![0, 1]);
                assert_eq!(trace_ids.len(), 2);
                assert_eq!(trace_ids[0], shared.trace_id(0));
                trace_ids
            }
            other => panic!("expected submitted, got {other:?}"),
        };
        // No scheduler thread: both jobs sit queued, stamped but
        // without engine-time spans.
        let (r, _) = dispatch(r#"{"cmd":"trace","job":1}"#, &shared);
        match r {
            Response::Trace(t) => {
                assert_eq!(t.job, 1);
                assert_eq!(t.trace_id, ids[1]);
                assert_eq!(t.state, "queued");
                assert!(t.submit_ns.is_some());
                assert!(t.admit_ns.unwrap() >= t.submit_ns.unwrap());
                assert_eq!(t.inject_ns, None);
                assert_eq!(t.release, None);
                assert!(t.segments.is_empty());
            }
            other => panic!("expected trace, got {other:?}"),
        }
        let (r, _) = dispatch(r#"{"cmd":"cancel","job":0}"#, &shared);
        assert!(matches!(r, Response::Cancelled { .. }));
        let (r, _) = dispatch(r#"{"cmd":"trace","job":0}"#, &shared);
        assert!(matches!(r, Response::Trace(ref t) if t.state == "cancelled"));
        let (r, _) = dispatch(r#"{"cmd":"trace","job":9}"#, &shared);
        assert!(matches!(r, Response::Error { ref message } if message.contains("unknown")));
    }

    #[test]
    fn stats_reply_carries_response_accounting() {
        let shared = bare_shared(10, 10);
        shared.metrics.record_completion(1, 12, 4);
        shared.metrics.record_completion(0, 5, 5);
        let (r, _) = dispatch(r#"{"cmd":"stats"}"#, &shared);
        match r {
            Response::Stats(st) => {
                assert_eq!(st.response_jobs, 2);
                assert!((st.response_mean_steps - 8.5).abs() < 1e-12);
                assert_eq!(st.response_mean_steps_by_cat.len(), 2);
                assert!(st.slowdown_mean_milli > 0.0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn scenario_expansion_checks_k() {
        let sc = ScenarioRef {
            name: "pipeline".into(),
            jobs: 3,
            seed: 1,
        };
        assert_eq!(expand_scenario(&sc, 2).unwrap().len(), 3);
        assert!(expand_scenario(&sc, 3)
            .unwrap_err()
            .contains("machine has 3"));
        let bad = ScenarioRef {
            name: "nope".into(),
            jobs: 1,
            seed: 1,
        };
        assert!(expand_scenario(&bad, 2)
            .unwrap_err()
            .contains("unknown scenario"));
    }
}
