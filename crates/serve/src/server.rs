//! The multi-tenant scheduling daemon (kswarm front-end).
//!
//! PR 3's single-tenant shape — one scheduler thread, thread-per-
//! connection I/O — is replaced by three cooperating pieces: the
//! session registry (named sessions, each a full scheduling domain),
//! the shard worker pool (one thread per shard runs the quantum loop
//! for its pinned sessions), and the poll-based reactor (one thread
//! multiplexing every client connection). This module keeps the
//! protocol surface: request dispatch, admission control, scrape
//! rendering, and the [`Server`] lifecycle (bind, start, join).
//!
//! Admission control is explicit and now per session: a full queue,
//! too many in-flight jobs, or an exhausted rate-limit bucket produces
//! a `rejected` reply (backpressure), never unbounded buffering.
//! Draining the daemon stops admission everywhere, finishes every
//! acknowledged job in every session, publishes each canonical
//! [`SessionTrace`](crate::replay::SessionTrace), and shuts the
//! listeners down; closing one named session does the same for that
//! session alone.

use crate::journal::SessionJournal;
use crate::protocol::{
    DrainReply, Event, HelloReply, JobState, JobStatus, Request, Response, ScenarioRef, StatsReply,
    StatusReply, TraceReply, PROTOCOL_VERSION,
};
use crate::reactor::{self, Listener};
use crate::registry::{self, Session, Slot, Swarm};
use crate::shard;
use kbaselines::SchedulerKind;
use kdag::{DagSpec, JobDag, SelectionPolicy};
use kjournal::FsyncPolicy;
use ksim::TimePolicy;
use ktelemetry::{SpanKind, SpanRecorder, TelemetryHandle, TraceStamps};
use kworkloads::{rng_for, scenarios};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Daemon configuration. For named sessions this is the *template*:
/// each `open` derives a per-session copy (journal directory moved
/// under `sessions/<name>/`, overrides from the open spec applied).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Processors per category.
    pub machine: Vec<u32>,
    /// The scheduling policy serving the session.
    pub scheduler: SchedulerKind,
    /// The environment's task-selection policy.
    pub policy: SelectionPolicy,
    /// Scheduling quantum (engine steps per decision).
    pub quantum: u64,
    /// How the engine clock advances inside a service quantum (see
    /// [`ksim::TimePolicy`]); the event-driven clock batches idle and
    /// frozen spans so sparse sessions cost O(events), not O(steps).
    pub time_policy: TimePolicy,
    /// Seed for the engine RNG and randomized schedulers.
    pub seed: u64,
    /// Bound on the submission queue (admitted, not yet injected).
    pub queue_capacity: usize,
    /// Bound on admitted-but-incomplete jobs (queued + running).
    pub max_inflight: usize,
    /// Wall-clock pacing per quantum; `ZERO` runs flat out (tests,
    /// benches). Ignored while draining.
    pub tick: Duration,
    /// TCP bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Optional Unix-domain listener path (removed and re-created).
    pub unix_path: Option<std::path::PathBuf>,
    /// Engine telemetry sink (run/step/job events).
    pub telemetry: TelemetryHandle,
    /// Plain-HTTP `/metrics` scrape listener bind address (no scrape
    /// endpoint when `None`; the `metrics` protocol verb still works).
    pub metrics_addr: Option<String>,
    /// Flight-recorder capacity in events (0 disables the recorder).
    pub flight_capacity: usize,
    /// Where the flight recorder is dumped (JSONL) at drain — and on a
    /// worker-thread panic, for post-mortem replay. Default session
    /// only; named sessions never dump.
    pub flight_dump: Option<PathBuf>,
    /// Directory for the write-ahead session journal. `None` runs
    /// without durability; with a directory, every admission,
    /// cancellation, and quantum boundary is committed to the WAL
    /// *before* it is acknowledged on the wire, and a restart pointed
    /// at the same directory rebuilds every session (the default at
    /// the root, named sessions under `sessions/<name>/`) by verified
    /// replay.
    pub journal_dir: Option<PathBuf>,
    /// When the WAL escalates from `write(2)` to `fsync(2)` (see
    /// [`kjournal::FsyncPolicy`]). Irrelevant without `journal_dir`.
    pub fsync: FsyncPolicy,
    /// Write a snapshot (truncating the WAL behind it) every this many
    /// quanta; 0 disables periodic snapshots. Drain and recovery
    /// always snapshot.
    pub snapshot_every: u64,
    /// Alert when the observed mean response exceeds this multiple of
    /// the running Theorem-3 makespan bound (`krad_bound_theorem3`).
    /// Crossing the threshold bumps `krad_slo_breaches_total` and
    /// drops an `slo_alert` annotation into the flight recorder;
    /// `0.0` disables the check.
    pub slo_factor: f64,
    /// Worker threads in the shard pool; `0` uses the machine's
    /// available parallelism.
    pub workers: usize,
    /// Per-session admission rate limit in jobs/second (token bucket,
    /// checked before enqueue); `0.0` disables the limit. Named
    /// sessions can override via the open spec's `rate_per_sec`.
    pub session_rate: f64,
    /// Token-bucket burst for `session_rate`; `0` derives the burst
    /// from the rate (one second's worth, at least 1).
    pub session_burst: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            machine: vec![4, 2],
            scheduler: SchedulerKind::KRad,
            policy: SelectionPolicy::Fifo,
            quantum: 1,
            time_policy: TimePolicy::EventDriven,
            seed: 0,
            queue_capacity: 64,
            max_inflight: 1024,
            tick: Duration::ZERO,
            addr: "127.0.0.1:0".to_string(),
            unix_path: None,
            telemetry: TelemetryHandle::off(),
            metrics_addr: None,
            flight_capacity: 4096,
            flight_dump: None,
            journal_dir: None,
            fsync: FsyncPolicy::Interval(Duration::from_millis(50)),
            snapshot_every: 256,
            slo_factor: 0.0,
            workers: 0,
            session_rate: 0.0,
            session_burst: 0,
        }
    }
}

/// A running daemon: its addresses and its thread handles.
pub struct Server {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    swarm: Arc<Swarm>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind the listeners, start the worker pool and the reactor, and
    /// return.
    ///
    /// Configuration errors (empty machine, zero quantum, unknown
    /// scenario later at submit time) surface as `InvalidInput`.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let swarm = Swarm::new(cfg.clone())?;

        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;

        let metrics_listener = match &cfg.metrics_addr {
            Some(a) => Some(TcpListener::bind(a)?),
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };

        #[cfg(unix)]
        let unix_listener = match &cfg.unix_path {
            Some(path) => {
                let _ = std::fs::remove_file(path);
                Some(std::os::unix::net::UnixListener::bind(path)?)
            }
            None => None,
        };

        let mut threads = Vec::new();

        for sh in 0..swarm.shards.len() {
            let worker_swarm = Arc::clone(&swarm);
            threads.push(
                thread::Builder::new()
                    .name(format!("kswarm-worker-{sh}"))
                    .spawn(move || shard::worker_loop(&worker_swarm, sh))?,
            );
        }

        let (waker, wake_rx) = reactor::waker_pair()?;
        swarm.set_waker(waker);
        let mut listeners = vec![Listener::Tcp(listener)];
        #[cfg(unix)]
        if let Some(l) = unix_listener {
            listeners.push(Listener::Unix(l));
        }
        let reactor_swarm = Arc::clone(&swarm);
        threads.push(
            thread::Builder::new()
                .name("kserve-reactor".into())
                .spawn(move || {
                    reactor::reactor_loop(&reactor_swarm, listeners, wake_rx, metrics_addr)
                })?,
        );

        if let Some(metrics_listener) = metrics_listener {
            let scrape_swarm = Arc::clone(&swarm);
            threads.push(thread::Builder::new().name("kserve-metrics".into()).spawn(
                move || {
                    for stream in metrics_listener.incoming() {
                        if scrape_swarm.stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let conn_swarm = Arc::clone(&scrape_swarm);
                        let _ = thread::Builder::new()
                            .name("kserve-scrape".into())
                            .spawn(move || serve_scrape(stream, &conn_swarm));
                    }
                },
            )?);
        }

        Ok(Server {
            addr,
            metrics_addr,
            swarm,
            threads,
        })
    }

    /// The bound TCP address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound `/metrics` scrape address, if a listener was
    /// configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Wait until the daemon has drained and every thread has exited.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Final (drained/closed) replies are flushed by the reactor;
        // give every pending one a bounded window to reach its socket
        // before the caller is free to exit the process. The ledger
        // aggregates across *all* sessions, so a slow-draining session
        // cannot cause another session's final replies to be dropped.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut acks = self.swarm.acks.lock().unwrap();
        while *acks > 0 && Instant::now() < deadline {
            let (back, _) = self
                .swarm
                .acks_cv
                .wait_timeout(acks, Duration::from_millis(50))
                .unwrap();
            acks = back;
        }
        drop(acks);
        #[cfg(unix)]
        if let Some(path) = &self.swarm.cfg.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Render one scrape: refresh the wall-clock and lock-guarded gauges
/// for every session, then encode the shared registry in Prometheus
/// text exposition format. Default-session series are unlabeled
/// (byte-compatible with the single-tenant scrape); named sessions
/// carry `session="…"` labels in the same families.
pub(crate) fn render_scrape(swarm: &Swarm) -> String {
    for s in swarm.all_sessions() {
        s.metrics.refresh_uptime();
        s.mode_tracker.refresh();
        let g = s.inner.lock().unwrap();
        s.metrics.queue_depth.set_u64(g.queue.len() as u64);
        s.metrics.draining.set_u64(u64::from(g.draining));
    }
    swarm.registry.render()
}

/// Serve one plain-HTTP scrape connection: read the request head,
/// answer `GET /metrics` (or `/`) with the text exposition, `HEAD`
/// with the headers alone, any other method with 405, unknown paths
/// with 404, and close.
fn serve_scrape(stream: TcpStream, swarm: &Arc<Swarm>) {
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the header block so the peer sees a clean close.
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => {}
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let mut writer = stream;
    let (status, body, allow) = match (method, path == "/metrics" || path == "/") {
        ("GET" | "HEAD", true) => ("200 OK", render_scrape(swarm), false),
        ("GET" | "HEAD", false) => ("404 Not Found", "not found\n".to_string(), false),
        _ => (
            "405 Method Not Allowed",
            "method not allowed\n".to_string(),
            true,
        ),
    };
    // HEAD carries the headers (including the Content-Length the GET
    // would have) with no body.
    let payload = if method == "HEAD" { "" } else { body.as_str() };
    let _ = write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n{payload}",
        body.len(),
        if allow { "Allow: GET, HEAD\r\n" } else { "" },
    );
    let _ = writer.flush();
}

/// A registered completion-event subscription for one submission.
pub(crate) struct WatchState {
    pub(crate) rx: mpsc::Receiver<Event>,
    pub(crate) remaining: Vec<u64>,
    session: Arc<Session>,
}

impl WatchState {
    /// Resolve every still-unreported job from the session's final job
    /// table (used when a drain seals the session under a live watch).
    pub(crate) fn resolve_stragglers(&self) -> Vec<Event> {
        let g = self.session.inner.lock().unwrap();
        self.remaining
            .iter()
            .map(|&id| match &g.slots[id as usize] {
                Slot::Done {
                    release,
                    completion,
                } => Event::JobDone {
                    job: id,
                    release: *release,
                    completion: *completion,
                    response: *completion - *release,
                    trace_id: self.session.trace_id(id),
                },
                _ => Event::JobCancelled { job: id },
            })
            .collect()
    }
}

/// Which sessions a pending drain/close reply is waiting on.
pub(crate) enum DrainKind {
    /// Daemon-wide drain: every session must seal; the reply carries
    /// the default session's report (v4 byte compatibility) and the
    /// whole daemon stops afterwards.
    Global,
    /// Drain one session; the daemon keeps running and the session
    /// stays registered (its journal survives).
    Session(Arc<Session>),
    /// Close one session: drain it, then remove it from the registry
    /// and delete its journal directory.
    Close(Arc<Session>),
}

/// What one dispatched request line produces.
pub(crate) enum Outcome {
    /// An immediate reply.
    Reply(Response),
    /// An immediate reply followed by a completion-event stream.
    ReplyWatch(Response, WatchState),
    /// A deferred drain/close reply (sent once the targeted sessions
    /// report drained). The swarm's ack ledger has already adopted it.
    Drain(DrainKind),
}

/// Admission: validate, then accept into the session's bounded queue
/// or reject with explicit backpressure.
fn admit(session: &Arc<Session>, swarm: &Swarm, dags: Vec<JobDag>, watch: bool) -> Outcome {
    let cfg = &session.cfg;
    let k = cfg.machine.len();
    // ktrace: the submit stamp is taken before validation or locking —
    // it marks when the request came off the wire.
    let submit_ns = session.elapsed_ns();
    for (i, dag) in dags.iter().enumerate() {
        if dag.k() != k {
            return Outcome::Reply(Response::Error {
                message: format!(
                    "job {i}: DAG has {} categories but machine has {k}",
                    dag.k()
                ),
            });
        }
    }
    let n = dags.len();
    let mut g = session.inner.lock().unwrap();
    let reject = |g: &mut registry::Inner, reason: &str| {
        g.rejections.add(n as u64);
        let depth = g.queue.len() as u64;
        Outcome::Reply(Response::Rejected {
            reason: reason.to_string(),
            queue_depth: depth,
            capacity: cfg.queue_capacity as u64,
        })
    };
    if g.draining {
        return reject(&mut g, "draining");
    }
    // The rate limit is checked before any capacity is consumed, so a
    // throttled burst leaves the queue untouched.
    if !g.quota.try_take(n as u64) {
        return reject(&mut g, "rate limited");
    }
    if g.queue.len() + n > cfg.queue_capacity {
        return reject(&mut g, "queue full");
    }
    if g.inflight + n > cfg.max_inflight {
        return reject(&mut g, "too many jobs in flight");
    }
    // Write-ahead: the admission must be durable before anything is
    // mutated or acknowledged. On a journal error nothing changed, so
    // the client sees an error and can retry safely.
    let specs: Vec<DagSpec> = dags.iter().map(DagSpec::from_dag).collect();
    if let Some(j) = &session.journal {
        let base = g.slots.len() as u64;
        if let Err(e) = j.log_admitted(base, &specs) {
            return Outcome::Reply(Response::Error {
                message: format!("journal write failed, submission not accepted: {e}"),
            });
        }
    }
    let admit_ns = session.elapsed_ns();
    let mut ids = Vec::with_capacity(n);
    for (dag, spec) in dags.into_iter().zip(specs) {
        let id = g.slots.len() as u64;
        g.cat_span.push(registry::dominant_cat_span(&dag));
        g.stamps.push(TraceStamps {
            submit_ns: Some(submit_ns),
            admit_ns: Some(admit_ns),
            ..TraceStamps::default()
        });
        g.slots.push(Slot::Queued(Arc::new(dag)));
        g.dag_specs.push(spec);
        g.queue.push_back(id);
        ids.push(id);
    }
    g.inflight += n;
    g.admitted.add(n as u64);
    let depth = g.queue.len() as u64;
    g.queue_depth.record(depth);
    g.max_queue_depth = g.max_queue_depth.max(depth);
    // Register the watcher under the same lock so no completion can
    // slip between the ack and the subscription.
    let watch_state = watch.then(|| {
        let (tx, rx) = mpsc::channel();
        g.watchers.push(tx);
        WatchState {
            rx,
            remaining: ids.clone(),
            session: Arc::clone(session),
        }
    });
    drop(g);
    session.notify();
    swarm.shards[session.shard].wake();
    let trace_ids = ids.iter().map(|&id| session.trace_id(id)).collect();
    let response = Response::Submitted {
        jobs: ids,
        trace_ids,
    };
    match watch_state {
        Some(w) => Outcome::ReplyWatch(response, w),
        None => Outcome::Reply(response),
    }
}

/// Expand a scenario reference into its DAGs (releases are assigned by
/// the server at injection, so only the shapes are used).
fn expand_scenario(sc: &ScenarioRef, k: usize) -> Result<Vec<JobDag>, String> {
    let mut rng = rng_for(sc.seed, 0x5EED);
    let scenario = match sc.name.as_str() {
        "pipeline" => scenarios::pipeline(&mut rng, sc.jobs),
        "mapreduce" => scenarios::mapreduce(&mut rng, sc.jobs),
        "mixed-server" => scenarios::mixed_server(&mut rng, sc.jobs, 0.25),
        other => return Err(format!("unknown scenario '{other}'")),
    };
    let jobs: Vec<JobDag> = scenario.jobs.iter().map(|j| (*j.dag).clone()).collect();
    if jobs.iter().any(|d| d.k() != k) {
        return Err(format!(
            "scenario '{}' generates {}-category jobs but the machine has {k}",
            sc.name,
            jobs.first().map_or(0, JobDag::k)
        ));
    }
    Ok(jobs)
}

fn status_reply(g: &registry::Inner) -> StatusReply {
    StatusReply {
        now: g.now,
        queued: g.queue.len() as u64,
        active: g.active,
        draining: g.draining,
        jobs: g
            .slots
            .iter()
            .enumerate()
            .map(|(id, slot)| match slot {
                Slot::Queued(_) => JobStatus {
                    job: id as u64,
                    state: JobState::Queued,
                    release: None,
                    completion: None,
                },
                Slot::Cancelled => JobStatus {
                    job: id as u64,
                    state: JobState::Cancelled,
                    release: None,
                    completion: None,
                },
                Slot::Running { release } => JobStatus {
                    job: id as u64,
                    state: JobState::Running,
                    release: Some(*release),
                    completion: None,
                },
                Slot::Done {
                    release,
                    completion,
                } => JobStatus {
                    job: id as u64,
                    state: JobState::Done,
                    release: Some(*release),
                    completion: Some(*completion),
                },
            })
            .collect(),
    }
}

fn stats_reply(g: &registry::Inner, session: &Session, sessions: u64) -> StatsReply {
    let latency = g.quantum_latency_us.snapshot();
    let response = session.metrics.response_all.snapshot();
    let slowdown = session.metrics.slowdown_all.snapshot();
    let health = session
        .journal
        .as_ref()
        .map(SessionJournal::health)
        .unwrap_or_default();
    // Span family handles are shared by label, so re-attaching to the
    // registry reads the same histograms the quantum loop records into.
    let spans = SpanRecorder::for_registry(session.metrics.registry());
    StatsReply {
        admitted: g.admitted.get(),
        rejected: g.rejections.get(),
        completed: g.completed.get(),
        cancelled: g.cancelled.get(),
        queue_depth: g.queue.len() as u64,
        max_queue_depth: g.max_queue_depth,
        now: g.now,
        busy_steps: g.busy_steps,
        idle_steps: g.idle_steps,
        quanta: g.quanta.get(),
        quantum_latency_mean_us: latency.mean(),
        quantum_latency_p50_us: latency.quantile(0.50),
        quantum_latency_p95_us: latency.quantile(0.95),
        quantum_latency_p99_us: latency.quantile(0.99),
        uptime_secs: session.metrics.uptime_secs(),
        phase_ready_mean_us: spans.mean_micros(SpanKind::Ready),
        phase_decide_mean_us: spans.mean_micros(SpanKind::Decide),
        phase_deq_allot_mean_us: spans.mean_micros(SpanKind::DeqAllot),
        phase_rr_cycle_mean_us: spans.mean_micros(SpanKind::RrCycle),
        phase_execute_mean_us: spans.mean_micros(SpanKind::Execute),
        scheduler: session.cfg.scheduler.label().to_string(),
        version: PROTOCOL_VERSION,
        time_policy: session.cfg.time_policy.label().to_string(),
        durability: durability_label(session),
        journal_records: health.records,
        journal_bytes: health.bytes,
        journal_fsyncs: health.fsyncs,
        journal_snapshots: health.snapshots,
        journal_tail_records: health.tail_records,
        last_recovery_ms: session.metrics.recovery_duration_ms.get(),
        response_jobs: session.metrics.response_all.count(),
        response_mean_steps: response.mean(),
        response_p99_steps: response.quantile(0.99),
        slowdown_mean_milli: slowdown.mean(),
        slowdown_p99_milli: slowdown.quantile(0.99),
        response_mean_steps_by_cat: session
            .metrics
            .response_steps
            .iter()
            .map(|h| h.mean())
            .collect(),
        slowdown_mean_milli_by_cat: session
            .metrics
            .slowdown_milli
            .iter()
            .map(|h| h.mean())
            .collect(),
        session: session.display_name().to_string(),
        sessions,
    }
}

/// Assemble the `trace` reply for one admitted job: lifecycle state
/// from the job table, engine-time spans from the live
/// [`ktelemetry::TraceAssembler`], wall stamps from the admission/
/// injection/completion bookkeeping. `None` for ids never admitted.
fn trace_reply(g: &registry::Inner, session: &Session, job: u64) -> Option<TraceReply> {
    let slot = g.slots.get(job as usize)?;
    let state = match slot {
        Slot::Queued(_) => "queued",
        Slot::Cancelled => "cancelled",
        Slot::Running { .. } => "running",
        Slot::Done { .. } => "done",
    };
    let mut reply = TraceReply {
        job,
        trace_id: session.trace_id(job),
        state: state.to_string(),
        ..TraceReply::default()
    };
    if let Some(stamps) = g.stamps.get(job as usize) {
        reply.submit_ns = stamps.submit_ns;
        reply.admit_ns = stamps.admit_ns;
        reply.inject_ns = stamps.inject_ns;
        reply.complete_ns = stamps.complete_ns;
    }
    // Engine-side spans exist only once the job was injected; the
    // engine indexes jobs by injection order, not admission id.
    if let Some(engine_idx) = g.engine_to_id.iter().position(|&id| id == job) {
        if let Ok(assembler) = session.traces.lock() {
            if let Some(trace) = assembler.job(engine_idx as u32) {
                reply.release = trace.release;
                reply.activated = trace.activated;
                reply.first_allot = trace.first_allot;
                reply.completion = trace.completion;
                reply.response = trace.response;
                reply.segments = trace.segments.clone();
            }
        }
    }
    Some(reply)
}

/// The durability mode clients see: `off`, or `wal:<fsync policy>`.
fn durability_label(session: &Session) -> String {
    session
        .journal
        .as_ref()
        .map_or_else(|| "off".to_string(), SessionJournal::durability)
}

/// Build a sealed session's final drain report (the session must have
/// reported `drained`).
pub(crate) fn drain_reply_for(session: &Session) -> DrainReply {
    let g = session.inner.lock().unwrap();
    let trace = g.trace.clone().expect("drained session has a trace");
    DrainReply {
        admitted: g.admitted.get(),
        completed: g.completed.get(),
        cancelled: g.cancelled.get(),
        rejected: g.rejections.get(),
        trace,
    }
}

/// Flag one session as draining (idempotent) and wake its shard so the
/// seal happens even if the session is idle.
fn begin_drain(session: &Arc<Session>, swarm: &Swarm) {
    {
        let mut g = session.inner.lock().unwrap();
        g.draining = true;
    }
    session.metrics.draining.set_u64(1);
    session.notify();
    swarm.shards[session.shard].wake();
}

/// Resolve a request's session name, or produce the uniform error.
/// The `Err` side is a ready-to-send `Outcome` by design — callers
/// `?` it straight back to the wire — so its size is fine.
#[allow(clippy::result_large_err)]
fn resolve_session(swarm: &Swarm, name: &str) -> Result<Arc<Session>, Outcome> {
    swarm.resolve(name).ok_or_else(|| {
        Outcome::Reply(Response::Error {
            message: format!("unknown session '{name}'"),
        })
    })
}

/// Decode one request line and produce its outcome: an immediate
/// reply, a reply plus a watch subscription, or a deferred drain.
pub(crate) fn dispatch(line: &str, swarm: &Arc<Swarm>) -> Outcome {
    let request = match Request::decode(line) {
        Ok(r) => r,
        Err(message) => return Outcome::Reply(Response::Error { message }),
    };
    match request {
        Request::Submit {
            jobs,
            scenario,
            watch,
            session,
        } => {
            let s = match resolve_session(swarm, &session) {
                Ok(s) => s,
                Err(out) => return out,
            };
            let mut dags = Vec::with_capacity(jobs.len());
            for (i, spec) in jobs.iter().enumerate() {
                match spec.build() {
                    Ok(dag) => dags.push(dag),
                    Err(e) => {
                        return Outcome::Reply(Response::Error {
                            message: format!("job {i} has an invalid DAG: {e}"),
                        })
                    }
                }
            }
            if let Some(sc) = &scenario {
                match expand_scenario(sc, s.cfg.machine.len()) {
                    Ok(mut extra) => dags.append(&mut extra),
                    Err(message) => return Outcome::Reply(Response::Error { message }),
                }
            }
            admit(&s, swarm, dags, watch)
        }
        Request::Hello => {
            let s = swarm
                .resolve("")
                .expect("default session always registered");
            let now = s.inner.lock().unwrap().now;
            Outcome::Reply(Response::Hello(HelloReply {
                version: PROTOCOL_VERSION,
                scheduler: s.cfg.scheduler.label().to_string(),
                time_policy: s.cfg.time_policy.label().to_string(),
                quantum: s.cfg.quantum,
                now,
                durability: durability_label(&s),
            }))
        }
        Request::Status { session } => {
            let s = match resolve_session(swarm, &session) {
                Ok(s) => s,
                Err(out) => return out,
            };
            let g = s.inner.lock().unwrap();
            Outcome::Reply(Response::Status(status_reply(&g)))
        }
        Request::Stats { session } => {
            let s = match resolve_session(swarm, &session) {
                Ok(s) => s,
                Err(out) => return out,
            };
            let sessions = swarm.session_count();
            let g = s.inner.lock().unwrap();
            Outcome::Reply(Response::Stats(stats_reply(&g, &s, sessions)))
        }
        Request::Trace { job, session } => {
            let s = match resolve_session(swarm, &session) {
                Ok(s) => s,
                Err(out) => return out,
            };
            let g = s.inner.lock().unwrap();
            match trace_reply(&g, &s, job) {
                Some(reply) => Outcome::Reply(Response::Trace(reply)),
                None => Outcome::Reply(Response::Error {
                    message: format!("unknown job {job}"),
                }),
            }
        }
        Request::Metrics => Outcome::Reply(Response::Metrics {
            text: render_scrape(swarm),
        }),
        Request::Cancel { job, session } => {
            let s = match resolve_session(swarm, &session) {
                Ok(s) => s,
                Err(out) => return out,
            };
            let mut g = s.inner.lock().unwrap();
            match g.slots.get(job as usize) {
                Some(Slot::Queued(_)) => {
                    // Write-ahead, like admission: durable before the
                    // slot flips or the ack goes out.
                    if let Some(j) = &s.journal {
                        if let Err(e) = j.log_cancelled(job) {
                            return Outcome::Reply(Response::Error {
                                message: format!(
                                    "journal write failed, job {job} not cancelled: {e}"
                                ),
                            });
                        }
                    }
                    g.slots[job as usize] = Slot::Cancelled;
                    g.queue.retain(|&id| id != job);
                    g.inflight -= 1;
                    g.cancelled.incr();
                    Session::broadcast(&mut g, Event::JobCancelled { job });
                    Outcome::Reply(Response::Cancelled { job })
                }
                Some(_) => Outcome::Reply(Response::Error {
                    message: format!("job {job} is not cancellable (already injected)"),
                }),
                None => Outcome::Reply(Response::Error {
                    message: format!("unknown job {job}"),
                }),
            }
        }
        Request::Open { session, spec } => match swarm.open(&session, &spec) {
            Ok((s, existing)) => Outcome::Reply(Response::Opened {
                session: s.name.clone(),
                scheduler: s.cfg.scheduler.label().to_string(),
                time_policy: s.cfg.time_policy.label().to_string(),
                quantum: s.cfg.quantum,
                existing,
            }),
            Err(message) => Outcome::Reply(Response::Error { message }),
        },
        Request::Close { session } => {
            if session.is_empty() || session == "default" {
                return Outcome::Reply(Response::Error {
                    message: "cannot close the default session (use drain)".to_string(),
                });
            }
            let s = match resolve_session(swarm, &session) {
                Ok(s) => s,
                Err(out) => return out,
            };
            begin_drain(&s, swarm);
            swarm.adopt_ack();
            Outcome::Drain(DrainKind::Close(s))
        }
        Request::Drain { session } => {
            if session.is_empty() {
                // Daemon-wide: refuse new sessions, seal every live
                // one; the deferred reply carries the default
                // session's report and then stops the daemon.
                swarm.global_draining.store(true, Ordering::SeqCst);
                for s in swarm.all_sessions() {
                    begin_drain(&s, swarm);
                }
                swarm.adopt_ack();
                Outcome::Drain(DrainKind::Global)
            } else {
                let s = match resolve_session(swarm, &session) {
                    Ok(s) => s,
                    Err(out) => return out,
                };
                begin_drain(&s, swarm);
                swarm.adopt_ack();
                Outcome::Drain(DrainKind::Session(s))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::SessionSpec;

    #[test]
    fn rejects_bad_machine() {
        let cfg = ServerConfig {
            machine: vec![],
            ..ServerConfig::default()
        };
        assert!(Server::start(cfg).is_err());
        let cfg = ServerConfig {
            machine: vec![4, 0],
            ..ServerConfig::default()
        };
        assert!(Server::start(cfg).is_err());
    }

    #[test]
    fn rejects_zero_quantum() {
        let cfg = ServerConfig {
            quantum: 0,
            ..ServerConfig::default()
        };
        assert!(Server::start(cfg).is_err());
    }

    // Dispatch against a bare `Swarm` (no worker threads): jobs stay
    // queued forever, which makes the admission, backpressure, and
    // cancel paths fully deterministic.
    fn bare_swarm(queue_capacity: usize, max_inflight: usize) -> Arc<Swarm> {
        Swarm::new(ServerConfig {
            queue_capacity,
            max_inflight,
            ..ServerConfig::default()
        })
        .expect("no journal configured")
    }

    fn reply(outcome: Outcome) -> Response {
        match outcome {
            Outcome::Reply(r) | Outcome::ReplyWatch(r, _) => r,
            Outcome::Drain(_) => panic!("expected an immediate reply, got a deferred drain"),
        }
    }

    fn submit_line(n: usize) -> String {
        use kdag::generators::fork_join;
        use kdag::Category;
        let dag = DagSpec::from_dag(&fork_join(2, &[(Category(0), 2), (Category(1), 1)]));
        Request::Submit {
            jobs: vec![dag; n],
            scenario: None,
            watch: false,
            session: String::new(),
        }
        .encode()
    }

    fn submit_line_to(session: &str, n: usize) -> String {
        use kdag::generators::fork_join;
        use kdag::Category;
        let dag = DagSpec::from_dag(&fork_join(2, &[(Category(0), 2), (Category(1), 1)]));
        Request::Submit {
            jobs: vec![dag; n],
            scenario: None,
            watch: false,
            session: session.to_string(),
        }
        .encode()
    }

    #[test]
    fn admission_backpressure_is_explicit() {
        let swarm = bare_swarm(4, 100);
        let r = reply(dispatch(&submit_line(3), &swarm));
        assert!(matches!(r, Response::Submitted { ref jobs, .. } if jobs == &[0, 1, 2]));
        // 3 queued + 2 > capacity 4 → rejected, queue untouched.
        let r = reply(dispatch(&submit_line(2), &swarm));
        match r {
            Response::Rejected {
                reason,
                queue_depth,
                capacity,
            } => {
                assert_eq!(reason, "queue full");
                assert_eq!((queue_depth, capacity), (3, 4));
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // A single job still fits.
        let r = reply(dispatch(&submit_line(1), &swarm));
        assert!(matches!(r, Response::Submitted { ref jobs, .. } if jobs == &[3]));
        let s = swarm.resolve("").unwrap();
        let g = s.inner.lock().unwrap();
        assert_eq!(g.admitted.get(), 4);
        assert_eq!(g.rejections.get(), 2);
        assert_eq!(g.max_queue_depth, 4);
    }

    #[test]
    fn inflight_cap_rejects() {
        let swarm = bare_swarm(100, 2);
        let r = reply(dispatch(&submit_line(2), &swarm));
        assert!(matches!(r, Response::Submitted { .. }));
        let r = reply(dispatch(&submit_line(1), &swarm));
        assert!(matches!(r, Response::Rejected { ref reason, .. } if reason.contains("in flight")));
    }

    #[test]
    fn cancel_lifecycle() {
        let swarm = bare_swarm(10, 10);
        let r = reply(dispatch(&submit_line(2), &swarm));
        assert!(matches!(r, Response::Submitted { .. }));
        let r = reply(dispatch(r#"{"cmd":"cancel","job":1}"#, &swarm));
        assert_eq!(r, Response::Cancelled { job: 1 });
        // Cancelling twice is an error; unknown ids too.
        let r = reply(dispatch(r#"{"cmd":"cancel","job":1}"#, &swarm));
        assert!(matches!(r, Response::Error { .. }));
        let r = reply(dispatch(r#"{"cmd":"cancel","job":9}"#, &swarm));
        assert!(matches!(r, Response::Error { ref message } if message.contains("unknown")));
        // Status reflects the cancellation; the slot frees capacity.
        let r = reply(dispatch(r#"{"cmd":"status"}"#, &swarm));
        match r {
            Response::Status(st) => {
                assert_eq!(st.queued, 1);
                assert_eq!(st.jobs[1].state, crate::protocol::JobState::Cancelled);
            }
            other => panic!("expected status, got {other:?}"),
        }
        let s = swarm.resolve("").unwrap();
        assert_eq!(s.inner.lock().unwrap().inflight, 1);
    }

    #[test]
    fn malformed_lines_and_bad_dags_are_errors() {
        let swarm = bare_swarm(10, 10);
        let r = reply(dispatch("not json", &swarm));
        assert!(matches!(r, Response::Error { .. }));
        // A k-mismatched DAG is refused before admission.
        let line = r#"{"cmd":"submit","jobs":[{"k":3,"categories":[0],"edges":[]}]}"#;
        let r = reply(dispatch(line, &swarm));
        assert!(matches!(r, Response::Error { ref message } if message.contains("categories")));
        // A cyclic DAG fails validation.
        let line = r#"{"cmd":"submit","jobs":[{"k":2,"categories":[0,1],"edges":[[0,1],[1,0]]}]}"#;
        let r = reply(dispatch(line, &swarm));
        assert!(matches!(r, Response::Error { ref message } if message.contains("invalid DAG")));
        let s = swarm.resolve("").unwrap();
        assert_eq!(s.inner.lock().unwrap().admitted.get(), 0);
    }

    #[test]
    fn trace_verb_reports_lifecycle_and_stamps() {
        let swarm = bare_swarm(10, 10);
        let s = swarm.resolve("").unwrap();
        let r = reply(dispatch(&submit_line(2), &swarm));
        let ids = match r {
            Response::Submitted { jobs, trace_ids } => {
                assert_eq!(jobs, vec![0, 1]);
                assert_eq!(trace_ids.len(), 2);
                assert_eq!(trace_ids[0], s.trace_id(0));
                trace_ids
            }
            other => panic!("expected submitted, got {other:?}"),
        };
        // No worker thread: both jobs sit queued, stamped but without
        // engine-time spans.
        let r = reply(dispatch(r#"{"cmd":"trace","job":1}"#, &swarm));
        match r {
            Response::Trace(t) => {
                assert_eq!(t.job, 1);
                assert_eq!(t.trace_id, ids[1]);
                assert_eq!(t.state, "queued");
                assert!(t.submit_ns.is_some());
                assert!(t.admit_ns.unwrap() >= t.submit_ns.unwrap());
                assert_eq!(t.inject_ns, None);
                assert_eq!(t.release, None);
                assert!(t.segments.is_empty());
            }
            other => panic!("expected trace, got {other:?}"),
        }
        let r = reply(dispatch(r#"{"cmd":"cancel","job":0}"#, &swarm));
        assert!(matches!(r, Response::Cancelled { .. }));
        let r = reply(dispatch(r#"{"cmd":"trace","job":0}"#, &swarm));
        assert!(matches!(r, Response::Trace(ref t) if t.state == "cancelled"));
        let r = reply(dispatch(r#"{"cmd":"trace","job":9}"#, &swarm));
        assert!(matches!(r, Response::Error { ref message } if message.contains("unknown")));
    }

    #[test]
    fn stats_reply_carries_response_accounting() {
        let swarm = bare_swarm(10, 10);
        let s = swarm.resolve("").unwrap();
        s.metrics.record_completion(1, 12, 4);
        s.metrics.record_completion(0, 5, 5);
        let r = reply(dispatch(r#"{"cmd":"stats"}"#, &swarm));
        match r {
            Response::Stats(st) => {
                assert_eq!(st.response_jobs, 2);
                assert!((st.response_mean_steps - 8.5).abs() < 1e-12);
                assert_eq!(st.response_mean_steps_by_cat.len(), 2);
                assert!(st.slowdown_mean_milli > 0.0);
                assert_eq!(st.session, "default");
                assert_eq!(st.sessions, 1);
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn scenario_expansion_checks_k() {
        let sc = ScenarioRef {
            name: "pipeline".into(),
            jobs: 3,
            seed: 1,
        };
        assert_eq!(expand_scenario(&sc, 2).unwrap().len(), 3);
        assert!(expand_scenario(&sc, 3)
            .unwrap_err()
            .contains("machine has 3"));
        let bad = ScenarioRef {
            name: "nope".into(),
            jobs: 1,
            seed: 1,
        };
        assert!(expand_scenario(&bad, 2)
            .unwrap_err()
            .contains("unknown scenario"));
    }

    #[test]
    fn open_routes_sessions_and_isolates_state() {
        let swarm = bare_swarm(10, 10);
        // Open a tenant with an overridden scheduler and quantum.
        let line = r#"{"cmd":"open","session":"tenant-a","scheduler":"equi","quantum":3}"#;
        let r = reply(dispatch(line, &swarm));
        match r {
            Response::Opened {
                session,
                scheduler,
                quantum,
                existing,
                ..
            } => {
                assert_eq!(session, "tenant-a");
                assert_eq!(scheduler, "equi");
                assert_eq!(quantum, 3);
                assert!(!existing);
            }
            other => panic!("expected opened, got {other:?}"),
        }
        // Re-open without a conflicting spec: idempotent attach.
        let r = reply(dispatch(r#"{"cmd":"open","session":"tenant-a"}"#, &swarm));
        assert!(matches!(r, Response::Opened { existing: true, .. }));
        // Re-open with a conflicting quantum: refused.
        let line = r#"{"cmd":"open","session":"tenant-a","quantum":9}"#;
        let r = reply(dispatch(line, &swarm));
        assert!(matches!(r, Response::Error { ref message } if message.contains("conflicts")));
        // Jobs land in their own session's queue, not the default's.
        let r = reply(dispatch(&submit_line_to("tenant-a", 2), &swarm));
        assert!(matches!(r, Response::Submitted { ref jobs, .. } if jobs == &[0, 1]));
        let r = reply(dispatch(r#"{"cmd":"stats","session":"tenant-a"}"#, &swarm));
        match r {
            Response::Stats(st) => {
                assert_eq!(st.admitted, 2);
                assert_eq!(st.session, "tenant-a");
                assert_eq!(st.scheduler, "equi");
                assert_eq!(st.sessions, 2);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        let r = reply(dispatch(r#"{"cmd":"stats"}"#, &swarm));
        assert!(matches!(r, Response::Stats(ref st) if st.admitted == 0));
        // Unknown sessions are uniform errors.
        let r = reply(dispatch(&submit_line_to("nope", 1), &swarm));
        assert!(
            matches!(r, Response::Error { ref message } if message.contains("unknown session"))
        );
    }

    #[test]
    fn close_and_drain_are_deferred_outcomes() {
        let swarm = bare_swarm(10, 10);
        let r = reply(dispatch(r#"{"cmd":"open","session":"t"}"#, &swarm));
        assert!(matches!(r, Response::Opened { .. }));
        // Closing the default session is refused.
        let r = reply(dispatch(r#"{"cmd":"close","session":"default"}"#, &swarm));
        assert!(matches!(r, Response::Error { ref message } if message.contains("default")));
        // Closing a named session defers until it drains.
        match dispatch(r#"{"cmd":"close","session":"t"}"#, &swarm) {
            Outcome::Drain(DrainKind::Close(s)) => {
                assert_eq!(s.name, "t");
                assert!(s.inner.lock().unwrap().draining);
            }
            _ => panic!("expected a deferred close"),
        }
        assert_eq!(*swarm.acks.lock().unwrap(), 1);
        // Submits to a closing session are rejected as draining.
        let r = reply(dispatch(&submit_line_to("t", 1), &swarm));
        assert!(matches!(r, Response::Rejected { ref reason, .. } if reason == "draining"));
        // A global drain flags every session and is also deferred.
        match dispatch(r#"{"cmd":"drain"}"#, &swarm) {
            Outcome::Drain(DrainKind::Global) => {}
            _ => panic!("expected a deferred global drain"),
        }
        let s = swarm.resolve("default").unwrap();
        assert!(s.inner.lock().unwrap().draining);
        // New opens are refused while the daemon drains.
        let r = reply(dispatch(r#"{"cmd":"open","session":"late"}"#, &swarm));
        assert!(matches!(r, Response::Error { ref message } if message.contains("draining")));
    }

    #[test]
    fn session_rate_limit_rejects_before_enqueue() {
        let swarm = bare_swarm(100, 100);
        let line = r#"{"cmd":"open","session":"throttled","rate_per_sec":0.001,"burst":2}"#;
        let r = reply(dispatch(line, &swarm));
        assert!(matches!(r, Response::Opened { .. }));
        // Burst of 2 admits 2, then the bucket is dry (refill is ~0).
        let r = reply(dispatch(&submit_line_to("throttled", 2), &swarm));
        assert!(matches!(r, Response::Submitted { .. }));
        let r = reply(dispatch(&submit_line_to("throttled", 1), &swarm));
        match r {
            Response::Rejected {
                reason,
                queue_depth,
                ..
            } => {
                assert_eq!(reason, "rate limited");
                // The throttled submit consumed no queue capacity.
                assert_eq!(queue_depth, 2);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // The default session is untouched by the tenant's bucket.
        let r = reply(dispatch(&submit_line(1), &swarm));
        assert!(matches!(r, Response::Submitted { .. }));
    }

    #[test]
    fn session_names_are_validated() {
        let swarm = bare_swarm(10, 10);
        for bad in ["..", "a/b", "", "default", &"x".repeat(65)] {
            let spec = SessionSpec::default();
            assert!(
                swarm.open(bad, &spec).is_err(),
                "name {bad:?} should be rejected"
            );
        }
        assert!(swarm.open("ok-1.A_b", &SessionSpec::default()).is_ok());
    }
}
