//! The deterministic replay bridge.
//!
//! Every accepted session records a [`SessionTrace`]: the engine
//! configuration plus the `(dag, release)` sequence in injection order
//! and the completion times the live engine produced. Because the
//! daemon's quantum loop and the offline batch path execute the *same*
//! [`ksim::LiveSimulation`] step loop, replaying the trace through
//! [`ksim::simulate`] reproduces the server's outcome exactly — the
//! theorem machinery (bounds, checker, analysis) therefore applies to
//! live sessions unmodified.
//!
//! [`SessionTrace::verify`] is the contract: it re-runs the trace
//! offline and compares the canonical JSON encoding of the completion
//! vectors **byte for byte**.

use crate::wire::{self, need_arr, need_str, need_u64, Value};
use kbaselines::SchedulerKind;
use kdag::{DagSpec, SelectionPolicy};
use ksim::{simulate, JobSpec, Resources, SimConfig, SimOutcome, Time};
use ktelemetry::{SpanRecorder, TelemetryHandle};

/// One recorded arrival: the DAG and the virtual release time the
/// server assigned at injection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceJob {
    /// The job's DAG.
    pub dag: DagSpec,
    /// Virtual release time (equals the engine clock at injection).
    pub release: Time,
}

/// A canonical record of one service session, sufficient to reproduce
/// it offline.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionTrace {
    /// Processors per category.
    pub machine: Vec<u32>,
    /// The scheduling policy that served the session.
    pub scheduler: SchedulerKind,
    /// The environment's task-selection policy.
    pub policy: SelectionPolicy,
    /// Scheduling quantum.
    pub quantum: u64,
    /// Seed for both the engine RNG and randomized schedulers.
    pub seed: u64,
    /// Arrivals in injection order (releases are nondecreasing).
    pub jobs: Vec<TraceJob>,
    /// Completion times the live engine produced, one per job.
    pub completions: Vec<Time>,
}

impl SessionTrace {
    /// Canonical JSON encoding (fixed field order, no whitespace).
    pub fn encode(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"machine\":[");
        for (i, p) in self.machine.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&p.to_string());
        }
        s.push_str("],\"scheduler\":");
        wire::push_str_lit(&mut s, self.scheduler.label());
        s.push_str(",\"policy\":");
        wire::push_str_lit(&mut s, self.policy.name());
        s.push_str(&format!(
            ",\"quantum\":{},\"seed\":{}",
            self.quantum, self.seed
        ));
        s.push_str(",\"jobs\":[");
        for (i, j) in self.jobs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"release\":");
            s.push_str(&j.release.to_string());
            s.push_str(",\"dag\":");
            crate::protocol::encode_dag(&mut s, &j.dag);
            s.push('}');
        }
        s.push_str("],\"completions\":");
        wire::push_u64_arr(&mut s, &self.completions);
        s.push('}');
        s
    }

    /// Decode from a parsed wire value.
    pub fn decode_value(v: &Value) -> Result<SessionTrace, String> {
        let machine = need_arr(v, "machine")?
            .iter()
            .map(|p| {
                p.as_u64()
                    .filter(|&p| p <= u64::from(u32::MAX))
                    .map(|p| p as u32)
                    .ok_or_else(|| "bad machine entry".to_string())
            })
            .collect::<Result<Vec<u32>, String>>()?;
        let sched_name = need_str(v, "scheduler")?;
        let scheduler = SchedulerKind::ALL
            .into_iter()
            .find(|k| k.label() == sched_name)
            .ok_or_else(|| format!("unknown scheduler '{sched_name}'"))?;
        let policy_name = need_str(v, "policy")?;
        let policy = SelectionPolicy::ALL
            .into_iter()
            .find(|p| p.name() == policy_name)
            .ok_or_else(|| format!("unknown policy '{policy_name}'"))?;
        let jobs = need_arr(v, "jobs")?
            .iter()
            .map(|j| {
                Ok(TraceJob {
                    dag: crate::protocol::decode_dag(j.get("dag").ok_or("missing field 'dag'")?)?,
                    release: need_u64(j, "release")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let completions = need_arr(v, "completions")?
            .iter()
            .map(|c| c.as_u64().ok_or("bad completion"))
            .collect::<Result<Vec<u64>, _>>()?;
        Ok(SessionTrace {
            machine,
            scheduler,
            policy,
            quantum: need_u64(v, "quantum")?,
            seed: need_u64(v, "seed")?,
            jobs,
            completions,
        })
    }

    /// Decode from a JSON string.
    pub fn decode(text: &str) -> Result<SessionTrace, String> {
        let v = wire::parse(text).map_err(|e| e.to_string())?;
        SessionTrace::decode_value(&v)
    }

    /// Rebuild the validated job specs in injection order.
    pub fn restore_jobs(&self) -> Result<Vec<JobSpec>, String> {
        self.jobs
            .iter()
            .enumerate()
            .map(|(i, j)| {
                let dag = j
                    .dag
                    .build()
                    .map_err(|e| format!("trace job {i} has an invalid DAG: {e}"))?;
                Ok(JobSpec::released(dag, j.release))
            })
            .collect()
    }

    /// Replay the session through the offline batch path, with the
    /// same machine, scheduler, policy, quantum, and seed the live
    /// server used.
    pub fn replay(&self) -> Result<SimOutcome, String> {
        self.replay_instrumented(TelemetryHandle::off())
    }

    /// Replay with a telemetry sink attached to both the engine and
    /// the scheduler, reproducing the event stream the live server's
    /// flight recorder captured (modulo the offline-only
    /// `run_start`/`run_end` framing events).
    pub fn replay_instrumented(&self, tel: TelemetryHandle) -> Result<SimOutcome, String> {
        let jobs = self.restore_jobs()?;
        let res = Resources::new(self.machine.clone());
        let cfg = SimConfig::default()
            .with_policy(self.policy)
            .with_seed(self.seed)
            .with_quantum(self.quantum)
            .with_telemetry(tel.clone());
        let mut sched = self
            .scheduler
            .build_observed(res.k(), self.seed, tel, SpanRecorder::off());
        Ok(simulate(sched.as_mut(), &jobs, &res, &cfg))
    }

    /// The canonical completion-vector encoding used for the
    /// byte-for-byte comparison.
    pub fn canonical_completions(completions: &[Time]) -> String {
        let mut s = String::new();
        wire::push_u64_arr(&mut s, completions);
        s
    }

    /// Replay offline and require the completion vectors to match
    /// byte for byte. Returns the matched canonical encoding.
    pub fn verify(&self) -> Result<String, String> {
        let outcome = self.replay()?;
        let live = Self::canonical_completions(&self.completions);
        let replayed = Self::canonical_completions(&outcome.completions);
        if live == replayed {
            Ok(live)
        } else {
            Err(format!(
                "replay divergence:\n  live:     {live}\n  replayed: {replayed}"
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdag::generators::fork_join;
    use kdag::Category;

    fn trace(completions: Vec<Time>) -> SessionTrace {
        let dag = DagSpec::from_dag(&fork_join(2, &[(Category(0), 4), (Category(1), 2)]));
        SessionTrace {
            machine: vec![2, 1],
            scheduler: SchedulerKind::KRad,
            policy: SelectionPolicy::Fifo,
            quantum: 2,
            seed: 7,
            jobs: vec![
                TraceJob {
                    dag: dag.clone(),
                    release: 0,
                },
                TraceJob { dag, release: 3 },
            ],
            completions,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = trace(vec![4, 9]);
        let text = t.encode();
        assert_eq!(SessionTrace::decode(&text).unwrap(), t);
        // Canonical: encoding is stable under a decode round trip.
        assert_eq!(SessionTrace::decode(&text).unwrap().encode(), text);
    }

    #[test]
    fn verify_accepts_true_completions_and_rejects_forgeries() {
        // Build the ground truth by replaying an empty-completions
        // trace, then verify with the real vector.
        let skeleton = trace(vec![]);
        let outcome = skeleton.replay().unwrap();
        let honest = trace(outcome.completions.clone());
        let canon = honest.verify().unwrap();
        assert_eq!(
            canon,
            SessionTrace::canonical_completions(&outcome.completions)
        );

        let mut forged = outcome.completions.clone();
        forged[0] += 1;
        assert!(trace(forged).verify().unwrap_err().contains("divergence"));
    }

    #[test]
    fn corrupt_traces_are_data_errors() {
        assert!(SessionTrace::decode("{").is_err());
        assert!(SessionTrace::decode("{\"machine\":[1]}").is_err());
        // A cyclic DAG fails at restore, not with a panic.
        let mut t = trace(vec![]);
        t.jobs[0].dag.edges = vec![(0, 1), (1, 0)];
        assert!(t.restore_jobs().unwrap_err().contains("invalid DAG"));
    }
}
