//! Durability bridge between the daemon and [`kjournal`].
//!
//! [`SessionJournal`] wraps the on-disk [`JournalStore`] behind its
//! own mutex (lock order: `Inner` first, journal second — never the
//! reverse) and mirrors writer counters into the metrics registry
//! after every commit. The daemon's invariant is *commit before ack*:
//! an admission, cancellation, or completion broadcast only reaches
//! the wire after the corresponding records are flushed to the WAL
//! with `write(2)` (so they survive `kill -9`; the fsync policy
//! decides what survives an OS crash).
//!
//! Recovery ([`replay_session`]) is the replay-determinism argument
//! made operational: the journal persists only the session *inputs*
//! (config, admitted DAGs, injection releases) plus a digest of the
//! outputs (clock, busy/idle accumulators, completion times). The
//! engine is rebuilt by re-injecting the inputs and advancing to the
//! journaled clock; the rebuilt digest must match the journaled one
//! exactly, in both directions, or recovery refuses to serve. See
//! DESIGN.md §14.

use crate::metrics::ServiceMetrics;
use crate::server::ServerConfig;
use kdag::{DagSpec, JobDag};
use kjournal::{JobPhase, JournalStats, JournalStore, Record, SessionImage, SessionMeta};
use ksim::{JobSpec, LiveSimulation, Scheduler, Time};
use ktelemetry::{CounterHandle, GaugeHandle, HistogramHandle};
use std::io;
use std::sync::{Arc, Mutex};

/// The [`SessionMeta`] a config journals — and the one a journaled
/// session is validated against on restart.
pub fn session_meta(cfg: &ServerConfig) -> SessionMeta {
    SessionMeta {
        machine: cfg.machine.clone(),
        scheduler: cfg.scheduler.label().to_string(),
        policy: cfg.policy.name().to_string(),
        time_policy: cfg.time_policy.label().to_string(),
        quantum: cfg.quantum,
        seed: cfg.seed,
    }
}

/// Refuse to resume a journal under a different configuration: the
/// engine is only deterministic under the exact (machine, scheduler,
/// policy, clock, quantum, seed) tuple that produced the journal.
pub fn validate_meta(cfg: &ServerConfig, meta: &SessionMeta) -> io::Result<()> {
    let want = session_meta(cfg);
    if want == *meta {
        return Ok(());
    }
    let mut diffs = Vec::new();
    if want.machine != meta.machine {
        diffs.push(format!(
            "machine {:?} vs journaled {:?}",
            want.machine, meta.machine
        ));
    }
    if want.scheduler != meta.scheduler {
        diffs.push(format!(
            "scheduler {} vs journaled {}",
            want.scheduler, meta.scheduler
        ));
    }
    if want.policy != meta.policy {
        diffs.push(format!(
            "policy {} vs journaled {}",
            want.policy, meta.policy
        ));
    }
    if want.time_policy != meta.time_policy {
        diffs.push(format!(
            "time_policy {} vs journaled {}",
            want.time_policy, meta.time_policy
        ));
    }
    if want.quantum != meta.quantum {
        diffs.push(format!(
            "quantum {} vs journaled {}",
            want.quantum, meta.quantum
        ));
    }
    if want.seed != meta.seed {
        diffs.push(format!("seed {} vs journaled {}", want.seed, meta.seed));
    }
    Err(io::Error::new(
        io::ErrorKind::InvalidInput,
        format!(
            "journal was written by a different session configuration: {}",
            diffs.join(", ")
        ),
    ))
}

/// One journaled job, rebuilt: the validated DAG plus its lifecycle.
pub struct RecoveredJob {
    /// Server-assigned id.
    pub id: u64,
    /// The built DAG (validated by [`DagSpec::build`]).
    pub dag: Arc<JobDag>,
    /// Journaled lifecycle phase.
    pub phase: JobPhase,
    /// Completion time from the *rebuilt engine* (verified against
    /// the journal), for injected jobs that finished before `clock`.
    pub completion: Option<Time>,
}

fn divergence(what: impl std::fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("journal/replay divergence — refusing to resume: {what}"),
    )
}

/// Rebuild the engine from a journaled [`SessionImage`]: re-inject
/// every injected job in id (= injection) order with its journaled
/// release, advance to the journaled clock under the *same* scheduler
/// instance that will keep serving, and verify the rebuilt digest
/// (clock, busy/idle, every completion) against the journal in both
/// directions. Any mismatch is an error, not a warning — serving from
/// a diverged engine would silently rewrite history.
pub fn replay_session(
    live: &mut LiveSimulation,
    scheduler: &mut dyn Scheduler,
    image: &SessionImage,
) -> io::Result<Vec<RecoveredJob>> {
    let mut jobs = Vec::with_capacity(image.jobs.len());
    let mut injected: Vec<u64> = Vec::new();
    for (i, j) in image.jobs.iter().enumerate() {
        if j.id != i as u64 {
            return Err(divergence(format!(
                "job ids must be consecutive admission ids, found {} at position {i}",
                j.id
            )));
        }
        let dag = j.dag.build().map_err(|e| {
            divergence(format!(
                "journaled DAG for job {} fails validation: {e}",
                j.id
            ))
        })?;
        let dag = Arc::new(dag);
        if let JobPhase::Injected { release } = j.phase {
            let engine_idx = live
                .inject(JobSpec {
                    dag: Arc::clone(&dag),
                    release,
                })
                .map_err(|e| divergence(format!("re-injecting job {}: {e}", j.id)))?;
            debug_assert_eq!(engine_idx, injected.len());
            injected.push(j.id);
        }
        jobs.push(RecoveredJob {
            id: j.id,
            dag,
            phase: j.phase,
            completion: None,
        });
    }

    if !injected.is_empty() {
        live.run_until(image.clock, scheduler);
    }
    if live.now() != image.clock {
        return Err(divergence(format!(
            "clock: replay reached {} but the journal says {}",
            live.now(),
            image.clock
        )));
    }
    if live.busy_steps() != image.busy || live.idle_steps() != image.idle {
        return Err(divergence(format!(
            "busy/idle: replay reached {}/{} but the journal says {}/{}",
            live.busy_steps(),
            live.idle_steps(),
            image.busy,
            image.idle
        )));
    }

    // Completion digest, both directions: everything the journal acked
    // must have completed at the same virtual time, and nothing may
    // have completed that the journal does not know about.
    let journaled: std::collections::HashMap<u64, Time> = image.completed.iter().copied().collect();
    for (engine_idx, &id) in injected.iter().enumerate() {
        let replayed = live.completion(engine_idx);
        match (replayed, journaled.get(&id)) {
            (Some(r), Some(&j)) if r == j => {
                jobs[id as usize].completion = Some(r);
            }
            (None, None) => {}
            (r, j) => {
                return Err(divergence(format!(
                    "job {id}: replayed completion {r:?} vs journaled {j:?}"
                )));
            }
        }
    }
    for &(id, _) in &image.completed {
        let known = image
            .jobs
            .get(id as usize)
            .is_some_and(|j| matches!(j.phase, JobPhase::Injected { .. }));
        if !known {
            return Err(divergence(format!(
                "journaled completion for job {id}, which was never injected"
            )));
        }
    }
    Ok(jobs)
}

/// Journal health for the `stats` verb.
#[derive(Clone, Copy, Debug, Default)]
pub struct JournalHealth {
    /// Records appended since open.
    pub records: u64,
    /// Bytes committed since open.
    pub bytes: u64,
    /// fsync(2) calls since open.
    pub fsyncs: u64,
    /// Snapshots written since open.
    pub snapshots: u64,
    /// WAL records past the last snapshot.
    pub tail_records: u64,
}

struct JState {
    store: JournalStore,
    mirrored: JournalStats,
    quanta: u64,
}

/// The daemon's handle on the journal: serialized writes, snapshot
/// cadence, and metric mirroring.
pub struct SessionJournal {
    state: Mutex<JState>,
    snapshot_every: u64,
    records: CounterHandle,
    bytes: CounterHandle,
    fsyncs: CounterHandle,
    fsync_us: HistogramHandle,
    snapshots: CounterHandle,
    tail: GaugeHandle,
}

impl SessionJournal {
    /// Wrap an opened store, wiring its counters into `metrics`.
    pub fn new(store: JournalStore, metrics: &ServiceMetrics, snapshot_every: u64) -> Self {
        SessionJournal {
            state: Mutex::new(JState {
                store,
                mirrored: JournalStats::default(),
                quanta: 0,
            }),
            snapshot_every,
            records: metrics.journal_records.clone(),
            bytes: metrics.journal_bytes.clone(),
            fsyncs: metrics.journal_fsyncs.clone(),
            fsync_us: metrics.journal_fsync_us.clone(),
            snapshots: metrics.journal_snapshots.clone(),
            tail: metrics.journal_tail_records.clone(),
        }
    }

    fn mirror(&self, st: &mut JState) {
        let now = st.store.stats();
        self.records.add(now.records - st.mirrored.records);
        self.bytes.add(now.bytes - st.mirrored.bytes);
        if now.fsyncs > st.mirrored.fsyncs {
            self.fsyncs.add(now.fsyncs - st.mirrored.fsyncs);
            self.fsync_us.record(now.last_fsync_micros);
        }
        self.tail.set_u64(st.store.tail_records());
        st.mirrored = now;
    }

    /// Journal the session header for a fresh (non-recovered) session.
    pub fn log_open(&self, meta: &SessionMeta) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        st.store.append(&Record::SessionOpen(meta.clone()));
        st.store.commit()?;
        self.mirror(&mut st);
        Ok(())
    }

    /// Journal and commit a batch admission (ids `base..base + n`)
    /// *before* the `submitted` ack goes out.
    pub fn log_admitted(&self, base: u64, specs: &[DagSpec]) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        for (i, dag) in specs.iter().enumerate() {
            st.store.append(&Record::JobAdmitted {
                job: base + i as u64,
                dag: dag.clone(),
            });
        }
        st.store.commit()?;
        self.mirror(&mut st);
        Ok(())
    }

    /// Journal and commit a cancellation before its ack.
    pub fn log_cancelled(&self, job: u64) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        st.store.append(&Record::JobCancelled { job });
        st.store.commit()?;
        self.mirror(&mut st);
        Ok(())
    }

    /// Buffer an injection record. Not committed here — it rides the
    /// next group commit (the quantum boundary, at the latest), which
    /// is safe: until the quantum commits, no output depending on this
    /// injection has been acknowledged either.
    pub fn note_injected(&self, job: u64, release: Time) {
        let mut st = self.state.lock().unwrap();
        st.store.append(&Record::JobInjected { job, release });
    }

    /// Journal and group-commit one quantum boundary — *before* its
    /// completions are broadcast. Returns `true` when the snapshot
    /// cadence says a snapshot is due.
    pub fn log_quantum(
        &self,
        to: Time,
        busy: u64,
        idle: u64,
        completed: &[(u64, Time)],
    ) -> io::Result<bool> {
        let mut st = self.state.lock().unwrap();
        st.store.append(&Record::Quantum {
            to,
            busy,
            idle,
            completed: completed.to_vec(),
        });
        st.store.commit()?;
        self.mirror(&mut st);
        st.quanta += 1;
        Ok(self.snapshot_every > 0 && st.quanta.is_multiple_of(self.snapshot_every))
    }

    /// Write a snapshot and truncate the WAL behind it.
    pub fn snapshot(&self, image: &SessionImage) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        st.store.snapshot(image)?;
        self.snapshots.incr();
        self.mirror(&mut st);
        Ok(())
    }

    /// Force an fsync regardless of policy (used at drain).
    pub fn sync(&self) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        st.store.sync()?;
        self.mirror(&mut st);
        Ok(())
    }

    /// The durability label clients see: `wal:<fsync policy>`.
    pub fn durability(&self) -> String {
        let st = self.state.lock().unwrap();
        format!("wal:{}", st.store.policy().label())
    }

    /// Counters for the `stats` verb.
    pub fn health(&self) -> JournalHealth {
        let st = self.state.lock().unwrap();
        let stats = st.store.stats();
        JournalHealth {
            records: stats.records,
            bytes: stats.bytes,
            fsyncs: stats.fsyncs,
            snapshots: st.store.snapshots(),
            tail_records: st.store.tail_records(),
        }
    }
}
