//! Live service metrics.
//!
//! [`ServiceMetrics`] owns the daemon's [`MetricsRegistry`] and every
//! handle the quantum loop updates: admission counters, queue and
//! engine gauges, latency histograms, per-category paper semantics
//! (instantaneous desire `Σi d(Ji, α, t)`, allotment, utilization,
//! waste), and the live Theorem 3 accumulators — `Σα T1(J, α)/Pα` and
//! `max (T∞(J) + r(J))` over everything injected so far, combined into
//! the bound's right-hand side. A scrape is therefore a statement of
//! the guarantee the session is currently running under, not just
//! plumbing counters.
//!
//! [`ModeTracker`] is a [`TelemetrySink`] that rides the engine event
//! stream: every [`TelemetryEvent::ModeTransition`] folds the elapsed
//! wall-clock into `krad_mode_residency_seconds{category,mode}`, so a
//! scrape shows how long each category has actually spent in DEQ
//! space-sharing vs round-robin time-sharing.

use ktelemetry::{
    CounterHandle, GaugeHandle, HistogramHandle, MetricsRegistry, SchedulerMode, TelemetryEvent,
    TelemetrySink,
};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Exponential bucket bounds `1, 2, 4, …, 2^(n-1)` for registry
/// histograms (mirrors [`ktelemetry::Histogram::exponential`]).
fn exp_bounds(n: usize) -> Vec<u64> {
    (0..n).map(|i| 1u64 << i).collect()
}

/// Every registry-backed instrument the daemon exposes.
#[derive(Clone, Debug)]
pub struct ServiceMetrics {
    registry: MetricsRegistry,
    /// Jobs accepted (acked) — `krad_jobs_admitted_total`.
    pub admitted: CounterHandle,
    /// Submissions refused with backpressure — `krad_jobs_rejected_total`.
    pub rejected: CounterHandle,
    /// Jobs completed — `krad_jobs_completed_total`.
    pub completed: CounterHandle,
    /// Jobs cancelled while queued — `krad_jobs_cancelled_total`.
    pub cancelled: CounterHandle,
    /// Quantum-loop iterations — `krad_quanta_total`.
    pub quanta: CounterHandle,
    /// Current submission-queue depth — `krad_queue_depth`.
    pub queue_depth: GaugeHandle,
    /// Jobs live in the engine — `krad_active_jobs`.
    pub active_jobs: GaugeHandle,
    /// Engine virtual time — `krad_virtual_time_steps`.
    pub virtual_time: GaugeHandle,
    /// Simulated busy steps — `krad_busy_steps`.
    pub busy_steps: GaugeHandle,
    /// Fast-forwarded idle steps — `krad_idle_steps`.
    pub idle_steps: GaugeHandle,
    /// Wall-clock seconds since the daemon started — `krad_uptime_seconds`.
    pub uptime_seconds: GaugeHandle,
    /// 1 while draining, else 0 — `krad_draining`.
    pub draining: GaugeHandle,
    /// Queue depth sampled at each admission — `krad_queue_depth_at_admit`.
    pub queue_depth_at_admit: HistogramHandle,
    /// Wall-clock latency of one quantum — `krad_quantum_latency_us`.
    pub quantum_latency_us: HistogramHandle,
    /// Response time of completed jobs, in engine steps, per dominant
    /// category — `krad_job_response_steps{category}`.
    pub response_steps: Vec<HistogramHandle>,
    /// Slowdown (response / span) of completed jobs in milli-units,
    /// per dominant category — `krad_job_slowdown_milli{category}`.
    pub slowdown_milli: Vec<HistogramHandle>,
    /// Response time of completed jobs across all categories —
    /// `krad_job_response_steps_all`.
    pub response_all: HistogramHandle,
    /// Slowdown of completed jobs across all categories —
    /// `krad_job_slowdown_milli_all`.
    pub slowdown_all: HistogramHandle,
    /// SLO breaches observed (edge-triggered) —
    /// `krad_slo_breaches_total`.
    pub slo_breaches: CounterHandle,
    /// Instantaneous desire per category — `krad_category_desire{category}`.
    pub desire: Vec<GaugeHandle>,
    /// Last-quantum allotment per category — `krad_category_allotment{category}`.
    pub allotment: Vec<GaugeHandle>,
    /// Executed / capacity fraction — `krad_category_utilization{category}`.
    pub utilization: Vec<GaugeHandle>,
    /// Allotted-but-unused processor-steps — `krad_category_waste_steps{category}`.
    pub waste: Vec<GaugeHandle>,
    /// `Σα T1(J, α)/Pα` over injected jobs — `krad_bound_work_over_p`.
    pub bound_work_over_p: GaugeHandle,
    /// `max (T∞(J) + r(J))` over injected jobs — `krad_bound_span_release`.
    pub bound_span_release: GaugeHandle,
    /// The Theorem 3 right-hand side — `krad_bound_theorem3`.
    pub bound_theorem3: GaugeHandle,
    /// Journal records committed — `krad_journal_records_total`.
    pub journal_records: CounterHandle,
    /// Journal bytes committed — `krad_journal_bytes_total`.
    pub journal_bytes: CounterHandle,
    /// Journal fsync(2) calls — `krad_journal_fsync_total`.
    pub journal_fsyncs: CounterHandle,
    /// Wall-clock fsync latency — `krad_journal_fsync_us`.
    pub journal_fsync_us: HistogramHandle,
    /// Snapshots written — `krad_journal_snapshots_total`.
    pub journal_snapshots: CounterHandle,
    /// WAL records past the last snapshot — `krad_journal_tail_records`.
    pub journal_tail_records: GaugeHandle,
    /// Milliseconds the last journal recovery took —
    /// `krad_recovery_duration_ms` (0 without a recovery).
    pub recovery_duration_ms: GaugeHandle,
    started: Instant,
}

impl ServiceMetrics {
    /// Build the full instrument set for a `machine.len()`-category
    /// daemon on a fresh registry (unlabeled — the implicit default
    /// session).
    pub fn new(machine: &[u32]) -> Self {
        Self::with_registry(&MetricsRegistry::new(), machine, None)
    }

    /// Build the instrument set on a **shared** registry. With
    /// `session: None` every series is unlabeled (byte-compatible with
    /// a single-tenant scrape); with `Some(name)` every series carries
    /// a `session="name"` label, so many sessions coexist inside the
    /// same metric families on one `/metrics` endpoint.
    pub fn with_registry(
        registry: &MetricsRegistry,
        machine: &[u32],
        session: Option<&str>,
    ) -> Self {
        let registry = registry.clone();
        // Base label set shared by every series: empty for the default
        // session, `session="name"` otherwise. Per-category series
        // append their `category` label in front (fixed order keeps
        // render output deterministic).
        let base: Vec<(&str, &str)> = match session {
            Some(name) => vec![("session", name)],
            None => vec![],
        };
        let counter = |name: &str, help: &str| registry.counter_with(name, help, &base);
        let gauge = |name: &str, help: &str| registry.gauge_with(name, help, &base);
        let histogram = |name: &str, help: &str, bounds: Vec<u64>| {
            registry.histogram_with(name, help, bounds, &base)
        };
        let k = machine.len();
        let mut desire = Vec::with_capacity(k);
        let mut allotment = Vec::with_capacity(k);
        let mut utilization = Vec::with_capacity(k);
        let mut waste = Vec::with_capacity(k);
        let mut response_steps = Vec::with_capacity(k);
        let mut slowdown_milli = Vec::with_capacity(k);
        for cat in 0..k {
            let label = cat.to_string();
            let mut labels: Vec<(&str, &str)> = vec![("category", &label)];
            labels.extend(base.iter().copied());
            let labels = &labels[..];
            desire.push(registry.gauge_with(
                "krad_category_desire",
                "Instantaneous desire sum over active jobs, per category",
                labels,
            ));
            allotment.push(registry.gauge_with(
                "krad_category_allotment",
                "Processors allotted at the last decision, per category",
                labels,
            ));
            utilization.push(registry.gauge_with(
                "krad_category_utilization",
                "Executed work over capacity (P * now), per category",
                labels,
            ));
            waste.push(registry.gauge_with(
                "krad_category_waste_steps",
                "Cumulative allotted-but-unused processor-steps, per category",
                labels,
            ));
            response_steps.push(registry.histogram_with(
                "krad_job_response_steps",
                "Response time of completed jobs in engine steps, by dominant category",
                exp_bounds(20),
                labels,
            ));
            slowdown_milli.push(registry.histogram_with(
                "krad_job_slowdown_milli",
                "Slowdown (response/span, milli-units) of completed jobs, by dominant category",
                exp_bounds(24),
                labels,
            ));
        }
        ServiceMetrics {
            admitted: counter("krad_jobs_admitted_total", "Jobs accepted into the queue"),
            rejected: counter(
                "krad_jobs_rejected_total",
                "Submissions refused with backpressure",
            ),
            completed: counter("krad_jobs_completed_total", "Jobs completed"),
            cancelled: counter("krad_jobs_cancelled_total", "Jobs cancelled while queued"),
            quanta: counter("krad_quanta_total", "Quantum-loop iterations executed"),
            queue_depth: gauge("krad_queue_depth", "Current submission-queue depth"),
            active_jobs: gauge("krad_active_jobs", "Jobs live in the engine"),
            virtual_time: gauge("krad_virtual_time_steps", "Engine virtual time"),
            busy_steps: gauge("krad_busy_steps", "Simulated busy steps"),
            idle_steps: gauge("krad_idle_steps", "Fast-forwarded idle steps"),
            uptime_seconds: gauge("krad_uptime_seconds", "Seconds since the daemon started"),
            draining: gauge("krad_draining", "1 while the session is draining"),
            queue_depth_at_admit: histogram(
                "krad_queue_depth_at_admit",
                "Submission-queue depth sampled at each admission",
                exp_bounds(16),
            ),
            quantum_latency_us: histogram(
                "krad_quantum_latency_us",
                "Wall-clock latency of one scheduling quantum in microseconds",
                exp_bounds(20),
            ),
            response_all: histogram(
                "krad_job_response_steps_all",
                "Response time of completed jobs in engine steps, all categories",
                exp_bounds(20),
            ),
            slowdown_all: histogram(
                "krad_job_slowdown_milli_all",
                "Slowdown (response/span, milli-units) of completed jobs, all categories",
                exp_bounds(24),
            ),
            slo_breaches: counter(
                "krad_slo_breaches_total",
                "Times mean response crossed the configured multiple of the Theorem 3 bound",
            ),
            desire,
            allotment,
            utilization,
            waste,
            response_steps,
            slowdown_milli,
            bound_work_over_p: gauge(
                "krad_bound_work_over_p",
                "Sum over categories of injected work T1(J,a)/Pa (Theorem 3 work term)",
            ),
            bound_span_release: gauge(
                "krad_bound_span_release",
                "Max over injected jobs of span + release (Theorem 3 span term)",
            ),
            bound_theorem3: gauge(
                "krad_bound_theorem3",
                "Theorem 3 makespan bound: work_over_p + (1 - 1/Pmax) * span_release",
            ),
            journal_records: counter(
                "krad_journal_records_total",
                "Records committed to the session journal",
            ),
            journal_bytes: counter(
                "krad_journal_bytes_total",
                "Bytes committed to the session journal",
            ),
            journal_fsyncs: counter(
                "krad_journal_fsync_total",
                "fsync(2) calls issued by the session journal",
            ),
            journal_fsync_us: histogram(
                "krad_journal_fsync_us",
                "Wall-clock latency of one journal fsync in microseconds",
                exp_bounds(20),
            ),
            journal_snapshots: counter(
                "krad_journal_snapshots_total",
                "Session snapshots written (each truncates the WAL)",
            ),
            journal_tail_records: gauge(
                "krad_journal_tail_records",
                "WAL records past the last snapshot (replay lag on restart)",
            ),
            recovery_duration_ms: gauge(
                "krad_recovery_duration_ms",
                "Milliseconds the last journal recovery took (0 if none)",
            ),
            registry,
            started: Instant::now(),
        }
    }

    /// The registry behind the handles (for rendering and for wiring
    /// extra instruments such as span histograms).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// When the daemon started.
    pub fn started(&self) -> Instant {
        self.started
    }

    /// Wall-clock seconds since the daemon started.
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Refresh the uptime gauge from the wall clock.
    pub fn refresh_uptime(&self) {
        self.uptime_seconds.set(self.uptime_secs());
    }

    /// Publish the per-category paper semantics for one quantum:
    /// instantaneous `desires`, the last decision's `allotted` vector,
    /// and the cumulative executed/allotted processor-step totals.
    pub fn update_per_category(
        &self,
        machine: &[u32],
        desires: &[u64],
        allotted_last: &[u32],
        executed: &[u64],
        allotted_cum: &[u64],
        now: u64,
    ) {
        for cat in 0..machine.len() {
            self.desire[cat].set_u64(desires[cat]);
            self.allotment[cat].set_u64(u64::from(allotted_last[cat]));
            let capacity = u64::from(machine[cat]) * now;
            let util = if capacity == 0 {
                0.0
            } else {
                executed[cat] as f64 / capacity as f64
            };
            self.utilization[cat].set(util);
            self.waste[cat].set_u64(allotted_cum[cat].saturating_sub(executed[cat]));
        }
    }

    /// Record one completed job's response time and slowdown into the
    /// per-category (`cat` = dominant category) and overall
    /// histograms. `span` is the job's critical-path length `T∞`;
    /// slowdown is `response / max(span, 1)` in milli-units.
    pub fn record_completion(&self, cat: usize, response: u64, span: u64) {
        let slowdown = response.saturating_mul(1000) / span.max(1);
        if let Some(h) = self.response_steps.get(cat) {
            h.record(response);
        }
        if let Some(h) = self.slowdown_milli.get(cat) {
            h.record(slowdown);
        }
        self.response_all.record(response);
        self.slowdown_all.record(slowdown);
    }

    /// Publish the Theorem 3 accumulators: `work_by_cat[α] = Σ T1(J,α)`
    /// and `span_release_max = max (T∞(J) + r(J))` over injected jobs.
    pub fn update_bounds(&self, machine: &[u32], work_by_cat: &[u64], span_release_max: u64) {
        let work_over_p: f64 = machine
            .iter()
            .zip(work_by_cat)
            .map(|(&p, &w)| w as f64 / f64::from(p.max(1)))
            .sum();
        let pmax = machine.iter().copied().max().unwrap_or(1).max(1);
        let theorem3 = work_over_p + (1.0 - 1.0 / f64::from(pmax)) * span_release_max as f64;
        self.bound_work_over_p.set(work_over_p);
        self.bound_span_release.set_u64(span_release_max);
        self.bound_theorem3.set(theorem3);
    }
}

/// Residency bookkeeping for one category.
#[derive(Debug)]
struct ModeState {
    /// Current mode and when it was entered (or last folded).
    modes: Vec<(SchedulerMode, Instant)>,
    /// Accumulated seconds `[deq, rr]` per category.
    residency: Vec<[f64; 2]>,
}

fn mode_index(mode: SchedulerMode) -> usize {
    match mode {
        SchedulerMode::Deq => 0,
        SchedulerMode::RoundRobin => 1,
    }
}

/// A [`TelemetrySink`] turning [`TelemetryEvent::ModeTransition`]
/// events into per-category wall-clock residency gauges. Every
/// category starts in DEQ (matching the scheduler's initial state);
/// [`ModeTracker::refresh`] folds the in-progress stretch so scrapes
/// are current even between transitions.
#[derive(Clone, Debug)]
pub struct ModeTracker {
    state: Arc<Mutex<ModeState>>,
    /// `krad_mode_residency_seconds{category,mode}`, `[deq, rr]` per category.
    gauges: Arc<Vec<[GaugeHandle; 2]>>,
    /// `krad_mode_transitions_total`.
    pub transitions: CounterHandle,
}

impl ModeTracker {
    /// Track `k` categories, registering the residency gauges and
    /// transition counter on `registry` (unlabeled — the implicit
    /// default session).
    pub fn new(k: usize, registry: &MetricsRegistry) -> Self {
        Self::with_session(k, registry, None)
    }

    /// Like [`ModeTracker::new`] but, when `session` is `Some`, every
    /// series additionally carries a `session="name"` label so many
    /// sessions share the families on one registry.
    pub fn with_session(k: usize, registry: &MetricsRegistry, session: Option<&str>) -> Self {
        let now = Instant::now();
        let mut gauges = Vec::with_capacity(k);
        for cat in 0..k {
            let label = cat.to_string();
            let gauge = |mode: SchedulerMode| {
                let mut labels: Vec<(&str, &str)> =
                    vec![("category", &label), ("mode", mode.label())];
                if let Some(name) = session {
                    labels.push(("session", name));
                }
                registry.gauge_with(
                    "krad_mode_residency_seconds",
                    "Wall-clock seconds each category has spent in DEQ vs round-robin",
                    &labels,
                )
            };
            gauges.push([gauge(SchedulerMode::Deq), gauge(SchedulerMode::RoundRobin)]);
        }
        let mut transition_labels: Vec<(&str, &str)> = Vec::new();
        if let Some(name) = session {
            transition_labels.push(("session", name));
        }
        ModeTracker {
            state: Arc::new(Mutex::new(ModeState {
                modes: vec![(SchedulerMode::Deq, now); k],
                residency: vec![[0.0; 2]; k],
            })),
            gauges: Arc::new(gauges),
            transitions: registry.counter_with(
                "krad_mode_transitions_total",
                "DEQ/RR mode switches observed",
                &transition_labels,
            ),
        }
    }

    /// Fold the in-progress stretch of every category into its gauge.
    pub fn refresh(&self) {
        let mut st = self.state.lock().expect("mode tracker lock");
        let now = Instant::now();
        for cat in 0..st.modes.len() {
            let (mode, since) = st.modes[cat];
            st.residency[cat][mode_index(mode)] += now.duration_since(since).as_secs_f64();
            st.modes[cat] = (mode, now);
            self.gauges[cat][0].set(st.residency[cat][0]);
            self.gauges[cat][1].set(st.residency[cat][1]);
        }
    }

    /// Residency seconds `[deq, rr]` for one category, folded to now.
    pub fn residency(&self, cat: usize) -> [f64; 2] {
        self.refresh();
        self.state.lock().expect("mode tracker lock").residency[cat]
    }
}

impl TelemetrySink for ModeTracker {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: TelemetryEvent) {
        self.record_ref(&event);
    }

    fn record_ref(&mut self, event: &TelemetryEvent) {
        let TelemetryEvent::ModeTransition { category, to, .. } = *event else {
            return;
        };
        let cat = usize::from(category);
        let mut st = self.state.lock().expect("mode tracker lock");
        if cat >= st.modes.len() {
            return;
        }
        let now = Instant::now();
        // Fold the stretch spent in the *tracked* mode (robust even if
        // an event was dropped and `from` disagrees).
        let (mode, since) = st.modes[cat];
        st.residency[cat][mode_index(mode)] += now.duration_since(since).as_secs_f64();
        st.modes[cat] = (to, now);
        self.gauges[cat][0].set(st.residency[cat][0]);
        self.gauges[cat][1].set(st.residency[cat][1]);
        self.transitions.incr();
    }

    fn interest(&self) -> u32 {
        ktelemetry::interest::MODE_TRANSITION
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_category_gauges_follow_the_engine_mirrors() {
        let m = ServiceMetrics::new(&[4, 2]);
        m.update_per_category(&[4, 2], &[7, 1], &[4, 1], &[8, 3], &[10, 3], 4);
        assert_eq!(m.desire[0].get(), 7.0);
        assert_eq!(m.desire[1].get(), 1.0);
        assert_eq!(m.allotment[0].get(), 4.0);
        assert_eq!(m.utilization[0].get(), 8.0 / 16.0);
        assert_eq!(m.utilization[1].get(), 3.0 / 8.0);
        assert_eq!(m.waste[0].get(), 2.0);
        assert_eq!(m.waste[1].get(), 0.0);
        // now = 0 divides nothing.
        m.update_per_category(&[4, 2], &[0, 0], &[0, 0], &[0, 0], &[0, 0], 0);
        assert_eq!(m.utilization[0].get(), 0.0);
    }

    #[test]
    fn completions_feed_response_and_slowdown_histograms() {
        let m = ServiceMetrics::new(&[4, 2]);
        // Response 12 on a span-4 job of category 1 → slowdown 3000m.
        m.record_completion(1, 12, 4);
        // Span 0 clamps to 1 instead of dividing by zero.
        m.record_completion(0, 5, 0);
        assert_eq!(m.response_steps[1].count(), 1);
        assert_eq!(m.slowdown_milli[1].snapshot().quantile(1.0), 4096.0);
        assert_eq!(m.response_all.count(), 2);
        assert_eq!(m.response_all.mean(), 8.5);
        assert_eq!(m.slowdown_all.mean(), (3000.0 + 5000.0) / 2.0);
        // Out-of-range categories still land in the overall series.
        m.record_completion(9, 2, 1);
        assert_eq!(m.response_all.count(), 3);
        let text = m.registry().render();
        assert!(text.contains("krad_job_response_steps_bucket{category=\"1\""));
        assert!(text.contains("krad_job_slowdown_milli_all_count 3"));
        assert!(text.contains("krad_slo_breaches_total 0"));
    }

    #[test]
    fn theorem3_bound_combines_both_terms() {
        let m = ServiceMetrics::new(&[4, 2]);
        // Σα T1/Pα = 8/4 + 6/2 = 5; Pmax = 4 → bound = 5 + 0.75 * 12.
        m.update_bounds(&[4, 2], &[8, 6], 12);
        assert_eq!(m.bound_work_over_p.get(), 5.0);
        assert_eq!(m.bound_span_release.get(), 12.0);
        assert_eq!(m.bound_theorem3.get(), 5.0 + 0.75 * 12.0);
        let text = m.registry().render();
        assert!(text.contains("krad_bound_theorem3 14"));
    }

    #[test]
    fn mode_tracker_accumulates_residency_and_counts_transitions() {
        let m = ServiceMetrics::new(&[2, 2]);
        let tracker = ModeTracker::new(2, m.registry());
        let mut sink = tracker.clone();
        assert!(sink.enabled());
        sink.record(TelemetryEvent::ModeTransition {
            t: 3,
            category: 0,
            from: SchedulerMode::Deq,
            to: SchedulerMode::RoundRobin,
            active_jobs: 5,
        });
        sink.record(TelemetryEvent::ModeTransition {
            t: 9,
            category: 0,
            from: SchedulerMode::RoundRobin,
            to: SchedulerMode::Deq,
            active_jobs: 1,
        });
        assert_eq!(tracker.transitions.get(), 2);
        let r0 = tracker.residency(0);
        assert!(r0[0] >= 0.0 && r0[1] >= 0.0);
        // Category 1 never transitioned: all residency is DEQ.
        let r1 = tracker.residency(1);
        assert_eq!(r1[1], 0.0);
        let text = m.registry().render();
        assert!(text.contains("krad_mode_residency_seconds{category=\"0\",mode=\"rr\"}"));
        assert!(text.contains("krad_mode_transitions_total 2"));
        // Out-of-range categories are ignored, not a panic.
        sink.record(TelemetryEvent::ModeTransition {
            t: 10,
            category: 7,
            from: SchedulerMode::Deq,
            to: SchedulerMode::RoundRobin,
            active_jobs: 1,
        });
        assert_eq!(tracker.transitions.get(), 2);
    }

    #[test]
    fn sessions_share_one_registry_with_session_labels() {
        let default = ServiceMetrics::new(&[2, 1]);
        let a = ServiceMetrics::with_registry(default.registry(), &[2, 1], Some("tenant-a"));
        let b = ServiceMetrics::with_registry(default.registry(), &[2, 1], Some("tenant-b"));
        default.admitted.add(3);
        a.admitted.add(5);
        b.admitted.incr();
        a.record_completion(0, 8, 2);
        let text = default.registry().render();
        // The default session stays byte-compatible with single-tenant
        // scrapes: an unlabeled series in the shared family.
        assert!(text.contains("krad_jobs_admitted_total 3"), "{text}");
        assert!(
            text.contains("krad_jobs_admitted_total{session=\"tenant-a\"} 5"),
            "{text}"
        );
        assert!(
            text.contains("krad_jobs_admitted_total{session=\"tenant-b\"} 1"),
            "{text}"
        );
        // Per-category series keep `category` first, `session` after.
        assert!(
            text.contains("krad_job_response_steps_bucket{category=\"0\",session=\"tenant-a\""),
            "{text}"
        );
        // One family header even with three sessions registered.
        assert_eq!(
            text.matches("# TYPE krad_jobs_admitted_total counter")
                .count(),
            1
        );
        // Handles are isolated: tenant-b saw nothing from tenant-a.
        assert_eq!(b.response_all.count(), 0);
        assert_eq!(a.response_all.count(), 1);
        // Session-labeled mode trackers coexist too.
        let tracker = ModeTracker::with_session(2, default.registry(), Some("tenant-a"));
        tracker.refresh();
        let text = default.registry().render();
        assert!(
            text.contains(
                "krad_mode_residency_seconds{category=\"0\",mode=\"deq\",session=\"tenant-a\"}"
            ),
            "{text}"
        );
        assert!(
            text.contains("krad_mode_transitions_total{session=\"tenant-a\"} 0"),
            "{text}"
        );
    }

    #[test]
    fn non_mode_events_are_ignored() {
        let m = ServiceMetrics::new(&[1]);
        let tracker = ModeTracker::new(1, m.registry());
        let mut sink = tracker.clone();
        sink.record(TelemetryEvent::RunStart {
            scheduler: "x".into(),
            jobs: 1,
            categories: 1,
        });
        assert_eq!(tracker.transitions.get(), 0);
    }
}
