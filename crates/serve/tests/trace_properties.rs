//! ktrace property tests: for every scheduler × both engine clock
//! policies, a live session's assembled span trees must (a) satisfy
//! the span-tree nesting invariants against the jobs' known work
//! (admit ≤ inject ≤ first-allotment ≤ completion, segments disjoint
//! and summing to the job's tasks) and (b) be byte-for-byte identical
//! to the traces assembled from the session's deterministic offline
//! replay — the canonical-encoding contract `ktelemetry::JobTrace`
//! documents.

use kbaselines::SchedulerKind;
use kdag::DagSpec;
use kserve::protocol::Response;
use kserve::server::{Server, ServerConfig};
use kserve::Client;
use ksim::TimePolicy;
use ktelemetry::{assemble_traces, JobTrace, TelemetryHandle};
use kworkloads::mixes::{batched_mix, MixConfig};
use kworkloads::rng_for;

fn some_dags(n: usize, seed: u64) -> Vec<DagSpec> {
    let mut rng = rng_for(seed, 0x7ACE);
    batched_mix(&mut rng, &MixConfig::new(2, n, 18))
        .iter()
        .map(|j| DagSpec::from_dag(&j.dag))
        .collect()
}

/// Run one live session (8 jobs, single submission so admission order
/// is engine order), drain it, and return the live-assembled traces,
/// the replay-assembled traces, and each job's total task count.
fn live_and_replayed(
    kind: SchedulerKind,
    policy: TimePolicy,
) -> (Vec<JobTrace>, Vec<JobTrace>, Vec<u64>) {
    let (tel, rec) = TelemetryHandle::recording();
    let server = Server::start(ServerConfig {
        machine: vec![5, 3],
        scheduler: kind,
        time_policy: policy,
        seed: 13,
        telemetry: tel,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("client connects");

    let dags = some_dags(8, 21);
    let works: Vec<u64> = dags
        .iter()
        .map(|d| {
            d.build()
                .expect("generated DAG is valid")
                .work_by_category()
                .iter()
                .sum()
        })
        .collect();
    let (ack, events) = client.submit_watch(dags).expect("watched submit runs");
    assert!(matches!(ack, Response::Submitted { .. }));
    assert_eq!(events.len(), 8);

    let drain = match client.drain().expect("drain runs") {
        Response::Drained(d) => d,
        other => panic!("expected drained, got {other:?}"),
    };
    server.join();

    let live = assemble_traces(&rec.lock().unwrap().take());

    let (replay_tel, replay_rec) = TelemetryHandle::recording();
    drain
        .trace
        .replay_instrumented(replay_tel)
        .expect("offline replay runs");
    let replayed = assemble_traces(&replay_rec.lock().unwrap().take());

    (live, replayed, works)
}

#[test]
fn span_trees_nest_and_match_replay_for_every_scheduler_and_clock() {
    for kind in SchedulerKind::ALL {
        for policy in [TimePolicy::UnitStep, TimePolicy::EventDriven] {
            let (live, replayed, works) = live_and_replayed(kind, policy);
            assert_eq!(
                live.len(),
                replayed.len(),
                "{kind:?}/{policy:?}: live and replayed sessions saw different job sets"
            );
            assert_eq!(live.len(), works.len());
            for (i, (l, r)) in live.iter().zip(&replayed).enumerate() {
                // Nesting invariants against the job's known work.
                l.well_formed(works[i]).unwrap_or_else(|e| {
                    panic!("{kind:?}/{policy:?} job {i}: live trace malformed: {e}")
                });
                // Live == offline replay, byte for byte.
                assert_eq!(
                    l.canonical_json(),
                    r.canonical_json(),
                    "{kind:?}/{policy:?} job {i}: live and replayed traces diverge"
                );
            }
        }
    }
}

#[test]
fn clock_policies_assemble_identical_traces() {
    // The unit-step and event-driven clocks must tell the same
    // lifecycle story for the same session (the engine's clock-policy
    // equivalence, observed at the span-tree level).
    let (unit, _, _) = live_and_replayed(SchedulerKind::KRad, TimePolicy::UnitStep);
    let (event, _, _) = live_and_replayed(SchedulerKind::KRad, TimePolicy::EventDriven);
    assert_eq!(unit.len(), event.len());
    for (u, e) in unit.iter().zip(&event) {
        assert_eq!(u.canonical_json(), e.canonical_json());
    }
}
