//! Multi-tenant swarm exercise: eight concurrent named sessions (one
//! per scheduler in the canonical table), four closed-loop clients
//! each, with opens, closes, and cancels interleaved while the other
//! tenants keep serving. Every session's drain/close report must
//! replay byte-for-byte through the offline batch path, and closing
//! one tenant must not perturb another's recorded history.

use kbaselines::SchedulerKind;
use kdag::{DagSpec, SelectionPolicy};
use kserve::protocol::{Event, Response, SessionSpec};
use kserve::server::{Server, ServerConfig};
use kserve::Client;
use kworkloads::mixes::{batched_mix, MixConfig};
use kworkloads::rng_for;

const CLIENTS_PER_SESSION: usize = 4;
const CHUNKS_PER_CLIENT: usize = 3;
const JOBS_PER_CHUNK: usize = 4;

fn swarm_config(journal_dir: Option<std::path::PathBuf>) -> ServerConfig {
    ServerConfig {
        machine: vec![6, 3],
        scheduler: SchedulerKind::KRad,
        policy: SelectionPolicy::Fifo,
        quantum: 2,
        seed: 42,
        queue_capacity: 1024,
        max_inflight: 8192,
        journal_dir,
        ..ServerConfig::default()
    }
}

fn some_dags(n: usize, seed: u64) -> Vec<DagSpec> {
    let mut rng = rng_for(seed, 0x5A4A);
    batched_mix(&mut rng, &MixConfig::new(2, n, 12))
        .iter()
        .map(|j| DagSpec::from_dag(&j.dag))
        .collect()
}

fn spec_for(kind: SchedulerKind, idx: usize) -> SessionSpec {
    SessionSpec {
        scheduler: Some(kind.label().to_string()),
        quantum: Some(1 + (idx as u64 % 3)),
        seed: Some(100 + idx as u64),
        ..SessionSpec::default()
    }
}

fn session_name(kind: SchedulerKind) -> String {
    format!("s-{}", kind.label())
}

/// One closed-loop tenant client: watched chunks plus a cancel
/// attempt. Returns (accepted, cancelled) counts.
fn run_tenant_client(addr: &str, session: &str, seed: u64) -> (u64, u64) {
    let mut client = Client::connect(addr).expect("tenant client connects");
    let mut accepted = 0u64;
    for chunk in 0..CHUNKS_PER_CLIENT {
        let dags = some_dags(JOBS_PER_CHUNK, seed * 31 + chunk as u64);
        let (ack, events) = client
            .submit_watch_to(session, dags)
            .expect("watched submit runs");
        match ack {
            Response::Submitted { jobs, .. } => {
                assert_eq!(jobs.len(), JOBS_PER_CHUNK);
                accepted += jobs.len() as u64;
            }
            other => panic!("swarm submit should be admitted, got {other:?}"),
        }
        assert_eq!(events.len(), JOBS_PER_CHUNK, "every watched job settles");
        assert!(events.iter().all(|ev| matches!(ev, Event::JobDone { .. })));
    }
    // A cancel race: the job is either still queued (cancelled) or was
    // injected before we got back to it (explicit refusal) — both are
    // well-defined outcomes, and the drain ledger must reconcile.
    let mut cancelled = 0u64;
    match client
        .submit_to(session, some_dags(1, seed * 97 + 7))
        .expect("cancel-bait submit runs")
    {
        Response::Submitted { jobs, .. } => {
            accepted += 1;
            match client.cancel_in(session, jobs[0]).expect("cancel runs") {
                Response::Cancelled { .. } => cancelled = 1,
                Response::Error { message } => {
                    assert!(
                        message.contains("not cancellable"),
                        "unexpected cancel refusal: {message}"
                    );
                }
                other => panic!("expected cancel outcome, got {other:?}"),
            }
        }
        other => panic!("cancel-bait should be admitted, got {other:?}"),
    }
    (accepted, cancelled)
}

#[test]
fn eight_sessions_replay_and_close_isolation() {
    let dir = std::env::temp_dir().join(format!("kswarm-e2e-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let server = Server::start(swarm_config(Some(dir.join("journal")))).expect("server starts");
    let addr = server.addr().to_string();

    // Open eight tenants, one per scheduler in the canonical table.
    let mut control = Client::connect(&addr).expect("control connects");
    for (idx, kind) in SchedulerKind::ALL.iter().enumerate() {
        let name = session_name(*kind);
        match control
            .open(&name, spec_for(*kind, idx))
            .expect("open runs")
        {
            Response::Opened {
                session,
                scheduler,
                existing,
                ..
            } => {
                assert_eq!(session, name);
                assert_eq!(scheduler, kind.label());
                assert!(!existing, "fresh open must not report attach");
            }
            other => panic!("expected opened, got {other:?}"),
        }
    }

    // Re-opening with the same spec attaches; a drifted spec is refused.
    match control
        .open(
            &session_name(SchedulerKind::Equi),
            spec_for(SchedulerKind::Equi, 1),
        )
        .expect("re-open runs")
    {
        Response::Opened { existing, .. } => assert!(existing, "same spec must attach"),
        other => panic!("expected attach, got {other:?}"),
    }
    match control
        .open(
            &session_name(SchedulerKind::Equi),
            SessionSpec {
                quantum: Some(99),
                ..SessionSpec::default()
            },
        )
        .expect("conflicting open runs")
    {
        Response::Error { message } => assert!(
            message.contains("conflicts with the live session configuration"),
            "unexpected conflict message: {message}"
        ),
        other => panic!("conflicting open must be refused, got {other:?}"),
    }

    // 8 sessions x 4 clients, churning concurrently.
    let mut handles = Vec::new();
    for (idx, kind) in SchedulerKind::ALL.iter().enumerate() {
        for c in 0..CLIENTS_PER_SESSION {
            let addr = addr.clone();
            let name = session_name(*kind);
            let seed = (idx * CLIENTS_PER_SESSION + c) as u64 + 1;
            handles.push(std::thread::spawn(move || {
                run_tenant_client(&addr, &name, seed)
            }));
        }
    }

    // Interleave short-lived tenants while the eight are under load:
    // open, serve, close — then the same name opens fresh again (its
    // journal was destroyed with the session).
    for round in 0..2 {
        match control
            .open("ephemeral", spec_for(SchedulerKind::GreedyFcfs, 4))
            .expect("ephemeral open runs")
        {
            Response::Opened { existing, .. } => {
                assert!(!existing, "round {round}: a closed name must open fresh")
            }
            other => panic!("expected opened, got {other:?}"),
        }
        let (ack, events) = control
            .submit_watch_to("ephemeral", some_dags(6, 400 + round))
            .expect("ephemeral submit runs");
        assert!(matches!(ack, Response::Submitted { .. }));
        assert_eq!(events.len(), 6);
        match control.close("ephemeral").expect("ephemeral close runs") {
            Response::Closed { session, report } => {
                assert_eq!(session, "ephemeral");
                assert_eq!(report.admitted, 6);
                assert_eq!(report.completed, 6);
                report
                    .trace
                    .verify()
                    .expect("ephemeral trace replays byte-for-byte");
            }
            other => panic!("expected closed, got {other:?}"),
        }
    }

    // Tally the swarm: every offered job was acked, every ack settled.
    let mut per_session = std::collections::HashMap::<String, (u64, u64)>::new();
    for (i, h) in handles.into_iter().enumerate() {
        let kind = SchedulerKind::ALL[i / CLIENTS_PER_SESSION];
        let (accepted, cancelled) = h.join().expect("tenant client thread");
        let entry = per_session.entry(session_name(kind)).or_insert((0, 0));
        entry.0 += accepted;
        entry.1 += cancelled;
    }

    // Close-isolation: snapshot one tenant, close its neighbour, and
    // require the survivor's ledger to be untouched.
    let survivor = session_name(SchedulerKind::KRad);
    let victim = session_name(SchedulerKind::Drf);
    let before = control
        .stats_reply_of(&survivor)
        .expect("survivor stats run");
    assert_eq!(before.session, survivor);
    match control.close(&victim).expect("victim close runs") {
        Response::Closed { report, .. } => {
            let (accepted, cancelled) = per_session[&victim];
            assert_eq!(report.admitted, accepted);
            assert_eq!(report.cancelled, cancelled);
            assert_eq!(report.completed + report.cancelled, report.admitted);
            report.trace.verify().expect("victim trace replays");
        }
        other => panic!("expected closed, got {other:?}"),
    }
    let after = control
        .stats_reply_of(&survivor)
        .expect("survivor stats re-run");
    assert_eq!(
        after.admitted, before.admitted,
        "close leaked across tenants"
    );
    assert_eq!(after.completed, before.completed);
    assert_eq!(after.cancelled, before.cancelled);

    // The registry is visible in both stats and the metrics text.
    assert!(
        after.sessions >= 7,
        "registry undercounts: {}",
        after.sessions
    );
    let metrics = control.metrics().expect("metrics run");
    assert!(metrics.contains("kswarm_sessions_live"));
    assert!(
        metrics.contains(&format!("session=\"{survivor}\"")),
        "per-session metric labels missing"
    );
    assert!(
        !metrics.contains(&format!("session=\"{victim}\"")),
        "closed tenant still exported"
    );

    // Every remaining tenant drains to a byte-for-byte replayable
    // trace with a reconciled ledger — all eight schedulers covered.
    for kind in SchedulerKind::ALL {
        let name = session_name(kind);
        if name == victim {
            continue;
        }
        let (accepted, cancelled) = per_session[&name];
        let drain = match control.drain_session(&name).expect("session drain runs") {
            Response::Drained(d) => d,
            other => panic!("expected drained for {name}, got {other:?}"),
        };
        assert_eq!(drain.admitted, accepted, "{name} ledger drifted");
        assert_eq!(drain.cancelled, cancelled, "{name} cancel ledger drifted");
        assert_eq!(drain.completed + drain.cancelled, drain.admitted);
        assert_eq!(drain.trace.scheduler, kind);
        drain
            .trace
            .verify()
            .unwrap_or_else(|e| panic!("{name} replay diverged: {e}"));
    }

    // Global drain shuts the daemon down cleanly.
    match control.drain().expect("global drain runs") {
        Response::Drained(d) => d.trace.verify().expect("default trace replays"),
        other => panic!("expected drained, got {other:?}"),
    };
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}
