//! End-to-end loopback exercise of the daemon: concurrent clients,
//! explicit backpressure, graceful drain, and the deterministic
//! replay bridge (the recorded trace must reproduce the live per-job
//! completion times byte for byte through the offline batch path).

use kbaselines::SchedulerKind;
use kdag::{DagSpec, SelectionPolicy};
use kserve::loadgen::{run_loadgen, ArrivalKind, LoadgenConfig};
use kserve::protocol::{Request, Response, ScenarioRef};
use kserve::replay::SessionTrace;
use kserve::server::{Server, ServerConfig};
use kserve::Client;
use kworkloads::mixes::{batched_mix, MixConfig};
use kworkloads::rng_for;

fn test_config() -> ServerConfig {
    ServerConfig {
        machine: vec![6, 3],
        scheduler: SchedulerKind::KRad,
        policy: SelectionPolicy::Fifo,
        quantum: 2,
        seed: 42,
        queue_capacity: 16,
        max_inflight: 4096,
        ..ServerConfig::default()
    }
}

fn some_dags(n: usize, seed: u64) -> Vec<DagSpec> {
    let mut rng = rng_for(seed, 0xE2E);
    batched_mix(&mut rng, &MixConfig::new(2, n, 20))
        .iter()
        .map(|j| DagSpec::from_dag(&j.dag))
        .collect()
}

#[test]
fn concurrent_clients_drain_and_replay_byte_for_byte() {
    let server = Server::start(test_config()).expect("server starts");
    let addr = server.addr().to_string();

    // A burst larger than the queue capacity is refused outright —
    // backpressure is an explicit reply, not a hang or a drop.
    let mut probe = Client::connect(&addr).expect("probe connects");
    match probe.submit(some_dags(64, 1)).expect("submit runs") {
        Response::Rejected {
            reason, capacity, ..
        } => {
            assert_eq!(reason, "queue full");
            assert_eq!(capacity, 16);
        }
        other => panic!("oversized burst should be rejected, got {other:?}"),
    }

    // Four concurrent closed-loop clients, 50 jobs each: every one of
    // the 200 offered jobs is either acknowledged or rejected with
    // backpressure, and every accepted job completes (watch streams).
    let cfg = LoadgenConfig {
        clients: 4,
        jobs_per_client: 50,
        chunk: 5,
        arrivals: ArrivalKind::Burst,
        seed: 7,
        k: 2,
        mean_size: 20,
        ..LoadgenConfig::default()
    };
    let report = run_loadgen(&addr, &cfg).expect("loadgen runs");
    assert_eq!(report.submitted, 200);
    assert_eq!(
        report.accepted + report.rejected,
        200,
        "every offered job is acked or explicitly rejected"
    );
    assert!(report.accepted > 0, "some jobs must get through");
    assert_eq!(report.completed, report.accepted);
    assert_eq!(report.responses.len() as u64, report.completed);
    assert!(report.responses.iter().all(|&r| r >= 0.0));

    // Server-side scenario expansion rides the same admission path.
    let mut client = Client::connect(&addr).expect("client connects");
    let scenario_jobs = match client
        .submit_scenario(ScenarioRef {
            name: "pipeline".into(),
            jobs: 4,
            seed: 3,
        })
        .expect("scenario submit runs")
    {
        Response::Submitted { jobs } => jobs.len() as u64,
        other => panic!("scenario should be admitted, got {other:?}"),
    };
    assert_eq!(scenario_jobs, 4);

    // Status sees every admitted job and no draining yet.
    match client.status().expect("status runs") {
        Response::Status(st) => {
            assert!(!st.draining);
            assert_eq!(st.jobs.len() as u64, report.accepted + scenario_jobs);
        }
        other => panic!("expected status, got {other:?}"),
    }

    // Graceful drain: in-flight work finishes, counters reconcile,
    // and the session trace is the full arrival record.
    let drain = match client.drain().expect("drain runs") {
        Response::Drained(d) => d,
        other => panic!("expected drained, got {other:?}"),
    };
    assert_eq!(drain.admitted, report.accepted + scenario_jobs);
    assert_eq!(drain.completed, drain.admitted);
    assert_eq!(drain.cancelled, 0);
    assert_eq!(drain.rejected, 64 + report.rejected);
    assert_eq!(drain.trace.jobs.len() as u64, drain.admitted);
    assert_eq!(drain.trace.completions.len() as u64, drain.completed);
    // Releases are nondecreasing in injection order — the invariant
    // that makes the offline stable sort the identity on replay.
    assert!(drain
        .trace
        .jobs
        .windows(2)
        .all(|w| w[0].release <= w[1].release));

    // The replay bridge: run the recorded arrivals through the
    // offline batch simulator and compare completion vectors byte for
    // byte (after a wire round trip, like a real audit would).
    let wire_trace = SessionTrace::decode(&drain.trace.encode()).expect("trace round-trips");
    assert_eq!(wire_trace, drain.trace);
    let canon = wire_trace
        .verify()
        .expect("offline replay reproduces the live session");
    assert_eq!(
        canon,
        SessionTrace::canonical_completions(&drain.trace.completions)
    );

    // Post-drain: stats on the still-open connection reconcile, and
    // the server shuts down cleanly.
    match client.stats().expect("stats runs") {
        Response::Stats(stats) => {
            assert_eq!(stats.admitted, drain.admitted);
            assert_eq!(stats.completed, drain.completed);
            assert_eq!(stats.rejected, drain.rejected);
            assert_eq!(stats.queue_depth, 0);
            assert!(stats.busy_steps > 0);
            assert_eq!(stats.idle_steps, 0, "work-conserving: no virtual idling");
        }
        other => panic!("expected stats, got {other:?}"),
    }
    server.join();
}

#[test]
fn watch_streams_completions_in_virtual_time() {
    let server = Server::start(test_config()).expect("server starts");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("client connects");

    let dags = some_dags(6, 9);
    let (ack, events) = client.submit_watch(dags).expect("watched submit runs");
    let ids = match ack {
        Response::Submitted { jobs } => jobs,
        other => panic!("expected ack, got {other:?}"),
    };
    assert_eq!(events.len(), ids.len());
    for ev in &events {
        match ev {
            kserve::Event::JobDone {
                job,
                release,
                completion,
                response,
            } => {
                assert!(ids.contains(job));
                assert_eq!(completion - release, *response);
                assert!(completion > release);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    let drain = match client.drain().expect("drain runs") {
        Response::Drained(d) => d,
        other => panic!("expected drained, got {other:?}"),
    };
    drain.trace.verify().expect("replay matches");
    server.join();
}

#[cfg(unix)]
#[test]
fn unix_socket_speaks_the_same_protocol() {
    use std::io::{BufRead, BufReader, Write};

    let path = std::env::temp_dir().join(format!("kserve-test-{}.sock", std::process::id()));
    let cfg = ServerConfig {
        unix_path: Some(path.clone()),
        ..test_config()
    };
    let server = Server::start(cfg).expect("server starts");

    let stream = std::os::unix::net::UnixStream::connect(&path).expect("unix connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    writeln!(writer, "{}", Request::Status.encode()).expect("write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    match Response::decode(line.trim()).expect("decode") {
        Response::Status(st) => assert_eq!(st.jobs.len(), 0),
        other => panic!("expected status, got {other:?}"),
    }

    writeln!(writer, "{}", Request::Drain.encode()).expect("write");
    line.clear();
    reader.read_line(&mut line).expect("read");
    let drain = match Response::decode(line.trim()).expect("decode") {
        Response::Drained(d) => d,
        other => panic!("expected drained, got {other:?}"),
    };
    assert_eq!(drain.admitted, 0);
    assert!(drain.trace.jobs.is_empty());
    drain.trace.verify().expect("empty session replays");
    server.join();
    assert!(!path.exists(), "socket file is cleaned up");
}
