//! End-to-end loopback exercise of the daemon: concurrent clients,
//! explicit backpressure, graceful drain, and the deterministic
//! replay bridge (the recorded trace must reproduce the live per-job
//! completion times byte for byte through the offline batch path).

use kbaselines::SchedulerKind;
use kdag::{DagSpec, SelectionPolicy};
use kserve::loadgen::{run_loadgen, ArrivalKind, LoadgenConfig};
use kserve::protocol::{Request, Response, ScenarioRef};
use kserve::replay::SessionTrace;
use kserve::server::{Server, ServerConfig};
use kserve::Client;
use kworkloads::mixes::{batched_mix, MixConfig};
use kworkloads::rng_for;

fn test_config() -> ServerConfig {
    ServerConfig {
        machine: vec![6, 3],
        scheduler: SchedulerKind::KRad,
        policy: SelectionPolicy::Fifo,
        quantum: 2,
        seed: 42,
        queue_capacity: 16,
        max_inflight: 4096,
        ..ServerConfig::default()
    }
}

fn some_dags(n: usize, seed: u64) -> Vec<DagSpec> {
    let mut rng = rng_for(seed, 0xE2E);
    batched_mix(&mut rng, &MixConfig::new(2, n, 20))
        .iter()
        .map(|j| DagSpec::from_dag(&j.dag))
        .collect()
}

#[test]
fn concurrent_clients_drain_and_replay_byte_for_byte() {
    let server = Server::start(test_config()).expect("server starts");
    let addr = server.addr().to_string();

    // A burst larger than the queue capacity is refused outright —
    // backpressure is an explicit reply, not a hang or a drop.
    let mut probe = Client::connect(&addr).expect("probe connects");

    // A v2 server identifies itself: protocol version, scheduler, and
    // the engine clock policy serving the session.
    let hello = probe.hello_reply().expect("hello runs");
    assert_eq!(hello.version, kserve::PROTOCOL_VERSION);
    assert_eq!(hello.scheduler, "k-rad");
    assert_eq!(hello.time_policy, "event");
    assert_eq!(hello.quantum, 2);

    match probe.submit(some_dags(64, 1)).expect("submit runs") {
        Response::Rejected {
            reason, capacity, ..
        } => {
            assert_eq!(reason, "queue full");
            assert_eq!(capacity, 16);
        }
        other => panic!("oversized burst should be rejected, got {other:?}"),
    }

    // Four concurrent closed-loop clients, 50 jobs each: every one of
    // the 200 offered jobs is either acknowledged or rejected with
    // backpressure, and every accepted job completes (watch streams).
    let cfg = LoadgenConfig {
        clients: 4,
        jobs_per_client: 50,
        chunk: 5,
        arrivals: ArrivalKind::Burst,
        seed: 7,
        k: 2,
        mean_size: 20,
        ..LoadgenConfig::default()
    };
    let report = run_loadgen(&addr, &cfg).expect("loadgen runs");
    assert_eq!(report.submitted, 200);
    assert_eq!(
        report.accepted + report.rejected,
        200,
        "every offered job is acked or explicitly rejected"
    );
    assert!(report.accepted > 0, "some jobs must get through");
    assert_eq!(report.completed, report.accepted);
    assert_eq!(report.responses.len() as u64, report.completed);
    assert!(report.responses.iter().all(|&r| r >= 0.0));

    // Server-side scenario expansion rides the same admission path.
    let mut client = Client::connect(&addr).expect("client connects");
    let scenario_jobs = match client
        .submit_scenario(ScenarioRef {
            name: "pipeline".into(),
            jobs: 4,
            seed: 3,
        })
        .expect("scenario submit runs")
    {
        Response::Submitted { jobs, .. } => jobs.len() as u64,
        other => panic!("scenario should be admitted, got {other:?}"),
    };
    assert_eq!(scenario_jobs, 4);

    // Status sees every admitted job and no draining yet.
    match client.status().expect("status runs") {
        Response::Status(st) => {
            assert!(!st.draining);
            assert_eq!(st.jobs.len() as u64, report.accepted + scenario_jobs);
        }
        other => panic!("expected status, got {other:?}"),
    }

    // Graceful drain: in-flight work finishes, counters reconcile,
    // and the session trace is the full arrival record.
    let drain = match client.drain().expect("drain runs") {
        Response::Drained(d) => d,
        other => panic!("expected drained, got {other:?}"),
    };
    assert_eq!(drain.admitted, report.accepted + scenario_jobs);
    assert_eq!(drain.completed, drain.admitted);
    assert_eq!(drain.cancelled, 0);
    assert_eq!(drain.rejected, 64 + report.rejected);
    assert_eq!(drain.trace.jobs.len() as u64, drain.admitted);
    assert_eq!(drain.trace.completions.len() as u64, drain.completed);
    // Releases are nondecreasing in injection order — the invariant
    // that makes the offline stable sort the identity on replay.
    assert!(drain
        .trace
        .jobs
        .windows(2)
        .all(|w| w[0].release <= w[1].release));

    // The replay bridge: run the recorded arrivals through the
    // offline batch simulator and compare completion vectors byte for
    // byte (after a wire round trip, like a real audit would).
    let wire_trace = SessionTrace::decode(&drain.trace.encode()).expect("trace round-trips");
    assert_eq!(wire_trace, drain.trace);
    let canon = wire_trace
        .verify()
        .expect("offline replay reproduces the live session");
    assert_eq!(
        canon,
        SessionTrace::canonical_completions(&drain.trace.completions)
    );

    // Post-drain: stats on the still-open connection reconcile, and
    // the server shuts down cleanly.
    match client.stats().expect("stats runs") {
        Response::Stats(stats) => {
            assert_eq!(stats.admitted, drain.admitted);
            assert_eq!(stats.completed, drain.completed);
            assert_eq!(stats.rejected, drain.rejected);
            assert_eq!(stats.queue_depth, 0);
            assert!(stats.busy_steps > 0);
            assert_eq!(stats.idle_steps, 0, "work-conserving: no virtual idling");
            assert_eq!(stats.version, kserve::PROTOCOL_VERSION);
            assert_eq!(stats.time_policy, "event");
        }
        other => panic!("expected stats, got {other:?}"),
    }
    server.join();
}

#[test]
fn watch_streams_completions_in_virtual_time() {
    let server = Server::start(test_config()).expect("server starts");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("client connects");

    let dags = some_dags(6, 9);
    let (ack, events) = client.submit_watch(dags).expect("watched submit runs");
    let (ids, trace_ids) = match ack {
        Response::Submitted { jobs, trace_ids } => (jobs, trace_ids),
        other => panic!("expected ack, got {other:?}"),
    };
    assert_eq!(events.len(), ids.len());
    assert_eq!(trace_ids.len(), ids.len());
    for ev in &events {
        match ev {
            kserve::Event::JobDone {
                job,
                release,
                completion,
                response,
                trace_id,
            } => {
                assert!(ids.contains(job));
                assert_eq!(completion - release, *response);
                assert!(completion > release);
                // The streamed completion carries the same trace id
                // the submission ack minted for this job.
                let pos = ids.iter().position(|id| id == job).unwrap();
                assert_eq!(trace_id, &trace_ids[pos]);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    // The trace verb sees the drained lifecycle end to end: every job
    // done, wait + service == response, wall stamps monotone.
    for &id in &ids {
        let t = client.trace_reply(id).expect("trace runs");
        assert_eq!(t.state, "done");
        assert_eq!(t.trace_id, trace_ids[id as usize]);
        let wait = t.first_allot.unwrap() - t.release.unwrap() - 1;
        let service = t.completion.unwrap() + 1 - t.first_allot.unwrap();
        assert_eq!(wait + service, t.response.unwrap());
        assert!(!t.segments.is_empty());
        assert!(t.submit_ns.unwrap() <= t.admit_ns.unwrap());
        assert!(t.admit_ns.unwrap() <= t.inject_ns.unwrap());
        assert!(t.inject_ns.unwrap() <= t.complete_ns.unwrap());
    }

    let drain = match client.drain().expect("drain runs") {
        Response::Drained(d) => d,
        other => panic!("expected drained, got {other:?}"),
    };
    drain.trace.verify().expect("replay matches");
    server.join();
}

/// Minimal HTTP/1.0-style request against the scrape listener.
fn http_request(addr: std::net::SocketAddr, method: &str, path: &str) -> (String, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("scrape connect");
    write!(stream, "{method} {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    (head.to_string(), body.to_string())
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    http_request(addr, "GET", path)
}

/// The value of an un-labelled sample line in an exposition body.
fn sample(body: &str, name: &str) -> f64 {
    body.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("no sample for {name} in:\n{body}"))
        .trim()
        .parse()
        .expect("numeric sample")
}

#[test]
fn metrics_scrape_and_flight_dump_observe_a_live_session() {
    let dir = std::env::temp_dir().join(format!("kserve-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dump_path = dir.join("flight.jsonl");
    let cfg = ServerConfig {
        metrics_addr: Some("127.0.0.1:0".into()),
        flight_capacity: 1 << 14,
        flight_dump: Some(dump_path.clone()),
        ..test_config()
    };
    let server = Server::start(cfg).expect("server starts");
    let addr = server.addr().to_string();
    let http = server.metrics_addr().expect("metrics listener bound");

    // A scrape works before any job was ever admitted.
    let (head, body) = http_get(http, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "exposition content type: {head}"
    );
    assert_eq!(sample(&body, "krad_jobs_admitted_total"), 0.0);
    assert!(sample(&body, "krad_uptime_seconds") >= 0.0);

    // Unknown paths are a 404, not a hang or a crash.
    let (head, _) = http_get(http, "/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    // HEAD answers with the headers the GET would carry and no body;
    // any other method is a 405 naming what is allowed.
    let (head, hbody) = http_request(http, "HEAD", "/metrics");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(hbody.is_empty(), "HEAD must not carry a body: {hbody}");
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("content length")
        .trim()
        .parse()
        .expect("numeric length");
    assert!(len > 0, "HEAD advertises the GET body's length");
    let (head, _) = http_request(http, "POST", "/metrics");
    assert!(head.starts_with("HTTP/1.1 405"), "{head}");
    assert!(head.contains("Allow: GET, HEAD"), "{head}");
    let (head, _) = http_request(http, "DELETE", "/nope");
    assert!(head.starts_with("HTTP/1.1 405"), "{head}");

    // Run real work to completion, then scrape again: counters are
    // monotone and the paper-semantic families are populated.
    let mut client = Client::connect(&addr).expect("client connects");
    let (ack, events) = client
        .submit_watch(some_dags(8, 5))
        .expect("watched submit runs");
    assert!(matches!(ack, Response::Submitted { .. }));
    assert_eq!(events.len(), 8);

    let (_, scraped) = http_get(http, "/metrics");
    let verb_text = client.metrics().expect("metrics verb runs");
    // Verb and HTTP listener render the same registry.
    for text in [&scraped, &verb_text] {
        assert_eq!(sample(text, "krad_jobs_admitted_total"), 8.0);
        assert_eq!(sample(text, "krad_jobs_completed_total"), 8.0);
        assert!(sample(text, "krad_quanta_total") > 0.0);
        assert!(sample(text, "krad_bound_theorem3") > 0.0);
        assert!(sample(text, "krad_bound_work_over_p") > 0.0);
        for family in [
            "krad_category_desire{category=\"0\"}",
            "krad_category_allotment{category=\"1\"}",
            "krad_category_utilization{category=\"0\"}",
            "krad_category_waste_steps{category=\"1\"}",
            "krad_mode_residency_seconds{category=\"0\",mode=\"deq\"}",
            "krad_mode_residency_seconds{category=\"1\",mode=\"rr\"}",
            "krad_quantum_latency_us_bucket",
            "krad_mode_transitions_total",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }
    // Monotonicity across scrapes (more work in between).
    let quanta_before = sample(&scraped, "krad_quanta_total");
    let (ack, _) = client
        .submit_watch(some_dags(4, 6))
        .expect("second batch runs");
    assert!(matches!(ack, Response::Submitted { .. }));
    let (_, after) = http_get(http, "/metrics");
    assert!(sample(&after, "krad_jobs_admitted_total") >= 12.0);
    assert!(sample(&after, "krad_quanta_total") >= quanta_before);

    // Drain: the flight recorder lands on disk, and its tail is a
    // byte-for-byte suffix of the deterministically replayed stream.
    let drain = match client.drain().expect("drain runs") {
        Response::Drained(d) => d,
        other => panic!("expected drained, got {other:?}"),
    };
    server.join();

    let dump = kanalysis::flight::load_flight_dump(&dump_path).expect("dump parses");
    assert!(!dump.is_empty(), "flight recorder captured the session");
    let report = kanalysis::flight::FlightRecorderReport::from_events(&dump);
    assert!(report.completions > 0);
    assert!(report.render().contains("events retained"));

    let (tel, rec) = ktelemetry::TelemetryHandle::recording();
    drain
        .trace
        .replay_instrumented(tel)
        .expect("instrumented replay runs");
    let offline = rec.lock().unwrap().take();
    let matched = kanalysis::flight::verify_against_stream(&dump, &offline)
        .expect("dump is a byte-for-byte tail of the replayed stream");
    assert_eq!(matched, dump.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(unix)]
#[test]
fn unix_socket_speaks_the_same_protocol() {
    use std::io::{BufRead, BufReader, Write};

    let path = std::env::temp_dir().join(format!("kserve-test-{}.sock", std::process::id()));
    let cfg = ServerConfig {
        unix_path: Some(path.clone()),
        ..test_config()
    };
    let server = Server::start(cfg).expect("server starts");

    let stream = std::os::unix::net::UnixStream::connect(&path).expect("unix connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    writeln!(
        writer,
        "{}",
        Request::Status {
            session: String::new()
        }
        .encode()
    )
    .expect("write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    match Response::decode(line.trim()).expect("decode") {
        Response::Status(st) => assert_eq!(st.jobs.len(), 0),
        other => panic!("expected status, got {other:?}"),
    }

    writeln!(
        writer,
        "{}",
        Request::Drain {
            session: String::new()
        }
        .encode()
    )
    .expect("write");
    line.clear();
    reader.read_line(&mut line).expect("read");
    let drain = match Response::decode(line.trim()).expect("decode") {
        Response::Drained(d) => d,
        other => panic!("expected drained, got {other:?}"),
    };
    assert_eq!(drain.admitted, 0);
    assert!(drain.trace.jobs.is_empty());
    drain.trace.verify().expect("empty session replays");
    server.join();
    assert!(!path.exists(), "socket file is cleaned up");
}
