//! Kill-9 crash/recovery end-to-end: a child process serves a live
//! journaled session, the parent SIGKILLs it mid-quantum, restarts a
//! server on the same journal directory, and proves recovery by the
//! replay bridge — zero acked-job loss and a drained trace that
//! replays byte-for-byte through offline `simulate()`, under both the
//! unit-step and event-driven engine clocks.
//!
//! The child is this same test binary re-executed with
//! `KRAD_CRASH_CHILD_DIR` set: the `crash_child_server` "test" then
//! starts a daemon, writes its address to a file, and blocks in
//! `join()` until the parent kills it dead. Without the env var that
//! test is an immediate no-op pass.

use kbaselines::SchedulerKind;
use kdag::SelectionPolicy;
use kjournal::FsyncPolicy;
use kserve::protocol::{Request, Response, ScenarioRef, SessionSpec};
use kserve::server::{Server, ServerConfig};
use kserve::Client;
use ksim::TimePolicy;
use std::collections::HashSet;
use std::path::Path;
use std::time::{Duration, Instant};

const CHILD_DIR: &str = "KRAD_CRASH_CHILD_DIR";
const CHILD_PORTFILE: &str = "KRAD_CRASH_CHILD_PORTFILE";
const CHILD_TIME_POLICY: &str = "KRAD_CRASH_CHILD_TIME_POLICY";

/// The session configuration shared by the child (pre-crash) and the
/// parent's restarted server — identical meta is what recovery
/// validates. Only `tick` differs: the child paces quanta so the kill
/// lands mid-session, the restart runs flat out.
fn session_config(time_policy: TimePolicy, journal_dir: &Path, tick: Duration) -> ServerConfig {
    ServerConfig {
        machine: vec![3, 2],
        scheduler: SchedulerKind::KRad,
        policy: SelectionPolicy::Fifo,
        quantum: 2,
        time_policy,
        seed: 42,
        tick,
        journal_dir: Some(journal_dir.to_path_buf()),
        fsync: FsyncPolicy::Interval(Duration::from_millis(5)),
        ..ServerConfig::default()
    }
}

fn parse_time_policy(label: &str) -> TimePolicy {
    match label {
        "unit" => TimePolicy::UnitStep,
        "event" => TimePolicy::EventDriven,
        other => panic!("bad time policy '{other}'"),
    }
}

/// Child-process entry point (no-op unless re-executed by a parent).
#[test]
fn crash_child_server() {
    let Ok(dir) = std::env::var(CHILD_DIR) else {
        return;
    };
    let portfile = std::env::var(CHILD_PORTFILE).expect("child needs a port file");
    let tp = parse_time_policy(&std::env::var(CHILD_TIME_POLICY).expect("child needs a policy"));
    let cfg = session_config(tp, Path::new(&dir), Duration::from_millis(2));
    let server = Server::start(cfg).expect("child server starts");
    // Written after bind, so the parent's poll can't see a stale addr.
    std::fs::write(&portfile, server.addr().to_string()).expect("child writes port file");
    server.join(); // blocks until SIGKILL — the session never drains
}

/// Spawn this test binary as the crash child and wait for its server.
fn spawn_child(
    journal_dir: &Path,
    portfile: &Path,
    tp_label: &str,
) -> (std::process::Child, String) {
    let child = std::process::Command::new(std::env::current_exe().expect("own path"))
        .args(["crash_child_server", "--exact", "--nocapture"])
        .env(CHILD_DIR, journal_dir)
        .env(CHILD_PORTFILE, portfile)
        .env(CHILD_TIME_POLICY, tp_label)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("child spawns");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(s) = std::fs::read_to_string(portfile) {
            if !s.is_empty() {
                break s;
            }
        }
        assert!(
            Instant::now() < deadline,
            "child never published its address"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    (child, addr)
}

/// One full crash cycle under `time_policy`: load a journaled child,
/// SIGKILL it with work in flight, restart on the same journal, and
/// verify zero acked-job loss plus a byte-for-byte offline replay.
fn crash_cycle(tp_label: &str) {
    let time_policy = parse_time_policy(tp_label);
    let dir = std::env::temp_dir().join(format!("kserve-crash-{tp_label}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let journal_dir = dir.join("journal");
    let portfile = dir.join("addr.txt");

    let (mut child, addr) = spawn_child(&journal_dir, &portfile, tp_label);

    // Two scenario batches: every returned id below was acknowledged
    // only after its JobAdmitted record was committed to the WAL.
    let mut acked: HashSet<u64> = HashSet::new();
    let mut client = Client::connect(&addr).expect("client connects to child");
    for seed in [9, 10] {
        match client
            .submit_scenario(ScenarioRef {
                name: "pipeline".into(),
                jobs: 8,
                seed,
            })
            .expect("scenario submit runs")
        {
            Response::Submitted { jobs, .. } => acked.extend(jobs),
            other => panic!("expected admission, got {other:?}"),
        }
    }
    assert_eq!(acked.len(), 16);

    // Wait for at least one committed quantum, then kill while the
    // paced session still has work in flight (2 ms/quantum ticks make
    // this window span seconds).
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match client.status() {
            Ok(Response::Status(st)) => {
                let done = st.jobs.iter().filter(|j| j.completion.is_some()).count();
                if st.now > 0 && done < acked.len() {
                    break;
                }
                assert!(
                    done < acked.len(),
                    "workload finished before the kill; grow the scenario"
                );
            }
            Ok(other) => panic!("expected status, got {other:?}"),
            Err(e) => panic!("status poll failed: {e}"),
        }
        assert!(Instant::now() < deadline, "no quantum ever committed");
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL delivered");
    let _ = child.wait();
    drop(client);

    // Restart on the same journal directory, in-process this time.
    let server = Server::start(session_config(time_policy, &journal_dir, Duration::ZERO))
        .expect("recovery restart succeeds");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("client connects after recovery");

    let hello = client.hello_reply().expect("hello runs");
    assert!(
        hello.durability.starts_with("wal:interval"),
        "recovered server advertises durability, got '{}'",
        hello.durability
    );
    let stats = client.stats_reply().expect("stats runs");
    assert!(
        stats.last_recovery_ms > 0.0,
        "recovery duration gauge is set"
    );
    assert_eq!(stats.time_policy, tp_label);

    // Zero acked-job loss: every id acknowledged before the kill is in
    // the recovered session.
    match client.status().expect("status runs") {
        Response::Status(st) => {
            let known: HashSet<u64> = st.jobs.iter().map(|j| j.job).collect();
            for id in &acked {
                assert!(known.contains(id), "acked job {id} lost in the crash");
            }
        }
        other => panic!("expected status, got {other:?}"),
    }

    // Drain: everything completes, and the recovered session's trace
    // replays byte-for-byte through offline `simulate()` — journaled
    // pre-crash completions and post-recovery completions in one
    // deterministic history.
    let drain = match client.drain().expect("drain runs") {
        Response::Drained(d) => d,
        other => panic!("expected drained, got {other:?}"),
    };
    assert_eq!(drain.admitted, acked.len() as u64);
    assert_eq!(drain.completed, drain.admitted);
    assert_eq!(drain.cancelled, 0);
    // `trace.completions[i]` is job i's completion time, so covering
    // every acked id means the vector spans them all.
    for id in &acked {
        assert!(
            (*id as usize) < drain.trace.completions.len(),
            "acked job {id} never completed"
        );
    }
    drain
        .trace
        .verify()
        .expect("recovered trace replays byte-for-byte offline");
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill9_recovery_replays_byte_for_byte_unit_clock() {
    crash_cycle("unit");
}

#[test]
fn kill9_recovery_replays_byte_for_byte_event_clock() {
    crash_cycle("event");
}

/// A named tenant and the default session crash together; the
/// restart recovers both from `journal_dir/sessions/<name>/` plus the
/// base journal, with zero acked-job loss and a byte-for-byte replay
/// on each — multi-tenant durability is per session, not per daemon.
#[test]
fn kill9_recovery_restores_named_sessions() {
    let dir = std::env::temp_dir().join(format!("kserve-crash-named-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let journal_dir = dir.join("journal");
    let portfile = dir.join("addr.txt");

    let (mut child, addr) = spawn_child(&journal_dir, &portfile, "event");
    let mut client = Client::connect(&addr).expect("client connects to child");

    // A tenant with its own scheduler, quantum, and seed: recovery
    // must rebuild exactly this configuration from the journal meta.
    let spec = SessionSpec {
        scheduler: Some("equi".into()),
        quantum: Some(3),
        seed: Some(9),
        ..SessionSpec::default()
    };
    match client.open("tenant-a", spec).expect("open runs") {
        Response::Opened {
            existing,
            scheduler,
            ..
        } => {
            assert!(!existing);
            assert_eq!(scheduler, "equi");
        }
        other => panic!("expected opened, got {other:?}"),
    }

    let mut acked: HashSet<u64> = HashSet::new();
    for seed in [21, 22] {
        match client
            .roundtrip(&Request::Submit {
                jobs: Vec::new(),
                scenario: Some(ScenarioRef {
                    name: "pipeline".into(),
                    jobs: 8,
                    seed,
                }),
                watch: false,
                session: "tenant-a".into(),
            })
            .expect("tenant submit runs")
        {
            Response::Submitted { jobs, .. } => acked.extend(jobs),
            other => panic!("expected admission, got {other:?}"),
        }
    }
    assert_eq!(acked.len(), 16);
    // Keep the default session non-empty too: recovery must bring
    // back every journaled tenant, not just the busiest one.
    match client
        .submit_scenario(ScenarioRef {
            name: "pipeline".into(),
            jobs: 4,
            seed: 5,
        })
        .expect("default submit runs")
    {
        Response::Submitted { jobs, .. } => assert_eq!(jobs.len(), 4),
        other => panic!("expected admission, got {other:?}"),
    }

    // Kill once the tenant has committed a quantum with work left.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match client.status_of("tenant-a") {
            Ok(Response::Status(st)) => {
                let done = st.jobs.iter().filter(|j| j.completion.is_some()).count();
                if st.now > 0 && done < acked.len() {
                    break;
                }
                assert!(
                    done < acked.len(),
                    "tenant finished before the kill; grow the scenario"
                );
            }
            Ok(other) => panic!("expected status, got {other:?}"),
            Err(e) => panic!("status poll failed: {e}"),
        }
        assert!(
            Instant::now() < deadline,
            "tenant never committed a quantum"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL delivered");
    let _ = child.wait();
    drop(client);

    // Restart on the same journal tree: the named tenant comes back
    // without any client re-opening it.
    let server = Server::start(session_config(
        TimePolicy::EventDriven,
        &journal_dir,
        Duration::ZERO,
    ))
    .expect("recovery restart succeeds");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("client connects after recovery");

    let stats = client.stats_reply_of("tenant-a").expect("tenant stats run");
    assert_eq!(stats.session, "tenant-a");
    assert_eq!(stats.scheduler, "equi");
    assert_eq!(stats.admitted, acked.len() as u64);

    // Re-opening the recovered tenant with the same spec attaches.
    match client
        .open(
            "tenant-a",
            SessionSpec {
                scheduler: Some("equi".into()),
                quantum: Some(3),
                seed: Some(9),
                ..SessionSpec::default()
            },
        )
        .expect("re-open runs")
    {
        Response::Opened { existing, .. } => assert!(existing, "recovered tenant must attach"),
        other => panic!("expected attach, got {other:?}"),
    }

    match client.status_of("tenant-a").expect("tenant status runs") {
        Response::Status(st) => {
            let known: HashSet<u64> = st.jobs.iter().map(|j| j.job).collect();
            for id in &acked {
                assert!(
                    known.contains(id),
                    "acked tenant job {id} lost in the crash"
                );
            }
        }
        other => panic!("expected status, got {other:?}"),
    }

    // Both sessions drain to byte-for-byte replayable traces.
    let tenant = match client.drain_session("tenant-a").expect("tenant drain runs") {
        Response::Drained(d) => d,
        other => panic!("expected drained, got {other:?}"),
    };
    assert_eq!(tenant.admitted, acked.len() as u64);
    assert_eq!(tenant.completed, tenant.admitted);
    assert_eq!(tenant.trace.scheduler, SchedulerKind::Equi);
    assert_eq!(tenant.trace.quantum, 3);
    tenant
        .trace
        .verify()
        .expect("recovered tenant trace replays byte-for-byte");

    let base = match client.drain().expect("global drain runs") {
        Response::Drained(d) => d,
        other => panic!("expected drained, got {other:?}"),
    };
    assert_eq!(base.admitted, 4);
    base.trace
        .verify()
        .expect("recovered default trace replays byte-for-byte");
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// In-process (no kill) recovery checks: a drained session restarts
/// as a no-op, and recovery refuses a drifted configuration.
#[test]
fn drained_session_recovers_and_config_drift_is_refused() {
    let dir = std::env::temp_dir().join(format!("kserve-rejournal-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let journal_dir = dir.join("journal");

    let mk = |quantum: u64| ServerConfig {
        machine: vec![3, 2],
        quantum,
        seed: 7,
        journal_dir: Some(journal_dir.clone()),
        fsync: FsyncPolicy::Never,
        ..ServerConfig::default()
    };

    let server = Server::start(mk(2)).expect("server starts");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("client connects");
    match client
        .submit_scenario(ScenarioRef {
            name: "pipeline".into(),
            jobs: 4,
            seed: 3,
        })
        .expect("submit runs")
    {
        Response::Submitted { jobs, .. } => assert_eq!(jobs.len(), 4),
        other => panic!("expected admission, got {other:?}"),
    }
    let first = match client.drain().expect("drain runs") {
        Response::Drained(d) => d,
        other => panic!("expected drained, got {other:?}"),
    };
    assert_eq!(first.completed, 4);
    server.join();

    // Same configuration: the finished session folds back unchanged.
    let server = Server::start(mk(2)).expect("restart after drain succeeds");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("client reconnects");
    let stats = client.stats_reply().expect("stats runs");
    assert_eq!(stats.admitted, 4);
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.durability, "wal:never");
    let again = match client.drain().expect("re-drain runs") {
        Response::Drained(d) => d,
        other => panic!("expected drained, got {other:?}"),
    };
    assert_eq!(again.completed, 4);
    assert_eq!(again.trace.completions, first.trace.completions);
    again.trace.verify().expect("recovered trace replays");
    server.join();

    // Drifted configuration (different quantum): refuse to serve
    // rather than silently diverge from the journaled session.
    let err = match Server::start(mk(3)) {
        Err(e) => e,
        Ok(_) => panic!("config drift must be refused"),
    };
    assert!(
        err.to_string().contains("different session configuration"),
        "unexpected error: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
