//! T10 — environment sensitivity: the selection-policy sweep.
//!
//! K-RAD's guarantees are *environment-independent*: the bounds of
//! Theorems 3/5/6 hold no matter which ready tasks run when a job is
//! deprived. This experiment sweeps all five selection policies (from
//! the helpful clairvoyant critical-path-first to the Theorem 1
//! adversary critical-path-last) over the same workloads and verifies:
//!
//! * the makespan bound holds under every policy;
//! * the ordering is as the theory predicts — the friendly policy is
//!   never worse than the adversarial one.

use crate::runner::{par_map, Run};
use crate::RunOpts;
use kanalysis::bounds::makespan_bounds;
use kanalysis::report::ExperimentReport;
use kanalysis::stats::Summary;
use kanalysis::table::{f3, Table};
use kbaselines::SchedulerKind;
use kdag::SelectionPolicy;
use ksim::Resources;
use kworkloads::mixes::{batched_mix, MixConfig};
use kworkloads::rng_for;

fn measure(policy: SelectionPolicy, seed: u64, master: u64, k: usize, p: u32) -> (f64, f64) {
    let mut rng = rng_for(master ^ seed, 0x7A);
    let jobs = batched_mix(&mut rng, &MixConfig::new(k, 24, 32));
    let res = Resources::uniform(k, p);
    let outcome = Run::new(SchedulerKind::KRad, &jobs, &res)
        .policy(policy)
        .seed(seed)
        .go();
    let lb = makespan_bounds(&jobs, &res).lower_bound();
    (
        outcome.makespan as f64 / lb,
        outcome.total_response() as f64 / jobs.len() as f64,
    )
}

/// Run T10.
pub fn run(opts: &RunOpts) -> ExperimentReport {
    let (k, p) = (2usize, 4u32);
    let seeds: u64 = if opts.quick { 3 } else { 10 };
    let work: Vec<SelectionPolicy> = SelectionPolicy::ALL.to_vec();

    let results = par_map(&work, |_, &policy| {
        let pairs: Vec<(f64, f64)> = (0..seeds)
            .map(|s| measure(policy, s, opts.seed, k, p))
            .collect();
        let ratios: Vec<f64> = pairs.iter().map(|x| x.0).collect();
        let mrts: Vec<f64> = pairs.iter().map(|x| x.1).collect();
        (Summary::of(&ratios), Summary::of(&mrts))
    });

    let bound = krad::makespan_bound(k, p);
    let mut table = Table::new(
        "T10 — selection-policy (environment) sensitivity of K-RAD",
        &["policy", "mean T/LB", "max T/LB", "bound", "mean MRT"],
    );
    let mut passed = true;
    let mut by_policy = std::collections::HashMap::new();
    for (policy, (s, m)) in work.iter().zip(&results) {
        by_policy.insert(*policy, s.mean);
        if s.max > bound + 1e-9 {
            passed = false;
        }
        table.row_owned(vec![
            policy.to_string(),
            f3(s.mean),
            f3(s.max),
            f3(bound),
            f3(m.mean),
        ]);
    }
    let mut conclusions = Vec::new();
    let friendly = by_policy[&SelectionPolicy::CriticalFirst];
    let adversarial = by_policy[&SelectionPolicy::CriticalLast];
    if friendly > adversarial + 1e-9 {
        passed = false;
        conclusions.push(format!(
            "SHAPE: critical-first mean ratio {friendly:.3} worse than critical-last {adversarial:.3}"
        ));
    }
    if passed {
        conclusions.push(format!(
            "the bound is environment-independent: every policy stays below {bound:.3}; friendly selection ({friendly:.3}) ≤ adversarial ({adversarial:.3}) as the Theorem 1 argument predicts"
        ));
    }
    table.note("same workloads and scheduler across rows; only the environment's choice of which ready tasks run differs");

    ExperimentReport {
        id: "T10".into(),
        title: "Selection-policy sensitivity: bounds hold against any environment".into(),
        paper_claim: "Non-clairvoyant guarantees quantify over the environment: the adversary controls which ready tasks execute, and the bounds still hold".into(),
        params: serde_json::json!({"k": k, "p": p, "seeds": seeds, "seed": opts.seed}),
        table,
        conclusions,
        passed,
        extra_files: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t10_quick_passes() {
        let r = run(&RunOpts::quick(37));
        assert!(r.passed, "{}\n{:?}", r.table.render(), r.conclusions);
    }
}
