//! T5 — Theorem 6: mean response time under heavy workload.
//!
//! Batched sets with many more jobs than processors, so K-RAD exercises
//! the round-robin cycles. Theorem 6 guarantees
//! `R(J)/R*(J) ≤ 4K + 1 − 4K/(n+1)`; we measure against the §6 lower
//! bound `LB = max(T∞(J), maxα swa(J, α)) ≤ R*(J)`, which makes the
//! measured ratio an upper bound on the true competitive ratio.

use crate::runner::{par_map, Run};
use crate::RunOpts;
use kanalysis::bounds::response_bounds;
use kanalysis::report::ExperimentReport;
use kanalysis::stats::Summary;
use kanalysis::table::{f3, Table};
use kbaselines::SchedulerKind;
use kdag::SelectionPolicy;
use ksim::Resources;
use kworkloads::mixes::{batched_mix, MixConfig};
use kworkloads::rng_for;

#[derive(Clone, Debug)]
struct Config {
    k: usize,
    p: u32,
    n: usize,
    seeds: u64,
}

fn measure(cfg: &Config, seed: u64, master: u64) -> f64 {
    let mix = MixConfig::new(cfg.k, cfg.n, 24);
    let mut rng = rng_for(master ^ seed, 0x75);
    let jobs = batched_mix(&mut rng, &mix);
    let res = Resources::uniform(cfg.k, cfg.p);
    let outcome = Run::new(SchedulerKind::KRad, &jobs, &res)
        .policy(SelectionPolicy::CriticalLast)
        .seed(seed)
        .go();
    outcome.total_response() as f64 / response_bounds(&jobs, &res).lower_bound()
}

/// Run T5.
pub fn run(opts: &RunOpts) -> ExperimentReport {
    let (ks, ps, ns, seeds): (&[usize], &[u32], &[usize], u64) = if opts.quick {
        (&[1, 2], &[2], &[16], 2)
    } else {
        (&[1, 2, 3], &[2, 4], &[16, 48, 96], 5)
    };
    let mut configs = Vec::new();
    for &k in ks {
        for &p in ps {
            for &n in ns {
                configs.push(Config { k, p, n, seeds });
            }
        }
    }

    let results = par_map(&configs, |_, cfg| {
        let ratios: Vec<f64> = (0..cfg.seeds).map(|s| measure(cfg, s, opts.seed)).collect();
        Summary::of(&ratios)
    });

    let mut table = Table::new(
        "T5 — Theorem 6: mean response time under heavy workload (ratio = R / LB)",
        &[
            "K",
            "P",
            "jobs",
            "seeds",
            "mean",
            "max",
            "bound",
            "% of bound",
        ],
    );
    let mut passed = true;
    let mut conclusions = Vec::new();
    let mut worst: f64 = 0.0;
    for (cfg, s) in configs.iter().zip(&results) {
        let bound = krad::mrt_bound_heavy(cfg.k, cfg.n);
        worst = worst.max(s.max / bound);
        if s.max > bound + 1e-9 {
            passed = false;
            conclusions.push(format!(
                "VIOLATION: K={} P={} n={}: max ratio {:.3} > bound {:.3}",
                cfg.k, cfg.p, cfg.n, s.max, bound
            ));
        }
        table.row_owned(vec![
            cfg.k.to_string(),
            cfg.p.to_string(),
            cfg.n.to_string(),
            cfg.seeds.to_string(),
            f3(s.mean),
            f3(s.max),
            f3(bound),
            format!("{:.1}%", 100.0 * s.max / bound),
        ]);
    }
    if passed {
        conclusions.insert(
            0,
            format!(
                "Theorem 6 holds on every configuration (worst case uses {:.1}% of the 4K+1−4K/(n+1) budget)",
                100.0 * worst
            ),
        );
    }
    table.note("heavy load: n >> Pα drives K-RAD's marked round-robin cycles");
    table.note("LB = max(T∞(J), maxα swa(J,α)) ≤ R*(J): measured ratios upper-bound the true competitive ratio");

    ExperimentReport {
        id: "T5".into(),
        title: "Theorem 6: (4K+1−4K/(n+1))-competitive mean response, heavy load".into(),
        paper_claim: "K-RAD is (4K+1−4K/(|J|+1))-competitive w.r.t. mean response time for any batched job set".into(),
        params: serde_json::json!({"K": ks, "P": ps, "jobs": ns, "seeds": seeds, "seed": opts.seed}),
        table,
        conclusions,
        passed,
        extra_files: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t5_quick_passes() {
        let r = run(&RunOpts::quick(13));
        assert!(r.passed, "{}", r.table.render());
    }
}
