//! T9 — extension: functional **and** performance heterogeneity.
//!
//! The paper's conclusion poses the open challenge of handling machines
//! that are heterogeneous both functionally (categories) and in
//! performance (processor speeds). For *unit-time tasks with integer
//! speeds*, a speed-`s` processor is exactly `s` unit-speed virtual
//! processors (independent ready tasks only; chains still advance one
//! task per step), so K-RAD applies unchanged on the virtual machine
//! and every bound holds with `Pα → sα·Pα`.
//!
//! This experiment validates that claim: machines with few-fast vs
//! many-slow processors of equal aggregate throughput are swept, and
//! K-RAD's makespan and Lemma 2 are checked against the *effective*
//! bounds on each.

use crate::runner::{par_map, Run};
use crate::RunOpts;
use kanalysis::bounds::{lemma2_rhs, makespan_bounds};
use kanalysis::report::ExperimentReport;
use kanalysis::table::{f3, Table};
use kbaselines::SchedulerKind;
use kdag::SelectionPolicy;
use ksim::Resources;
use kworkloads::mixes::{batched_mix, MixConfig};
use kworkloads::rng_for;

#[derive(Clone, Debug)]
struct Machine {
    label: &'static str,
    p: Vec<u32>,
    s: Vec<u32>,
}

struct Row {
    machine: Machine,
    seed: u64,
    makespan: u64,
    ratio: f64,
    bound: f64,
    lemma2_ok: bool,
}

fn measure(machine: &Machine, seed: u64, master: u64) -> Row {
    let res = Resources::with_speeds(&machine.p, &machine.s);
    let k = res.k();
    let mut rng = rng_for(master ^ seed, 0x79);
    let jobs = batched_mix(&mut rng, &MixConfig::new(k, 24, 32));
    let outcome = Run::new(SchedulerKind::KRad, &jobs, &res)
        .policy(SelectionPolicy::CriticalLast)
        .seed(seed)
        .go();
    let lb = makespan_bounds(&jobs, &res).lower_bound();
    let rhs = lemma2_rhs(&jobs, &res);
    Row {
        machine: machine.clone(),
        seed,
        makespan: outcome.makespan,
        ratio: outcome.makespan as f64 / lb,
        bound: krad::makespan_bound(k, res.p_max()),
        lemma2_ok: (outcome.makespan as f64) <= rhs + 1e-9,
    }
}

/// Run T9.
pub fn run(opts: &RunOpts) -> ExperimentReport {
    let machines = [
        Machine {
            label: "baseline (all speed 1)",
            p: vec![8, 8],
            s: vec![1, 1],
        },
        Machine {
            label: "few-fast CPUs",
            p: vec![2, 8],
            s: vec![4, 1],
        },
        Machine {
            label: "fast accelerators",
            p: vec![8, 2],
            s: vec![1, 4],
        },
        Machine {
            label: "3-way mixed speeds",
            p: vec![8, 4, 1],
            s: vec![1, 2, 8],
        },
    ];
    let seeds: u64 = if opts.quick { 2 } else { 5 };
    let work: Vec<(Machine, u64)> = machines
        .iter()
        .flat_map(|m| (0..seeds).map(move |s| (m.clone(), s)))
        .collect();

    let rows = par_map(&work, |_, (m, s)| measure(m, *s, opts.seed));

    let mut table = Table::new(
        "T9 — extension: performance heterogeneity via virtual processors (Pα → sα·Pα)",
        &[
            "machine",
            "P",
            "speeds",
            "seed",
            "T",
            "T/LB",
            "eff. bound",
            "Lemma2",
        ],
    );
    let mut passed = true;
    let mut worst: f64 = 0.0;
    for r in &rows {
        worst = worst.max(r.ratio / r.bound);
        let ok = r.ratio <= r.bound + 1e-9 && r.lemma2_ok;
        passed &= ok;
        table.row_owned(vec![
            r.machine.label.to_string(),
            format!("{:?}", r.machine.p),
            format!("{:?}", r.machine.s),
            r.seed.to_string(),
            r.makespan.to_string(),
            f3(r.ratio),
            f3(r.bound),
            if r.lemma2_ok { "holds" } else { "VIOLATED" }.to_string(),
        ]);
    }
    let conclusions = if passed {
        vec![format!(
            "the virtual-processor reduction works: K-RAD keeps its guarantees on speed-heterogeneous machines (worst ratio at {:.1}% of the effective bound; Lemma 2 exact everywhere)",
            100.0 * worst
        )]
    } else {
        vec!["VIOLATION under speed heterogeneity — see table".into()]
    };

    ExperimentReport {
        id: "T9".into(),
        title: "Extension: functional + performance heterogeneity (paper's concluding challenge)"
            .into(),
        paper_claim: "\"one interesting challenge is to develop scheduling models and algorithms that capture both functional and performance heterogeneity\" (§8) — solved here for unit tasks with integer speeds via Pα → sα·Pα".into(),
        params: serde_json::json!({"machines": machines.iter().map(|m| m.label).collect::<Vec<_>>(), "seeds": seeds, "seed": opts.seed}),
        table,
        conclusions,
        passed,
        extra_files: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t9_quick_passes() {
        let r = run(&RunOpts::quick(31));
        assert!(r.passed, "{}", r.table.render());
    }
}
