//! Shared helpers: simulation shortcuts, a parallel sweep runner, and
//! the all-schedulers comparison harness.

use kanalysis::bounds::makespan_bounds;
use kanalysis::stats::percentile;
use kanalysis::table::{f3, Table};
use kbaselines::SchedulerKind;
use kdag::{Category, SelectionPolicy};
use ksim::{JobSpec, Resources, SimOutcome, Simulation};
use ktelemetry::TelemetryHandle;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One experiment run being assembled: a scheduler kind on a workload,
/// plus options.
///
/// ```no_run
/// # use kbaselines::SchedulerKind;
/// # use kdag::SelectionPolicy;
/// # use kexperiments::runner::Run;
/// # let (jobs, res) = (vec![], ksim::Resources::uniform(1, 2));
/// let o = Run::new(SchedulerKind::KRad, &jobs, &res)
///     .policy(SelectionPolicy::CriticalLast)
///     .seed(42)
///     .go();
/// ```
///
/// `go()` builds a fresh scheduler instance (seeded identically to
/// [`SchedulerKind::build`], so instrumented runs reproduce the
/// uninstrumented outcomes bit-for-bit), assembles a
/// [`Simulation`], and runs it. A telemetry handle passed via
/// [`Run::telemetry`] is wired into *both* the engine (run/step
/// lifecycle events) and the scheduler (decision events, for kinds that
/// emit them), so one sink sees the interleaved stream.
#[derive(Clone, Debug)]
pub struct Run<'a> {
    kind: SchedulerKind,
    jobs: &'a [JobSpec],
    res: &'a Resources,
    policy: SelectionPolicy,
    seed: u64,
    quantum: u64,
    tel: TelemetryHandle,
}

impl<'a> Run<'a> {
    /// Start assembling a run of `kind` on `jobs`/`res` with the
    /// standard defaults (FIFO policy, seed 0, quantum 1, telemetry
    /// off).
    pub fn new(kind: SchedulerKind, jobs: &'a [JobSpec], res: &'a Resources) -> Self {
        Run {
            kind,
            jobs,
            res,
            policy: SelectionPolicy::Fifo,
            seed: 0,
            quantum: 1,
            tel: TelemetryHandle::off(),
        }
    }

    /// Set the environment's [`SelectionPolicy`].
    pub fn policy(mut self, policy: SelectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Set the engine RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the scheduling quantum `q ≥ 1`.
    pub fn quantum(mut self, quantum: u64) -> Self {
        self.quantum = quantum;
        self
    }

    /// Wire a telemetry handle into engine *and* scheduler.
    pub fn telemetry(mut self, tel: TelemetryHandle) -> Self {
        self.tel = tel;
        self
    }

    /// Execute the run and return the outcome.
    pub fn go(self) -> SimOutcome {
        let sim = Simulation::builder()
            .resources(self.res.clone())
            .jobs(self.jobs.iter().cloned())
            .policy(self.policy)
            .seed(self.seed)
            .quantum(self.quantum)
            .telemetry(self.tel.clone())
            .build()
            .expect("experiment workloads match their machine");
        // Scheduler seed matches `SchedulerKind::build` so instrumented
        // runs reproduce the uninstrumented outcomes bit-for-bit.
        let mut sched = self
            .kind
            .build_instrumented(self.res.k(), 0xC0FFEE, self.tel);
        sim.run(sched.as_mut())
    }
}

/// Map `f` over `items` on all available cores, preserving order.
///
/// The closure gets `(index, &item)`. Work is distributed by an atomic
/// cursor, so uneven item costs balance automatically. Panics in
/// workers propagate (the sweep is aborted).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i, &items[i]);
                results.lock().expect("no poisoned sweeps")[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("no poisoned sweeps")
        .into_iter()
        .map(|r| r.expect("every index visited"))
        .collect()
}

/// One scheduler's headline metrics on one workload.
#[derive(Clone, Debug)]
pub struct CompareRow {
    /// Which scheduler.
    pub kind: SchedulerKind,
    /// Makespan `T(J)`.
    pub makespan: u64,
    /// `T / LB` against the §4 lower bound.
    pub ratio_vs_lb: f64,
    /// Mean response time.
    pub mean_response: f64,
    /// 95th-percentile response time.
    pub p95_response: f64,
    /// Maximum response time (the tail).
    pub max_response: u64,
    /// The worst per-category utilization (bottleneck view).
    pub min_utilization: f64,
    /// Processor units withdrawn from still-active jobs.
    pub preemptions: u64,
}

/// Run every [`SchedulerKind`] on the same workload (in parallel) and
/// collect the standard comparison metrics, rows in canonical order.
pub fn compare_schedulers(
    jobs: &[JobSpec],
    res: &Resources,
    policy: SelectionPolicy,
    seed: u64,
) -> Vec<CompareRow> {
    let lb = makespan_bounds(jobs, res).lower_bound();
    let kinds: Vec<SchedulerKind> = SchedulerKind::ALL.to_vec();
    par_map(&kinds, |_, &kind| {
        let o = Run::new(kind, jobs, res).policy(policy).seed(seed).go();
        let responses: Vec<f64> = (0..o.job_count()).map(|i| o.response(i) as f64).collect();
        CompareRow {
            kind,
            makespan: o.makespan,
            ratio_vs_lb: o.makespan as f64 / lb,
            mean_response: o.mean_response(),
            p95_response: percentile(&responses, 95.0),
            max_response: o.max_response(),
            min_utilization: Category::all(res.k())
                .map(|c| o.utilization(c, res))
                .fold(f64::INFINITY, f64::min),
            preemptions: o.preemptions,
        }
    })
}

/// Render comparison rows as the standard table.
pub fn comparison_table(title: &str, rows: &[CompareRow]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "scheduler",
            "makespan",
            "T/LB",
            "mean resp",
            "p95 resp",
            "max resp",
            "min util",
        ],
    );
    for r in rows {
        table.row_owned(vec![
            r.kind.label().to_string(),
            r.makespan.to_string(),
            f3(r.ratio_vs_lb),
            f3(r.mean_response),
            f3(r.p95_response),
            r.max_response.to_string(),
            format!("{:.0}%", 100.0 * r.min_utilization),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdag::generators::chain;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |i, &x| x * 2 + i as u64);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, items[i] * 2 + i as u64);
        }
    }

    #[test]
    fn par_map_empty() {
        let items: Vec<u64> = vec![];
        assert!(par_map(&items, |_, &x| x).is_empty());
    }

    #[test]
    fn run_builder_smoke() {
        let jobs = vec![JobSpec::batched(chain(1, 5, &[Category(0)]))];
        let res = Resources::uniform(1, 2);
        for kind in SchedulerKind::ALL {
            let o = Run::new(kind, &jobs, &res).go();
            assert_eq!(o.makespan, 5, "{kind}: chain must take span steps");
        }
    }

    #[test]
    fn instrumented_run_matches_plain_run_and_records_events() {
        use ksim::TelemetryEvent;

        let jobs: Vec<JobSpec> = (0..5)
            .map(|i| JobSpec::batched(chain(1, 3 + i, &[Category(0)])))
            .collect();
        let res = Resources::uniform(1, 2);
        for kind in SchedulerKind::ALL {
            let plain = Run::new(kind, &jobs, &res).seed(9).go();
            let (tel, rec) = TelemetryHandle::recording();
            let o = Run::new(kind, &jobs, &res).seed(9).telemetry(tel).go();
            assert_eq!(
                o.makespan, plain.makespan,
                "{kind}: telemetry must not perturb"
            );
            assert_eq!(o.executed_by_category, plain.executed_by_category, "{kind}");
            let events = rec.lock().unwrap().take();
            let ends: Vec<&TelemetryEvent> = events
                .iter()
                .filter(|e| matches!(e, TelemetryEvent::RunEnd { .. }))
                .collect();
            assert_eq!(ends.len(), 1, "{kind}: exactly one run_end");
            if let TelemetryEvent::RunEnd { makespan, .. } = ends[0] {
                assert_eq!(*makespan, o.makespan, "{kind}");
            }
            let has_decisions = events
                .iter()
                .any(|e| matches!(e, TelemetryEvent::Decision { .. }));
            assert_eq!(
                has_decisions,
                kind == SchedulerKind::KRad,
                "{kind}: only k-rad emits decision events"
            );
        }
    }

    #[test]
    fn compare_covers_all_kinds_in_order() {
        let jobs = vec![
            JobSpec::batched(chain(1, 4, &[Category(0)])),
            JobSpec::batched(chain(1, 6, &[Category(0)])),
        ];
        let res = Resources::uniform(1, 2);
        let rows = compare_schedulers(&jobs, &res, SelectionPolicy::Fifo, 0);
        assert_eq!(rows.len(), SchedulerKind::ALL.len());
        for (row, kind) in rows.iter().zip(SchedulerKind::ALL) {
            assert_eq!(row.kind, kind);
            assert!(row.makespan >= 6);
            assert!(row.ratio_vs_lb >= 1.0 - 1e-9);
            assert!(row.max_response as f64 >= row.mean_response);
        }
        let table = comparison_table("t", &rows);
        assert_eq!(table.rows.len(), rows.len());
        assert!(table.render().contains("k-rad"));
    }
}
