//! T12 — online stress: heavy-tailed sizes, bursty arrivals.
//!
//! Real traces have bounded-Pareto service demands and bursty (MMPP)
//! arrivals, far from the smooth mixes of T2/T5. This experiment runs
//! every scheduler on such a stream and checks that the theory
//! survives contact with nastier statistics:
//!
//! * K-RAD's makespan stays within its Theorem 3 factor of the lower
//!   bound (the theorem holds for *any* release times — bursts
//!   included);
//! * the response-time *tail* (p95/max) separates the fair schedulers
//!   (K-RAD, EQUI, RR) from the starvation-prone ones (LAS,
//!   greedy-FCFS) once the burst piles jobs behind a heavy one.

use crate::runner::{par_map, Run};
use crate::RunOpts;
use kanalysis::bounds::makespan_bounds;
use kanalysis::report::ExperimentReport;
use kanalysis::stats::percentile;
use kanalysis::svg::{LineChart, Series};
use kanalysis::table::{f3, Table};
use kbaselines::SchedulerKind;
use ksim::{JobSpec, Resources};
use kworkloads::heavy_tail::{bursty_releases, heavy_tail_mix, BurstyConfig};
use kworkloads::rng_for;

struct Row {
    kind: SchedulerKind,
    makespan: u64,
    ratio: f64,
    mean: f64,
    p95: f64,
    max: u64,
    /// Sorted response times, for the CDF figure.
    responses: Vec<f64>,
}

fn workload(seed: u64, n: usize) -> (Vec<JobSpec>, Resources) {
    let mut rng = rng_for(seed, 0x7C);
    let mut jobs = heavy_tail_mix(&mut rng, 2, n, 1.2, 10, 500);
    // Long bursts (mean ~12 arrivals) of dense traffic followed by long
    // idle-ish stretches: each burst overloads the machine and builds a
    // real queue, which is where response-time policies separate.
    let cfg = BurstyConfig {
        burst_rate: 4.0,
        idle_rate: 0.02,
        switch_prob: 0.08,
    };
    bursty_releases(&mut jobs, &mut rng, &cfg);
    (jobs, Resources::new(vec![6, 3]))
}

/// Run T12.
pub fn run(opts: &RunOpts) -> ExperimentReport {
    let n = if opts.quick { 30 } else { 80 };
    let (jobs, res) = workload(opts.seed, n);
    let lb = makespan_bounds(&jobs, &res).lower_bound();

    let kinds: Vec<SchedulerKind> = SchedulerKind::ALL.to_vec();
    let rows: Vec<Row> = par_map(&kinds, |_, &kind| {
        let o = Run::new(kind, &jobs, &res).seed(opts.seed).go();
        let mut responses: Vec<f64> = (0..o.job_count()).map(|i| o.response(i) as f64).collect();
        let p95 = percentile(&responses, 95.0);
        responses.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Row {
            kind,
            makespan: o.makespan,
            ratio: o.makespan as f64 / lb,
            mean: o.mean_response(),
            p95,
            max: o.max_response(),
            responses,
        }
    });

    let mut table = Table::new(
        "T12 — online stress: bounded-Pareto sizes + MMPP bursts",
        &[
            "scheduler",
            "makespan",
            "T/LB",
            "mean resp",
            "p95 resp",
            "max resp",
        ],
    );
    for r in &rows {
        table.row_owned(vec![
            r.kind.label().to_string(),
            r.makespan.to_string(),
            f3(r.ratio),
            f3(r.mean),
            f3(r.p95),
            r.max.to_string(),
        ]);
    }

    let of = |kind: SchedulerKind| rows.iter().find(|r| r.kind == kind).expect("row");
    let mut passed = true;
    let mut conclusions = Vec::new();

    // Theorem 3 survives bursts.
    let krad_row = of(SchedulerKind::KRad);
    let bound = krad::makespan_bound(res.k(), res.p_max());
    if krad_row.ratio > bound + 1e-9 {
        passed = false;
        conclusions.push(format!(
            "VIOLATION: K-RAD ratio {:.3} exceeds bound {bound:.3} under bursty arrivals",
            krad_row.ratio
        ));
    }
    // Tail separation: K-RAD's max response should not be the worst.
    let worst_max = rows.iter().map(|r| r.max).max().unwrap();
    if krad_row.max == worst_max && rows.iter().filter(|r| r.max == worst_max).count() == 1 {
        passed = false;
        conclusions.push("SHAPE: K-RAD has the uniquely worst response tail".into());
    }
    if passed {
        conclusions.insert(
            0,
            format!(
                "Theorem 3 survives heavy tails and bursts (K-RAD at {:.1}% of its bound); response tails separate fair from greedy schedulers — see p95/max columns",
                100.0 * krad_row.ratio / bound
            ),
        );
        conclusions.push(format!(
            "tail spread across schedulers: max response {} (best) to {} (worst)",
            rows.iter().map(|r| r.max).min().unwrap(),
            worst_max
        ));
    }
    table.note(&format!("workload: {n} jobs, sizes ~ BoundedPareto(1.2) in [10, 500] tasks, MMPP bursts (on-rate 4.0, off-rate 0.02, mean burst ~12 jobs)"));
    table.note(&format!("makespan lower bound: {lb:.1}"));

    // Response-time CDF figure: one curve per scheduler.
    let chart = LineChart {
        title: "Response-time CDF under bursty heavy-tailed load".into(),
        x_label: "response time (steps)".into(),
        y_label: "fraction of jobs completed".into(),
        series: rows
            .iter()
            .map(|r| Series {
                label: r.kind.label().to_string(),
                points: r
                    .responses
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| (x, (i + 1) as f64 / r.responses.len() as f64))
                    .collect(),
            })
            .collect(),
        reference_lines: vec![(0.95, "p95".into())],
        log2_x: false,
    };
    let extra_files = vec![("T12_response_cdf.svg".to_string(), chart.render())];

    ExperimentReport {
        id: "T12".into(),
        title: "Online stress: heavy-tailed job sizes and bursty arrivals".into(),
        paper_claim: "Theorem 3 holds for ANY job set with arbitrary release times — including adversarially bursty, heavy-tailed streams".into(),
        params: serde_json::json!({"jobs": n, "alpha": 1.2, "seed": opts.seed}),
        table,
        conclusions,
        passed,
        extra_files,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t12_quick_passes() {
        let r = run(&RunOpts::quick(43));
        assert!(r.passed, "{}\n{:?}", r.table.render(), r.conclusions);
    }
}
