//! # kexperiments — the experiment harness
//!
//! One module per experiment of DESIGN.md's index; each regenerates a
//! figure of the paper or empirically validates a theorem, producing a
//! [`kanalysis::report::ExperimentReport`] (printed table + JSON/CSV).
//!
//! | Id | Module | Reproduces |
//! |----|--------|-----------|
//! | F1 | [`f1_dag`] | Figure 1: the example 3-DAG |
//! | F2 | [`f2_conformance`] | Figure 2: RAD pseudo-code golden traces |
//! | T1 | [`t1_adversarial`] | Theorem 1 / Figure 3: makespan lower bound |
//! | T2 | [`t2_makespan`] | Theorem 3: makespan competitiveness |
//! | T3 | [`t3_lemma2`] | Lemma 2: structural makespan bound |
//! | T4 | [`t4_mrt_light`] | Theorem 5: mean response, light load |
//! | T5 | [`t5_mrt_heavy`] | Theorem 6: mean response, heavy load |
//! | T6 | [`t6_k1`] | §7 remark: K = 1 three-competitiveness |
//! | T7 | [`t7_baselines`] | baseline comparison on named scenarios |
//! | T8 | [`t8_ablation`] | ablation of RAD's DEQ↔RR switch |
//! | T9 | [`t9_speeds`] | §8 extension: functional + performance heterogeneity |
//! | T10 | [`t10_policy`] | environment (selection-policy) sensitivity |
//! | T11 | [`t11_twolevel`] | extension: quanta + A-Greedy feedback |
//! | T12 | [`t12_stress`] | online stress: heavy tails + bursty arrivals |
//! | T13 | [`t13_overhead`] | scheduler decision overhead vs job count |
//! | T14 | [`t14_trace`] | trace-driven replay (SWF ingestion pipeline) |
//! | T15 | [`t15_drf`] | K-RAD vs Dominant Resource Fairness |
//!
//! Run everything with the `run_experiments` binary:
//!
//! ```text
//! cargo run --release -p kexperiments --bin run_experiments -- [--quick] [--only T1] [--seed 42] [--out results]
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod f1_dag;
pub mod f2_conformance;
pub mod registry;
pub mod runner;
pub mod t10_policy;
pub mod t11_twolevel;
pub mod t12_stress;
pub mod t13_overhead;
pub mod t14_trace;
pub mod t15_drf;
pub mod t1_adversarial;
pub mod t2_makespan;
pub mod t3_lemma2;
pub mod t4_mrt_light;
pub mod t5_mrt_heavy;
pub mod t6_k1;
pub mod t7_baselines;
pub mod t8_ablation;
pub mod t9_speeds;

/// Options shared by all experiments.
#[derive(Clone, Debug)]
pub struct RunOpts {
    /// Master seed; every experiment derives independent sub-streams.
    pub seed: u64,
    /// Smaller sweeps (for tests and benches). Full sweeps otherwise.
    pub quick: bool,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            seed: 42,
            quick: false,
        }
    }
}

impl RunOpts {
    /// Quick-mode options (used by unit tests and criterion benches).
    pub fn quick(seed: u64) -> Self {
        RunOpts { seed, quick: true }
    }
}
