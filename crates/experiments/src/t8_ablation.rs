//! T8 — ablation: why RAD needs *both* DEQ and round-robin.
//!
//! Two targeted stress cases, one per ingredient:
//!
//! * **light-wide** — a single wide fork-join job on an otherwise idle
//!   machine. DEQ hands the lone job all processors (makespan ≈ span);
//!   RR-only caps it at one processor per step (makespan ≈ work).
//! * **heavy-stream** — many more jobs than processors. RAD's marked
//!   cycles serve every job once per cycle; DEQ-only (deterministic,
//!   no rotation) feeds the same front-runners every step, starving the
//!   tail: its *max* response explodes relative to RAD's.

use crate::runner::Run;
use crate::RunOpts;
use kanalysis::report::ExperimentReport;
use kanalysis::table::{f3, Table};
use kbaselines::SchedulerKind;
use kdag::generators::{fork_join, phased, PhaseSpec};
use kdag::Category;
use ksim::{JobSpec, Resources};

struct Case {
    label: &'static str,
    jobs: Vec<JobSpec>,
    resources: Resources,
}

fn light_wide() -> Case {
    // One job: 20 phases of 8-wide work on an 8-processor machine.
    let phases: Vec<(Category, u32)> = (0..20).map(|_| (Category(0), 8)).collect();
    Case {
        label: "light-wide",
        jobs: vec![JobSpec::batched(fork_join(1, &phases))],
        resources: Resources::uniform(1, 8),
    }
}

fn heavy_stream() -> Case {
    // 24 identical narrow jobs on 4 processors.
    let jobs = (0..24)
        .map(|_| JobSpec::batched(phased(1, &[PhaseSpec::new(Category(0), 2, 10)])))
        .collect();
    Case {
        label: "heavy-stream",
        jobs,
        resources: Resources::uniform(1, 4),
    }
}

/// Run T8.
pub fn run(opts: &RunOpts) -> ExperimentReport {
    let cases = [light_wide(), heavy_stream()];
    let kinds = [
        SchedulerKind::KRad,
        SchedulerKind::DeqOnly,
        SchedulerKind::RrOnly,
    ];

    let mut table = Table::new(
        "T8 — ablation: RAD = DEQ (space sharing) + RR (time sharing)",
        &["case", "scheduler", "makespan", "mean resp", "max resp"],
    );
    let mut measured = Vec::new();
    for case in &cases {
        for kind in kinds {
            let o = Run::new(kind, &case.jobs, &case.resources)
                .seed(opts.seed)
                .go();
            table.row_owned(vec![
                case.label.to_string(),
                kind.label().to_string(),
                o.makespan.to_string(),
                f3(o.mean_response()),
                o.max_response().to_string(),
            ]);
            measured.push((case.label, kind, o.makespan, o.max_response()));
        }
    }

    let get = |label: &str, kind: SchedulerKind| {
        measured
            .iter()
            .find(|(l, k, _, _)| *l == label && *k == kind)
            .expect("measured")
    };

    let mut passed = true;
    let mut conclusions = Vec::new();

    // Light-wide: RR-only must dilate makespan vs K-RAD by a large factor.
    let krad_lw = get("light-wide", SchedulerKind::KRad).2;
    let rr_lw = get("light-wide", SchedulerKind::RrOnly).2;
    let deq_lw = get("light-wide", SchedulerKind::DeqOnly).2;
    if rr_lw < krad_lw * 4 {
        passed = false;
        conclusions.push(format!(
            "SHAPE: expected RR-only makespan ({rr_lw}) >> K-RAD ({krad_lw}) on light-wide"
        ));
    } else {
        conclusions.push(format!(
            "without DEQ, a lone wide job dilates {:.1}× ({} vs {} steps); DEQ-only matches K-RAD ({})",
            rr_lw as f64 / krad_lw as f64,
            rr_lw,
            krad_lw,
            deq_lw
        ));
    }

    // Heavy-stream: DEQ-only's max response must exceed K-RAD's
    // noticeably (tail starvation), while makespans stay equal
    // (both are work-conserving).
    let krad_hs = get("heavy-stream", SchedulerKind::KRad);
    let deq_hs = get("heavy-stream", SchedulerKind::DeqOnly);
    if deq_hs.2 != krad_hs.2 {
        conclusions.push(format!(
            "note: heavy-stream makespans differ (k-rad {}, deq-only {})",
            krad_hs.2, deq_hs.2
        ));
    }
    conclusions.push(format!(
        "under heavy load, deq-only starves the queue tail: max response {} vs K-RAD's fair cycles",
        deq_hs.3
    ));

    if passed {
        conclusions.insert(
            0,
            "ablation confirms the design: drop DEQ → light-load makespan explodes; drop the RR cycle → heavy-load fairness degrades".into(),
        );
    }

    ExperimentReport {
        id: "T8".into(),
        title: "Ablation: DEQ-only and RR-only each lose one of RAD's guarantees".into(),
        paper_claim: "RAD unifies DEQ (for |J(α,t)| ≤ Pα) with round-robin cycles (for |J(α,t)| > Pα); both are needed".into(),
        params: serde_json::json!({"cases": ["light-wide", "heavy-stream"], "seed": opts.seed}),
        table,
        conclusions,
        passed,
        extra_files: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t8_quick_passes() {
        let r = run(&RunOpts::quick(29));
        assert!(r.passed, "{}\n{:?}", r.table.render(), r.conclusions);
    }
}
