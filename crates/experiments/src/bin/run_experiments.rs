//! Regenerate every figure/theorem table of the paper.
//!
//! ```text
//! run_experiments [--quick] [--only ID[,ID...]] [--seed N] [--out DIR] [--list]
//! ```
//!
//! Prints each table and writes `<out>/<ID>.json` + `<out>/<ID>.csv`.
//! Exits non-zero if any experiment's bound checks failed.

use kexperiments::{registry, RunOpts};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    opts: RunOpts,
    only: Option<Vec<String>>,
    out: PathBuf,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut opts = RunOpts::default();
    let mut only = None;
    let mut out = PathBuf::from("results");
    let mut list = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--list" => list = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--only" => {
                let v = it.next().ok_or("--only needs a value")?;
                only = Some(v.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--out" => {
                out = PathBuf::from(it.next().ok_or("--out needs a value")?);
            }
            "--help" | "-h" => {
                return Err("usage: run_experiments [--quick] [--only ID[,ID...]] [--seed N] [--out DIR] [--list]".into());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Args {
        opts,
        only,
        out,
        list,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if args.list {
        for e in registry::all() {
            println!("{:<4} {}", e.id, e.description);
        }
        return ExitCode::SUCCESS;
    }

    let entries: Vec<_> = registry::all()
        .into_iter()
        .filter(|e| {
            args.only
                .as_ref()
                .map(|ids| ids.iter().any(|id| id.eq_ignore_ascii_case(e.id)))
                .unwrap_or(true)
        })
        .collect();
    if entries.is_empty() {
        eprintln!("no experiments matched --only filter");
        return ExitCode::FAILURE;
    }

    let mut all_passed = true;
    for entry in entries {
        let started = std::time::Instant::now();
        let report = (entry.run)(&args.opts);
        let elapsed = started.elapsed();
        println!("{}", report.table.render());
        for c in &report.conclusions {
            println!("  -> {c}");
        }
        println!(
            "  [{}] {} in {:.2?}\n",
            if report.passed { "PASS" } else { "FAIL" },
            report.id,
            elapsed
        );
        all_passed &= report.passed;
        match report.write_to(&args.out) {
            Ok(p) => println!("  wrote {}\n", p.display()),
            Err(e) => eprintln!("  failed to write report: {e}"),
        }
    }

    if all_passed {
        println!("ALL EXPERIMENTS PASSED");
        ExitCode::SUCCESS
    } else {
        println!("SOME EXPERIMENTS FAILED");
        ExitCode::FAILURE
    }
}
