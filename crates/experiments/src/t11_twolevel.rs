//! T11 — extension: two-level scheduling realism.
//!
//! The RAD lineage (He/Hsu/Leiserson, JSSPP'06 / IPDPS'07 — the papers
//! this one extends to K resources) schedules in *quanta* and lets jobs
//! report **A-Greedy feedback estimates** instead of exact
//! instantaneous parallelism. This experiment measures what those two
//! realism knobs cost K-RAD on a mixed workload:
//!
//! * quantum `q ∈ {1, 4, 16}` — allotments frozen between decisions;
//! * desires: exact vs A-Greedy with `δ ∈ {0.5, 0.8, 0.95}`.
//!
//! Expected shape: costs grow gently with `q` and with coarser
//! feedback; the exact per-step configuration (the paper's model) is
//! the best; everything remains within the Theorem 3 bound computed
//! for the machine (the bound itself is only *proven* for `q = 1` +
//! exact desires, so staying under it here is an observation, not a
//! theorem check).

use crate::runner::par_map;
use crate::RunOpts;
use kanalysis::bounds::makespan_bounds;
use kanalysis::report::ExperimentReport;
use kanalysis::table::{f3, Table};
use kdag::SelectionPolicy;
use krad::KRad;
use ksim::{DesireModel, Resources, Simulation};
use kworkloads::mixes::{batched_mix, MixConfig};
use kworkloads::rng_for;

#[derive(Clone, Copy, Debug)]
struct Config {
    quantum: u64,
    model: DesireModel,
}

struct Row {
    cfg: Config,
    makespan: u64,
    ratio: f64,
    mrt: f64,
    waste_pct: f64,
}

fn model_label(m: DesireModel) -> String {
    match m {
        DesireModel::Exact => "exact".into(),
        DesireModel::AGreedy { delta } => format!("a-greedy δ={delta}"),
    }
}

fn measure(cfg: &Config, master: u64) -> Row {
    let k = 2usize;
    let mut rng = rng_for(master, 0x7B);
    let jobs = batched_mix(&mut rng, &MixConfig::new(k, 24, 40));
    let res = Resources::uniform(k, 6);
    let sim = Simulation::builder()
        .resources(res.clone())
        .jobs(jobs.iter().cloned())
        .policy(SelectionPolicy::Fifo)
        .quantum(cfg.quantum)
        .desire_model(cfg.model)
        .build()
        .expect("T11 workload matches the machine");
    let mut sched = KRad::new(k);
    let o = sim.run(&mut sched);
    let lb = makespan_bounds(&jobs, &res).lower_bound();
    Row {
        cfg: *cfg,
        makespan: o.makespan,
        ratio: o.makespan as f64 / lb,
        mrt: o.mean_response(),
        waste_pct: 100.0 * o.waste_fraction(),
    }
}

/// Run T11.
pub fn run(opts: &RunOpts) -> ExperimentReport {
    let quanta: &[u64] = if opts.quick { &[1, 4] } else { &[1, 4, 16] };
    let models: Vec<DesireModel> = if opts.quick {
        vec![DesireModel::Exact, DesireModel::AGreedy { delta: 0.8 }]
    } else {
        vec![
            DesireModel::Exact,
            DesireModel::AGreedy { delta: 0.5 },
            DesireModel::AGreedy { delta: 0.8 },
            DesireModel::AGreedy { delta: 0.95 },
        ]
    };
    let configs: Vec<Config> = quanta
        .iter()
        .flat_map(|&q| {
            models.iter().map(move |&m| Config {
                quantum: q,
                model: m,
            })
        })
        .collect();

    let rows = par_map(&configs, |_, cfg| measure(cfg, opts.seed));

    let mut table = Table::new(
        "T11 — two-level realism: quanta + A-Greedy feedback vs the paper's per-step exact model",
        &[
            "quantum",
            "desires",
            "makespan",
            "T/LB",
            "mean resp",
            "waste",
        ],
    );
    for r in &rows {
        table.row_owned(vec![
            r.cfg.quantum.to_string(),
            model_label(r.cfg.model),
            r.makespan.to_string(),
            f3(r.ratio),
            f3(r.mrt),
            format!("{:.1}%", r.waste_pct),
        ]);
    }

    // Shape checks.
    let baseline = rows
        .iter()
        .find(|r| r.cfg.quantum == 1 && r.cfg.model == DesireModel::Exact)
        .expect("baseline present");
    let mut passed = true;
    let mut conclusions = Vec::new();

    // (1) The paper's model (q = 1, exact) is the best configuration
    // and wastes (almost) nothing: with desire-capped allotments every
    // allotted processor executes.
    for r in &rows {
        if (r.makespan as f64) < baseline.makespan as f64 * 0.98 {
            passed = false;
            conclusions.push(format!(
                "SHAPE: q={} {} beat the exact per-step baseline ({} vs {})",
                r.cfg.quantum,
                model_label(r.cfg.model),
                r.makespan,
                baseline.makespan
            ));
        }
    }
    if baseline.waste_pct > 5.0 {
        passed = false;
        conclusions.push(format!(
            "SHAPE: exact-desire waste {:.1}% should be near zero",
            baseline.waste_pct
        ));
    }

    // (2) The finding that motivates feedback in the RAD lineage: with
    // long quanta, *sampling* the instantaneous desire at the decision
    // step is brittle (a momentarily-zero desire freezes a job out of a
    // category for the whole quantum), while A-Greedy's smoothed
    // estimates degrade gracefully. Assert that at the longest quantum,
    // feedback beats exact sampling.
    let longest = *quanta.last().expect("nonempty sweep");
    if longest > 1 {
        let exact_long = rows
            .iter()
            .find(|r| r.cfg.quantum == longest && r.cfg.model == DesireModel::Exact)
            .expect("present");
        let feedback_long = rows
            .iter()
            .filter(|r| r.cfg.quantum == longest && !matches!(r.cfg.model, DesireModel::Exact))
            .map(|r| r.makespan)
            .min()
            .expect("present");
        if feedback_long >= exact_long.makespan {
            passed = false;
            conclusions.push(format!(
                "SHAPE: at q={longest}, feedback ({feedback_long}) should beat instantaneous sampling ({})",
                exact_long.makespan
            ));
        } else {
            conclusions.push(format!(
                "with q={longest}, instantaneous-desire sampling collapses to {:.2}x the baseline ({:.0}% waste) while A-Greedy holds at {:.2}x — the very reason the RAD lineage pairs quanta with feedback",
                exact_long.makespan as f64 / baseline.makespan as f64,
                exact_long.waste_pct,
                feedback_long as f64 / baseline.makespan as f64
            ));
        }

        // (3) Feedback degradation is bounded across all quanta.
        let worst_feedback = rows
            .iter()
            .filter(|r| !matches!(r.cfg.model, DesireModel::Exact))
            .map(|r| r.makespan)
            .max()
            .unwrap();
        if (worst_feedback as f64) > baseline.makespan as f64 * 3.0 {
            passed = false;
            conclusions.push(format!(
                "SHAPE: worst feedback makespan {worst_feedback} more than 3x the exact baseline {}",
                baseline.makespan
            ));
        }
    }
    if passed {
        conclusions.insert(
            0,
            "the paper's per-step exact model is optimal; quanta are tolerable with feedback but brittle with instantaneous sampling".into(),
        );
    }
    table.note("q > 1: allotments frozen between decisions; a-greedy: desires are doubling/halving estimates, never the true parallelism");

    ExperimentReport {
        id: "T11".into(),
        title: "Extension: scheduling quanta + A-Greedy parallelism feedback".into(),
        paper_claim: "RAD's original two-level setting (quanta, history-based desire feedback) transfers to K resources with modest overhead".into(),
        params: serde_json::json!({"quanta": quanta, "models": models.iter().map(|m| model_label(*m)).collect::<Vec<_>>(), "seed": opts.seed}),
        table,
        conclusions,
        passed,
        extra_files: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t11_quick_passes() {
        let r = run(&RunOpts::quick(41));
        assert!(r.passed, "{}\n{:?}", r.table.render(), r.conclusions);
    }
}
