//! T14 — trace-driven evaluation (SWF substitution).
//!
//! Real evaluations of schedulers replay archive traces (SWF, the
//! Parallel Workloads Archive format). Proprietary traces can't ship
//! in this repository, so — per the substitution policy in DESIGN.md —
//! a deterministic synthetic SWF trace exercises the *same code path*:
//! parse SWF → synthesize K-DAG jobs (rectangular compute bracketed by
//! I/O stage-in/out) → replay the trace's arrival process through every
//! scheduler. Drop a real `.swf` file into `krad generate --kind swf
//! --trace FILE` to repeat this with archive data.

use crate::runner::{compare_schedulers, comparison_table};
use crate::RunOpts;
use kanalysis::report::ExperimentReport;
use kbaselines::SchedulerKind;
use kdag::SelectionPolicy;
use ksim::Resources;
use kworkloads::mixes::MixConfig;
use kworkloads::swf::{parse_swf, swf_stats, synthetic_swf, synthetic_trace_workload};

/// Run T14.
pub fn run(opts: &RunOpts) -> ExperimentReport {
    let n = if opts.quick { 40 } else { 150 };
    let jobs = synthetic_trace_workload(n, &MixConfig::new(2, 0, 60));
    let res = Resources::new(vec![24, 4]);
    let stats = swf_stats(&parse_swf(&synthetic_swf(n)).expect("synthetic trace parses"));

    let rows = compare_schedulers(&jobs, &res, SelectionPolicy::Fifo, opts.seed);
    let mut table = comparison_table(
        "T14 — trace-driven replay (synthetic SWF through the archive-trace pipeline)",
        &rows,
    );
    table.note(&format!(
        "trace: {} jobs over {} s, ≤ {} processors/job, {} processor-seconds of work (seconds_per_step = 60)",
        stats.jobs, stats.horizon, stats.max_processors, stats.total_work
    ));
    table.note("swap in a real Parallel Workloads Archive trace via `krad generate --kind swf --trace FILE`");

    let krad_row = rows
        .iter()
        .find(|r| r.kind == SchedulerKind::KRad)
        .expect("K-RAD row");
    let bound = krad::makespan_bound(res.k(), res.p_max());
    let ratio = krad_row.ratio_vs_lb;
    let passed = ratio <= bound + 1e-9;
    let conclusions = if passed {
        vec![format!(
            "the SWF pipeline produces simulator-exact workloads and Theorem 3 holds on the replay (K-RAD at {:.1}% of its bound)",
            100.0 * ratio / bound
        )]
    } else {
        vec![format!(
            "VIOLATION: trace replay ratio {ratio:.3} > bound {bound:.3}"
        )]
    };

    ExperimentReport {
        id: "T14".into(),
        title: "Trace-driven replay through the SWF ingestion pipeline".into(),
        paper_claim: "(substitution) archive-style traces — arrival process + per-job (procs, runtime) — replay through the K-resource model with the guarantees intact".into(),
        params: serde_json::json!({"jobs": n, "machine": [24, 4], "seed": opts.seed}),
        table,
        conclusions,
        passed,
        extra_files: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t14_quick_passes() {
        let r = run(&RunOpts::quick(53));
        assert!(r.passed, "{}\n{:?}", r.table.render(), r.conclusions);
        assert_eq!(r.table.rows.len(), kbaselines::SchedulerKind::ALL.len());
    }
}
