//! T7 — baseline comparison on the named scenarios.
//!
//! Runs every scheduler on the three named scenarios (heterogeneous
//! pipeline, map-reduce cluster, mixed server with Poisson arrivals)
//! and reports makespan, mean response, max response, and bottleneck
//! utilization. The shape expected from the theory: K-RAD is at or
//! near the best makespan *and* the best response times simultaneously,
//! while each baseline loses badly somewhere — RR-only on makespan
//! (span dilation), greedy/DEQ-only on response-time fairness, EQUI on
//! utilization.

use crate::runner::{par_map, Run};
use crate::RunOpts;
use kanalysis::bounds::makespan_bounds;
use kanalysis::report::ExperimentReport;
use kanalysis::table::{f3, Table};
use kbaselines::SchedulerKind;
use kdag::Category;
use kworkloads::rng_for;
use kworkloads::scenarios::standard_suite;

struct Row {
    scenario: &'static str,
    kind: SchedulerKind,
    makespan: u64,
    makespan_lb: f64,
    mean_response: f64,
    max_response: u64,
    min_util: f64,
    preemptions: u64,
}

/// Run T7.
pub fn run(opts: &RunOpts) -> ExperimentReport {
    let scenarios = standard_suite(&mut rng_for(opts.seed, 0x77));
    let work: Vec<(usize, SchedulerKind)> = (0..scenarios.len())
        .flat_map(|i| SchedulerKind::ALL.into_iter().map(move |k| (i, k)))
        .collect();

    let rows: Vec<Row> = par_map(&work, |_, &(i, kind)| {
        let sc = &scenarios[i];
        let outcome = Run::new(kind, &sc.jobs, &sc.resources).seed(opts.seed).go();
        let lb = makespan_bounds(&sc.jobs, &sc.resources).lower_bound();
        let min_util = Category::all(sc.resources.k())
            .map(|c| outcome.utilization(c, &sc.resources))
            .fold(f64::INFINITY, f64::min);
        Row {
            scenario: sc.label,
            kind,
            makespan: outcome.makespan,
            makespan_lb: lb,
            mean_response: outcome.mean_response(),
            max_response: outcome.max_response(),
            min_util,
            preemptions: outcome.preemptions,
        }
    });

    let mut table = Table::new(
        "T7 — scheduler comparison on named scenarios",
        &[
            "scenario",
            "scheduler",
            "makespan",
            "T/LB",
            "mean resp",
            "max resp",
            "min util",
            "preempt",
        ],
    );
    for r in &rows {
        table.row_owned(vec![
            r.scenario.to_string(),
            r.kind.label().to_string(),
            r.makespan.to_string(),
            f3(r.makespan as f64 / r.makespan_lb),
            f3(r.mean_response),
            r.max_response.to_string(),
            format!("{:.0}%", 100.0 * r.min_util),
            r.preemptions.to_string(),
        ]);
    }

    // Shape checks.
    let mut passed = true;
    let mut conclusions = Vec::new();
    for sc in &scenarios {
        let of = |kind: SchedulerKind| {
            rows.iter()
                .find(|r| r.scenario == sc.label && r.kind == kind)
                .expect("row")
        };
        let krad_row = of(SchedulerKind::KRad);
        let k = sc.resources.k();
        let bound = krad::makespan_bound(k, sc.resources.p_max());
        if (krad_row.makespan as f64) > bound * krad_row.makespan_lb + 1e-9 {
            passed = false;
            conclusions.push(format!(
                "VIOLATION: {}: K-RAD makespan {} exceeds bound·LB = {:.1}",
                sc.label,
                krad_row.makespan,
                bound * krad_row.makespan_lb
            ));
        }
        // RR-only must lose on makespan somewhere; greedy must lose on
        // fairness (max response) relative to K-RAD on some scenario —
        // checked globally below.
        let rr = of(SchedulerKind::RrOnly);
        if rr.makespan < krad_row.makespan {
            conclusions.push(format!(
                "note: rr-only beat K-RAD makespan on {} ({} vs {})",
                sc.label, rr.makespan, krad_row.makespan
            ));
        }
    }
    let global_rr_dilation = rows
        .iter()
        .filter(|r| r.kind == SchedulerKind::RrOnly)
        .map(|r| r.makespan as f64 / r.makespan_lb)
        .fold(0.0f64, f64::max);
    let global_krad_dilation = rows
        .iter()
        .filter(|r| r.kind == SchedulerKind::KRad)
        .map(|r| r.makespan as f64 / r.makespan_lb)
        .fold(0.0f64, f64::max);
    if global_rr_dilation <= global_krad_dilation {
        conclusions.push(format!(
            "note: expected RR-only makespan dilation ({global_rr_dilation:.2}) to exceed K-RAD's ({global_krad_dilation:.2})"
        ));
    }
    if passed {
        conclusions.insert(
            0,
            format!(
                "K-RAD stays within its makespan bound on every scenario (worst dilation {:.2}×LB) while matching or beating each baseline's weak metric",
                global_krad_dilation
            ),
        );
    }

    ExperimentReport {
        id: "T7".into(),
        title: "Scheduler comparison: K-RAD vs all baselines (EQUI, DEQ-only, RR-only, Greedy-FCFS, LAS, randomized-RR, DRF)".into(),
        paper_claim: "K-RAD combines DEQ's space sharing and RR's time sharing; comparators lacking one ingredient lose on the corresponding metric".into(),
        params: serde_json::json!({"scenarios": scenarios.iter().map(|s| s.label).collect::<Vec<_>>(), "seed": opts.seed}),
        table,
        conclusions,
        passed,
        extra_files: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t7_quick_passes() {
        let r = run(&RunOpts::quick(23));
        assert!(r.passed, "{}\n{:?}", r.table.render(), r.conclusions);
    }
}
