//! T2 — Theorem 3: K-RAD's makespan competitiveness.
//!
//! Random mixed workloads with batched and Poisson releases; the
//! measured ratio is `T / LB` where `LB = max(max r+T∞, max_α T1/Pα)`
//! is the §4 lower bound on the optimum. Theorem 3's proof bounds
//! K-RAD against exactly this `LB` combination, so the measured ratio
//! must stay below `K + 1 − 1/Pmax` — even under the adversarial
//! critical-path-last environment, which we use to stress the bound.

use crate::runner::{par_map, Run};
use crate::RunOpts;
use kanalysis::bounds::makespan_bounds;
use kanalysis::report::ExperimentReport;
use kanalysis::stats::Summary;
use kanalysis::table::{f3, Table};
use kbaselines::SchedulerKind;
use kdag::SelectionPolicy;
use ksim::Resources;
use kworkloads::arrivals::poisson_releases;
use kworkloads::mixes::{batched_mix, MixConfig};
use kworkloads::rng_for;

#[derive(Clone, Debug)]
struct Config {
    k: usize,
    p: u32,
    jobs: usize,
    arrivals: &'static str,
    seeds: Vec<u64>,
}

/// Returns (T/LB, T/T_cp): the conservative ratio against the §4 lower
/// bound and the bracketing ratio against the clairvoyant reference.
fn measure(cfg: &Config, seed: u64, master: u64) -> (f64, f64) {
    let mix = MixConfig::new(cfg.k, cfg.jobs, 40);
    let mut rng = rng_for(master ^ seed, 0x72);
    let mut jobs = batched_mix(&mut rng, &mix);
    if cfg.arrivals == "poisson" {
        poisson_releases(&mut jobs, &mut rng, 0.2);
    }
    let res = Resources::uniform(cfg.k, cfg.p);
    let outcome = Run::new(SchedulerKind::KRad, &jobs, &res)
        .policy(SelectionPolicy::CriticalLast)
        .seed(seed)
        .go();
    let lb = makespan_bounds(&jobs, &res).lower_bound();
    let t_cp = kanalysis::offline::clairvoyant_cp(&jobs, &res).makespan;
    (
        outcome.makespan as f64 / lb,
        outcome.makespan as f64 / t_cp as f64,
    )
}

/// Run T2.
pub fn run(opts: &RunOpts) -> ExperimentReport {
    let (ks, ps, ns, seeds): (&[usize], &[u32], &[usize], usize) = if opts.quick {
        (&[1, 2], &[4], &[20], 2)
    } else {
        (&[1, 2, 4], &[4, 16], &[20, 80], 5)
    };
    let mut configs = Vec::new();
    for &k in ks {
        for &p in ps {
            for &n in ns {
                for arrivals in ["batched", "poisson"] {
                    configs.push(Config {
                        k,
                        p,
                        jobs: n,
                        arrivals,
                        seeds: (0..seeds as u64).collect(),
                    });
                }
            }
        }
    }

    let results = par_map(&configs, |_, cfg| {
        let pairs: Vec<(f64, f64)> = cfg
            .seeds
            .iter()
            .map(|&s| measure(cfg, s, opts.seed))
            .collect();
        let lb_ratios: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let cp_ratios: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        (Summary::of(&lb_ratios), Summary::of(&cp_ratios))
    });

    let mut table = Table::new(
        "T2 — Theorem 3: makespan competitiveness of K-RAD (ratio = T / LB)",
        &[
            "K",
            "P",
            "jobs",
            "arrivals",
            "seeds",
            "mean",
            "max",
            "max T/T_cp",
            "bound",
            "slack",
        ],
    );
    let mut passed = true;
    let mut conclusions = Vec::new();
    let mut worst_frac: f64 = 0.0;
    for (cfg, (s, s_cp)) in configs.iter().zip(&results) {
        let bound = krad::makespan_bound(cfg.k, cfg.p);
        worst_frac = worst_frac.max(s.max / bound);
        if s.max > bound + 1e-9 {
            passed = false;
            conclusions.push(format!(
                "VIOLATION: K={} P={} n={} {}: max ratio {:.3} > bound {:.3}",
                cfg.k, cfg.p, cfg.jobs, cfg.arrivals, s.max, bound
            ));
        }
        // Bracket sanity: T/T_cp ≤ T/LB (T_cp ≥ LB always).
        if s_cp.max > s.max + 1e-9 {
            passed = false;
            conclusions.push(format!(
                "BRACKET INVERTED: K={} P={} n={} {}: T/T_cp {:.3} > T/LB {:.3}",
                cfg.k, cfg.p, cfg.jobs, cfg.arrivals, s_cp.max, s.max
            ));
        }
        table.row_owned(vec![
            cfg.k.to_string(),
            cfg.p.to_string(),
            cfg.jobs.to_string(),
            cfg.arrivals.to_string(),
            cfg.seeds.len().to_string(),
            f3(s.mean),
            f3(s.max),
            f3(s_cp.max),
            f3(bound),
            f3(bound - s.max),
        ]);
    }
    if passed {
        conclusions.insert(
            0,
            format!(
                "Theorem 3 holds on every configuration: max measured ratio is {:.1}% of the (K+1−1/Pmax) bound",
                100.0 * worst_frac
            ),
        );
    }
    table.note(
        "LB = max(max_i r_i+T∞_i, max_α T1(α)/Pα) — a lower bound on the clairvoyant optimum",
    );
    table.note("T_cp: feasible clairvoyant critical-path schedule, so LB ≤ T* ≤ T_cp brackets the true ratio in [T/T_cp, T/LB]");
    table.note("environment: critical-path-last (adversarial) selection");

    ExperimentReport {
        id: "T2".into(),
        title: "Theorem 3: (K+1−1/Pmax)-competitive makespan, arbitrary releases".into(),
        paper_claim: "K-RAD is (K+1−1/Pmax)-competitive w.r.t. makespan for any job set with arbitrary release times".into(),
        params: serde_json::json!({"K": ks, "P": ps, "jobs": ns, "seeds": seeds, "seed": opts.seed}),
        table,
        conclusions,
        passed,
        extra_files: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t2_quick_passes() {
        let r = run(&RunOpts::quick(3));
        assert!(r.passed, "{}\n{:?}", r.table.render(), r.conclusions);
    }
}
