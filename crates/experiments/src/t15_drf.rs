//! T15 — K-RAD vs Dominant Resource Fairness.
//!
//! DRF (Ghodsi et al., NSDI'11) is *the* modern multi-resource fair
//! allocator, so it is the natural "what would we use today?" question
//! for the K-resource model. The structural difference: DRF equalizes
//! each job's dominant *share of the machine*; K-RAD equalizes
//! *per-category allotments* and adds a marked round-robin cycle when a
//! category is oversubscribed. Two targeted cases expose what that
//! cycle buys:
//!
//! * **mixed-demand** — CPU-heavy and I/O-heavy jobs side by side
//!   (DRF's home turf): both schedulers should do comparably well;
//! * **heavy-stream** — many more single-category jobs than
//!   processors: DRF's per-step progressive filling restarts from zero
//!   shares each step and tie-breaks by id, so the same low-id jobs win
//!   every step — the tail starves, exactly the failure K-RAD's cycle
//!   repairs.

use crate::runner::Run;
use crate::RunOpts;
use kanalysis::report::ExperimentReport;
use kanalysis::table::{f3, Table};
use kbaselines::SchedulerKind;
use kdag::generators::{phased, PhaseSpec};
use kdag::Category;
use ksim::{JobSpec, Resources};

struct Case {
    label: &'static str,
    jobs: Vec<JobSpec>,
    resources: Resources,
}

fn mixed_demand() -> Case {
    // 6 CPU-dominant + 6 IO-dominant jobs on a [8, 8] machine.
    let cpu_heavy = || {
        phased(
            2,
            &[
                PhaseSpec::new(Category(0), 6, 20),
                PhaseSpec::new(Category(1), 1, 4),
            ],
        )
    };
    let io_heavy = || {
        phased(
            2,
            &[
                PhaseSpec::new(Category(1), 6, 20),
                PhaseSpec::new(Category(0), 1, 4),
            ],
        )
    };
    let mut jobs = Vec::new();
    for _ in 0..6 {
        jobs.push(JobSpec::batched(cpu_heavy()));
        jobs.push(JobSpec::batched(io_heavy()));
    }
    Case {
        label: "mixed-demand",
        jobs,
        resources: Resources::new(vec![8, 8]),
    }
}

fn heavy_stream() -> Case {
    let jobs = (0..24)
        .map(|_| JobSpec::batched(phased(1, &[PhaseSpec::new(Category(0), 2, 10)])))
        .collect();
    Case {
        label: "heavy-stream",
        jobs,
        resources: Resources::uniform(1, 4),
    }
}

/// Run T15.
pub fn run(opts: &RunOpts) -> ExperimentReport {
    let cases = [mixed_demand(), heavy_stream()];
    let kinds = [SchedulerKind::KRad, SchedulerKind::Drf];

    let mut table = Table::new(
        "T15 — K-RAD vs Dominant Resource Fairness",
        &[
            "case",
            "scheduler",
            "makespan",
            "mean resp",
            "max resp",
            "resp spread",
        ],
    );
    let mut measured = Vec::new();
    for case in &cases {
        for kind in kinds {
            let o = Run::new(kind, &case.jobs, &case.resources)
                .seed(opts.seed)
                .go();
            let min_resp = (0..o.job_count()).map(|i| o.response(i)).min().unwrap();
            let spread = o.max_response() - min_resp;
            table.row_owned(vec![
                case.label.to_string(),
                kind.label().to_string(),
                o.makespan.to_string(),
                f3(o.mean_response()),
                o.max_response().to_string(),
                spread.to_string(),
            ]);
            measured.push((case.label, kind, o.makespan, o.max_response(), spread));
        }
    }

    let get = |label: &str, kind: SchedulerKind| {
        measured
            .iter()
            .find(|(l, k, ..)| *l == label && *k == kind)
            .expect("measured")
    };
    let mut passed = true;
    let mut conclusions = Vec::new();

    // Mixed demand: comparable makespans (within 25%).
    let krad_md = get("mixed-demand", SchedulerKind::KRad).2;
    let drf_md = get("mixed-demand", SchedulerKind::Drf).2;
    if (krad_md as f64 - drf_md as f64).abs() > 0.25 * krad_md as f64 {
        conclusions.push(format!(
            "note: mixed-demand makespans diverge (k-rad {krad_md}, drf {drf_md})"
        ));
    } else {
        conclusions.push(format!(
            "on DRF's home turf (skewed multi-resource demands) the two are comparable: makespan {krad_md} vs {drf_md}"
        ));
    }

    // Heavy stream: DRF's completion spread must dwarf K-RAD's (the
    // id-tie-break starvation), while makespans match (both are
    // work-conserving).
    let krad_hs = get("heavy-stream", SchedulerKind::KRad);
    let drf_hs = get("heavy-stream", SchedulerKind::Drf);
    if drf_hs.4 <= krad_hs.4 {
        passed = false;
        conclusions.push(format!(
            "SHAPE: expected DRF's response spread ({}) to exceed K-RAD's ({}) under heavy load",
            drf_hs.4, krad_hs.4
        ));
    } else {
        conclusions.push(format!(
            "under heavy single-category load DRF re-ties by job id every step and starves the tail (spread {} vs K-RAD's {}): the round-robin cycle is K-RAD's differentiator even against the modern allocator",
            drf_hs.4, krad_hs.4
        ));
    }
    if krad_hs.2 != drf_hs.2 {
        conclusions.push(format!(
            "note: heavy-stream makespans differ (k-rad {}, drf {})",
            krad_hs.2, drf_hs.2
        ));
    }

    ExperimentReport {
        id: "T15".into(),
        title: "K-RAD vs DRF: per-category cycles vs dominant-share fairness".into(),
        paper_claim: "(context) K-RAD's marked round-robin cycle provides heavy-load fairness that share-equalizing allocators lack; on skewed multi-resource demands the approaches coincide".into(),
        params: serde_json::json!({"cases": ["mixed-demand", "heavy-stream"], "seed": opts.seed}),
        table,
        conclusions,
        passed,
        extra_files: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t15_quick_passes() {
        let r = run(&RunOpts::quick(59));
        assert!(r.passed, "{}\n{:?}", r.table.render(), r.conclusions);
    }
}
