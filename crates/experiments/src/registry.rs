//! The experiment registry: ids → runners.

use crate::RunOpts;
use kanalysis::report::ExperimentReport;

/// A registered experiment.
pub struct Entry {
    /// Stable id from DESIGN.md (e.g. "T1").
    pub id: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The runner.
    pub run: fn(&RunOpts) -> ExperimentReport,
}

/// All experiments in canonical order.
pub fn all() -> Vec<Entry> {
    vec![
        Entry {
            id: "F1",
            description: "Figure 1: example 3-DAG",
            run: crate::f1_dag::run,
        },
        Entry {
            id: "F2",
            description: "Figure 2: RAD pseudo-code conformance",
            run: crate::f2_conformance::run,
        },
        Entry {
            id: "T1",
            description: "Theorem 1 / Figure 3: adversarial makespan lower bound",
            run: crate::t1_adversarial::run,
        },
        Entry {
            id: "T2",
            description: "Theorem 3: makespan competitiveness",
            run: crate::t2_makespan::run,
        },
        Entry {
            id: "T3",
            description: "Lemma 2: structural makespan bound",
            run: crate::t3_lemma2::run,
        },
        Entry {
            id: "T4",
            description: "Theorem 5: mean response time, light load",
            run: crate::t4_mrt_light::run,
        },
        Entry {
            id: "T5",
            description: "Theorem 6: mean response time, heavy load",
            run: crate::t5_mrt_heavy::run,
        },
        Entry {
            id: "T6",
            description: "K = 1: three-competitive mean response",
            run: crate::t6_k1::run,
        },
        Entry {
            id: "T7",
            description: "Baseline comparison on named scenarios",
            run: crate::t7_baselines::run,
        },
        Entry {
            id: "T8",
            description: "Ablation: DEQ-only / RR-only",
            run: crate::t8_ablation::run,
        },
        Entry {
            id: "T9",
            description: "Extension: functional + performance heterogeneity",
            run: crate::t9_speeds::run,
        },
        Entry {
            id: "T10",
            description: "Selection-policy (environment) sensitivity",
            run: crate::t10_policy::run,
        },
        Entry {
            id: "T11",
            description: "Extension: quanta + A-Greedy feedback",
            run: crate::t11_twolevel::run,
        },
        Entry {
            id: "T12",
            description: "Online stress: heavy tails + bursts",
            run: crate::t12_stress::run,
        },
        Entry {
            id: "T13",
            description: "Scheduler decision overhead vs job count",
            run: crate::t13_overhead::run,
        },
        Entry {
            id: "T14",
            description: "Trace-driven replay (SWF pipeline)",
            run: crate::t14_trace::run,
        },
        Entry {
            id: "T15",
            description: "K-RAD vs Dominant Resource Fairness",
            run: crate::t15_drf::run,
        },
    ]
}

/// Look up one experiment by (case-insensitive) id.
pub fn find(id: &str) -> Option<Entry> {
    all().into_iter().find(|e| e.id.eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let mut ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all().len());
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find("t1").is_some());
        assert!(find("F2").is_some());
        assert!(find("nope").is_none());
    }
}
