//! F1 — Figure 1: the example 3-DAG job.
//!
//! Regenerates the paper's Figure 1 as (a) a parallelism-profile table
//! and (b) a Graphviz DOT description embedded in the report, and
//! checks the reconstruction's structural facts.

use crate::RunOpts;
use kanalysis::report::ExperimentReport;
use kanalysis::table::Table;
use kdag::generators::fig1_example;
use kdag::{dot, parallelism_profile, Category};

/// Run F1.
pub fn run(_opts: &RunOpts) -> ExperimentReport {
    let dag = fig1_example();
    let profile = parallelism_profile(&dag);

    let mut table = Table::new(
        "F1 — Figure 1: example 3-DAG (earliest-start parallelism profile)",
        &["step", "α1-tasks", "α2-tasks", "α3-tasks"],
    );
    for row in &profile {
        table.row_owned(vec![
            row.step.to_string(),
            row.by_category[0].to_string(),
            row.by_category[1].to_string(),
            row.by_category[2].to_string(),
        ]);
    }
    table.note(&format!(
        "tasks={} edges={} span={} work=({},{},{})",
        dag.len(),
        dag.edge_count(),
        dag.span(),
        dag.work(Category(0)),
        dag.work(Category(1)),
        dag.work(Category(2)),
    ));

    let structural_ok = dag.len() == 10
        && dag.span() == 5
        && dag.work_by_category() == [4, 3, 3]
        && profile.len() == 5;
    let conclusions = vec![
        format!(
            "3-DAG with 3 task types reconstructed: 10 unit tasks, span 5, work (4,3,3) — {}",
            if structural_ok { "OK" } else { "MISMATCH" }
        ),
        format!("graphviz: {}", dot::to_dot(&dag, "fig1").replace('\n', " ")),
    ];

    ExperimentReport {
        id: "F1".into(),
        title: "Figure 1: a 3-DAG job with 3 different types of tasks".into(),
        paper_claim: "Jobs are K-colored DAGs of unit-time tasks; the example mixes 3 task types with cross-type dependencies".into(),
        params: serde_json::json!({"k": 3}),
        table,
        conclusions,
        passed: structural_ok,
        extra_files: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_passes() {
        let r = run(&RunOpts::quick(0));
        assert!(r.passed);
        assert_eq!(r.table.rows.len(), 5);
    }
}
