//! T4 — Theorem 5: mean response time under light workload.
//!
//! Light workload means `|J(α, t)| ≤ Pα` at all times — guaranteed here
//! by using `n ≤ minα Pα` batched jobs — so K-RAD only ever uses DEQ.
//! Two checks per run:
//!
//! 1. the *direct* Inequality (5) the proof establishes:
//!    `R(J) ≤ (2 − 2/(n+1)) · Σα swa(J, α) + T∞(J)`;
//! 2. the competitive form: `R(J) / LB ≤ 2K + 1 − 2K/(n+1)`, with
//!    `LB = max(T∞(J), maxα swa(J, α))` the §6 lower bound.

use crate::runner::{par_map, Run};
use crate::RunOpts;
use kanalysis::bounds::{response_bounds, theorem5_rhs};
use kanalysis::report::ExperimentReport;
use kanalysis::table::{f3, Table};
use kbaselines::SchedulerKind;
use kdag::SelectionPolicy;
use ksim::Resources;
use kworkloads::mixes::{batched_mix, MixConfig};
use kworkloads::rng_for;

#[derive(Clone, Debug)]
struct Config {
    k: usize,
    n: usize,
    p: u32,
    policy: SelectionPolicy,
    seed: u64,
}

struct Row {
    cfg: Config,
    total_response: u64,
    rhs5: f64,
    ratio: f64,
    bound: f64,
}

fn measure(cfg: &Config, master: u64) -> Row {
    let mix = MixConfig::new(cfg.k, cfg.n, 30);
    let mut rng = rng_for(master ^ cfg.seed, 0x74);
    let jobs = batched_mix(&mut rng, &mix);
    let res = Resources::uniform(cfg.k, cfg.p);
    let outcome = Run::new(SchedulerKind::KRad, &jobs, &res)
        .policy(cfg.policy)
        .seed(cfg.seed)
        .go();
    let rb = response_bounds(&jobs, &res);
    let total = outcome.total_response();
    Row {
        cfg: cfg.clone(),
        total_response: total,
        rhs5: theorem5_rhs(&jobs, &res),
        ratio: total as f64 / rb.lower_bound(),
        bound: krad::mrt_bound_light(cfg.k, cfg.n),
    }
}

/// Run T4.
pub fn run(opts: &RunOpts) -> ExperimentReport {
    let mut configs = Vec::new();
    let (ks, ns, seeds): (&[usize], &[usize], u64) = if opts.quick {
        (&[1, 2], &[3, 6], 2)
    } else {
        (&[1, 2, 3], &[2, 4, 8], 5)
    };
    for &k in ks {
        for &n in ns {
            // Light workload: every category has at least n processors.
            let p = (n as u32).max(4);
            for policy in [SelectionPolicy::Fifo, SelectionPolicy::CriticalLast] {
                for seed in 0..seeds {
                    configs.push(Config {
                        k,
                        n,
                        p,
                        policy,
                        seed,
                    });
                }
            }
        }
    }

    let rows = par_map(&configs, |_, cfg| measure(cfg, opts.seed));

    let mut table = Table::new(
        "T4 — Theorem 5: mean response time under light workload (DEQ only)",
        &[
            "K",
            "n",
            "P",
            "policy",
            "seed",
            "R(J)",
            "Ineq(5) RHS",
            "R/LB",
            "bound",
            "ok",
        ],
    );
    let mut passed = true;
    let mut worst_direct: f64 = 0.0;
    let mut worst_ratio_frac: f64 = 0.0;
    for r in &rows {
        let direct_ok = (r.total_response as f64) <= r.rhs5 + 1e-9;
        let ratio_ok = r.ratio <= r.bound + 1e-9;
        worst_direct = worst_direct.max(r.total_response as f64 / r.rhs5);
        worst_ratio_frac = worst_ratio_frac.max(r.ratio / r.bound);
        passed &= direct_ok && ratio_ok;
        table.row_owned(vec![
            r.cfg.k.to_string(),
            r.cfg.n.to_string(),
            r.cfg.p.to_string(),
            r.cfg.policy.to_string(),
            r.cfg.seed.to_string(),
            r.total_response.to_string(),
            f3(r.rhs5),
            f3(r.ratio),
            f3(r.bound),
            if direct_ok && ratio_ok { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let conclusions = if passed {
        vec![
            format!(
                "Inequality (5) holds directly on all {} runs (tightest: R = {:.1}% of RHS)",
                rows.len(),
                100.0 * worst_direct
            ),
            format!(
                "competitive form holds: worst R/LB is {:.1}% of the (2K+1−2K/(n+1)) bound",
                100.0 * worst_ratio_frac
            ),
        ]
    } else {
        vec!["VIOLATION of Theorem 5 — see table".into()]
    };

    ExperimentReport {
        id: "T4".into(),
        title: "Theorem 5: (2K+1−2K/(n+1))-competitive mean response, light load".into(),
        paper_claim:
            "If |J(α,t)| ≤ Pα at all times, K-RAD satisfies R(J) ≤ (2−2/(n+1))Σα swa(J,α) + T∞(J)"
                .into(),
        params: serde_json::json!({"K": ks, "n": ns, "seeds": seeds, "seed": opts.seed}),
        table,
        conclusions,
        passed,
        extra_files: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t4_quick_passes() {
        let r = run(&RunOpts::quick(11));
        assert!(r.passed, "{}", r.table.render());
    }
}
