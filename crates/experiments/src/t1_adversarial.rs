//! T1 — Theorem 1 / Figure 3: the makespan lower bound, realized.
//!
//! Builds the adversarial job set, runs K-RAD against the
//! critical-path-last environment, and measures the competitive ratio
//! `T / T*` against the *exactly known* optimum `T* = K + m·PK − 1`.
//! The theorem says no deterministic non-clairvoyant scheduler beats
//! `K + 1 − 1/Pmax`; the measured ratio must approach that value from
//! below as `m` grows (and must never exceed it, since K-RAD is also
//! `(K + 1 − 1/Pmax)`-competitive by Theorem 3).

use crate::runner::{par_map, Run};
use crate::RunOpts;
use kanalysis::report::ExperimentReport;
use kanalysis::svg::{LineChart, Series};
use kanalysis::table::{f3, Table};
use kbaselines::SchedulerKind;
use kdag::SelectionPolicy;
use kworkloads::adversarial::adversarial_workload;

/// One sweep point.
#[derive(Clone, Copy, Debug)]
struct Point {
    k: usize,
    p: u32,
    m: u64,
}

/// Measured outcome for one point.
struct Row {
    point: Point,
    jobs: usize,
    makespan: u64,
    optimal: u64,
    clairvoyant: u64,
    ratio: f64,
    bound: f64,
}

fn measure(point: &Point, seed: u64) -> Row {
    let p_vec = vec![point.p; point.k];
    let w = adversarial_workload(&p_vec, point.m);
    let outcome = Run::new(SchedulerKind::KRad, &w.jobs, &w.resources)
        .policy(SelectionPolicy::CriticalLast)
        .seed(seed)
        .go();
    // A clairvoyant critical-path-first scheduler defeats the
    // adversary: its feasible makespan certifies T* from above.
    let clairvoyant = kanalysis::offline::clairvoyant_cp(&w.jobs, &w.resources).makespan;
    Row {
        point: *point,
        jobs: w.jobs.len(),
        makespan: outcome.makespan,
        optimal: w.optimal_makespan,
        clairvoyant,
        ratio: outcome.makespan as f64 / w.optimal_makespan as f64,
        bound: w.bound,
    }
}

/// Run T1.
pub fn run(opts: &RunOpts) -> ExperimentReport {
    let (ks, ps, ms): (&[usize], &[u32], &[u64]) = if opts.quick {
        (&[1, 2], &[4], &[1, 4, 16])
    } else {
        (&[1, 2, 3], &[2, 4, 8], &[1, 4, 16, 64])
    };
    let points: Vec<Point> = ks
        .iter()
        .flat_map(|&k| {
            ps.iter()
                .flat_map(move |&p| ms.iter().map(move |&m| Point { k, p, m }))
        })
        .collect();

    let rows = par_map(&points, |_, pt| measure(pt, opts.seed));

    let mut table = Table::new(
        "T1 — Theorem 1 / Figure 3: adversarial lower bound (K-RAD vs exact OPT)",
        &[
            "K",
            "P",
            "m",
            "jobs",
            "T",
            "T*",
            "T_cp",
            "ratio",
            "bound",
            "% of bound",
        ],
    );
    let mut passed = true;
    let mut conclusions = Vec::new();
    for r in &rows {
        let pct = 100.0 * r.ratio / r.bound;
        table.row_owned(vec![
            r.point.k.to_string(),
            r.point.p.to_string(),
            r.point.m.to_string(),
            r.jobs.to_string(),
            r.makespan.to_string(),
            r.optimal.to_string(),
            r.clairvoyant.to_string(),
            f3(r.ratio),
            f3(r.bound),
            format!("{pct:.1}%"),
        ]);
        // The clairvoyant schedule is feasible, so it can never beat
        // T*; and on this instance it must (nearly) achieve it,
        // demonstrating the gap is purely about clairvoyance.
        if r.clairvoyant < r.optimal || r.clairvoyant > r.optimal + r.point.k as u64 {
            passed = false;
            conclusions.push(format!(
                "CLAIRVOYANT MISMATCH: K={} P={} m={}: T_cp={} vs T*={}",
                r.point.k, r.point.p, r.point.m, r.clairvoyant, r.optimal
            ));
        }
        // Theorem 3 says K-RAD never exceeds the bound (exact OPT here,
        // so no lower-bound slack is involved).
        if r.ratio > r.bound + 1e-9 {
            passed = false;
            conclusions.push(format!(
                "VIOLATION: K={} P={} m={}: ratio {:.3} > bound {:.3}",
                r.point.k, r.point.p, r.point.m, r.ratio, r.bound
            ));
        }
    }
    // The ratio must approach the bound as m grows: at the largest m of
    // each (K, P), demand ≥ 85% of the bound.
    for &k in ks {
        for &p in ps {
            let biggest = rows
                .iter()
                .filter(|r| r.point.k == k && r.point.p == p)
                .max_by_key(|r| r.point.m)
                .expect("sweep nonempty");
            let pct = biggest.ratio / biggest.bound;
            if pct < 0.85 {
                passed = false;
                conclusions.push(format!(
                    "NOT TIGHT: K={k} P={p} m={}: only {:.1}% of bound",
                    biggest.point.m,
                    100.0 * pct
                ));
            }
        }
    }
    if passed {
        let max_pct = rows
            .iter()
            .map(|r| r.ratio / r.bound)
            .fold(0.0f64, f64::max);
        conclusions.insert(
            0,
            format!(
                "lower bound realized: ratios approach K+1−1/Pmax from below (max {:.1}% of bound at largest m) and never exceed it",
                100.0 * max_pct
            ),
        );
    }
    table.note("environment: critical-path-last selection (the Theorem 1 adversary); T* is analytically exact");
    table.note("T_cp: clairvoyant critical-path-first list scheduling — it defeats the adversary (T_cp ≈ T*), showing the gap is purely about clairvoyance");

    // The convergence figure: ratio vs m per (K, P), with each bound as
    // a dashed reference line.
    let mut chart = LineChart {
        title: "Figure 3 realized: T/T* → K + 1 − 1/Pmax".into(),
        x_label: "scale parameter m (log2)".into(),
        y_label: "competitive ratio T / T*".into(),
        series: Vec::new(),
        reference_lines: Vec::new(),
        log2_x: true,
    };
    for &k in ks {
        for &p in ps {
            let pts: Vec<(f64, f64)> = rows
                .iter()
                .filter(|r| r.point.k == k && r.point.p == p)
                .map(|r| (r.point.m as f64, r.ratio))
                .collect();
            if pts.is_empty() {
                continue;
            }
            chart.series.push(Series {
                label: format!("K={k} P={p}"),
                points: pts,
            });
            let bound = k as f64 + 1.0 - 1.0 / f64::from(p);
            chart
                .reference_lines
                .push((bound, format!("bound K={k} P={p}")));
        }
    }
    let extra_files = vec![("T1_convergence.svg".to_string(), chart.render())];

    ExperimentReport {
        id: "T1".into(),
        title: "Theorem 1 / Figure 3: adversarial makespan lower bound".into(),
        paper_claim: "Any deterministic non-clairvoyant K-resource scheduler is at best (K+1−1/Pmax)-competitive; the Fig. 3 job set forces T ≈ mKPK+mPK−m vs T* = K+mPK−1".into(),
        params: serde_json::json!({"K": ks, "P": ps, "m": ms, "seed": opts.seed}),
        table,
        conclusions,
        passed,
        extra_files,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_quick_passes() {
        let r = run(&RunOpts::quick(7));
        assert!(r.passed, "{}\n{:?}", r.table.render(), r.conclusions);
    }

    #[test]
    fn ratio_grows_with_m() {
        let a = measure(&Point { k: 2, p: 4, m: 1 }, 0);
        let b = measure(&Point { k: 2, p: 4, m: 16 }, 0);
        assert!(
            b.ratio > a.ratio,
            "m=16 ratio {} ≤ m=1 ratio {}",
            b.ratio,
            a.ratio
        );
        assert!(b.ratio <= b.bound + 1e-9);
    }
}
