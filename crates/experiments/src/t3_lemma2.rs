//! T3 — Lemma 2: the structural makespan bound, verified directly.
//!
//! For schedules without idle intervals (guaranteed here by batching),
//! Lemma 2 bounds K-RAD's makespan by
//! `Σα T1(J,α)/Pα + (1 − 1/Pmax) · max_Ji (T∞(Ji) + r(Ji))`.
//! Unlike the competitive ratio, this inequality involves no hidden
//! optimum — both sides are computed exactly, so it is the sharpest
//! possible check of the makespan analysis.

use crate::runner::{par_map, Run};
use crate::RunOpts;
use kanalysis::bounds::lemma2_rhs;
use kanalysis::report::ExperimentReport;
use kanalysis::table::{f3, Table};
use kbaselines::SchedulerKind;
use kdag::SelectionPolicy;
use ksim::Resources;
use kworkloads::mixes::{batched_mix, MixConfig};
use kworkloads::rng_for;

#[derive(Clone, Debug)]
struct Config {
    k: usize,
    p: Vec<u32>,
    jobs: usize,
    policy: SelectionPolicy,
    seed: u64,
}

struct Row {
    cfg: Config,
    makespan: u64,
    rhs: f64,
    idle: u64,
}

fn measure(cfg: &Config, master: u64) -> Row {
    let mix = MixConfig::new(cfg.k, cfg.jobs, 36);
    let mut rng = rng_for(master ^ cfg.seed, 0x73);
    let jobs = batched_mix(&mut rng, &mix);
    let res = Resources::new(cfg.p.clone());
    let outcome = Run::new(SchedulerKind::KRad, &jobs, &res)
        .policy(cfg.policy)
        .seed(cfg.seed)
        .go();
    Row {
        cfg: cfg.clone(),
        makespan: outcome.makespan,
        rhs: lemma2_rhs(&jobs, &res),
        idle: outcome.idle_steps,
    }
}

/// Run T3.
pub fn run(opts: &RunOpts) -> ExperimentReport {
    let mut configs = Vec::new();
    let seeds: u64 = if opts.quick { 2 } else { 6 };
    let machines: Vec<Vec<u32>> = if opts.quick {
        vec![vec![4], vec![4, 2]]
    } else {
        vec![
            vec![4],
            vec![8],
            vec![4, 2],
            vec![8, 8, 2],
            vec![2, 4, 8, 16],
        ]
    };
    let policies = [
        SelectionPolicy::Fifo,
        SelectionPolicy::CriticalLast,
        SelectionPolicy::Random,
    ];
    for p in &machines {
        for &policy in &policies {
            for seed in 0..seeds {
                configs.push(Config {
                    k: p.len(),
                    p: p.clone(),
                    jobs: if opts.quick { 16 } else { 40 },
                    policy,
                    seed,
                });
            }
        }
    }

    let rows = par_map(&configs, |_, cfg| measure(cfg, opts.seed));

    let mut table = Table::new(
        "T3 — Lemma 2: T(J) ≤ Σα T1(α)/Pα + (1−1/Pmax)·max(T∞+r)",
        &[
            "machine",
            "policy",
            "seed",
            "T",
            "Lemma-2 RHS",
            "T/RHS",
            "ok",
        ],
    );
    let mut passed = true;
    let mut worst: f64 = 0.0;
    for r in &rows {
        assert_eq!(r.idle, 0, "batched sets cannot have idle intervals");
        let frac = r.makespan as f64 / r.rhs;
        worst = worst.max(frac);
        let ok = (r.makespan as f64) <= r.rhs + 1e-9;
        passed &= ok;
        table.row_owned(vec![
            format!("{:?}", r.cfg.p),
            r.cfg.policy.to_string(),
            r.cfg.seed.to_string(),
            r.makespan.to_string(),
            f3(r.rhs),
            f3(frac),
            if ok { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let conclusions = if passed {
        vec![format!(
            "Lemma 2 holds exactly on all {} runs (tightest: T = {:.1}% of RHS)",
            rows.len(),
            100.0 * worst
        )]
    } else {
        vec!["VIOLATION of Lemma 2 — see table".into()]
    };

    ExperimentReport {
        id: "T3".into(),
        title: "Lemma 2: structural makespan bound (no idle intervals)".into(),
        paper_claim:
            "With no idle intervals, K-RAD completes J within Σα T1(J,α)/Pα + (1−1/Pmax)·max(T∞+r)"
                .into(),
        params: serde_json::json!({"machines": machines, "seeds": seeds, "seed": opts.seed}),
        table,
        conclusions,
        passed,
        extra_files: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t3_quick_passes() {
        let r = run(&RunOpts::quick(5));
        assert!(r.passed, "{}", r.table.render());
    }
}
