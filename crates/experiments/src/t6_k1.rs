//! T6 — §7 remark: K = 1 gives the best known 3-competitiveness.
//!
//! For homogeneous machines (K = 1), Theorem 5 plus the authors' prior
//! work makes RAD `(3 − 2/(n+1))`-competitive for mean response time —
//! beating the long-standing `2 + √3 ≈ 3.73` bound of Edmonds et al.
//! for EQUI. We run RAD (= K-RAD with K = 1), EQUI, and RR-only on the
//! same batched suites and compare measured `R / LB` ratios against
//! both reference constants.

use crate::runner::{par_map, Run};
use crate::RunOpts;
use kanalysis::bounds::response_bounds;
use kanalysis::report::ExperimentReport;
use kanalysis::stats::Summary;
use kanalysis::table::{f3, Table};
use kbaselines::SchedulerKind;
use kdag::SelectionPolicy;
use ksim::Resources;
use kworkloads::mixes::{batched_mix, MixConfig};
use kworkloads::rng_for;

#[derive(Clone, Debug)]
struct Config {
    n: usize,
    p: u32,
    kind: SchedulerKind,
    seeds: u64,
}

fn measure(cfg: &Config, seed: u64, master: u64) -> f64 {
    let mix = MixConfig::new(1, cfg.n, 32);
    let mut rng = rng_for(master ^ seed, 0x76);
    let jobs = batched_mix(&mut rng, &mix);
    let res = Resources::uniform(1, cfg.p);
    let outcome = Run::new(cfg.kind, &jobs, &res)
        .policy(SelectionPolicy::CriticalLast)
        .seed(seed)
        .go();
    outcome.total_response() as f64 / response_bounds(&jobs, &res).lower_bound()
}

/// Run T6.
pub fn run(opts: &RunOpts) -> ExperimentReport {
    let (ns, seeds): (&[usize], u64) = if opts.quick {
        (&[4, 16], 2)
    } else {
        (&[4, 16, 64], 6)
    };
    let p = 8u32;
    let kinds = [
        SchedulerKind::KRad,
        SchedulerKind::Equi,
        SchedulerKind::RrOnly,
    ];
    let mut configs = Vec::new();
    for &n in ns {
        for kind in kinds {
            configs.push(Config { n, p, kind, seeds });
        }
    }

    let results = par_map(&configs, |_, cfg| {
        let ratios: Vec<f64> = (0..cfg.seeds).map(|s| measure(cfg, s, opts.seed)).collect();
        Summary::of(&ratios)
    });

    let edmonds = 2.0 + 3.0f64.sqrt();
    let mut table = Table::new(
        "T6 — K = 1: RAD's 3-competitiveness vs EQUI and RR (ratio = R / LB)",
        &[
            "scheduler",
            "n",
            "mean",
            "max",
            "RAD bound 3−2/(n+1)",
            "EQUI bound 2+√3",
        ],
    );
    let mut passed = true;
    let mut conclusions = Vec::new();
    for (cfg, s) in configs.iter().zip(&results) {
        let rad_bound = krad::mrt_bound_light(1, cfg.n);
        table.row_owned(vec![
            cfg.kind.label().to_string(),
            cfg.n.to_string(),
            f3(s.mean),
            f3(s.max),
            f3(rad_bound),
            f3(edmonds),
        ]);
        if cfg.kind == SchedulerKind::KRad && s.max > rad_bound + 1e-9 {
            passed = false;
            conclusions.push(format!(
                "VIOLATION: RAD n={}: max ratio {:.3} > 3−2/(n+1) = {:.3}",
                cfg.n, s.max, rad_bound
            ));
        }
    }
    // Comparative shape: RAD never worse than EQUI by more than noise.
    for &n in ns {
        let get = |kind: SchedulerKind| {
            configs
                .iter()
                .zip(&results)
                .find(|(c, _)| c.kind == kind && c.n == n)
                .map(|(_, s)| s.mean)
                .expect("present")
        };
        let rad = get(SchedulerKind::KRad);
        let equi = get(SchedulerKind::Equi);
        if rad > equi * 1.10 {
            passed = false;
            conclusions.push(format!(
                "SHAPE: RAD mean ratio {rad:.3} noticeably worse than EQUI {equi:.3} at n={n}"
            ));
        }
    }
    if passed {
        conclusions.insert(
            0,
            "RAD stays within 3−2/(n+1) on every suite and is never worse than EQUI — consistent with improving on the 2+√3 analysis".into(),
        );
    }
    table.note("RAD = K-RAD with K = 1; ratios are vs the §6 lower bound, so they upper-bound the true competitive ratio");

    ExperimentReport {
        id: "T6".into(),
        title: "K = 1 special case: 3-competitive mean response time".into(),
        paper_claim: "For K = 1, K-RAD is (3 − 2/(n+1))-competitive — the best bound to date (prior best: 2+√3 by Edmonds et al.)".into(),
        params: serde_json::json!({"n": ns, "P": p, "seeds": seeds, "seed": opts.seed}),
        table,
        conclusions,
        passed,
        extra_files: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t6_quick_passes() {
        let r = run(&RunOpts::quick(17));
        assert!(r.passed, "{}\n{:?}", r.table.render(), r.conclusions);
    }
}
