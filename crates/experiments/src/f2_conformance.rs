//! F2 — Figure 2: RAD pseudo-code conformance.
//!
//! Drives the production DEQ/RAD implementations through hand-computed
//! scenarios taken directly from the pseudo-code's three procedures
//! (DEQ, ROUND-ROBIN, RAD) and reports expected-vs-got golden rows.

use crate::RunOpts;
use kanalysis::report::ExperimentReport;
use kanalysis::table::Table;
use kdag::{Category, JobId};
use krad::deq::deq_allot;
use krad::RadState;
use ksim::{AllotmentMatrix, JobView};

/// One golden case: a description, the computed allotments, and the
/// hand-derived expectation.
struct Case {
    name: &'static str,
    got: Vec<u32>,
    expected: Vec<u32>,
}

fn rad_step(rad: &mut RadState, desires: &[u32], p: u32) -> Vec<u32> {
    let rows: Vec<[u32; 1]> = desires.iter().map(|&d| [d]).collect();
    let views: Vec<JobView<'_>> = rows
        .iter()
        .enumerate()
        .map(|(i, d)| JobView {
            id: JobId(i as u32),
            release: 0,
            desires: d,
        })
        .collect();
    let mut out = AllotmentMatrix::new(1);
    out.reset(views.len());
    rad.allot(1, &views, p, &mut out);
    (0..views.len()).map(|s| out.get(s, Category(0))).collect()
}

fn cases() -> Vec<Case> {
    let mut cases = Vec::new();

    // DEQ line 2: S = {Ji : d ≤ P/|Q|} — satisfied jobs keep their
    // desire, the rest split the remainder (recursion).
    cases.push(Case {
        name: "DEQ: desires (2,5,9), P=8 -> (2,3,3)",
        got: deq_allot(&[2, 5, 9], 8, 0),
        expected: vec![2, 3, 3],
    });
    // DEQ line 3-6: S empty -> everyone gets P/|Q|.
    cases.push(Case {
        name: "DEQ: desires (9,9), P=6 -> (3,3)",
        got: deq_allot(&[9, 9], 6, 0),
        expected: vec![3, 3],
    });
    // DEQ with sufficient capacity: all satisfied.
    cases.push(Case {
        name: "DEQ: desires (1,2,3), P=10 -> (1,2,3)",
        got: deq_allot(&[1, 2, 3], 10, 0),
        expected: vec![1, 2, 3],
    });

    // RAD line 3-4: |Q| > P -> ROUND-ROBIN over first P of Q.
    let mut rad = RadState::new(Category(0));
    for id in 0..5 {
        rad.job_arrived(JobId(id));
    }
    cases.push(Case {
        name: "RAD heavy step 1: 5 jobs, P=2 -> jobs 0,1 get 1",
        got: rad_step(&mut rad, &[3, 3, 3, 3, 3], 2),
        expected: vec![1, 1, 0, 0, 0],
    });
    cases.push(Case {
        name: "RAD heavy step 2: marked skipped -> jobs 2,3",
        got: rad_step(&mut rad, &[3, 3, 3, 3, 3], 2),
        expected: vec![0, 0, 1, 1, 0],
    });
    // RAD line 6: cycle end moves min(|Q'|, P-|Q|) marked jobs into
    // DEQ and unmarks everyone.
    cases.push(Case {
        name: "RAD cycle end: Q={4} topped up with job 0 -> (1,0,0,0,1)",
        got: rad_step(&mut rad, &[3, 3, 3, 3, 3], 2),
        expected: vec![1, 0, 0, 0, 1],
    });
    // After the cycle, marks are clear: round robin restarts at job 0.
    cases.push(Case {
        name: "RAD new cycle: restarts from queue head",
        got: rad_step(&mut rad, &[3, 3, 3, 3, 3], 2),
        expected: vec![1, 1, 0, 0, 0],
    });

    // RAD line 5-7 under light load: pure DEQ behavior.
    let mut rad2 = RadState::new(Category(0));
    for id in 0..3 {
        rad2.job_arrived(JobId(id));
    }
    cases.push(Case {
        name: "RAD light: desires (2,5,9), P=8 -> DEQ (2,3,3)",
        got: rad_step(&mut rad2, &[2, 5, 9], 8),
        expected: vec![2, 3, 3],
    });

    cases
}

/// Run F2.
pub fn run(_opts: &RunOpts) -> ExperimentReport {
    let cases = cases();
    let mut table = Table::new(
        "F2 — Figure 2: RAD pseudo-code golden traces",
        &["case", "expected", "got", "ok"],
    );
    let mut passed = true;
    for c in &cases {
        let ok = c.got == c.expected;
        passed &= ok;
        table.row_owned(vec![
            c.name.to_string(),
            format!("{:?}", c.expected),
            format!("{:?}", c.got),
            if ok { "yes" } else { "NO" }.to_string(),
        ]);
    }

    ExperimentReport {
        id: "F2".into(),
        title: "Figure 2: RAD pseudo-code (DEQ + ROUND-ROBIN + RAD) conformance".into(),
        paper_claim: "RAD uses DEQ when |J(α,t)| ≤ Pα and marked round-robin cycles otherwise"
            .into(),
        params: serde_json::json!({"cases": cases.len()}),
        table,
        conclusions: vec![format!(
            "{}/{} golden traces match the hand-derived pseudo-code behavior",
            cases.iter().filter(|c| c.got == c.expected).count(),
            cases.len()
        )],
        passed,
        extra_files: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f2_all_golden_traces_match() {
        let r = run(&RunOpts::quick(0));
        assert!(r.passed, "{}", r.table.render());
    }
}
