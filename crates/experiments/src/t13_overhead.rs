//! T13 — scheduler decision overhead (the "systems" table).
//!
//! The theory counts steps; an adopter also cares what a step *costs*.
//! This experiment measures wall-clock per simulated step for every
//! scheduler as the job count grows — the per-decision overhead of
//! K-RAD's queue scans and DEQ sorts versus the simpler baselines.
//! (Criterion benches in `crates/bench` measure the same quantities
//! with statistical rigor; this table is the quick, human-readable
//! summary and intentionally makes only order-of-magnitude claims.)

use crate::runner::Run;
use crate::RunOpts;
use kanalysis::report::ExperimentReport;
use kanalysis::table::Table;
use kbaselines::SchedulerKind;
use kdag::generators::{phased, PhaseSpec};
use kdag::Category;
use ksim::{JobSpec, Resources};
use std::time::Instant;

struct Row {
    kind: SchedulerKind,
    jobs: usize,
    busy_steps: u64,
    micros_per_step: f64,
}

fn workload(n: usize) -> (Vec<JobSpec>, Resources) {
    // n narrow jobs on a small machine: maximal queue pressure, long
    // runs, stable step counts across schedulers.
    let jobs = (0..n)
        .map(|_| JobSpec::batched(phased(1, &[PhaseSpec::new(Category(0), 2, 10)])))
        .collect();
    (jobs, Resources::uniform(1, 8))
}

/// Run T13.
pub fn run(opts: &RunOpts) -> ExperimentReport {
    let sizes: &[usize] = if opts.quick {
        &[64, 256]
    } else {
        &[64, 256, 1024]
    };
    let mut rows = Vec::new();
    for &n in sizes {
        let (jobs, res) = workload(n);
        for kind in SchedulerKind::ALL {
            let started = Instant::now();
            let o = Run::new(kind, &jobs, &res).seed(opts.seed).go();
            let elapsed = started.elapsed();
            rows.push(Row {
                kind,
                jobs: n,
                busy_steps: o.busy_steps,
                micros_per_step: elapsed.as_secs_f64() * 1e6 / o.busy_steps as f64,
            });
        }
    }

    let mut table = Table::new(
        "T13 — per-step scheduling overhead (wall clock, informational)",
        &["scheduler", "jobs", "steps", "µs/step"],
    );
    for r in &rows {
        table.row_owned(vec![
            r.kind.label().to_string(),
            r.jobs.to_string(),
            r.busy_steps.to_string(),
            format!("{:.1}", r.micros_per_step),
        ]);
    }
    table.note("wall-clock timings vary by machine; see crates/bench for Criterion measurements");

    // Structural checks only (timing itself is machine-dependent):
    // every run completed with the expected step count shape, and no
    // scheduler is catastrophically slow (> 50 ms per step would mean
    // an accidental O(n³) blowup).
    let mut passed = true;
    let mut conclusions = Vec::new();
    for r in &rows {
        if r.micros_per_step > 50_000.0 {
            passed = false;
            conclusions.push(format!(
                "BLOWUP: {} at n={} costs {:.0} µs/step",
                r.kind.label(),
                r.jobs,
                r.micros_per_step
            ));
        }
    }
    if passed {
        let krad_big = rows
            .iter()
            .filter(|r| r.kind == SchedulerKind::KRad)
            .max_by_key(|r| r.jobs)
            .expect("rows");
        conclusions.push(format!(
            "K-RAD's decision cost stays micro-scale even at n={} ({:.1} µs/step) — the queue scan + DEQ sort are far from being a bottleneck",
            krad_big.jobs, krad_big.micros_per_step
        ));
    }

    ExperimentReport {
        id: "T13".into(),
        title: "Scheduler decision overhead vs job count".into(),
        paper_claim: "(systems context) K-RAD's per-step work is a queue scan plus an O(n log n) DEQ — cheap enough to run every unit step".into(),
        params: serde_json::json!({"sizes": sizes, "seed": opts.seed}),
        table,
        conclusions,
        passed,
        extra_files: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t13_quick_passes() {
        let r = run(&RunOpts::quick(47));
        assert!(r.passed, "{}", r.table.render());
        // All schedulers × 2 sizes.
        assert_eq!(r.table.rows.len(), SchedulerKind::ALL.len() * 2);
    }
}
