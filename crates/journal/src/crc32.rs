//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the same
//! checksum gzip and PNG use, hand-rolled so the journal carries no
//! external dependency. Table-driven, one byte per step; plenty for a
//! write-ahead log whose frames are tiny compared to fsync latency.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (init `!0`, final xor `!0` — the standard form).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from the IEEE polynomial ("check" values
        // published for CRC-32/ISO-HDLC).
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"krad journal frame");
        let mut flipped = b"krad journal frame".to_vec();
        for i in 0..flipped.len() * 8 {
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(
                crc32(&flipped),
                base,
                "bit {i} flip must change the checksum"
            );
            flipped[i / 8] ^= 1 << (i % 8);
        }
    }
}
