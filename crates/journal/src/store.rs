//! Directory-level journal store: one live WAL plus the latest
//! snapshot, and the fold that turns either (or both) back into a
//! logical session image.
//!
//! Layout inside `--journal-dir`:
//!
//! ```text
//! wal.kj    append-only log of everything since the last snapshot
//! snap.kj   latest snapshot — the same frame format, compacted
//! ```
//!
//! A snapshot is *literally a compacted journal*: the session header,
//! one `JobAdmitted` per job, the cancellations, the injections in
//! injection order, and a single `Quantum` record carrying the clock
//! and every completion. Recovery therefore has exactly one reader:
//! fold `snap.kj`, then fold `wal.kj` on top. The fold is idempotent
//! (records keyed by job id are deduplicated, the clock is a max), so
//! a crash *between* writing the snapshot and truncating the WAL —
//! when both files describe overlapping history — recovers cleanly.
//!
//! Snapshot rotation is crash-safe by construction: write
//! `snap.kj.tmp`, fsync it, `rename(2)` over `snap.kj` (atomic on
//! POSIX), then truncate the WAL. At every intermediate point the
//! directory folds to the same session.

use crate::frame::{read_records, FrameError, Record, SessionMeta};
use crate::log::{FsyncPolicy, JournalStats, JournalWriter};
use ksim::Time;
use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Lifecycle phase of one journaled job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Admitted, waiting in the server queue.
    Queued,
    /// Cancelled while queued.
    Cancelled,
    /// Handed to the engine with this release stamp. Whether it has
    /// finished is recorded in [`SessionImage::completed`].
    Injected {
        /// Engine clock at injection.
        release: Time,
    },
}

/// One job as the journal knows it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobImage {
    /// Server-assigned id.
    pub id: u64,
    /// The job's DAG.
    pub dag: kdag::DagSpec,
    /// Lifecycle phase.
    pub phase: JobPhase,
}

/// The complete logical state of a session: everything needed to
/// rebuild the live engine deterministically. Derived engine state
/// (ready counts, RAD marks/queues, RNG) is intentionally absent — it
/// is a pure function of `(meta, injected stream, clock)` and is
/// reconstructed by replay; see DESIGN.md §14.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionImage {
    /// Session configuration.
    pub meta: SessionMeta,
    /// Engine clock at the last journaled quantum boundary.
    pub clock: Time,
    /// Cumulative busy steps at `clock` (recovery digest).
    pub busy: u64,
    /// Cumulative idle steps at `clock` (recovery digest).
    pub idle: u64,
    /// Every admitted job in id (= admission) order.
    pub jobs: Vec<JobImage>,
    /// `(job id, completion time)` in completion order.
    pub completed: Vec<(u64, Time)>,
}

impl SessionImage {
    /// A fresh, empty session around `meta`.
    pub fn new(meta: SessionMeta) -> SessionImage {
        SessionImage {
            meta,
            clock: 0,
            busy: 0,
            idle: 0,
            jobs: Vec::new(),
            completed: Vec::new(),
        }
    }

    /// Compact this image back into the canonical record stream a
    /// snapshot stores. Injections are emitted in id order, which is
    /// injection order (admission is FIFO and ids are assigned at
    /// admission), so replaying them preserves release monotonicity.
    pub fn to_records(&self) -> Vec<Record> {
        let mut out = Vec::with_capacity(2 + 2 * self.jobs.len());
        out.push(Record::SessionOpen(self.meta.clone()));
        for j in &self.jobs {
            out.push(Record::JobAdmitted {
                job: j.id,
                dag: j.dag.clone(),
            });
        }
        for j in &self.jobs {
            match j.phase {
                JobPhase::Queued => {}
                JobPhase::Cancelled => out.push(Record::JobCancelled { job: j.id }),
                JobPhase::Injected { release } => {
                    out.push(Record::JobInjected { job: j.id, release })
                }
            }
        }
        out.push(Record::Quantum {
            to: self.clock,
            busy: self.busy,
            idle: self.idle,
            completed: self.completed.clone(),
        });
        out
    }

    /// Per-phase counts `(queued, injected-running, cancelled, done)`.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let done: std::collections::HashSet<u64> =
            self.completed.iter().map(|&(id, _)| id).collect();
        let (mut q, mut run, mut c, mut d) = (0, 0, 0, 0);
        for j in &self.jobs {
            match j.phase {
                JobPhase::Queued => q += 1,
                JobPhase::Cancelled => c += 1,
                JobPhase::Injected { .. } => {
                    if done.contains(&j.id) {
                        d += 1
                    } else {
                        run += 1
                    }
                }
            }
        }
        (q, run, c, d)
    }
}

/// Result of folding a record stream (snapshot + WAL) into an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldedSession {
    /// The reconstructed logical state.
    pub image: SessionImage,
    /// Records that referenced unknown job ids or arrived before any
    /// `SessionOpen` — tolerated but counted, like alien frames.
    pub anomalies: u64,
}

/// Fold records (in file order) into a session image. Idempotent:
/// re-folding a snapshot's own compaction on top of it is a no-op, so
/// overlapping snapshot + WAL histories merge cleanly.
pub fn fold_records(records: &[Record]) -> Option<FoldedSession> {
    let mut image: Option<SessionImage> = None;
    let mut index: HashMap<u64, usize> = HashMap::new();
    let mut done: HashMap<u64, Time> = HashMap::new();
    let mut anomalies = 0u64;
    for rec in records {
        let Some(img) = image.as_mut() else {
            match rec {
                Record::SessionOpen(meta) => image = Some(SessionImage::new(meta.clone())),
                _ => anomalies += 1,
            }
            continue;
        };
        match rec {
            // A later SessionOpen (the WAL's own, after a snapshot)
            // must agree with the one already folded.
            Record::SessionOpen(meta) => {
                if *meta != img.meta {
                    anomalies += 1;
                }
            }
            Record::JobAdmitted { job, dag } => {
                if !index.contains_key(job) {
                    index.insert(*job, img.jobs.len());
                    img.jobs.push(JobImage {
                        id: *job,
                        dag: dag.clone(),
                        phase: JobPhase::Queued,
                    });
                }
            }
            Record::JobCancelled { job } => match index.get(job) {
                Some(&i) => img.jobs[i].phase = JobPhase::Cancelled,
                None => anomalies += 1,
            },
            Record::JobInjected { job, release } => match index.get(job) {
                Some(&i) => img.jobs[i].phase = JobPhase::Injected { release: *release },
                None => anomalies += 1,
            },
            Record::Quantum {
                to,
                busy,
                idle,
                completed,
            } => {
                img.clock = img.clock.max(*to);
                img.busy = img.busy.max(*busy);
                img.idle = img.idle.max(*idle);
                for &(job, t) in completed {
                    if done.insert(job, t).is_none() {
                        img.completed.push((job, t));
                    }
                }
            }
        }
    }
    image.map(|image| FoldedSession { image, anomalies })
}

/// What `JournalStore::open` found on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredSession {
    /// The folded logical state.
    pub image: SessionImage,
    /// Whether a snapshot contributed (vs. WAL-only history).
    pub from_snapshot: bool,
    /// Valid records found in the WAL tail.
    pub wal_records: u64,
    /// Torn-tail bytes truncated from the WAL before reopening.
    pub dropped_bytes: u64,
    /// CRC-valid frames skipped (unknown kind) across both files.
    pub skipped: u64,
    /// Fold anomalies (records referencing unknown jobs).
    pub anomalies: u64,
}

/// The live handle the server holds: WAL writer + snapshot rotation.
pub struct JournalStore {
    dir: PathBuf,
    wal: JournalWriter,
    policy: FsyncPolicy,
    tail_records: u64,
    snapshots: u64,
}

impl JournalStore {
    /// WAL path inside `dir`.
    pub fn wal_path(dir: &Path) -> PathBuf {
        dir.join("wal.kj")
    }

    /// Snapshot path inside `dir`.
    pub fn snapshot_path(dir: &Path) -> PathBuf {
        dir.join("snap.kj")
    }

    /// Open (creating if needed) the journal directory. Returns the
    /// store plus the recovered session, if the directory holds one.
    /// Torn WAL tails are truncated here, before the WAL reopens for
    /// append; a corrupt *snapshot* is an error (it was written
    /// atomically, so damage means something external happened).
    pub fn open(
        dir: &Path,
        policy: FsyncPolicy,
    ) -> io::Result<(JournalStore, Option<RecoveredSession>)> {
        fs::create_dir_all(dir)?;
        let mut records: Vec<Record> = Vec::new();
        let mut from_snapshot = false;
        let mut skipped = 0u64;

        let snap_path = Self::snapshot_path(dir);
        if snap_path.exists() {
            let bytes = fs::read(&snap_path)?;
            let out = read_records(&bytes).map_err(not_a_journal(&snap_path))?;
            if out.dropped_bytes > 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "snapshot {} has {} corrupt trailing bytes; snapshots are written \
                         atomically, refusing to guess",
                        snap_path.display(),
                        out.dropped_bytes
                    ),
                ));
            }
            skipped += out.skipped;
            from_snapshot = !out.records.is_empty();
            records.extend(out.records);
        }

        let wal_path = Self::wal_path(dir);
        let mut wal_valid = None;
        let mut wal_records = 0u64;
        let mut dropped_bytes = 0u64;
        if wal_path.exists() {
            let bytes = fs::read(&wal_path)?;
            // A file shorter than the header is a crash during
            // creation: treat as empty. Anything longer must carry
            // our magic.
            if bytes.len() >= crate::frame::HEADER_LEN as usize {
                let out = read_records(&bytes).map_err(not_a_journal(&wal_path))?;
                skipped += out.skipped;
                wal_records = out.records.len() as u64;
                dropped_bytes = out.dropped_bytes;
                wal_valid = Some(out.valid_len);
                records.extend(out.records);
            }
        }

        let wal = JournalWriter::open(&wal_path, policy, wal_valid)?;
        let recovered = fold_records(&records).map(|folded| RecoveredSession {
            image: folded.image,
            from_snapshot,
            wal_records,
            dropped_bytes,
            skipped,
            anomalies: folded.anomalies,
        });
        let store = JournalStore {
            dir: dir.to_path_buf(),
            wal,
            policy,
            tail_records: wal_records,
            snapshots: 0,
        };
        Ok((store, recovered))
    }

    /// Buffer one record into the WAL (see [`JournalWriter::append`]).
    pub fn append(&mut self, record: &Record) {
        self.wal.append(record);
        self.tail_records += 1;
    }

    /// Group commit (see [`JournalWriter::commit`]).
    pub fn commit(&mut self) -> io::Result<()> {
        self.wal.commit()
    }

    /// Forced fsync regardless of policy.
    pub fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()
    }

    /// Write a snapshot of `image` and truncate the WAL behind it.
    pub fn snapshot(&mut self, image: &SessionImage) -> io::Result<()> {
        let tmp = self.dir.join("snap.kj.tmp");
        let mut bytes = crate::frame::header_bytes().to_vec();
        for rec in image.to_records() {
            crate::frame::append_frame(&mut bytes, &rec);
        }
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, Self::snapshot_path(&self.dir))?;
        // Make the rename itself durable before dropping the WAL; a
        // failure to fsync the directory is tolerable (the WAL still
        // folds to the same image), so best effort.
        if let Ok(d) = fs::File::open(&self.dir) {
            d.sync_all().ok();
        }
        self.wal.reset()?;
        self.tail_records = 0;
        self.snapshots += 1;
        Ok(())
    }

    /// Records appended to the WAL since the last snapshot — the
    /// log-tail lag a restart would have to replay.
    pub fn tail_records(&self) -> u64 {
        self.tail_records
    }

    /// Snapshots written by this store since open.
    pub fn snapshots(&self) -> u64 {
        self.snapshots
    }

    /// The fsync policy this store was opened with.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Writer counters since open.
    pub fn stats(&self) -> JournalStats {
        self.wal.stats()
    }
}

fn not_a_journal(path: &Path) -> impl Fn(FrameError) -> io::Error + '_ {
    move |e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::sample_meta;
    use kdag::DagSpec;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kjournal-store-{}-{name}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn dag() -> DagSpec {
        DagSpec {
            k: 2,
            categories: vec![0, 1],
            edges: vec![(0, 1)],
        }
    }

    fn scripted_session(store: &mut JournalStore) {
        store.append(&Record::SessionOpen(sample_meta()));
        for id in 1..=3u64 {
            store.append(&Record::JobAdmitted {
                job: id,
                dag: dag(),
            });
        }
        store.append(&Record::JobCancelled { job: 2 });
        store.append(&Record::JobInjected { job: 1, release: 0 });
        store.append(&Record::Quantum {
            to: 2,
            busy: 3,
            idle: 1,
            completed: vec![(1, 2)],
        });
        store.commit().unwrap();
    }

    #[test]
    fn fresh_directory_recovers_nothing_then_everything() {
        let dir = tmp_dir("fresh");
        let (mut store, recovered) = JournalStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert!(recovered.is_none());
        scripted_session(&mut store);
        drop(store);

        let (_store, recovered) = JournalStore::open(&dir, FsyncPolicy::Never).unwrap();
        let rec = recovered.expect("session recovered");
        assert!(!rec.from_snapshot);
        assert_eq!(rec.image.meta, sample_meta());
        assert_eq!(rec.image.clock, 2);
        assert_eq!(rec.image.counts(), (1, 0, 1, 1)); // job3 queued, job2 cancelled, job1 done
        assert_eq!(rec.image.completed, vec![(1, 2)]);
        assert_eq!(rec.dropped_bytes, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_truncates_wal_and_folds_identically() {
        let dir = tmp_dir("snap");
        {
            let (mut store, _) = JournalStore::open(&dir, FsyncPolicy::Never).unwrap();
            scripted_session(&mut store);
        }
        let (mut store, recovered) = JournalStore::open(&dir, FsyncPolicy::Never).unwrap();
        let before = recovered.unwrap().image;
        assert!(store.tail_records() > 0);
        store.snapshot(&before).unwrap();
        assert_eq!(store.tail_records(), 0);
        assert_eq!(store.snapshots(), 1);
        drop(store);

        let (_s, recovered) = JournalStore::open(&dir, FsyncPolicy::Never).unwrap();
        let rec = recovered.unwrap();
        assert!(rec.from_snapshot);
        assert_eq!(rec.wal_records, 0, "WAL was truncated behind the snapshot");
        assert_eq!(rec.image, before, "snapshot folds to the identical image");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overlapping_snapshot_and_wal_fold_idempotently() {
        // Crash between snapshot rename and WAL truncation: both
        // files describe the same history. The fold must not
        // duplicate jobs or completions.
        let dir = tmp_dir("overlap");
        {
            let (mut store, _) = JournalStore::open(&dir, FsyncPolicy::Never).unwrap();
            scripted_session(&mut store);
        }
        let image = JournalStore::open(&dir, FsyncPolicy::Never)
            .unwrap()
            .1
            .unwrap()
            .image;

        // Hand-write the snapshot without touching the WAL.
        let mut bytes = crate::frame::header_bytes().to_vec();
        for rec in image.to_records() {
            crate::frame::append_frame(&mut bytes, &rec);
        }
        fs::write(JournalStore::snapshot_path(&dir), &bytes).unwrap();

        let (_s, recovered) = JournalStore::open(&dir, FsyncPolicy::Never).unwrap();
        let rec = recovered.unwrap();
        assert_eq!(rec.image, image, "idempotent fold across overlapping files");
        assert_eq!(rec.anomalies, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_is_truncated_on_open() {
        let dir = tmp_dir("torn");
        let (mut store, _) = JournalStore::open(&dir, FsyncPolicy::Never).unwrap();
        scripted_session(&mut store);
        drop(store);
        let wal = JournalStore::wal_path(&dir);
        let mut bytes = fs::read(&wal).unwrap();
        let cut = bytes.len() - 3; // tear the final frame
        bytes.truncate(cut);
        fs::write(&wal, &bytes).unwrap();

        let (_s, recovered) = JournalStore::open(&dir, FsyncPolicy::Never).unwrap();
        let rec = recovered.unwrap();
        assert!(rec.dropped_bytes > 0);
        assert_eq!(rec.image.clock, 0, "the torn Quantum record was discarded");
        assert_eq!(
            fs::metadata(&wal).unwrap().len(),
            cut as u64 - rec.dropped_bytes,
            "the file was physically truncated to the last valid frame"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn image_to_records_round_trips_through_fold() {
        let mut image = SessionImage::new(sample_meta());
        image.clock = 9;
        image.busy = 12;
        image.idle = 4;
        image.jobs = vec![
            JobImage {
                id: 1,
                dag: dag(),
                phase: JobPhase::Injected { release: 0 },
            },
            JobImage {
                id: 2,
                dag: dag(),
                phase: JobPhase::Cancelled,
            },
            JobImage {
                id: 3,
                dag: dag(),
                phase: JobPhase::Injected { release: 4 },
            },
            JobImage {
                id: 4,
                dag: dag(),
                phase: JobPhase::Queued,
            },
        ];
        image.completed = vec![(1, 3)];
        let folded = fold_records(&image.to_records()).unwrap();
        assert_eq!(folded.image, image);
        assert_eq!(folded.anomalies, 0);
    }
}
