//! The journal's binary frame format.
//!
//! A journal file is a fixed 8-byte header followed by a sequence of
//! self-delimiting frames:
//!
//! ```text
//! header:  "KJNL"  version:u32le
//! frame:   len:u32le  body[len]  crc32(body):u32le
//! body:    kind:u8  payload[len-1]
//! ```
//!
//! All integers are little-endian. The checksum covers the whole body
//! (kind byte included) so a torn or bit-flipped tail is detected by
//! the CRC and discarded — [`read_records`] never panics on garbage,
//! it reports how many trailing bytes it dropped so the writer can
//! truncate the file back to the last durable frame.
//!
//! Versioning mirrors the PR 5 flight-dump rule: the header names the
//! version that *wrote* the file, and readers accept newer versions by
//! skipping frames whose `kind` they do not understand (the length
//! prefix makes every frame skippable without decoding it). Payloads
//! of known kinds never change shape within a major format; a new
//! shape gets a new kind byte.

use crate::crc32::crc32;
use kdag::DagSpec;
use ksim::Time;

/// File magic: identifies a K-RAD journal.
pub const MAGIC: [u8; 4] = *b"KJNL";
/// Format version written by this build.
pub const FORMAT_VERSION: u32 = 1;
/// Size of the file header in bytes.
pub const HEADER_LEN: u64 = 8;
/// Upper bound on a single frame body; anything larger is treated as
/// a torn length prefix rather than an allocation request.
pub const MAX_FRAME: u32 = 1 << 24;

const KIND_SESSION_OPEN: u8 = 1;
const KIND_JOB_ADMITTED: u8 = 2;
const KIND_JOB_CANCELLED: u8 = 3;
const KIND_JOB_INJECTED: u8 = 4;
const KIND_QUANTUM: u8 = 5;

/// Immutable facts about the session, journaled once at creation and
/// again at the head of every snapshot. Scheduler/policy/clock are
/// stored as their stable string labels so the journal crate does not
/// depend on the scheduler registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionMeta {
    /// Processors per category (`P_1..P_K`).
    pub machine: Vec<u32>,
    /// Scheduler label (e.g. `k-rad`).
    pub scheduler: String,
    /// Selection-policy label (e.g. `fifo`).
    pub policy: String,
    /// Engine clock label (`unit` or `event`).
    pub time_policy: String,
    /// Scheduling quantum in engine steps.
    pub quantum: u64,
    /// Seed for the engine RNG and randomized schedulers.
    pub seed: u64,
}

/// One journal record. The WAL is an ordered stream of these; a
/// snapshot is the same stream, compacted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// Session created (or snapshot head): the full configuration.
    SessionOpen(SessionMeta),
    /// A job was admitted (queued) under server id `job` — written
    /// and committed before the submit reply is acknowledged.
    JobAdmitted {
        /// Server-assigned job id.
        job: u64,
        /// The job's DAG.
        dag: DagSpec,
    },
    /// A queued job was cancelled — committed before the cancel ack.
    JobCancelled {
        /// Server-assigned job id.
        job: u64,
    },
    /// A queued job entered the engine with its release stamp.
    JobInjected {
        /// Server-assigned job id.
        job: u64,
        /// Engine clock at injection (the job's release time).
        release: Time,
    },
    /// A quantum boundary: the engine advanced to `to`, completing
    /// the listed jobs — committed before completions are broadcast.
    /// `busy`/`idle` are the engine's cumulative step accumulators,
    /// journaled so recovery can verify the rebuilt engine digest
    /// beyond completion times alone.
    Quantum {
        /// Engine clock after the quantum.
        to: Time,
        /// Cumulative busy steps at `to`.
        busy: u64,
        /// Cumulative idle steps at `to`.
        idle: u64,
        /// `(job id, completion time)` pairs, in completion order.
        completed: Vec<(u64, Time)>,
    },
}

impl Record {
    /// Stable human label for reports.
    pub fn kind_label(&self) -> &'static str {
        match self {
            Record::SessionOpen(_) => "session-open",
            Record::JobAdmitted { .. } => "job-admitted",
            Record::JobCancelled { .. } => "job-cancelled",
            Record::JobInjected { .. } => "job-injected",
            Record::Quantum { .. } => "quantum",
        }
    }
}

/// Result of scanning a journal byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Format version from the header.
    pub version: u32,
    /// Every decodable record, in file order.
    pub records: Vec<Record>,
    /// Bytes of header + whole valid frames; the safe truncation
    /// point for re-opening the file in append mode.
    pub valid_len: u64,
    /// Trailing bytes discarded as a torn or corrupt tail.
    pub dropped_bytes: u64,
    /// CRC-valid frames skipped because their kind (or payload shape)
    /// is unknown to this reader — forward-compatibility counter.
    pub skipped: u64,
}

/// Errors that make a byte stream *not a journal* (as opposed to a
/// journal with a torn tail, which [`read_records`] repairs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The file is shorter than the header or the magic differs.
    NotAJournal,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::NotAJournal => write!(f, "not a journal: bad magic or truncated header"),
        }
    }
}

impl std::error::Error for FrameError {}

/// The 8-byte file header for a fresh journal.
pub fn header_bytes() -> [u8; 8] {
    let mut h = [0u8; 8];
    h[..4].copy_from_slice(&MAGIC);
    h[4..].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h
}

/// Append one framed record (`len | body | crc`) to `buf`; returns the
/// number of bytes written.
pub fn append_frame(buf: &mut Vec<u8>, record: &Record) -> usize {
    let mut body = Vec::with_capacity(64);
    encode_body(record, &mut body);
    let before = buf.len();
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(&body);
    buf.extend_from_slice(&crc32(&body).to_le_bytes());
    buf.len() - before
}

fn encode_body(record: &Record, out: &mut Vec<u8>) {
    match record {
        Record::SessionOpen(meta) => {
            out.push(KIND_SESSION_OPEN);
            put_u16(out, meta.machine.len() as u16);
            for &p in &meta.machine {
                put_u32(out, p);
            }
            put_str(out, &meta.scheduler);
            put_str(out, &meta.policy);
            put_str(out, &meta.time_policy);
            put_u64(out, meta.quantum);
            put_u64(out, meta.seed);
        }
        Record::JobAdmitted { job, dag } => {
            out.push(KIND_JOB_ADMITTED);
            put_u64(out, *job);
            put_u32(out, dag.k as u32);
            put_u32(out, dag.categories.len() as u32);
            for &c in &dag.categories {
                put_u16(out, c);
            }
            put_u32(out, dag.edges.len() as u32);
            for &(a, b) in &dag.edges {
                put_u32(out, a);
                put_u32(out, b);
            }
        }
        Record::JobCancelled { job } => {
            out.push(KIND_JOB_CANCELLED);
            put_u64(out, *job);
        }
        Record::JobInjected { job, release } => {
            out.push(KIND_JOB_INJECTED);
            put_u64(out, *job);
            put_u64(out, *release);
        }
        Record::Quantum {
            to,
            busy,
            idle,
            completed,
        } => {
            out.push(KIND_QUANTUM);
            put_u64(out, *to);
            put_u64(out, *busy);
            put_u64(out, *idle);
            put_u32(out, completed.len() as u32);
            for &(job, t) in completed {
                put_u64(out, job);
                put_u64(out, t);
            }
        }
    }
}

/// Scan `bytes` as a whole journal file: header, then frames until
/// the first torn/corrupt one. Never panics; garbage after the last
/// CRC-valid frame is reported in `dropped_bytes` for truncation.
pub fn read_records(bytes: &[u8]) -> Result<ReadOutcome, FrameError> {
    if bytes.len() < HEADER_LEN as usize || bytes[..4] != MAGIC {
        return Err(FrameError::NotAJournal);
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let mut records = Vec::new();
    let mut skipped = 0u64;
    let mut at = HEADER_LEN as usize;
    loop {
        let rest = bytes.len() - at;
        if rest < 4 {
            break;
        }
        let len = u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
        if len == 0 || len > MAX_FRAME || rest < 4 + len as usize + 4 {
            break; // torn length prefix or incomplete frame
        }
        let body = &bytes[at + 4..at + 4 + len as usize];
        let crc_at = at + 4 + len as usize;
        let stored = u32::from_le_bytes([
            bytes[crc_at],
            bytes[crc_at + 1],
            bytes[crc_at + 2],
            bytes[crc_at + 3],
        ]);
        if crc32(body) != stored {
            break; // torn or bit-flipped frame: truncate here
        }
        match decode_body(body) {
            Some(r) => records.push(r),
            None => skipped += 1, // unknown kind from a newer writer
        }
        at = crc_at + 4;
    }
    Ok(ReadOutcome {
        version,
        records,
        valid_len: at as u64,
        dropped_bytes: (bytes.len() - at) as u64,
        skipped,
    })
}

fn decode_body(body: &[u8]) -> Option<Record> {
    let mut r = Reader { bytes: body, at: 0 };
    let record = match r.u8()? {
        KIND_SESSION_OPEN => {
            let n = r.u16()? as usize;
            let mut machine = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                machine.push(r.u32()?);
            }
            let scheduler = r.str()?;
            let policy = r.str()?;
            let time_policy = r.str()?;
            let quantum = r.u64()?;
            let seed = r.u64()?;
            Record::SessionOpen(SessionMeta {
                machine,
                scheduler,
                policy,
                time_policy,
                quantum,
                seed,
            })
        }
        KIND_JOB_ADMITTED => {
            let job = r.u64()?;
            let k = r.u32()? as usize;
            let nt = r.u32()? as usize;
            if nt > body.len() {
                return None; // length claims more tasks than bytes
            }
            let mut categories = Vec::with_capacity(nt);
            for _ in 0..nt {
                categories.push(r.u16()?);
            }
            let ne = r.u32()? as usize;
            if ne > body.len() {
                return None;
            }
            let mut edges = Vec::with_capacity(ne);
            for _ in 0..ne {
                edges.push((r.u32()?, r.u32()?));
            }
            Record::JobAdmitted {
                job,
                dag: DagSpec {
                    k,
                    categories,
                    edges,
                },
            }
        }
        KIND_JOB_CANCELLED => Record::JobCancelled { job: r.u64()? },
        KIND_JOB_INJECTED => Record::JobInjected {
            job: r.u64()?,
            release: r.u64()?,
        },
        KIND_QUANTUM => {
            let to = r.u64()?;
            let busy = r.u64()?;
            let idle = r.u64()?;
            let n = r.u32()? as usize;
            if n > body.len() {
                return None;
            }
            let mut completed = Vec::with_capacity(n);
            for _ in 0..n {
                completed.push((r.u64()?, r.u64()?));
            }
            Record::Quantum {
                to,
                busy,
                idle,
                completed,
            }
        }
        _ => return None,
    };
    // A known-kind body must be consumed exactly; trailing bytes mean
    // the payload shape changed under us — skip it like an unknown.
    if r.at != body.len() {
        return None;
    }
    Some(record)
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.bytes.len() - self.at < n {
            return None;
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }
    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
    fn str(&mut self) -> Option<String> {
        let n = self.u16()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).ok()
    }
}

#[cfg(test)]
pub(crate) fn sample_meta() -> SessionMeta {
    SessionMeta {
        machine: vec![6, 3],
        scheduler: "k-rad".into(),
        policy: "fifo".into(),
        time_policy: "event".into(),
        quantum: 2,
        seed: 42,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::SessionOpen(sample_meta()),
            Record::JobAdmitted {
                job: 1,
                dag: DagSpec {
                    k: 2,
                    categories: vec![0, 1, 0],
                    edges: vec![(0, 1), (1, 2)],
                },
            },
            Record::JobInjected { job: 1, release: 0 },
            Record::JobCancelled { job: 2 },
            Record::Quantum {
                to: 4,
                busy: 6,
                idle: 2,
                completed: vec![(1, 3)],
            },
        ]
    }

    fn encode_all(records: &[Record]) -> Vec<u8> {
        let mut buf = header_bytes().to_vec();
        for r in records {
            append_frame(&mut buf, r);
        }
        buf
    }

    #[test]
    fn round_trips_every_kind() {
        let records = sample_records();
        let out = read_records(&encode_all(&records)).unwrap();
        assert_eq!(out.records, records);
        assert_eq!(out.dropped_bytes, 0);
        assert_eq!(out.skipped, 0);
        assert_eq!(out.version, FORMAT_VERSION);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let records = sample_records();
        let full = encode_all(&records);
        let prefix = encode_all(&records[..records.len() - 1]).len();
        // Cut the file anywhere inside the last frame: everything up
        // to the previous frame survives, the tail is reported.
        for cut in prefix + 1..full.len() {
            let out = read_records(&full[..cut]).unwrap();
            assert_eq!(out.records.len(), records.len() - 1, "cut at {cut}");
            assert_eq!(out.valid_len, prefix as u64);
            assert_eq!(out.valid_len + out.dropped_bytes, cut as u64);
        }
    }

    #[test]
    fn bit_flip_in_tail_frame_is_discarded() {
        let records = sample_records();
        let mut bytes = encode_all(&records);
        let last = bytes.len() - 6; // inside the last frame's body/crc
        bytes[last] ^= 0x40;
        let out = read_records(&bytes).unwrap();
        assert_eq!(out.records.len(), records.len() - 1);
        assert!(out.dropped_bytes > 0);
    }

    #[test]
    fn unknown_kind_is_skipped_via_length_prefix() {
        let mut bytes = encode_all(&sample_records()[..1]);
        // A frame from "the future": kind 200 with an opaque payload.
        let body = [200u8, 1, 2, 3, 4];
        bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&crc32(&body).to_le_bytes());
        append_frame(&mut bytes, &Record::JobCancelled { job: 9 });
        let out = read_records(&bytes).unwrap();
        assert_eq!(out.skipped, 1);
        assert_eq!(
            out.records.len(),
            2,
            "records after the alien frame still decode"
        );
        assert_eq!(out.dropped_bytes, 0);
    }

    #[test]
    fn newer_header_version_is_tolerated() {
        let mut bytes = encode_all(&sample_records());
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 7).to_le_bytes());
        let out = read_records(&bytes).unwrap();
        assert_eq!(out.version, FORMAT_VERSION + 7);
        assert_eq!(out.records.len(), sample_records().len());
    }

    #[test]
    fn non_journal_bytes_are_rejected() {
        assert_eq!(read_records(b"").unwrap_err(), FrameError::NotAJournal);
        assert_eq!(read_records(b"KJN").unwrap_err(), FrameError::NotAJournal);
        assert_eq!(
            read_records(b"{\"schema\":\"krad-flight\"}").unwrap_err(),
            FrameError::NotAJournal
        );
    }
}
