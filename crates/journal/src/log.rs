//! The append side of the journal: a buffered writer with group
//! commit and a configurable fsync policy.
//!
//! Durability layers, and what each one survives:
//!
//! 1. `append` copies the frame into a userspace buffer — survives
//!    nothing by itself.
//! 2. `commit` flushes the buffer to the kernel with `write(2)` —
//!    survives `kill -9` of the server process (the page cache is the
//!    kernel's, not ours). This is the group-commit point: the server
//!    batches every record of a quantum (or a submit batch) into one
//!    flush, and *always* commits before acknowledging on the wire.
//! 3. `fsync(2)` pushes the page cache to the device — survives an OS
//!    crash or power loss. How often it runs is the [`FsyncPolicy`]:
//!    `always` syncs every commit, `interval` at most once per window
//!    (bounded data loss on power failure, bounded latency tax on the
//!    quantum loop), `never` leaves it to the kernel writeback.

use crate::frame::{append_frame, header_bytes, Record, HEADER_LEN};
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;
use std::time::{Duration, Instant};

/// When `commit` escalates from `write(2)` to `fsync(2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync on every commit: survives power loss, pays the device
    /// latency on every quantum.
    Always,
    /// Fsync at most once per window: bounded loss on power failure
    /// (never more than one window of acked work), amortized cost.
    Interval(Duration),
    /// Never fsync explicitly; kernel writeback only. Still survives
    /// `kill -9` — commits reach the page cache.
    Never,
}

impl FsyncPolicy {
    /// Parse a CLI label: `always`, `never`, `interval` (default
    /// 50 ms), or `interval:<ms>`.
    pub fn parse(label: &str) -> Option<FsyncPolicy> {
        match label {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            "interval" => Some(FsyncPolicy::Interval(Duration::from_millis(50))),
            other => {
                let ms = other.strip_prefix("interval:")?.parse::<u64>().ok()?;
                Some(FsyncPolicy::Interval(Duration::from_millis(ms)))
            }
        }
    }

    /// Stable label (round-trips through [`FsyncPolicy::parse`]).
    pub fn label(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".into(),
            FsyncPolicy::Interval(d) => format!("interval:{}", d.as_millis()),
            FsyncPolicy::Never => "never".into(),
        }
    }
}

/// Counters the writer maintains; the serve layer mirrors them into
/// the Prometheus registry after each commit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended since open.
    pub records: u64,
    /// Frame bytes appended since open (header excluded).
    pub bytes: u64,
    /// Group commits (buffer flushes).
    pub commits: u64,
    /// Explicit fsyncs issued.
    pub fsyncs: u64,
    /// Wall-clock microseconds spent in the last fsync.
    pub last_fsync_micros: u64,
}

/// Append-only writer over one journal file.
pub struct JournalWriter {
    file: File,
    buf: Vec<u8>,
    policy: FsyncPolicy,
    last_sync: Instant,
    stats: JournalStats,
}

impl JournalWriter {
    /// Open `path` for appending, writing a fresh header if the file
    /// is new or empty. `valid_len` (from a recovery scan) truncates
    /// a torn tail first; pass `None` for a brand-new file.
    pub fn open(
        path: &Path,
        policy: FsyncPolicy,
        valid_len: Option<u64>,
    ) -> io::Result<JournalWriter> {
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        let len = file.metadata()?.len();
        if let Some(valid) = valid_len {
            if valid < len {
                file.set_len(valid)?;
            }
        }
        let len = file.metadata()?.len();
        if len < HEADER_LEN {
            file.set_len(0)?;
            file.write_all(&header_bytes())?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(JournalWriter {
            file,
            buf: Vec::with_capacity(4096),
            policy,
            last_sync: Instant::now(),
            stats: JournalStats::default(),
        })
    }

    /// Buffer one record. Not durable until [`JournalWriter::commit`].
    pub fn append(&mut self, record: &Record) {
        let n = append_frame(&mut self.buf, record);
        self.stats.records += 1;
        self.stats.bytes += n as u64;
    }

    /// Group commit: flush everything buffered to the kernel, then
    /// fsync according to policy. Must run before the corresponding
    /// wire acknowledgment.
    pub fn commit(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
        }
        self.stats.commits += 1;
        match self.policy {
            FsyncPolicy::Always => self.fsync()?,
            FsyncPolicy::Interval(window) => {
                if self.last_sync.elapsed() >= window {
                    self.fsync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Forced fsync (drain, snapshot rotation) regardless of policy.
    pub fn sync(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
        }
        self.fsync()
    }

    fn fsync(&mut self) -> io::Result<()> {
        let t0 = Instant::now();
        self.file.sync_data()?;
        self.last_sync = Instant::now();
        self.stats.fsyncs += 1;
        self.stats.last_fsync_micros = t0.elapsed().as_micros() as u64;
        Ok(())
    }

    /// Truncate back to a bare header (after a snapshot made the tail
    /// redundant) and fsync the now-empty log.
    pub fn reset(&mut self) -> io::Result<()> {
        self.buf.clear();
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&header_bytes())?;
        self.file.sync_all()?;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Counters since open.
    pub fn stats(&self) -> JournalStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{read_records, sample_meta};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("kjournal-log-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn policy_labels_round_trip() {
        for label in ["always", "never", "interval:7"] {
            assert_eq!(FsyncPolicy::parse(label).unwrap().label(), label);
        }
        assert_eq!(
            FsyncPolicy::parse("interval").unwrap(),
            FsyncPolicy::Interval(Duration::from_millis(50))
        );
        assert!(FsyncPolicy::parse("sometimes").is_none());
        assert!(FsyncPolicy::parse("interval:ms").is_none());
    }

    #[test]
    fn append_commit_reopen_appends_after_valid_tail() {
        let path = tmp("reopen.kj");
        std::fs::remove_file(&path).ok();
        let mut w = JournalWriter::open(&path, FsyncPolicy::Always, None).unwrap();
        w.append(&Record::SessionOpen(sample_meta()));
        w.append(&Record::JobAdmitted {
            job: 1,
            dag: kdag::DagSpec {
                k: 1,
                categories: vec![0],
                edges: vec![],
            },
        });
        w.commit().unwrap();
        assert_eq!(w.stats().records, 2);
        assert!(w.stats().fsyncs >= 1);
        drop(w);

        // Simulate a torn tail, then reopen with the scan's valid_len.
        let mut bytes = std::fs::read(&path).unwrap();
        let valid = read_records(&bytes).unwrap().valid_len;
        bytes.extend_from_slice(&[0x17, 0x00, 0x00]);
        std::fs::write(&path, &bytes).unwrap();

        let mut w = JournalWriter::open(&path, FsyncPolicy::Never, Some(valid)).unwrap();
        w.append(&Record::JobCancelled { job: 1 });
        w.commit().unwrap();
        drop(w);

        let out = read_records(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(out.records.len(), 3);
        assert_eq!(
            out.dropped_bytes, 0,
            "torn bytes were truncated before appending"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_leaves_a_bare_header() {
        let path = tmp("reset.kj");
        std::fs::remove_file(&path).ok();
        let mut w = JournalWriter::open(&path, FsyncPolicy::Never, None).unwrap();
        w.append(&Record::SessionOpen(sample_meta()));
        w.commit().unwrap();
        w.reset().unwrap();
        w.append(&Record::SessionOpen(sample_meta()));
        w.commit().unwrap();
        drop(w);
        let out = read_records(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(out.records.len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
