//! # kjournal — crash durability for the K-RAD service
//!
//! An append-only write-ahead journal that makes a live `kserve`
//! session survive `kill -9`. The design leans on the property PR 3/4
//! proved end-to-end: the live engine's state is a *deterministic
//! function* of the session configuration, the injected-job stream
//! (with release stamps), and the clock. So the journal never stores
//! derived engine state — it stores the inputs, and recovery rebuilds
//! everything else by replaying them through the same engine. The
//! byte-for-byte replay bridge doubles as the recovery-correctness
//! proof: journaled completions must match the rebuilt engine's
//! completions exactly, or recovery refuses to serve.
//!
//! Three layers:
//!
//! - [`frame`] — the versioned, CRC32-per-record binary frame format
//!   ([`Record`], [`read_records`]): torn tails are detected and
//!   discarded, alien record kinds from newer writers are skipped.
//! - [`log`] — the append side ([`JournalWriter`], [`FsyncPolicy`]):
//!   group commit with `always` / `interval` / `never` fsync.
//! - [`store`] — the directory ([`JournalStore`]): WAL + atomic
//!   snapshot rotation, and the idempotent fold ([`fold_records`])
//!   that turns files back into a [`SessionImage`].
//!
//! ```
//! use kjournal::{FsyncPolicy, JournalStore, Record, SessionMeta};
//! let dir = std::env::temp_dir().join(format!("kjournal-doc-{}", std::process::id()));
//! let (mut store, recovered) = JournalStore::open(&dir, FsyncPolicy::Never).unwrap();
//! assert!(recovered.is_none());
//! store.append(&Record::SessionOpen(SessionMeta {
//!     machine: vec![4, 2],
//!     scheduler: "k-rad".into(),
//!     policy: "fifo".into(),
//!     time_policy: "event".into(),
//!     quantum: 2,
//!     seed: 42,
//! }));
//! store.commit().unwrap(); // durable against kill -9 from here on
//! drop(store);
//! let (_store, recovered) = JournalStore::open(&dir, FsyncPolicy::Never).unwrap();
//! assert_eq!(recovered.unwrap().image.meta.quantum, 2);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod crc32;
pub mod frame;
pub mod log;
pub mod store;

pub use crc32::crc32;
pub use frame::{read_records, FrameError, ReadOutcome, Record, SessionMeta, FORMAT_VERSION};
pub use log::{FsyncPolicy, JournalStats, JournalWriter};
pub use store::{
    fold_records, FoldedSession, JobImage, JobPhase, JournalStore, RecoveredSession, SessionImage,
};
