//! Property tests for the journal frame codec, mirroring the PR 5
//! flight-dump versioning guarantees:
//!
//! - encode → decode is the identity for arbitrary record streams;
//! - cutting the byte stream anywhere (a torn tail) yields a clean
//!   prefix of the records and never panics;
//! - flipping any single byte never panics — the CRC catches it;
//! - the header version is advisory: streams stamped by a "newer"
//!   writer still decode, unknown frame kinds are skipped by length.
//!
//! The `proptest!` properties run under the real crate in CI; the
//! seeded-sweep tests below them cover the same ground
//! deterministically so the invariants are exercised everywhere.

use kdag::DagSpec;
use kjournal::frame::{append_frame, header_bytes, HEADER_LEN};
use kjournal::{read_records, Record, SessionMeta, FORMAT_VERSION};
use proptest::prelude::*;

fn encode_stream(records: &[Record]) -> Vec<u8> {
    let mut buf = header_bytes().to_vec();
    for r in records {
        append_frame(&mut buf, r);
    }
    buf
}

// A tiny deterministic generator (SplitMix64) so the sweep tests run
// identically under any test harness, with no external dependency.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn random_record(g: &mut Gen) -> Record {
    match g.below(5) {
        0 => Record::SessionOpen(SessionMeta {
            machine: (0..1 + g.below(4))
                .map(|_| 1 + g.below(16) as u32)
                .collect(),
            scheduler: format!("sched-{}", g.below(8)),
            policy: format!("pol-{}", g.below(4)),
            time_policy: if g.below(2) == 0 { "unit" } else { "event" }.into(),
            quantum: 1 + g.below(64),
            seed: g.next(),
        }),
        1 => {
            let n = 1 + g.below(12) as usize;
            let k = 1 + g.below(3) as usize;
            let categories = (0..n).map(|_| g.below(k as u64) as u16).collect();
            let mut edges = Vec::new();
            for b in 1..n {
                if g.below(2) == 0 {
                    edges.push((g.below(b as u64) as u32, b as u32));
                }
            }
            Record::JobAdmitted {
                job: g.below(1 << 20),
                dag: DagSpec {
                    k,
                    categories,
                    edges,
                },
            }
        }
        2 => Record::JobCancelled {
            job: g.below(1 << 20),
        },
        3 => Record::JobInjected {
            job: g.below(1 << 20),
            release: g.below(1 << 30),
        },
        _ => Record::Quantum {
            to: g.below(1 << 30),
            busy: g.below(1 << 40),
            idle: g.below(1 << 40),
            completed: (0..g.below(6))
                .map(|_| (g.below(1 << 20), g.below(1 << 30)))
                .collect(),
        },
    }
}

fn random_stream(g: &mut Gen, max_len: usize) -> Vec<Record> {
    (0..g.below(max_len as u64 + 1))
        .map(|_| random_record(g))
        .collect()
}

#[test]
fn seeded_sweep_round_trips() {
    for seed in 0..200u64 {
        let mut g = Gen(seed);
        let records = random_stream(&mut g, 12);
        let out = read_records(&encode_stream(&records)).expect("valid stream");
        assert_eq!(out.records, records, "seed {seed}");
        assert_eq!(out.dropped_bytes, 0);
        assert_eq!(out.skipped, 0);
    }
}

#[test]
fn seeded_sweep_every_truncation_point_is_a_clean_prefix() {
    let mut g = Gen(7);
    let records = random_stream(&mut g, 8);
    let bytes = encode_stream(&records);
    for cut in 0..bytes.len() {
        match read_records(&bytes[..cut]) {
            Ok(out) => {
                assert!(out.records.len() <= records.len());
                assert_eq!(
                    out.records[..],
                    records[..out.records.len()],
                    "cut {cut}: surviving records must be a prefix"
                );
                assert_eq!(out.valid_len + out.dropped_bytes, cut as u64);
            }
            // Cuts inside the 8-byte header are "not a journal".
            Err(_) => assert!(cut < HEADER_LEN as usize, "cut {cut}"),
        }
    }
}

#[test]
fn seeded_sweep_single_byte_corruption_never_panics() {
    let mut g = Gen(11);
    let records = random_stream(&mut g, 6);
    let bytes = encode_stream(&records);
    for at in 0..bytes.len() {
        for flip in [0x01u8, 0x80] {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= flip;
            if let Ok(out) = read_records(&corrupt) {
                // Whatever survives is bounded and internally
                // consistent; the CRC stops decoding at the damage
                // (or skips the frame if only its kind byte moved).
                assert!(out.records.len() <= records.len());
                assert_eq!(
                    out.valid_len + out.dropped_bytes,
                    corrupt.len() as u64,
                    "byte {at}: accounting must cover the whole file"
                );
            } else {
                assert!(
                    at < HEADER_LEN as usize - 4,
                    "only magic damage rejects outright"
                );
            }
        }
    }
}

#[test]
fn header_version_is_advisory() {
    let mut g = Gen(13);
    let records = random_stream(&mut g, 6);
    let mut bytes = encode_stream(&records);
    for version in [0u32, FORMAT_VERSION + 1, 9999] {
        bytes[4..8].copy_from_slice(&version.to_le_bytes());
        let out = read_records(&bytes).expect("future versions still read");
        assert_eq!(out.version, version);
        assert_eq!(out.records, records);
    }
}

// ---------------------------------------------------------------------------
// Randomized properties. Following the repo's property-test idiom,
// structured inputs are generated from a proptest-supplied seed (the
// strategies stay plain scalars), so shrinking works on the seed and
// the generators above are shared with the deterministic sweeps.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn round_trip_arbitrary_streams(seed in 0u64..1_000_000) {
        let mut g = Gen(seed);
        let records = random_stream(&mut g, 24);
        let out = read_records(&encode_stream(&records)).unwrap();
        prop_assert_eq!(out.records, records);
        prop_assert_eq!(out.dropped_bytes, 0);
        prop_assert_eq!(out.skipped, 0);
    }

    #[test]
    fn torn_tail_recovers_a_prefix(seed in 0u64..1_000_000, cut_frac in 0.0f64..1.0) {
        let mut g = Gen(seed);
        let records = random_stream(&mut g, 12);
        let bytes = encode_stream(&records);
        let cut = HEADER_LEN as usize
            + ((bytes.len() - HEADER_LEN as usize) as f64 * cut_frac) as usize;
        let out = read_records(&bytes[..cut]).unwrap();
        prop_assert!(out.records.len() <= records.len());
        prop_assert_eq!(&out.records[..], &records[..out.records.len()]);
        prop_assert_eq!(out.valid_len + out.dropped_bytes, cut as u64);
    }

    #[test]
    fn corruption_never_panics(
        seed in 0u64..1_000_000,
        at_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut g = Gen(seed);
        let records = random_stream(&mut g, 12);
        let mut bytes = encode_stream(&records);
        let at = ((bytes.len() as f64 * at_frac) as usize).min(bytes.len() - 1);
        bytes[at] ^= flip;
        if let Ok(out) = read_records(&bytes) {
            prop_assert_eq!(out.valid_len + out.dropped_bytes, bytes.len() as u64);
        }
    }

    #[test]
    fn header_version_tolerance(seed in 0u64..1_000_000, version in proptest::num::u32::ANY) {
        let mut g = Gen(seed);
        let records = random_stream(&mut g, 8);
        let mut bytes = encode_stream(&records);
        bytes[4..8].copy_from_slice(&version.to_le_bytes());
        let out = read_records(&bytes).unwrap();
        prop_assert_eq!(out.version, version);
        prop_assert_eq!(out.records, records);
    }
}
