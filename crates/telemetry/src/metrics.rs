//! Dependency-free metrics primitives: counters and fixed-bucket
//! histograms.

/// A monotonically increasing counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A fixed-bucket histogram over `u64` samples.
///
/// Buckets are defined by ascending **inclusive** upper bounds; one
/// implicit overflow bucket catches everything above the last bound.
/// A sample `v` lands in the first bucket whose bound `b` satisfies
/// `v <= b` — identical to the Prometheus `le` convention, so the
/// exposition encoder can use [`Histogram::bounds`] verbatim. There
/// is no lower bound: `0` always lands in the first bucket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl Histogram {
    /// A histogram with the given ascending inclusive upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly ascending"
        );
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; n],
            total: 0,
            sum: 0,
        }
    }

    /// Exponential bounds `1, 2, 4, … , 2^(n-1)` — a good default for
    /// count-like samples (active jobs, queue lengths).
    ///
    /// Bounds are inclusive upper bounds like every histogram in this
    /// crate: a sample of exactly `2` lands in the `≤2` bucket (not
    /// `≤4`), `0` lands in `≤1`, and anything above `2^(n-1)` —
    /// including `u64::MAX` — lands in the overflow bucket.
    ///
    /// # Panics
    /// Panics if `buckets` is 0 or ≥ 64 (the bounds would be empty or
    /// overflow `u64`).
    pub fn exponential(buckets: u32) -> Self {
        assert!(buckets < 64, "2^{} overflows a u64 bound", buckets);
        Histogram::new((0..buckets).map(|i| 1u64 << i).collect())
    }

    /// Rebuild a histogram from raw parts (bounds, per-bucket counts
    /// including the overflow slot, and the running sum) — the inverse
    /// of [`Histogram::bounds`] + [`Histogram::bucket_counts`] +
    /// [`Histogram::sum`], used by atomic snapshots.
    ///
    /// # Panics
    /// Panics on invalid bounds or a count vector whose length is not
    /// `bounds.len() + 1`.
    pub fn from_parts(bounds: Vec<u64>, counts: Vec<u64>, sum: u64) -> Self {
        let mut h = Histogram::new(bounds);
        assert_eq!(
            counts.len(),
            h.counts.len(),
            "counts must cover every bucket plus overflow"
        );
        h.total = counts.iter().sum();
        h.counts = counts;
        h.sum = sum;
        h
    }

    /// Record one sample. The sample lands in the first bucket whose
    /// inclusive upper bound is `>= value` (overflow bucket otherwise).
    pub fn record(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Cumulative counts per bound (Prometheus `le` semantics): entry
    /// `i` is the number of samples `<= bounds[i]`; the final entry is
    /// the total (`le="+Inf"`).
    pub fn cumulative_counts(&self) -> Vec<u64> {
        let mut cum = 0u64;
        self.counts
            .iter()
            .map(|c| {
                cum += c;
                cum
            })
            .collect()
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) by linear
    /// interpolation inside the owning bucket, the way Prometheus'
    /// `histogram_quantile` does. Returns 0 when empty; a quantile
    /// that lands in the overflow bucket returns the last finite
    /// bound (the histogram cannot resolve beyond it).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.total as f64).max(1.0);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let prev = cum;
            cum += c;
            if (cum as f64) >= rank {
                if i == self.bounds.len() {
                    // Overflow bucket: unbounded above, clamp to the
                    // last finite bound.
                    return self.bounds[self.bounds.len() - 1] as f64;
                }
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                let fraction = (rank - prev as f64) / c as f64;
                return lower as f64 + fraction * (upper - lower) as f64;
            }
        }
        self.bounds[self.bounds.len() - 1] as f64
    }

    /// The bucket upper bounds this histogram was built with.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Render as `≤1:12 ≤2:5 ≤4:0 >4:1`, skipping nothing.
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = self
            .bounds
            .iter()
            .zip(&self.counts)
            .map(|(b, c)| format!("≤{b}:{c}"))
            .collect();
        parts.push(format!(
            ">{}:{}",
            self.bounds.last().expect("non-empty bounds"),
            self.counts.last().expect("overflow bucket")
        ));
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_buckets_inclusively() {
        let mut h = Histogram::new(vec![1, 4, 16]);
        for v in [0, 1, 2, 4, 5, 16, 17, 1000] {
            h.record(v);
        }
        // ≤1: {0,1}, ≤4: {2,4}, ≤16: {5,16}, >16: {17,1000}.
        assert_eq!(h.bucket_counts(), &[2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
        assert!((h.mean() - 1045.0 / 8.0).abs() < 1e-12);
        assert!(h.render().starts_with("≤1:2 ≤4:2 ≤16:2 >16:2"));
    }

    #[test]
    fn exponential_bounds() {
        let h = Histogram::exponential(4);
        assert_eq!(h.bounds(), &[1, 2, 4, 8]);
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        let h = Histogram::new(vec![10]);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_rejected() {
        Histogram::new(vec![4, 2]);
    }

    #[test]
    fn exponential_boundaries_are_inclusive() {
        // Pin the edge semantics: 0 → first bucket, an exact boundary
        // value → that bucket (not the next), u64::MAX → overflow.
        let mut h = Histogram::exponential(4); // bounds 1, 2, 4, 8
        h.record(0);
        assert_eq!(h.bucket_counts(), &[1, 0, 0, 0, 0], "0 lands in ≤1");
        h.record(2);
        assert_eq!(h.bucket_counts(), &[1, 1, 0, 0, 0], "2 lands in ≤2, not ≤4");
        h.record(8);
        assert_eq!(h.bucket_counts(), &[1, 1, 0, 1, 0], "8 lands in ≤8");
        h.record(9);
        h.record(u64::MAX);
        assert_eq!(h.bucket_counts(), &[1, 1, 0, 1, 2], "above-last → overflow");
        assert_eq!(h.count(), 5);
        // The running sum saturates instead of wrapping.
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn exponential_rejects_unrepresentable_bounds() {
        Histogram::exponential(64);
    }

    #[test]
    fn cumulative_counts_follow_le_semantics() {
        let mut h = Histogram::new(vec![1, 4, 16]);
        for v in [0, 1, 2, 4, 5, 16, 17, 1000] {
            h.record(v);
        }
        assert_eq!(h.cumulative_counts(), vec![2, 4, 6, 8]);
    }

    #[test]
    fn from_parts_round_trips() {
        let mut h = Histogram::new(vec![2, 8]);
        for v in [1, 3, 9, 100] {
            h.record(v);
        }
        let rebuilt =
            Histogram::from_parts(h.bounds().to_vec(), h.bucket_counts().to_vec(), h.sum());
        assert_eq!(rebuilt, h);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn from_parts_checks_count_length() {
        Histogram::from_parts(vec![1, 2], vec![0, 0], 0);
    }

    /// Deterministic 64-bit LCG for the hand-rolled property tests
    /// (the crate stays dependency-free, so no proptest).
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    /// Random strictly-ascending bounds (1–6 buckets, values ≤ ~4096).
    fn random_bounds(state: &mut u64) -> Vec<u64> {
        let n = 1 + (lcg(state) % 6) as usize;
        let mut bounds = Vec::with_capacity(n);
        let mut b = 0u64;
        for _ in 0..n {
            b += 1 + lcg(state) % 512;
            bounds.push(b);
        }
        bounds
    }

    #[test]
    fn prop_quantile_is_monotone_and_bounded() {
        let mut s = 0x5EED_0001u64;
        for _ in 0..200 {
            let bounds = random_bounds(&mut s);
            let last = *bounds.last().unwrap();
            let mut h = Histogram::new(bounds);
            let samples = (lcg(&mut s) % 40) as usize;
            for _ in 0..samples {
                h.record(lcg(&mut s) % (last * 2 + 1));
            }
            let grid = [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
            let mut prev = -1.0f64;
            for &q in &grid {
                let v = h.quantile(q);
                if samples == 0 {
                    assert_eq!(v, 0.0, "empty histogram must answer 0");
                    continue;
                }
                assert!(
                    (0.0..=last as f64).contains(&v),
                    "quantile within [0, last]"
                );
                assert!(v >= prev, "quantile must be monotone in q");
                prev = v;
            }
        }
    }

    #[test]
    fn prop_boundary_samples_stay_inclusive() {
        // Recording exactly a bucket bound `b` must keep all mass in
        // the `≤b` bucket: quantile(1.0) answers `b` itself, never the
        // next bound. Recording `b + 1` must spill to the next bucket.
        let mut s = 0xB0DA_0002u64;
        for _ in 0..100 {
            let bounds = random_bounds(&mut s);
            for (i, &b) in bounds.iter().enumerate() {
                let mut h = Histogram::new(bounds.clone());
                let n = 1 + lcg(&mut s) % 9;
                for _ in 0..n {
                    h.record(b);
                }
                let mut expected = vec![0u64; bounds.len() + 1];
                expected[i] = n;
                assert_eq!(h.bucket_counts(), &expected[..], "b lands in its bucket");
                assert!((h.quantile(1.0) - b as f64).abs() < 1e-9);

                let mut above = Histogram::new(bounds.clone());
                above.record(b + 1);
                let expect_bound = *bounds.get(i + 1).unwrap_or(&b) as f64;
                assert!((above.quantile(1.0) - expect_bound).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn prop_single_sample_resolves_to_owning_bucket_bound() {
        // With one sample every quantile asks for rank 1, so the
        // answer is the inclusive upper bound of the owning bucket
        // (clamped to the last finite bound on overflow).
        let mut s = 0x051_0003u64;
        for _ in 0..200 {
            let bounds = random_bounds(&mut s);
            let last = *bounds.last().unwrap();
            let v = lcg(&mut s) % (last * 2 + 1);
            let mut h = Histogram::new(bounds.clone());
            h.record(v);
            let owning = bounds.iter().find(|&&b| v <= b).copied().unwrap_or(last) as f64;
            for q in [0.0, 0.5, 1.0] {
                assert!((h.quantile(q) - owning).abs() < 1e-9, "v={v} q={q}");
            }
        }
    }

    #[test]
    fn prop_quantile_rank_mass_is_covered() {
        // At least ceil(q · total) samples are ≤ the upper bound of
        // the bucket the quantile interpolates inside (when the
        // quantile does not clamp into overflow).
        let mut s = 0xC0DE_0004u64;
        for _ in 0..150 {
            let bounds = random_bounds(&mut s);
            let last = *bounds.last().unwrap();
            let mut h = Histogram::new(bounds.clone());
            let samples = 1 + (lcg(&mut s) % 60) as usize;
            for _ in 0..samples {
                h.record(lcg(&mut s) % (last + 1)); // no overflow mass
            }
            for q in [0.1, 0.5, 0.9, 0.99] {
                let v = h.quantile(q);
                let bucket_upper = bounds.iter().find(|&&b| v <= b as f64).copied().unwrap();
                let covered: u64 = bounds
                    .iter()
                    .zip(h.cumulative_counts())
                    .find(|(&b, _)| b == bucket_upper)
                    .map(|(_, c)| c)
                    .unwrap();
                let rank = (q * samples as f64).max(1.0).ceil() as u64;
                assert!(covered >= rank, "bucket ≤{bucket_upper} covers rank {rank}");
            }
        }
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = Histogram::new(vec![10, 20, 40]);
        for _ in 0..50 {
            h.record(5); // ≤10 bucket
        }
        for _ in 0..50 {
            h.record(15); // ≤20 bucket
        }
        // Half the mass is ≤10, so p50 is the top of the first bucket.
        assert!((h.quantile(0.5) - 10.0).abs() < 1e-9);
        // p75 is halfway through the (10, 20] bucket.
        assert!((h.quantile(0.75) - 15.0).abs() < 1e-9);
        assert!((h.quantile(1.0) - 20.0).abs() < 1e-9);
        assert_eq!(Histogram::new(vec![1]).quantile(0.5), 0.0, "empty → 0");
        // Mass in the overflow bucket clamps to the last finite bound.
        let mut o = Histogram::new(vec![1, 2]);
        o.record(1000);
        assert_eq!(o.quantile(0.99), 2.0);
    }
}
