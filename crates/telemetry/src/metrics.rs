//! Dependency-free metrics primitives: counters and fixed-bucket
//! histograms.

/// A monotonically increasing counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A fixed-bucket histogram over `u64` samples.
///
/// Buckets are defined by ascending inclusive upper bounds; one
/// implicit overflow bucket catches everything above the last bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl Histogram {
    /// A histogram with the given ascending inclusive upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly ascending"
        );
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; n],
            total: 0,
            sum: 0,
        }
    }

    /// Exponential bounds `1, 2, 4, … , 2^(n-1)` — a good default for
    /// count-like samples (active jobs, queue lengths).
    pub fn exponential(buckets: u32) -> Self {
        Histogram::new((0..buckets).map(|i| 1u64 << i).collect())
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The bucket upper bounds this histogram was built with.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Render as `≤1:12 ≤2:5 ≤4:0 >4:1`, skipping nothing.
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = self
            .bounds
            .iter()
            .zip(&self.counts)
            .map(|(b, c)| format!("≤{b}:{c}"))
            .collect();
        parts.push(format!(
            ">{}:{}",
            self.bounds.last().expect("non-empty bounds"),
            self.counts.last().expect("overflow bucket")
        ));
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_buckets_inclusively() {
        let mut h = Histogram::new(vec![1, 4, 16]);
        for v in [0, 1, 2, 4, 5, 16, 17, 1000] {
            h.record(v);
        }
        // ≤1: {0,1}, ≤4: {2,4}, ≤16: {5,16}, >16: {17,1000}.
        assert_eq!(h.bucket_counts(), &[2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
        assert!((h.mean() - 1045.0 / 8.0).abs() < 1e-12);
        assert!(h.render().starts_with("≤1:2 ≤4:2 ≤16:2 >16:2"));
    }

    #[test]
    fn exponential_bounds() {
        let h = Histogram::exponential(4);
        assert_eq!(h.bounds(), &[1, 2, 4, 8]);
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        let h = Histogram::new(vec![10]);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_rejected() {
        Histogram::new(vec![4, 2]);
    }
}
