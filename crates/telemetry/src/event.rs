//! The event schema.
//!
//! Events carry plain integers (`u64` time steps, `u32` job ids, `u16`
//! category indices) so the crate stays dependency-free; the emitting
//! crates convert from their `Time`/`JobId`/`Category` newtypes.

use std::fmt;

/// Which branch of RAD's Figure 2 pseudo-code a category is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchedulerMode {
    /// Space-sharing: `|Q| ≤ Pα`, dynamic equi-partitioning.
    Deq,
    /// Time-sharing: `|Q| > Pα`, marked round-robin cycles.
    RoundRobin,
}

impl SchedulerMode {
    /// Stable wire label (`"deq"` / `"rr"`).
    pub fn label(self) -> &'static str {
        match self {
            SchedulerMode::Deq => "deq",
            SchedulerMode::RoundRobin => "rr",
        }
    }

    /// Parse a wire label back into a mode.
    pub fn from_label(s: &str) -> Option<SchedulerMode> {
        match s {
            "deq" => Some(SchedulerMode::Deq),
            "rr" => Some(SchedulerMode::RoundRobin),
            _ => None,
        }
    }
}

impl fmt::Display for SchedulerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One structured telemetry event.
///
/// The engine emits the run/step/job lifecycle events; the schedulers
/// (RAD per category) emit the decision-level events. Together they
/// are sufficient to reconstruct the run's makespan, per-category
/// executed/allotted/waste totals, utilization timeline, and DEQ↔RR
/// mode-transition history — which is exactly what
/// `kanalysis::telemetry_report` does.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TelemetryEvent {
    /// A simulation run began.
    RunStart {
        /// The scheduler's name.
        scheduler: String,
        /// Number of jobs in the run.
        jobs: u32,
        /// Number of resource categories `K`.
        categories: u16,
    },
    /// A job's release time passed: it entered the active set.
    JobReleased {
        /// The step at which the job became active.
        t: u64,
        /// Job index.
        job: u32,
    },
    /// A busy step began (after arrivals were activated).
    StepStart {
        /// 1-based step index.
        t: u64,
        /// Active (released, uncompleted) jobs this step.
        active_jobs: u32,
    },
    /// A busy step finished executing.
    StepEnd {
        /// 1-based step index.
        t: u64,
        /// Processors allotted per category.
        allotted: Vec<u32>,
        /// Tasks executed per category (`≤ allotted`, elementwise).
        executed: Vec<u32>,
    },
    /// A job executed its last task.
    JobCompleted {
        /// Completion step `T(Ji)`.
        t: u64,
        /// Job index.
        job: u32,
        /// Response time `T(Ji) − r(Ji)`.
        response: u64,
    },
    /// A job received its first nonzero allotment (end of its wait
    /// phase; the step is a quantum decision boundary).
    JobFirstAllot {
        /// The decision step granting the allotment.
        t: u64,
        /// Job index.
        job: u32,
    },
    /// One maximal run of consecutive steps in which a job executed at
    /// least one task, truncated at quantum decision boundaries — the
    /// execution-segment spans of a job's trace.
    JobExecSegment {
        /// Job index.
        job: u32,
        /// First step of the segment (inclusive).
        from: u64,
        /// Last step of the segment (inclusive).
        to: u64,
        /// Tasks executed across the segment.
        tasks: u64,
    },
    /// The service layer observed mean response time above the
    /// configured multiple of the running Theorem-3 bound. Emitted
    /// edge-triggered by `kserve` (never by the engine), so replay
    /// verification treats it as a service-only annotation.
    SloAlert {
        /// Virtual time at which the breach was observed.
        t: u64,
        /// Observed mean response time, in milli-steps.
        mean_response_milli: u64,
        /// The crossed threshold (`factor × theorem-3 bound`), in
        /// milli-steps.
        threshold_milli: u64,
    },
    /// An idle interval (no active jobs, future releases pending) was
    /// fast-forwarded without simulating the steps in between.
    IdleSkip {
        /// Last step before the gap.
        from: u64,
        /// Clock value after the skip (the next release time).
        to: u64,
    },
    /// One RAD allotment decision for one category.
    Decision {
        /// Decision step.
        t: u64,
        /// Category index.
        category: u16,
        /// Branch taken (DEQ or round-robin).
        mode: SchedulerMode,
        /// Number of α-active jobs considered.
        jobs: u32,
        /// Total α-desire across those jobs.
        desire: u64,
        /// Total processors allotted by this decision.
        allotted: u64,
        /// Jobs whose allotment equals their desire.
        satisfied: u32,
        /// Jobs allotted less than their desire.
        deprived: u32,
    },
    /// A category switched between DEQ and round-robin.
    ModeTransition {
        /// Step of the switch.
        t: u64,
        /// Category index.
        category: u16,
        /// Previous mode.
        from: SchedulerMode,
        /// New mode.
        to: SchedulerMode,
        /// α-active jobs at the moment of the switch.
        active_jobs: u32,
    },
    /// A round-robin cycle completed: every marked job had been served
    /// and the DEQ branch cleared the marks.
    RrCycleComplete {
        /// Step at which the cycle ended.
        t: u64,
        /// Category index.
        category: u16,
        /// Jobs that were marked (served) during the cycle.
        served: u32,
    },
    /// The run finished (all jobs complete).
    RunEnd {
        /// Makespan `T(J)`.
        makespan: u64,
        /// Steps actually simulated.
        busy_steps: u64,
        /// Steps skipped in idle intervals.
        idle_steps: u64,
    },
}

/// Per-kind bits for sink interest masks (`TelemetrySink::interest`):
/// a fanout skips locking and dispatching to a sink whose mask does
/// not contain the event's [`TelemetryEvent::kind_bit`].
pub mod interest {
    /// `RunStart` events.
    pub const RUN_START: u32 = 1 << 0;
    /// `JobReleased` events.
    pub const JOB_RELEASED: u32 = 1 << 1;
    /// `StepStart` events.
    pub const STEP_START: u32 = 1 << 2;
    /// `StepEnd` events.
    pub const STEP_END: u32 = 1 << 3;
    /// `JobCompleted` events.
    pub const JOB_COMPLETED: u32 = 1 << 4;
    /// `JobFirstAllot` events.
    pub const JOB_FIRST_ALLOT: u32 = 1 << 5;
    /// `JobExecSegment` events.
    pub const JOB_EXEC_SEGMENT: u32 = 1 << 6;
    /// `SloAlert` events.
    pub const SLO_ALERT: u32 = 1 << 7;
    /// `IdleSkip` events.
    pub const IDLE_SKIP: u32 = 1 << 8;
    /// `Decision` events.
    pub const DECISION: u32 = 1 << 9;
    /// `ModeTransition` events.
    pub const MODE_TRANSITION: u32 = 1 << 10;
    /// `RrCycleComplete` events.
    pub const RR_CYCLE_COMPLETE: u32 = 1 << 11;
    /// `RunEnd` events.
    pub const RUN_END: u32 = 1 << 12;
    /// Every event kind (the default sink interest).
    pub const ALL: u32 = u32::MAX;
    /// The per-job lifecycle subset a trace assembler consumes.
    pub const JOB_LIFECYCLE: u32 =
        JOB_RELEASED | JOB_COMPLETED | JOB_FIRST_ALLOT | JOB_EXEC_SEGMENT;
}

impl TelemetryEvent {
    /// Stable wire name of the event kind (the JSONL `"event"` field).
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::RunStart { .. } => "run_start",
            TelemetryEvent::JobReleased { .. } => "job_released",
            TelemetryEvent::StepStart { .. } => "step_start",
            TelemetryEvent::StepEnd { .. } => "step_end",
            TelemetryEvent::JobCompleted { .. } => "job_completed",
            TelemetryEvent::JobFirstAllot { .. } => "job_first_allot",
            TelemetryEvent::JobExecSegment { .. } => "job_exec_segment",
            TelemetryEvent::SloAlert { .. } => "slo_alert",
            TelemetryEvent::IdleSkip { .. } => "idle_skip",
            TelemetryEvent::Decision { .. } => "decision",
            TelemetryEvent::ModeTransition { .. } => "mode_transition",
            TelemetryEvent::RrCycleComplete { .. } => "rr_cycle_complete",
            TelemetryEvent::RunEnd { .. } => "run_end",
        }
    }

    /// This event's bit in an interest mask (see [`interest`]).
    pub fn kind_bit(&self) -> u32 {
        match self {
            TelemetryEvent::RunStart { .. } => interest::RUN_START,
            TelemetryEvent::JobReleased { .. } => interest::JOB_RELEASED,
            TelemetryEvent::StepStart { .. } => interest::STEP_START,
            TelemetryEvent::StepEnd { .. } => interest::STEP_END,
            TelemetryEvent::JobCompleted { .. } => interest::JOB_COMPLETED,
            TelemetryEvent::JobFirstAllot { .. } => interest::JOB_FIRST_ALLOT,
            TelemetryEvent::JobExecSegment { .. } => interest::JOB_EXEC_SEGMENT,
            TelemetryEvent::SloAlert { .. } => interest::SLO_ALERT,
            TelemetryEvent::IdleSkip { .. } => interest::IDLE_SKIP,
            TelemetryEvent::Decision { .. } => interest::DECISION,
            TelemetryEvent::ModeTransition { .. } => interest::MODE_TRANSITION,
            TelemetryEvent::RrCycleComplete { .. } => interest::RR_CYCLE_COMPLETE,
            TelemetryEvent::RunEnd { .. } => interest::RUN_END,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_labels_round_trip() {
        for m in [SchedulerMode::Deq, SchedulerMode::RoundRobin] {
            assert_eq!(SchedulerMode::from_label(m.label()), Some(m));
            assert_eq!(format!("{m}"), m.label());
        }
        assert_eq!(SchedulerMode::from_label("nope"), None);
    }

    #[test]
    fn kinds_are_distinct() {
        let events = [
            TelemetryEvent::RunStart {
                scheduler: "s".into(),
                jobs: 1,
                categories: 1,
            },
            TelemetryEvent::JobReleased { t: 1, job: 0 },
            TelemetryEvent::StepStart {
                t: 1,
                active_jobs: 1,
            },
            TelemetryEvent::StepEnd {
                t: 1,
                allotted: vec![1],
                executed: vec![1],
            },
            TelemetryEvent::JobCompleted {
                t: 1,
                job: 0,
                response: 1,
            },
            TelemetryEvent::JobFirstAllot { t: 1, job: 0 },
            TelemetryEvent::JobExecSegment {
                job: 0,
                from: 1,
                to: 2,
                tasks: 3,
            },
            TelemetryEvent::SloAlert {
                t: 1,
                mean_response_milli: 2500,
                threshold_milli: 2000,
            },
            TelemetryEvent::IdleSkip { from: 1, to: 2 },
            TelemetryEvent::Decision {
                t: 1,
                category: 0,
                mode: SchedulerMode::Deq,
                jobs: 1,
                desire: 1,
                allotted: 1,
                satisfied: 1,
                deprived: 0,
            },
            TelemetryEvent::ModeTransition {
                t: 1,
                category: 0,
                from: SchedulerMode::Deq,
                to: SchedulerMode::RoundRobin,
                active_jobs: 3,
            },
            TelemetryEvent::RrCycleComplete {
                t: 1,
                category: 0,
                served: 2,
            },
            TelemetryEvent::RunEnd {
                makespan: 1,
                busy_steps: 1,
                idle_steps: 0,
            },
        ];
        let mut kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), events.len());
    }
}
