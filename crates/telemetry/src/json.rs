//! Hand-rolled JSONL codec for [`TelemetryEvent`].
//!
//! The crate is deliberately dependency-free, so instead of serde this
//! module implements the small JSON subset the event schema needs:
//! one object per line, string keys, unsigned integers, arrays of
//! unsigned integers, and escaped strings. [`from_json`] inverts
//! [`to_json`] exactly (property: `from_json(to_json(e)) == e`).

use crate::{SchedulerMode, TelemetryEvent};

/// Encode one event as a single-line JSON object with an `"event"`
/// discriminator field.
pub fn to_json(event: &TelemetryEvent) -> String {
    let mut s = String::with_capacity(96);
    s.push_str("{\"event\":\"");
    s.push_str(event.kind());
    s.push('"');
    let field_u64 = |s: &mut String, k: &str, v: u64| {
        s.push_str(",\"");
        s.push_str(k);
        s.push_str("\":");
        s.push_str(&v.to_string());
    };
    match event {
        TelemetryEvent::RunStart {
            scheduler,
            jobs,
            categories,
        } => {
            s.push_str(",\"scheduler\":\"");
            escape_into(scheduler, &mut s);
            s.push('"');
            field_u64(&mut s, "jobs", u64::from(*jobs));
            field_u64(&mut s, "categories", u64::from(*categories));
        }
        TelemetryEvent::JobReleased { t, job } => {
            field_u64(&mut s, "t", *t);
            field_u64(&mut s, "job", u64::from(*job));
        }
        TelemetryEvent::StepStart { t, active_jobs } => {
            field_u64(&mut s, "t", *t);
            field_u64(&mut s, "active_jobs", u64::from(*active_jobs));
        }
        TelemetryEvent::StepEnd {
            t,
            allotted,
            executed,
        } => {
            field_u64(&mut s, "t", *t);
            array_into("allotted", allotted, &mut s);
            array_into("executed", executed, &mut s);
        }
        TelemetryEvent::JobCompleted { t, job, response } => {
            field_u64(&mut s, "t", *t);
            field_u64(&mut s, "job", u64::from(*job));
            field_u64(&mut s, "response", *response);
        }
        TelemetryEvent::JobFirstAllot { t, job } => {
            field_u64(&mut s, "t", *t);
            field_u64(&mut s, "job", u64::from(*job));
        }
        TelemetryEvent::JobExecSegment {
            job,
            from,
            to,
            tasks,
        } => {
            field_u64(&mut s, "job", u64::from(*job));
            field_u64(&mut s, "from", *from);
            field_u64(&mut s, "to", *to);
            field_u64(&mut s, "tasks", *tasks);
        }
        TelemetryEvent::SloAlert {
            t,
            mean_response_milli,
            threshold_milli,
        } => {
            field_u64(&mut s, "t", *t);
            field_u64(&mut s, "mean_response_milli", *mean_response_milli);
            field_u64(&mut s, "threshold_milli", *threshold_milli);
        }
        TelemetryEvent::IdleSkip { from, to } => {
            field_u64(&mut s, "from", *from);
            field_u64(&mut s, "to", *to);
        }
        TelemetryEvent::Decision {
            t,
            category,
            mode,
            jobs,
            desire,
            allotted,
            satisfied,
            deprived,
        } => {
            field_u64(&mut s, "t", *t);
            field_u64(&mut s, "category", u64::from(*category));
            s.push_str(",\"mode\":\"");
            s.push_str(mode.label());
            s.push('"');
            field_u64(&mut s, "jobs", u64::from(*jobs));
            field_u64(&mut s, "desire", *desire);
            field_u64(&mut s, "allotted", *allotted);
            field_u64(&mut s, "satisfied", u64::from(*satisfied));
            field_u64(&mut s, "deprived", u64::from(*deprived));
        }
        TelemetryEvent::ModeTransition {
            t,
            category,
            from,
            to,
            active_jobs,
        } => {
            field_u64(&mut s, "t", *t);
            field_u64(&mut s, "category", u64::from(*category));
            s.push_str(",\"from\":\"");
            s.push_str(from.label());
            s.push_str("\",\"to\":\"");
            s.push_str(to.label());
            s.push('"');
            field_u64(&mut s, "active_jobs", u64::from(*active_jobs));
        }
        TelemetryEvent::RrCycleComplete {
            t,
            category,
            served,
        } => {
            field_u64(&mut s, "t", *t);
            field_u64(&mut s, "category", u64::from(*category));
            field_u64(&mut s, "served", u64::from(*served));
        }
        TelemetryEvent::RunEnd {
            makespan,
            busy_steps,
            idle_steps,
        } => {
            field_u64(&mut s, "makespan", *makespan);
            field_u64(&mut s, "busy_steps", *busy_steps);
            field_u64(&mut s, "idle_steps", *idle_steps);
        }
    }
    s.push('}');
    s
}

fn escape_into(raw: &str, out: &mut String) {
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn array_into(key: &str, values: &[u32], out: &mut String) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

/// Decode one JSONL line back into an event.
pub fn from_json(line: &str) -> Result<TelemetryEvent, String> {
    let obj = Parser::new(line).parse_object()?;
    let kind = obj.str_field("event")?;
    let e = match kind {
        "run_start" => TelemetryEvent::RunStart {
            scheduler: obj.str_field("scheduler")?.to_string(),
            jobs: obj.u32_field("jobs")?,
            categories: obj.u16_field("categories")?,
        },
        "job_released" => TelemetryEvent::JobReleased {
            t: obj.u64_field("t")?,
            job: obj.u32_field("job")?,
        },
        "step_start" => TelemetryEvent::StepStart {
            t: obj.u64_field("t")?,
            active_jobs: obj.u32_field("active_jobs")?,
        },
        "step_end" => TelemetryEvent::StepEnd {
            t: obj.u64_field("t")?,
            allotted: obj.array_field("allotted")?,
            executed: obj.array_field("executed")?,
        },
        "job_completed" => TelemetryEvent::JobCompleted {
            t: obj.u64_field("t")?,
            job: obj.u32_field("job")?,
            response: obj.u64_field("response")?,
        },
        "job_first_allot" => TelemetryEvent::JobFirstAllot {
            t: obj.u64_field("t")?,
            job: obj.u32_field("job")?,
        },
        "job_exec_segment" => TelemetryEvent::JobExecSegment {
            job: obj.u32_field("job")?,
            from: obj.u64_field("from")?,
            to: obj.u64_field("to")?,
            tasks: obj.u64_field("tasks")?,
        },
        "slo_alert" => TelemetryEvent::SloAlert {
            t: obj.u64_field("t")?,
            mean_response_milli: obj.u64_field("mean_response_milli")?,
            threshold_milli: obj.u64_field("threshold_milli")?,
        },
        "idle_skip" => TelemetryEvent::IdleSkip {
            from: obj.u64_field("from")?,
            to: obj.u64_field("to")?,
        },
        "decision" => TelemetryEvent::Decision {
            t: obj.u64_field("t")?,
            category: obj.u16_field("category")?,
            mode: obj.mode_field("mode")?,
            jobs: obj.u32_field("jobs")?,
            desire: obj.u64_field("desire")?,
            allotted: obj.u64_field("allotted")?,
            satisfied: obj.u32_field("satisfied")?,
            deprived: obj.u32_field("deprived")?,
        },
        "mode_transition" => TelemetryEvent::ModeTransition {
            t: obj.u64_field("t")?,
            category: obj.u16_field("category")?,
            from: obj.mode_field("from")?,
            to: obj.mode_field("to")?,
            active_jobs: obj.u32_field("active_jobs")?,
        },
        "rr_cycle_complete" => TelemetryEvent::RrCycleComplete {
            t: obj.u64_field("t")?,
            category: obj.u16_field("category")?,
            served: obj.u32_field("served")?,
        },
        "run_end" => TelemetryEvent::RunEnd {
            makespan: obj.u64_field("makespan")?,
            busy_steps: obj.u64_field("busy_steps")?,
            idle_steps: obj.u64_field("idle_steps")?,
        },
        other => return Err(format!("unknown event kind '{other}'")),
    };
    Ok(e)
}

/// Parse a whole JSONL document (blank lines skipped), with the line
/// number attached to any error.
pub fn parse_jsonl(text: &str) -> Result<Vec<TelemetryEvent>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(from_json(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// One parsed JSON scalar/array value.
#[derive(Debug, PartialEq)]
enum Value {
    Num(u64),
    Str(String),
    Array(Vec<u64>),
}

/// A flat parsed object (the schema never nests objects).
struct Object {
    fields: Vec<(String, Value)>,
}

impl Object {
    fn field(&self, key: &str) -> Result<&Value, String> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field '{key}'"))
    }

    fn str_field(&self, key: &str) -> Result<&str, String> {
        match self.field(key)? {
            Value::Str(s) => Ok(s),
            other => Err(format!("field '{key}' is not a string: {other:?}")),
        }
    }

    fn u64_field(&self, key: &str) -> Result<u64, String> {
        match self.field(key)? {
            Value::Num(n) => Ok(*n),
            other => Err(format!("field '{key}' is not a number: {other:?}")),
        }
    }

    fn u32_field(&self, key: &str) -> Result<u32, String> {
        u32::try_from(self.u64_field(key)?).map_err(|_| format!("field '{key}' overflows u32"))
    }

    fn u16_field(&self, key: &str) -> Result<u16, String> {
        u16::try_from(self.u64_field(key)?).map_err(|_| format!("field '{key}' overflows u16"))
    }

    fn array_field(&self, key: &str) -> Result<Vec<u32>, String> {
        match self.field(key)? {
            Value::Array(v) => v
                .iter()
                .map(|&n| u32::try_from(n).map_err(|_| format!("'{key}' element overflows u32")))
                .collect(),
            other => Err(format!("field '{key}' is not an array: {other:?}")),
        }
    }

    fn mode_field(&self, key: &str) -> Result<SchedulerMode, String> {
        let s = self.str_field(key)?;
        SchedulerMode::from_label(s).ok_or_else(|| format!("field '{key}': unknown mode '{s}'"))
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {} of {:?}",
                b as char,
                self.pos,
                String::from_utf8_lossy(self.bytes)
            ))
        }
    }

    fn parse_object(&mut self) -> Result<Object, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Object { fields });
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err("trailing bytes after object".to_string());
        }
        Ok(Object { fields })
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut v = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(v));
                }
                loop {
                    v.push(self.parse_number()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
                Ok(Value::Array(v))
            }
            Some(b'0'..=b'9') => Ok(Value::Num(self.parse_number()?)),
            other => Err(format!("unexpected value start {other:?} at {}", self.pos)),
        }
    }

    fn parse_number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are utf8")
            .parse()
            .map_err(|_| "number overflows u64".to_string())
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("short \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf8 in string")?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_events() -> Vec<TelemetryEvent> {
        vec![
            TelemetryEvent::RunStart {
                scheduler: "k-rad(K=2) \"quoted\" \\ tab\tü".into(),
                jobs: 12,
                categories: 2,
            },
            TelemetryEvent::JobReleased { t: 1, job: 3 },
            TelemetryEvent::StepStart {
                t: 4,
                active_jobs: 7,
            },
            TelemetryEvent::StepEnd {
                t: 4,
                allotted: vec![4, 0, 2],
                executed: vec![3, 0, 2],
            },
            TelemetryEvent::JobCompleted {
                t: 9,
                job: 3,
                response: 8,
            },
            TelemetryEvent::JobFirstAllot { t: 2, job: 3 },
            TelemetryEvent::JobExecSegment {
                job: 3,
                from: 2,
                to: 9,
                tasks: 14,
            },
            TelemetryEvent::SloAlert {
                t: 40,
                mean_response_milli: 9500,
                threshold_milli: 9000,
            },
            TelemetryEvent::IdleSkip { from: 9, to: 100 },
            TelemetryEvent::Decision {
                t: 4,
                category: 1,
                mode: SchedulerMode::Deq,
                jobs: 3,
                desire: 16,
                allotted: 8,
                satisfied: 1,
                deprived: 2,
            },
            TelemetryEvent::ModeTransition {
                t: 5,
                category: 0,
                from: SchedulerMode::Deq,
                to: SchedulerMode::RoundRobin,
                active_jobs: 9,
            },
            TelemetryEvent::RrCycleComplete {
                t: 8,
                category: 0,
                served: 6,
            },
            TelemetryEvent::RunEnd {
                makespan: 100,
                busy_steps: 10,
                idle_steps: 90,
            },
        ]
    }

    #[test]
    fn every_event_round_trips() {
        for e in all_events() {
            let line = to_json(&e);
            assert!(!line.contains('\n'), "single line: {line}");
            let back = from_json(&line).unwrap_or_else(|err| panic!("{line}: {err}"));
            assert_eq!(back, e, "round trip failed for {line}");
        }
    }

    #[test]
    fn jsonl_document_round_trips_with_blank_lines() {
        let events = all_events();
        let mut doc = String::new();
        for e in &events {
            doc.push_str(&to_json(e));
            doc.push('\n');
            doc.push('\n'); // blank lines are skipped
        }
        assert_eq!(parse_jsonl(&doc).unwrap(), events);
    }

    #[test]
    fn step_end_sample_is_plain_json() {
        let line = to_json(&TelemetryEvent::StepEnd {
            t: 3,
            allotted: vec![4, 2],
            executed: vec![3, 2],
        });
        assert_eq!(
            line,
            r#"{"event":"step_end","t":3,"allotted":[4,2],"executed":[3,2]}"#
        );
    }

    #[test]
    fn errors_are_reported_with_context() {
        assert!(from_json("{}").unwrap_err().contains("event"));
        assert!(from_json(r#"{"event":"nope"}"#)
            .unwrap_err()
            .contains("nope"));
        assert!(from_json(r#"{"event":"idle_skip","from":1}"#)
            .unwrap_err()
            .contains("to"));
        assert!(from_json("not json").is_err());
        assert!(parse_jsonl("{\"event\":\"x\"}\n")
            .unwrap_err()
            .contains("line 1"));
        let trailing = r#"{"event":"idle_skip","from":1,"to":2} extra"#;
        assert!(from_json(trailing).unwrap_err().contains("trailing"));
    }

    #[test]
    fn whitespace_tolerant() {
        let line = r#" { "event" : "idle_skip" , "from" : 1 , "to" : 2 } "#;
        assert_eq!(
            from_json(line).unwrap(),
            TelemetryEvent::IdleSkip { from: 1, to: 2 }
        );
    }
}
