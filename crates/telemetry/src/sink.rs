//! Sinks and the handle instrumented code holds.

use crate::json::to_json;
use crate::{Counter, TelemetryEvent};
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Where telemetry events go.
///
/// Implementations must be cheap per event; the engine can emit several
/// events per simulated step.
pub trait TelemetrySink {
    /// Whether emitting to this sink does anything. Handles cache this
    /// at construction: when `false`, instrumented code skips event
    /// construction entirely (the [`NoopSink`] fast path).
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event.
    fn record(&mut self, event: TelemetryEvent);

    /// Record a borrowed event. Sinks that only *read* events (e.g. a
    /// trace assembler or mode tracker) override this to skip the
    /// clone the default incurs — fanouts use it for every sink except
    /// the one that can take ownership.
    fn record_ref(&mut self, event: &TelemetryEvent) {
        self.record(event.clone());
    }

    /// Which event kinds this sink consumes, as a mask of
    /// [`crate::interest`] bits. A [`FanoutSink`] reads this once at
    /// construction and never locks the sink for events outside the
    /// mask, so narrow sinks cost nothing on the kinds they ignore.
    /// Must be constant for the sink's lifetime. Default: everything.
    fn interest(&self) -> u32 {
        crate::interest::ALL
    }

    /// Flush any buffered output (no-op for in-memory sinks).
    fn flush(&mut self) {}
}

/// A sink that drops everything and reports itself disabled, so
/// instrumented hot paths reduce to a single branch per emission site.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: TelemetryEvent) {}

    fn record_ref(&mut self, _event: &TelemetryEvent) {}

    fn interest(&self) -> u32 {
        0
    }
}

/// An in-memory sink collecting every event, for tests and summaries.
#[derive(Clone, Debug, Default)]
pub struct RecordingSink {
    events: Vec<TelemetryEvent>,
}

impl RecordingSink {
    /// An empty recording sink.
    pub fn new() -> Self {
        RecordingSink::default()
    }

    /// The events recorded so far, in emission order.
    pub fn events(&self) -> &[TelemetryEvent] {
        &self.events
    }

    /// Drain the recorded events out of the sink.
    pub fn take(&mut self) -> Vec<TelemetryEvent> {
        std::mem::take(&mut self.events)
    }
}

impl TelemetrySink for RecordingSink {
    fn record(&mut self, event: TelemetryEvent) {
        self.events.push(event);
    }
}

/// A sink writing one JSON object per line (JSONL) to a file.
#[derive(Debug)]
pub struct JsonlSink {
    writer: BufWriter<File>,
    written: Counter,
}

impl JsonlSink {
    /// Create (truncating) the JSONL file at `path`.
    pub fn create(path: &Path) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink {
            writer: BufWriter::new(File::create(path)?),
            written: Counter::new(),
        })
    }

    /// Number of events written so far.
    pub fn events_written(&self) -> u64 {
        self.written.get()
    }
}

impl TelemetrySink for JsonlSink {
    fn record(&mut self, event: TelemetryEvent) {
        self.record_ref(&event);
    }

    fn record_ref(&mut self, event: &TelemetryEvent) {
        // I/O errors are not worth panicking a simulation over; the
        // line count lets callers notice a short file.
        if writeln!(self.writer, "{}", to_json(event)).is_ok() {
            self.written.incr();
        }
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

/// A shareable, thread-safe sink (the form handles hold).
pub type SharedSink = Arc<Mutex<dyn TelemetrySink + Send>>;

/// Duplicate every event to several shared sinks (e.g. a JSONL file
/// *and* an in-memory recording for the summary report). Each sink's
/// [`TelemetrySink::interest`] mask is read once at construction;
/// events outside a sink's mask never lock it.
pub struct FanoutSink {
    sinks: Vec<(SharedSink, u32)>,
}

impl FanoutSink {
    /// Fan out to `sinks` in order.
    pub fn new(sinks: Vec<SharedSink>) -> Self {
        let sinks = sinks
            .into_iter()
            .map(|s| {
                let mask = s.lock().map_or(crate::interest::ALL, |g| g.interest());
                (s, mask)
            })
            .collect();
        FanoutSink { sinks }
    }
}

impl fmt::Debug for FanoutSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FanoutSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl TelemetrySink for FanoutSink {
    fn enabled(&self) -> bool {
        self.sinks
            .iter()
            .any(|(s, _)| s.lock().map(|g| g.enabled()).unwrap_or(false))
    }

    fn record(&mut self, event: TelemetryEvent) {
        let bit = event.kind_bit();
        let Some(last) = self.sinks.iter().rposition(|&(_, mask)| mask & bit != 0) else {
            return;
        };
        for (i, (sink, mask)) in self.sinks.iter().enumerate().take(last + 1) {
            if mask & bit == 0 {
                continue;
            }
            if let Ok(mut g) = sink.lock() {
                if i == last {
                    return g.record(event);
                }
                g.record_ref(&event);
            }
        }
    }

    fn flush(&mut self) {
        for (sink, _) in &self.sinks {
            if let Ok(mut g) = sink.lock() {
                g.flush();
            }
        }
    }
}

/// The handle instrumented code holds: a cheap clonable reference to a
/// sink, with the enabled state cached so disabled telemetry costs one
/// boolean test per emission site and never constructs the event.
///
/// ```
/// use ktelemetry::{TelemetryEvent, TelemetryHandle};
/// let off = TelemetryHandle::off();
/// // The closure is never evaluated when telemetry is off:
/// off.emit(|| unreachable!("not constructed"));
///
/// let (tel, rec) = TelemetryHandle::recording();
/// tel.emit(|| TelemetryEvent::IdleSkip { from: 3, to: 10 });
/// assert_eq!(rec.lock().unwrap().events().len(), 1);
/// ```
#[derive(Clone, Default)]
pub struct TelemetryHandle {
    sink: Option<SharedSink>,
    enabled: bool,
}

impl TelemetryHandle {
    /// A disabled handle (the default everywhere).
    pub fn off() -> Self {
        TelemetryHandle::default()
    }

    /// Wrap an owned sink.
    pub fn new(sink: impl TelemetrySink + Send + 'static) -> Self {
        let enabled = sink.enabled();
        TelemetryHandle {
            sink: Some(Arc::new(Mutex::new(sink))),
            enabled,
        }
    }

    /// Wrap an already-shared sink (so the caller keeps access to it,
    /// e.g. to read a [`RecordingSink`] back after the run).
    pub fn from_shared(sink: SharedSink) -> Self {
        let enabled = sink.lock().map(|g| g.enabled()).unwrap_or(false);
        TelemetryHandle {
            sink: Some(sink),
            enabled,
        }
    }

    /// A handle plus the shared [`RecordingSink`] it feeds.
    pub fn recording() -> (TelemetryHandle, Arc<Mutex<RecordingSink>>) {
        let rec = Arc::new(Mutex::new(RecordingSink::new()));
        let handle = TelemetryHandle::from_shared(rec.clone());
        (handle, rec)
    }

    /// Whether emissions reach a live sink.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Emit an event. The closure runs only when the handle is
    /// enabled, so construction cost (allocation, cloning vectors) is
    /// never paid on the disabled path.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> TelemetryEvent) {
        if self.enabled {
            if let Some(sink) = &self.sink {
                if let Ok(mut g) = sink.lock() {
                    g.record(f());
                }
            }
        }
    }

    /// Flush the underlying sink.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            if let Ok(mut g) = sink.lock() {
                g.flush();
            }
        }
    }
}

/// A handle is itself a sink, so one handle can fan out into another
/// pipeline (e.g. a server duplicating events to the user's sink
/// *and* a [`crate::FlightRecorder`] via a [`FanoutSink`]).
impl TelemetrySink for TelemetryHandle {
    fn enabled(&self) -> bool {
        self.is_enabled()
    }

    fn record(&mut self, event: TelemetryEvent) {
        self.emit(move || event);
    }

    fn record_ref(&mut self, event: &TelemetryEvent) {
        if self.enabled {
            if let Some(sink) = &self.sink {
                if let Ok(mut g) = sink.lock() {
                    g.record_ref(event);
                }
            }
        }
    }

    fn flush(&mut self) {
        TelemetryHandle::flush(self);
    }
}

// The sink is a `dyn` object; render only the useful bit.
impl fmt::Debug for TelemetryHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TelemetryHandle")
            .field("enabled", &self.enabled)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchedulerMode;

    fn ev(t: u64) -> TelemetryEvent {
        TelemetryEvent::StepStart { t, active_jobs: 1 }
    }

    #[test]
    fn off_handle_never_calls_closure() {
        let h = TelemetryHandle::off();
        assert!(!h.is_enabled());
        let mut called = false;
        h.emit(|| {
            called = true;
            ev(1)
        });
        assert!(!called);
        h.flush(); // no-op, must not panic
    }

    #[test]
    fn noop_sink_reports_disabled_through_handle() {
        let h = TelemetryHandle::new(NoopSink);
        assert!(!h.is_enabled());
        let mut called = false;
        h.emit(|| {
            called = true;
            ev(1)
        });
        assert!(!called, "NoopSink must not trigger event construction");
    }

    #[test]
    fn recording_sink_captures_in_order() {
        let (h, rec) = TelemetryHandle::recording();
        assert!(h.is_enabled());
        for t in 1..=3 {
            h.emit(|| ev(t));
        }
        let events = rec.lock().unwrap().take();
        assert_eq!(events, vec![ev(1), ev(2), ev(3)]);
        assert!(rec.lock().unwrap().events().is_empty(), "take drains");
    }

    #[test]
    fn handle_clones_share_the_sink() {
        let (h, rec) = TelemetryHandle::recording();
        let h2 = h.clone();
        h.emit(|| ev(1));
        h2.emit(|| ev(2));
        assert_eq!(rec.lock().unwrap().events().len(), 2);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join(format!("ktel-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.record(ev(1));
            sink.record(TelemetryEvent::ModeTransition {
                t: 2,
                category: 1,
                from: SchedulerMode::Deq,
                to: SchedulerMode::RoundRobin,
                active_jobs: 9,
            });
            assert_eq!(sink.events_written(), 2);
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = crate::json::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], ev(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fanout_duplicates_to_every_sink() {
        let a: Arc<Mutex<RecordingSink>> = Arc::new(Mutex::new(RecordingSink::new()));
        let b: Arc<Mutex<RecordingSink>> = Arc::new(Mutex::new(RecordingSink::new()));
        let fan = FanoutSink::new(vec![a.clone(), b.clone()]);
        let h = TelemetryHandle::new(fan);
        assert!(h.is_enabled());
        h.emit(|| ev(7));
        assert_eq!(a.lock().unwrap().events(), &[ev(7)]);
        assert_eq!(b.lock().unwrap().events(), &[ev(7)]);
    }

    #[test]
    fn fanout_of_noops_is_disabled() {
        let n: SharedSink = Arc::new(Mutex::new(NoopSink));
        let h = TelemetryHandle::new(FanoutSink::new(vec![n]));
        assert!(!h.is_enabled());
        let empty = TelemetryHandle::new(FanoutSink::new(vec![]));
        assert!(!empty.is_enabled());
    }

    #[test]
    fn debug_formats_without_dyn_noise() {
        let h = TelemetryHandle::off();
        assert!(format!("{h:?}").contains("enabled: false"));
    }
}
