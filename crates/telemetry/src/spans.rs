//! Span-style instrumentation with monotonic timing.
//!
//! The engine and schedulers wrap their hot sections (`quantum`,
//! `decide`, `deq_allot`, `rr_cycle`) in spans; durations land in a
//! per-span [`HistogramHandle`] family (`krad_span_duration_us`) in a
//! [`MetricsRegistry`]. A disabled recorder ([`SpanRecorder::off`],
//! the default) never reads the clock — the cost is one `Option`
//! check per span site, mirroring the [`crate::TelemetryHandle`]
//! fast path.

use crate::registry::{HistogramHandle, MetricsRegistry};
use std::sync::Arc;
use std::time::Instant;

/// The instrumented sections of the quantum loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// One full scheduling quantum (inject, decide, execute, publish).
    Quantum,
    /// One scheduler `allot` decision across all categories.
    Decide,
    /// One DEQ allotment computation within a category.
    DeqAllot,
    /// One round-robin cycle bookkeeping pass within a category.
    RrCycle,
}

impl SpanKind {
    /// Every span kind, in label order.
    pub const ALL: [SpanKind; 4] = [
        SpanKind::Quantum,
        SpanKind::Decide,
        SpanKind::DeqAllot,
        SpanKind::RrCycle,
    ];

    /// The `span` label value used in the metrics family.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Quantum => "quantum",
            SpanKind::Decide => "decide",
            SpanKind::DeqAllot => "deq_allot",
            SpanKind::RrCycle => "rr_cycle",
        }
    }

    fn index(self) -> usize {
        match self {
            SpanKind::Quantum => 0,
            SpanKind::Decide => 1,
            SpanKind::DeqAllot => 2,
            SpanKind::RrCycle => 3,
        }
    }
}

/// Cheap clonable recorder for span durations; disabled by default.
#[derive(Clone, Debug, Default)]
pub struct SpanRecorder {
    hists: Option<Arc<[HistogramHandle; 4]>>,
}

impl SpanRecorder {
    /// A disabled recorder: `start` returns `None`, nothing reads the
    /// clock or records.
    pub fn off() -> Self {
        SpanRecorder::default()
    }

    /// A recorder feeding the `krad_span_duration_us{span=...}`
    /// histogram family in `registry` (microsecond buckets, 1 µs to
    /// ~2 s exponentially).
    pub fn for_registry(registry: &MetricsRegistry) -> Self {
        let bounds: Vec<u64> = (0..22).map(|i| 1u64 << i).collect();
        let hists = SpanKind::ALL.map(|kind| {
            registry.histogram_with(
                "krad_span_duration_us",
                "Duration of instrumented quantum-loop sections in microseconds.",
                bounds.clone(),
                &[("span", kind.label())],
            )
        });
        SpanRecorder {
            hists: Some(Arc::new(hists)),
        }
    }

    /// Whether spans are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.hists.is_some()
    }

    /// Begin timing a span. Returns `None` (and skips the clock read)
    /// when the recorder is off; pass the result to
    /// [`SpanRecorder::finish`].
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.hists.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Finish a span started with [`SpanRecorder::start`], recording
    /// its duration in microseconds.
    #[inline]
    pub fn finish(&self, kind: SpanKind, started: Option<Instant>) {
        if let (Some(hists), Some(started)) = (&self.hists, started) {
            let micros = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
            hists[kind.index()].record(micros);
        }
    }

    /// Record an externally measured span duration in microseconds.
    #[inline]
    pub fn record(&self, kind: SpanKind, micros: u64) {
        if let Some(hists) = &self.hists {
            hists[kind.index()].record(micros);
        }
    }

    /// Time a closure as one span (convenience over `start`/`finish`
    /// for call sites without borrow conflicts).
    #[inline]
    pub fn time<T>(&self, kind: SpanKind, f: impl FnOnce() -> T) -> T {
        let started = self.start();
        let out = f();
        self.finish(kind, started);
        out
    }

    /// Samples recorded so far for `kind` (0 when off) — for tests
    /// and reports.
    pub fn count(&self, kind: SpanKind) -> u64 {
        self.hists
            .as_ref()
            .map(|h| h[kind.index()].count())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_never_reads_the_clock() {
        let spans = SpanRecorder::off();
        assert!(!spans.is_enabled());
        assert!(spans.start().is_none());
        spans.finish(SpanKind::Decide, None);
        spans.record(SpanKind::Quantum, 5);
        assert_eq!(spans.count(SpanKind::Quantum), 0);
        assert_eq!(spans.time(SpanKind::Decide, || 42), 42);
    }

    #[test]
    fn enabled_recorder_feeds_the_registry_family() {
        let reg = MetricsRegistry::new();
        let spans = SpanRecorder::for_registry(&reg);
        assert!(spans.is_enabled());
        let started = spans.start();
        assert!(started.is_some());
        spans.finish(SpanKind::Decide, started);
        spans.record(SpanKind::RrCycle, 7);
        assert_eq!(spans.count(SpanKind::Decide), 1);
        assert_eq!(spans.count(SpanKind::RrCycle), 1);
        assert_eq!(spans.count(SpanKind::Quantum), 0);
        let text = reg.render();
        assert!(text.contains("krad_span_duration_us_count{span=\"decide\"} 1"));
        assert!(text.contains("krad_span_duration_us_count{span=\"rr_cycle\"} 1"));
    }

    #[test]
    fn clones_share_the_same_histograms() {
        let reg = MetricsRegistry::new();
        let a = SpanRecorder::for_registry(&reg);
        let b = a.clone();
        a.record(SpanKind::DeqAllot, 1);
        b.record(SpanKind::DeqAllot, 2);
        assert_eq!(a.count(SpanKind::DeqAllot), 2);
    }

    #[test]
    fn labels_cover_every_kind() {
        let labels: Vec<_> = SpanKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels, vec!["quantum", "decide", "deq_allot", "rr_cycle"]);
    }
}
