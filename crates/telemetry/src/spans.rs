//! Span-style instrumentation with monotonic timing, doubling as the
//! engine's per-phase profiler.
//!
//! The engine and schedulers wrap their hot sections (`quantum`,
//! `ready`, `decide`, `deq_allot`, `rr_cycle`, `execute`) in spans.
//! A [`SpanRecorder`] can aggregate those durations two ways, alone or
//! together:
//!
//! * **registry histograms** ([`SpanRecorder::for_registry`]) — each
//!   duration lands in a per-span [`HistogramHandle`] family
//!   (`krad_span_duration_us`) for live scraping;
//! * **profile totals** ([`SpanRecorder::profiler`]) — lock-free
//!   nanosecond + sample totals per phase, snapshotted with
//!   [`SpanRecorder::profile`] into [`PhaseStat`] rows for offline
//!   per-phase breakdowns.
//!
//! A disabled recorder ([`SpanRecorder::off`], the default) never
//! reads the clock — the cost is one `Option` check per span site,
//! mirroring the [`crate::TelemetryHandle`] fast path. The engine's
//! top-level phases (`ready`/`decide`/`execute`) are timed as a *lap
//! chain* ([`SpanRecorder::lap`]): one clock read per phase boundary,
//! so the phases tile the step wall time exactly.

use crate::registry::{HistogramHandle, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The instrumented sections of the quantum loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// One full scheduling quantum (inject, decide, execute, publish).
    Quantum,
    /// Ready-set maintenance: arrival activation, desire digestion,
    /// and scheduler-view construction ahead of a decision.
    Ready,
    /// One scheduler `allot` decision across all categories.
    Decide,
    /// One DEQ allotment computation within a category.
    DeqAllot,
    /// One round-robin cycle bookkeeping pass within a category.
    RrCycle,
    /// Execute/commit: allotment freezing, task execution, completion
    /// handling, and accounting for one step.
    Execute,
}

impl SpanKind {
    /// Number of span kinds.
    pub const COUNT: usize = 6;

    /// Every span kind, in pipeline order.
    pub const ALL: [SpanKind; SpanKind::COUNT] = [
        SpanKind::Quantum,
        SpanKind::Ready,
        SpanKind::Decide,
        SpanKind::DeqAllot,
        SpanKind::RrCycle,
        SpanKind::Execute,
    ];

    /// The `span` label value used in the metrics family.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Quantum => "quantum",
            SpanKind::Ready => "ready",
            SpanKind::Decide => "decide",
            SpanKind::DeqAllot => "deq_allot",
            SpanKind::RrCycle => "rr_cycle",
            SpanKind::Execute => "execute",
        }
    }

    fn index(self) -> usize {
        match self {
            SpanKind::Quantum => 0,
            SpanKind::Ready => 1,
            SpanKind::Decide => 2,
            SpanKind::DeqAllot => 3,
            SpanKind::RrCycle => 4,
            SpanKind::Execute => 5,
        }
    }
}

/// Lock-free per-phase accumulators (nanoseconds + samples).
#[derive(Debug)]
struct PhaseTotals {
    nanos: [AtomicU64; SpanKind::COUNT],
    counts: [AtomicU64; SpanKind::COUNT],
}

impl PhaseTotals {
    fn new() -> Self {
        PhaseTotals {
            nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn add(&self, kind: SpanKind, nanos: u64) {
        let i = kind.index();
        self.nanos[i].fetch_add(nanos, Ordering::Relaxed);
        self.counts[i].fetch_add(1, Ordering::Relaxed);
    }
}

/// One row of a per-phase profile snapshot: total time spent in a
/// span kind and how many samples contributed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseStat {
    /// The profiled section.
    pub kind: SpanKind,
    /// Samples recorded.
    pub count: u64,
    /// Total nanoseconds across all samples.
    pub total_ns: u64,
}

impl PhaseStat {
    /// Mean nanoseconds per sample (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// Cheap clonable recorder for span durations; disabled by default.
#[derive(Clone, Debug, Default)]
pub struct SpanRecorder {
    hists: Option<Arc<[HistogramHandle; SpanKind::COUNT]>>,
    totals: Option<Arc<PhaseTotals>>,
}

impl SpanRecorder {
    /// A disabled recorder: `start` returns `None`, nothing reads the
    /// clock or records.
    pub fn off() -> Self {
        SpanRecorder::default()
    }

    /// A recorder feeding the `krad_span_duration_us{span=...}`
    /// histogram family in `registry` (microsecond buckets, 1 µs to
    /// ~2 s exponentially).
    pub fn for_registry(registry: &MetricsRegistry) -> Self {
        let bounds: Vec<u64> = (0..22).map(|i| 1u64 << i).collect();
        let hists = SpanKind::ALL.map(|kind| {
            registry.histogram_with(
                "krad_span_duration_us",
                "Duration of instrumented quantum-loop sections in microseconds.",
                bounds.clone(),
                &[("span", kind.label())],
            )
        });
        SpanRecorder {
            hists: Some(Arc::new(hists)),
            totals: None,
        }
    }

    /// A profiling recorder: lock-free nanosecond/sample totals per
    /// phase, no registry. Snapshot with [`SpanRecorder::profile`].
    pub fn profiler() -> Self {
        SpanRecorder {
            hists: None,
            totals: Some(Arc::new(PhaseTotals::new())),
        }
    }

    /// A recorder doing both: registry histograms for scraping *and*
    /// profile totals for per-phase breakdowns.
    pub fn profiler_for_registry(registry: &MetricsRegistry) -> Self {
        SpanRecorder {
            totals: Some(Arc::new(PhaseTotals::new())),
            ..SpanRecorder::for_registry(registry)
        }
    }

    /// Whether spans are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.hists.is_some() || self.totals.is_some()
    }

    /// Begin timing a span. Returns `None` (and skips the clock read)
    /// when the recorder is off; pass the result to
    /// [`SpanRecorder::finish`] or [`SpanRecorder::lap`].
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.is_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Finish a span started with [`SpanRecorder::start`], recording
    /// its duration.
    #[inline]
    pub fn finish(&self, kind: SpanKind, started: Option<Instant>) {
        if let Some(started) = started {
            self.record_elapsed(kind, started.elapsed());
        }
    }

    /// Finish one span and immediately begin the next with a single
    /// clock read, so consecutive phases tile wall time exactly:
    /// `let lap = spans.lap(SpanKind::Ready, lap);` records the
    /// `ready` phase and restarts the stopwatch for the next one.
    #[inline]
    pub fn lap(&self, kind: SpanKind, started: Option<Instant>) -> Option<Instant> {
        match started {
            Some(started) => {
                let now = Instant::now();
                self.record_elapsed(kind, now.duration_since(started));
                Some(now)
            }
            None => None,
        }
    }

    #[inline]
    fn record_elapsed(&self, kind: SpanKind, elapsed: std::time::Duration) {
        if let Some(hists) = &self.hists {
            let micros = elapsed.as_micros().min(u64::MAX as u128) as u64;
            hists[kind.index()].record(micros);
        }
        if let Some(totals) = &self.totals {
            let nanos = elapsed.as_nanos().min(u64::MAX as u128) as u64;
            totals.add(kind, nanos);
        }
    }

    /// Record an externally measured span duration in microseconds.
    #[inline]
    pub fn record(&self, kind: SpanKind, micros: u64) {
        if let Some(hists) = &self.hists {
            hists[kind.index()].record(micros);
        }
        if let Some(totals) = &self.totals {
            totals.add(kind, micros.saturating_mul(1_000));
        }
    }

    /// Time a closure as one span (convenience over `start`/`finish`
    /// for call sites without borrow conflicts).
    #[inline]
    pub fn time<T>(&self, kind: SpanKind, f: impl FnOnce() -> T) -> T {
        let started = self.start();
        let out = f();
        self.finish(kind, started);
        out
    }

    /// Samples recorded so far for `kind` (0 when off) — for tests
    /// and reports.
    pub fn count(&self, kind: SpanKind) -> u64 {
        if let Some(h) = &self.hists {
            return h[kind.index()].count();
        }
        self.totals
            .as_ref()
            .map(|t| t.counts[kind.index()].load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Mean recorded duration for `kind` in microseconds (0 when off
    /// or empty). Histogram-backed recorders answer from the registry
    /// histogram; profile-only recorders from the exact totals.
    pub fn mean_micros(&self, kind: SpanKind) -> f64 {
        if let Some(h) = &self.hists {
            return h[kind.index()].mean();
        }
        if let Some(t) = &self.totals {
            let i = kind.index();
            let count = t.counts[i].load(Ordering::Relaxed);
            if count > 0 {
                return t.nanos[i].load(Ordering::Relaxed) as f64 / count as f64 / 1_000.0;
            }
        }
        0.0
    }

    /// Snapshot the per-phase profile totals, one [`PhaseStat`] per
    /// [`SpanKind`] in [`SpanKind::ALL`] order. `None` unless the
    /// recorder was built with profiling totals
    /// ([`SpanRecorder::profiler`] / `profiler_for_registry`).
    pub fn profile(&self) -> Option<Vec<PhaseStat>> {
        let totals = self.totals.as_ref()?;
        Some(
            SpanKind::ALL
                .iter()
                .map(|&kind| {
                    let i = kind.index();
                    PhaseStat {
                        kind,
                        count: totals.counts[i].load(Ordering::Relaxed),
                        total_ns: totals.nanos[i].load(Ordering::Relaxed),
                    }
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_never_reads_the_clock() {
        let spans = SpanRecorder::off();
        assert!(!spans.is_enabled());
        assert!(spans.start().is_none());
        assert!(spans.lap(SpanKind::Ready, None).is_none());
        spans.finish(SpanKind::Decide, None);
        spans.record(SpanKind::Quantum, 5);
        assert_eq!(spans.count(SpanKind::Quantum), 0);
        assert_eq!(spans.time(SpanKind::Decide, || 42), 42);
        assert!(spans.profile().is_none());
        assert_eq!(spans.mean_micros(SpanKind::Decide), 0.0);
    }

    #[test]
    fn enabled_recorder_feeds_the_registry_family() {
        let reg = MetricsRegistry::new();
        let spans = SpanRecorder::for_registry(&reg);
        assert!(spans.is_enabled());
        let started = spans.start();
        assert!(started.is_some());
        spans.finish(SpanKind::Decide, started);
        spans.record(SpanKind::RrCycle, 7);
        assert_eq!(spans.count(SpanKind::Decide), 1);
        assert_eq!(spans.count(SpanKind::RrCycle), 1);
        assert_eq!(spans.count(SpanKind::Quantum), 0);
        let text = reg.render();
        assert!(text.contains("krad_span_duration_us_count{span=\"decide\"} 1"));
        assert!(text.contains("krad_span_duration_us_count{span=\"rr_cycle\"} 1"));
    }

    #[test]
    fn clones_share_the_same_histograms() {
        let reg = MetricsRegistry::new();
        let a = SpanRecorder::for_registry(&reg);
        let b = a.clone();
        a.record(SpanKind::DeqAllot, 1);
        b.record(SpanKind::DeqAllot, 2);
        assert_eq!(a.count(SpanKind::DeqAllot), 2);
    }

    #[test]
    fn labels_cover_every_kind() {
        let labels: Vec<_> = SpanKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            vec![
                "quantum",
                "ready",
                "decide",
                "deq_allot",
                "rr_cycle",
                "execute"
            ]
        );
    }

    #[test]
    fn profiler_accumulates_nanosecond_totals() {
        let spans = SpanRecorder::profiler();
        assert!(spans.is_enabled());
        spans.record(SpanKind::Ready, 3); // 3 µs → 3000 ns
        spans.record(SpanKind::Ready, 5);
        spans.record(SpanKind::Execute, 1);
        let profile = spans.profile().unwrap();
        assert_eq!(profile.len(), SpanKind::COUNT);
        let ready = profile
            .iter()
            .find(|p| p.kind == SpanKind::Ready)
            .copied()
            .unwrap();
        assert_eq!(ready.count, 2);
        assert_eq!(ready.total_ns, 8_000);
        assert!((ready.mean_ns() - 4_000.0).abs() < 1e-9);
        assert!((spans.mean_micros(SpanKind::Ready) - 4.0).abs() < 1e-9);
        let quantum = &profile[0];
        assert_eq!(quantum.kind, SpanKind::Quantum);
        assert_eq!(quantum.count, 0);
        assert_eq!(quantum.mean_ns(), 0.0);
    }

    #[test]
    fn lap_chain_tiles_consecutive_phases() {
        let spans = SpanRecorder::profiler();
        let lap0 = spans.start();
        assert!(lap0.is_some());
        let lap1 = spans.lap(SpanKind::Ready, lap0);
        assert!(lap1.is_some());
        let lap2 = spans.lap(SpanKind::Decide, lap1);
        spans.finish(SpanKind::Execute, lap2);
        assert_eq!(spans.count(SpanKind::Ready), 1);
        assert_eq!(spans.count(SpanKind::Decide), 1);
        assert_eq!(spans.count(SpanKind::Execute), 1);
        // Laps never overlap: lap1 starts exactly where ready ended.
        assert!(lap1.unwrap() >= lap0.unwrap());
    }

    #[test]
    fn profiler_with_registry_feeds_both_sinks() {
        let reg = MetricsRegistry::new();
        let spans = SpanRecorder::profiler_for_registry(&reg);
        spans.record(SpanKind::Quantum, 9);
        assert_eq!(spans.count(SpanKind::Quantum), 1);
        let profile = spans.profile().unwrap();
        assert_eq!(profile[0].total_ns, 9_000);
        assert!(reg
            .render()
            .contains("krad_span_duration_us_count{span=\"quantum\"} 1"));
    }
}
