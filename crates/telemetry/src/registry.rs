//! A process-wide metrics registry with Prometheus text exposition.
//!
//! The registry hands out cheap atomic *handles* ([`CounterHandle`],
//! [`GaugeHandle`], [`HistogramHandle`]); instrumented code updates
//! them lock-free while a scrape walks the registered families and
//! renders the text exposition format (version 0.0.4: `# HELP` /
//! `# TYPE` headers, escaped label values, and cumulative
//! `_bucket`/`_sum`/`_count` triplets for histograms). Registration
//! takes a mutex; the hot path never does.
//!
//! Histogram bucket bounds are **inclusive** upper bounds, exactly
//! matching both [`crate::Histogram`] and the Prometheus `le` label,
//! so a snapshot and its exposition always agree.

use crate::metrics::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A lock-free counter handle registered in a [`MetricsRegistry`].
#[derive(Clone, Debug, Default)]
pub struct CounterHandle(Arc<AtomicU64>);

impl CounterHandle {
    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free gauge handle (an `f64` stored as bits in an atomic).
#[derive(Clone, Debug)]
pub struct GaugeHandle(Arc<AtomicU64>);

impl Default for GaugeHandle {
    fn default() -> Self {
        GaugeHandle(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl GaugeHandle {
    /// Set the gauge to `value`.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Set the gauge from an integer sample.
    #[inline]
    pub fn set_u64(&self, value: u64) {
        self.set(value as f64);
    }

    /// Add `delta` (may be negative) to the gauge.
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// The shared atomic state behind a [`HistogramHandle`].
#[derive(Debug)]
struct HistogramCell {
    bounds: Vec<u64>,
    /// One slot per bound plus the overflow bucket.
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
}

/// A lock-free histogram handle with the same inclusive-upper-bound
/// bucket semantics as [`crate::Histogram`].
#[derive(Clone, Debug)]
pub struct HistogramHandle(Arc<HistogramCell>);

impl HistogramHandle {
    fn with_bounds(bounds: Vec<u64>) -> Self {
        // Delegate bound validation (non-empty, strictly ascending).
        let template = Histogram::new(bounds);
        let bounds = template.bounds().to_vec();
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        HistogramHandle(Arc::new(HistogramCell {
            bounds,
            counts,
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Record one sample. A sample `v` lands in the first bucket whose
    /// bound `b` satisfies `v <= b`; values above the last bound land
    /// in the overflow bucket.
    #[inline]
    pub fn record(&self, value: u64) {
        let cell = &*self.0;
        let idx = cell.bounds.partition_point(|&b| b < value);
        cell.counts[idx].fetch_add(1, Ordering::Relaxed);
        cell.total.fetch_add(1, Ordering::Relaxed);
        // Saturate rather than wrap so `mean` degrades gracefully.
        let _ = cell
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            });
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.total.load(Ordering::Relaxed)
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let total = self.count();
        if total == 0 {
            0.0
        } else {
            self.0.sum.load(Ordering::Relaxed) as f64 / total as f64
        }
    }

    /// The bucket upper bounds this histogram was built with.
    pub fn bounds(&self) -> &[u64] {
        &self.0.bounds
    }

    /// A point-in-time plain [`Histogram`] copy (for quantiles and
    /// reports). Not a consistent cut under concurrent writers, but
    /// each field is individually coherent.
    pub fn snapshot(&self) -> Histogram {
        let cell = &*self.0;
        let counts: Vec<u64> = cell
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        Histogram::from_parts(
            cell.bounds.clone(),
            counts,
            cell.sum.load(Ordering::Relaxed),
        )
    }
}

/// What kind of metric a family holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn type_label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Instrument {
    Counter(CounterHandle),
    Gauge(GaugeHandle),
    Histogram(HistogramHandle),
}

struct Series {
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    series: Vec<Series>,
}

/// A registry of named, labeled metric families.
///
/// Cloning shares the registry. Registration is idempotent: asking
/// for the same `(name, labels)` twice returns a handle to the same
/// underlying instrument, so independent subsystems can register the
/// series they touch without coordinating.
///
/// ```
/// use ktelemetry::MetricsRegistry;
/// let reg = MetricsRegistry::new();
/// let quanta = reg.counter("krad_quanta_total", "Scheduling quanta executed.");
/// quanta.add(3);
/// let text = reg.render();
/// assert!(text.contains("# TYPE krad_quanta_total counter"));
/// assert!(text.contains("krad_quanta_total 3"));
/// ```
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    families: Arc<Mutex<Vec<Family>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.families.lock().map(|g| g.len()).unwrap_or(0);
        f.debug_struct("MetricsRegistry")
            .field("families", &n)
            .finish()
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label_value(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Escape HELP text: backslash and newline (quotes are legal there).
fn escape_help(out: &mut String, help: &str) {
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Render an `f64` sample the way Prometheus expects.
fn push_f64(out: &mut String, value: f64) {
    if value.is_nan() {
        out.push_str("NaN");
    } else if value == f64::INFINITY {
        out.push_str("+Inf");
    } else if value == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        out.push_str(&format!("{value}"));
    }
}

fn push_label_set(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        escape_label_value(out, v);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        escape_label_value(out, v);
        out.push('"');
    }
    out.push('}');
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Register (or fetch) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> CounterHandle {
        self.counter_with(name, help, &[])
    }

    /// Register (or fetch) a counter series with the given labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> CounterHandle {
        match self.register(name, help, MetricKind::Counter, labels, None) {
            Instrument::Counter(h) => h,
            _ => unreachable!("registry returned mismatched instrument"),
        }
    }

    /// Register (or fetch) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> GaugeHandle {
        self.gauge_with(name, help, &[])
    }

    /// Register (or fetch) a gauge series with the given labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> GaugeHandle {
        match self.register(name, help, MetricKind::Gauge, labels, None) {
            Instrument::Gauge(h) => h,
            _ => unreachable!("registry returned mismatched instrument"),
        }
    }

    /// Register (or fetch) an unlabeled histogram with the given
    /// ascending inclusive upper bounds.
    pub fn histogram(&self, name: &str, help: &str, bounds: Vec<u64>) -> HistogramHandle {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Register (or fetch) a labeled histogram series.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: Vec<u64>,
        labels: &[(&str, &str)],
    ) -> HistogramHandle {
        match self.register(name, help, MetricKind::Histogram, labels, Some(bounds)) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("registry returned mismatched instrument"),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        bounds: Option<Vec<u64>>,
    ) -> Instrument {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name {k:?}");
            assert!(
                kind != MetricKind::Histogram || *k != "le",
                "label name `le` is reserved on histograms"
            );
        }
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.lock().expect("registry lock");
        if let Some(family) = families.iter_mut().find(|f| f.name == name) {
            assert!(
                family.kind == kind,
                "metric {name:?} already registered as a {}",
                family.kind.type_label()
            );
            if let Some(series) = family.series.iter().find(|s| s.labels == labels) {
                return clone_instrument(&series.instrument);
            }
            let instrument = new_instrument(kind, bounds);
            let out = clone_instrument(&instrument);
            family.series.push(Series { labels, instrument });
            return out;
        }
        let instrument = new_instrument(kind, bounds);
        let out = clone_instrument(&instrument);
        families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            series: vec![Series { labels, instrument }],
        });
        out
    }

    /// Remove every series whose label set carries `key="value"`,
    /// dropping families left empty. Existing handles to the removed
    /// series keep working but no longer render — this is how a
    /// multi-tenant exporter retires a destroyed tenant's series
    /// without touching its neighbours. Returns the number of series
    /// removed.
    pub fn remove_labeled(&self, key: &str, value: &str) -> usize {
        let mut families = self.families.lock().expect("registry lock");
        let mut removed = 0;
        for family in families.iter_mut() {
            let before = family.series.len();
            family
                .series
                .retain(|s| !s.labels.iter().any(|(k, v)| k == key && v == value));
            removed += before - family.series.len();
        }
        families.retain(|f| !f.series.is_empty());
        removed
    }

    /// Render every registered family in the Prometheus text
    /// exposition format (version 0.0.4), families in registration
    /// order, series in series-registration order.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("registry lock");
        let mut out = String::new();
        for family in families.iter() {
            out.push_str("# HELP ");
            out.push_str(&family.name);
            out.push(' ');
            escape_help(&mut out, &family.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(family.kind.type_label());
            out.push('\n');
            for series in &family.series {
                match &series.instrument {
                    Instrument::Counter(h) => {
                        out.push_str(&family.name);
                        push_label_set(&mut out, &series.labels, None);
                        out.push(' ');
                        out.push_str(&h.get().to_string());
                        out.push('\n');
                    }
                    Instrument::Gauge(h) => {
                        out.push_str(&family.name);
                        push_label_set(&mut out, &series.labels, None);
                        out.push(' ');
                        push_f64(&mut out, h.get());
                        out.push('\n');
                    }
                    Instrument::Histogram(h) => {
                        render_histogram(&mut out, &family.name, &series.labels, h);
                    }
                }
            }
        }
        out
    }
}

fn new_instrument(kind: MetricKind, bounds: Option<Vec<u64>>) -> Instrument {
    match kind {
        MetricKind::Counter => Instrument::Counter(CounterHandle::default()),
        MetricKind::Gauge => Instrument::Gauge(GaugeHandle::default()),
        MetricKind::Histogram => Instrument::Histogram(HistogramHandle::with_bounds(
            bounds.expect("histogram registration carries bounds"),
        )),
    }
}

fn clone_instrument(instrument: &Instrument) -> Instrument {
    match instrument {
        Instrument::Counter(h) => Instrument::Counter(h.clone()),
        Instrument::Gauge(h) => Instrument::Gauge(h.clone()),
        Instrument::Histogram(h) => Instrument::Histogram(h.clone()),
    }
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    handle: &HistogramHandle,
) {
    let snap = handle.snapshot();
    let cumulative = snap.cumulative_counts();
    let total = snap.count();
    for (bound, cum) in snap.bounds().iter().zip(&cumulative) {
        out.push_str(name);
        out.push_str("_bucket");
        push_label_set(out, labels, Some(("le", &bound.to_string())));
        out.push(' ');
        out.push_str(&cum.to_string());
        out.push('\n');
    }
    out.push_str(name);
    out.push_str("_bucket");
    push_label_set(out, labels, Some(("le", "+Inf")));
    out.push(' ');
    out.push_str(&total.to_string());
    out.push('\n');
    out.push_str(name);
    out.push_str("_sum");
    push_label_set(out, labels, None);
    out.push(' ');
    out.push_str(&snap.sum().to_string());
    out.push('\n');
    out.push_str(name);
    out.push_str("_count");
    push_label_set(out, labels, None);
    out.push(' ');
    out.push_str(&total.to_string());
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remove_labeled_retires_one_tenant_only() {
        let reg = MetricsRegistry::new();
        let a = reg.counter_with("krad_rm_total", "help", &[("session", "a")]);
        let b = reg.counter_with("krad_rm_total", "help", &[("session", "b")]);
        let lone = reg.gauge_with("krad_rm_gauge", "help", &[("session", "a")]);
        a.incr();
        b.add(2);
        lone.set(1.0);
        assert_eq!(reg.remove_labeled("session", "a"), 2);
        let text = reg.render();
        assert!(!text.contains("session=\"a\""), "{text}");
        assert!(text.contains("krad_rm_total{session=\"b\"} 2"));
        // The gauge family lost its only series and vanished entirely.
        assert!(!text.contains("krad_rm_gauge"));
        // Handles to removed series stay usable; they just don't render.
        a.incr();
        assert_eq!(a.get(), 2);
        assert_eq!(reg.remove_labeled("session", "missing"), 0);
    }

    #[test]
    fn counter_and_gauge_handles_share_state() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("krad_test_total", "help");
        let b = reg.counter("krad_test_total", "help");
        a.incr();
        b.add(2);
        assert_eq!(a.get(), 3);

        let g = reg.gauge("krad_test_gauge", "help");
        g.set(1.5);
        g.add(-0.5);
        assert!((g.get() - 1.0).abs() < 1e-12);
        let g2 = reg.gauge("krad_test_gauge", "help");
        assert!((g2.get() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let reg = MetricsRegistry::new();
        let a = reg.counter_with("krad_cat_total", "help", &[("category", "0")]);
        let b = reg.counter_with("krad_cat_total", "help", &[("category", "1")]);
        a.incr();
        assert_eq!(a.get(), 1);
        assert_eq!(b.get(), 0);
        let text = reg.render();
        assert!(text.contains("krad_cat_total{category=\"0\"} 1"));
        assert!(text.contains("krad_cat_total{category=\"1\"} 0"));
        // One family header for both series.
        assert_eq!(text.matches("# TYPE krad_cat_total counter").count(), 1);
    }

    #[test]
    fn histogram_handle_matches_plain_histogram() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("krad_lat_us", "help", vec![1, 4, 16]);
        let mut plain = Histogram::new(vec![1, 4, 16]);
        for v in [0, 1, 2, 4, 5, 16, 17, 1000] {
            h.record(v);
            plain.record(v);
        }
        assert_eq!(h.snapshot(), plain);
        assert_eq!(h.count(), 8);
        assert!((h.mean() - plain.mean()).abs() < 1e-12);
        assert_eq!(h.bounds(), &[1, 4, 16]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("krad_x", "help");
        reg.gauge("krad_x", "help");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_rejected() {
        MetricsRegistry::new().counter("9starts_with_digit", "help");
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn le_label_reserved_on_histograms() {
        MetricsRegistry::new().histogram_with("krad_h", "help", vec![1], &[("le", "x")]);
    }

    #[test]
    fn golden_exposition_text() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("krad_quanta_total", "Scheduling quanta executed.");
        c.add(7);
        let g = reg.gauge_with(
            "krad_mode_residency_seconds",
            "Wall-clock seconds spent per mode.",
            &[("category", "0"), ("mode", "deq")],
        );
        g.set(2.5);
        let weird = reg.gauge_with(
            "krad_escape_check",
            "Help with \\ and\nnewline.",
            &[("path", "a\\b\"c\nd")],
        );
        weird.set(1.0);
        let h = reg.histogram("krad_latency_us", "Quantum latency.", vec![1, 10]);
        for v in [0, 1, 5, 100] {
            h.record(v);
        }
        let text = reg.render();
        let expected = "\
# HELP krad_quanta_total Scheduling quanta executed.
# TYPE krad_quanta_total counter
krad_quanta_total 7
# HELP krad_mode_residency_seconds Wall-clock seconds spent per mode.
# TYPE krad_mode_residency_seconds gauge
krad_mode_residency_seconds{category=\"0\",mode=\"deq\"} 2.5
# HELP krad_escape_check Help with \\\\ and\\nnewline.
# TYPE krad_escape_check gauge
krad_escape_check{path=\"a\\\\b\\\"c\\nd\"} 1
# HELP krad_latency_us Quantum latency.
# TYPE krad_latency_us histogram
krad_latency_us_bucket{le=\"1\"} 2
krad_latency_us_bucket{le=\"10\"} 3
krad_latency_us_bucket{le=\"+Inf\"} 4
krad_latency_us_sum 106
krad_latency_us_count 4
";
        assert_eq!(text, expected);
    }

    #[test]
    fn labeled_histogram_buckets_carry_series_labels() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with("krad_span_us", "spans", vec![8], &[("span", "decide")]);
        h.record(3);
        let text = reg.render();
        assert!(text.contains("krad_span_us_bucket{span=\"decide\",le=\"8\"} 1"));
        assert!(text.contains("krad_span_us_bucket{span=\"decide\",le=\"+Inf\"} 1"));
        assert!(text.contains("krad_span_us_sum{span=\"decide\"} 3"));
        assert!(text.contains("krad_span_us_count{span=\"decide\"} 1"));
    }

    #[test]
    fn special_gauge_values_render() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("krad_special", "help");
        g.set(f64::INFINITY);
        assert!(reg.render().contains("krad_special +Inf"));
        g.set(f64::NEG_INFINITY);
        assert!(reg.render().contains("krad_special -Inf"));
        g.set(f64::NAN);
        assert!(reg.render().contains("krad_special NaN"));
    }
}
