//! ktrace — the per-job lifecycle span model.
//!
//! A [`JobTrace`] is the end-to-end story of one job: release →
//! activation → first allotment → execution segments → completion,
//! every stamp in engine (virtual) time, optionally annotated with
//! wall-clock stamps the service layer records under its own lock
//! (submit/admit/inject/complete). The engine-time part is fully
//! deterministic: assembling a trace from a live session's event
//! stream and from its offline replay produces byte-identical
//! [`JobTrace::canonical_json`] encodings — that is the contract the
//! trace property tests pin.
//!
//! [`TraceAssembler`] folds a [`TelemetryEvent`] stream into traces
//! and doubles as a [`TelemetrySink`], so a service can wire it into
//! its telemetry fanout and read assembled traces while the session
//! runs. Like the span profiler, everything here is pay-for-what-you-
//! use: when no assembler sink is attached, the engine's per-job
//! emission is gated behind the telemetry handle's cached `enabled`
//! bit and costs one branch per step.

use crate::{TelemetryEvent, TelemetrySink};

/// One maximal run of consecutive steps in which the job executed at
/// least one task. The engine emits pieces truncated at quantum
/// decision boundaries; the assembler coalesces contiguous pieces, so
/// assembled segments are maximal runs. Bounds are inclusive engine
/// steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecSegment {
    /// First step of the segment.
    pub from: u64,
    /// Last step of the segment.
    pub to: u64,
    /// Tasks executed across the segment.
    pub tasks: u64,
}

impl ExecSegment {
    /// Number of steps the segment spans.
    pub fn steps(&self) -> u64 {
        self.to - self.from + 1
    }
}

/// Wall-clock stamps the service layer attaches to a trace, in
/// nanoseconds since the server's monotonic epoch. Engine-time fields
/// stay deterministic; these never enter the canonical encoding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStamps {
    /// When the job's submit request was read off the wire.
    pub submit_ns: Option<u64>,
    /// When admission committed (under the service lock).
    pub admit_ns: Option<u64>,
    /// When the job was injected into the engine.
    pub inject_ns: Option<u64>,
    /// When the completion was published.
    pub complete_ns: Option<u64>,
}

/// The assembled lifecycle of one job.
///
/// Engine-time invariants for a completed job (checked by
/// [`JobTrace::well_formed`]):
///
/// * `activated = release + 1 ≤ first_allot ≤ completion`;
/// * execution segments are ascending, disjoint, and contained in
///   `[first_allot, completion]`;
/// * `wait + service = response` exactly, where
///   `wait = first_allot − release − 1` and
///   `service = completion − first_allot + 1`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobTrace {
    /// Engine job index.
    pub job: u32,
    /// Release time `r(Ji)` (the job is present from `r + 1`).
    pub release: Option<u64>,
    /// Step at which the job entered the active set.
    pub activated: Option<u64>,
    /// Decision step of the first nonzero allotment.
    pub first_allot: Option<u64>,
    /// Execution segments in ascending step order.
    pub segments: Vec<ExecSegment>,
    /// Completion step `T(Ji)`.
    pub completion: Option<u64>,
    /// Response time `T(Ji) − r(Ji)`.
    pub response: Option<u64>,
    /// Service-layer wall-clock stamps (absent for offline replays).
    pub stamps: TraceStamps,
}

impl JobTrace {
    /// A fresh trace for job `job` with nothing observed yet.
    pub fn new(job: u32) -> Self {
        JobTrace {
            job,
            ..JobTrace::default()
        }
    }

    /// Steps spent released but never allotted:
    /// `first_allot − release − 1`.
    pub fn wait(&self) -> Option<u64> {
        Some(self.first_allot?.saturating_sub(self.release? + 1))
    }

    /// Steps from first allotment through completion:
    /// `completion − first_allot + 1`.
    pub fn service(&self) -> Option<u64> {
        Some(self.completion? + 1 - self.first_allot?)
    }

    /// Total tasks executed across all segments.
    pub fn executed_tasks(&self) -> u64 {
        self.segments.iter().map(|s| s.tasks).sum()
    }

    /// Whether the trace has observed the job's completion.
    pub fn is_complete(&self) -> bool {
        self.completion.is_some()
    }

    /// The deterministic engine-time encoding (fixed field order, no
    /// whitespace, wall stamps excluded). Live and replayed traces of
    /// the same session compare byte-for-byte through this.
    pub fn canonical_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"job\":");
        s.push_str(&self.job.to_string());
        let opt = |s: &mut String, key: &str, v: Option<u64>| {
            if let Some(v) = v {
                s.push_str(",\"");
                s.push_str(key);
                s.push_str("\":");
                s.push_str(&v.to_string());
            }
        };
        opt(&mut s, "release", self.release);
        opt(&mut s, "activated", self.activated);
        opt(&mut s, "first_allot", self.first_allot);
        s.push_str(",\"segments\":[");
        for (i, seg) in self.segments.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"from\":{},\"to\":{},\"tasks\":{}}}",
                seg.from, seg.to, seg.tasks
            ));
        }
        s.push(']');
        opt(&mut s, "completion", self.completion);
        opt(&mut s, "response", self.response);
        s.push('}');
        s
    }

    /// Check the span-tree invariants against the job's known total
    /// work (tasks in its DAG). Only meaningful for completed jobs.
    pub fn well_formed(&self, total_work: u64) -> Result<(), String> {
        let release = self.release.ok_or("no release")?;
        let activated = self.activated.ok_or("no activation")?;
        let first = self.first_allot.ok_or("no first allotment")?;
        let completion = self.completion.ok_or("no completion")?;
        let response = self.response.ok_or("no response")?;
        if activated != release + 1 {
            return Err(format!("activated {activated} != release {release} + 1"));
        }
        if first < activated || first > completion {
            return Err(format!(
                "first allotment {first} outside [{activated}, {completion}]"
            ));
        }
        if completion - release != response {
            return Err(format!(
                "completion {completion} - release {release} != response {response}"
            ));
        }
        let (wait, service) = (self.wait().unwrap(), self.service().unwrap());
        if wait + service != response {
            return Err(format!(
                "wait {wait} + service {service} != response {response}"
            ));
        }
        let mut prev_to = first.saturating_sub(1);
        let mut first_seg = true;
        for seg in &self.segments {
            if seg.from > seg.to || seg.tasks == 0 {
                return Err(format!("degenerate segment {seg:?}"));
            }
            let lo = if first_seg { first } else { prev_to + 1 };
            if seg.from < lo {
                return Err(format!("segment {seg:?} overlaps or precedes step {lo}"));
            }
            if seg.to > completion {
                return Err(format!("segment {seg:?} beyond completion {completion}"));
            }
            prev_to = seg.to;
            first_seg = false;
        }
        if self.executed_tasks() != total_work {
            return Err(format!(
                "segments sum to {} tasks, job has {total_work}",
                self.executed_tasks()
            ));
        }
        match self.segments.last() {
            Some(last) if last.to == completion => Ok(()),
            Some(last) => Err(format!(
                "last segment ends at {} but job completes at {completion}",
                last.to
            )),
            None => Err("completed job has no execution segments".into()),
        }
    }

    /// Render the trace as an ASCII span tree.
    pub fn render_tree(&self, label: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("job {label}"));
        if let (Some(r), Some(c), Some(resp)) = (self.release, self.completion, self.response) {
            out.push_str(&format!(": release={r} completion={c} response={resp}"));
        } else if let Some(r) = self.release {
            out.push_str(&format!(": release={r} (incomplete)"));
        } else {
            out.push_str(": (not yet injected)");
        }
        out.push('\n');
        if let Some(ns) = self.stamps.admit_ns {
            out.push_str(&format!("  wall: admit +{:.3}ms", ns as f64 / 1e6));
            if let Some(ns) = self.stamps.inject_ns {
                out.push_str(&format!(", inject +{:.3}ms", ns as f64 / 1e6));
            }
            if let Some(ns) = self.stamps.complete_ns {
                out.push_str(&format!(", complete +{:.3}ms", ns as f64 / 1e6));
            }
            out.push('\n');
        }
        let (Some(activated), Some(first)) = (self.activated, self.first_allot) else {
            if let Some(a) = self.activated {
                out.push_str(&format!("└─ waiting since step {a} (never allotted)\n"));
            }
            return out;
        };
        let completion = self.completion;
        let active_to = completion.map_or("…".to_string(), |c| c.to_string());
        out.push_str(&format!("└─ active [{activated}..{active_to}]"));
        if let Some(resp) = self.response {
            out.push_str(&format!(" ({resp} steps)"));
        }
        out.push('\n');
        let wait = first - activated;
        if wait > 0 {
            out.push_str(&format!(
                "   ├─ wait    [{activated}..{}] ({wait} steps)\n",
                first - 1
            ));
        } else {
            out.push_str("   ├─ wait    (0 steps)\n");
        }
        out.push_str(&format!("   └─ service [{first}..{active_to}]"));
        if let Some(s) = self.service() {
            out.push_str(&format!(" ({s} steps, {} tasks)", self.executed_tasks()));
        }
        out.push('\n');
        for (i, seg) in self.segments.iter().enumerate() {
            let branch = if i + 1 == self.segments.len() {
                "└─"
            } else {
                "├─"
            };
            out.push_str(&format!(
                "      {branch} exec [{}..{}] ({} steps, {} tasks)\n",
                seg.from,
                seg.to,
                seg.steps(),
                seg.tasks
            ));
        }
        out
    }
}

/// Folds a telemetry event stream into per-job [`JobTrace`]s.
///
/// Works both offline (feed a recorded stream through
/// [`TraceAssembler::observe`] or [`assemble_traces`]) and live: the
/// assembler is a [`TelemetrySink`], so a service can register it in
/// its fanout and snapshot traces mid-session.
#[derive(Debug, Default)]
pub struct TraceAssembler {
    traces: Vec<JobTrace>,
}

impl TraceAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        TraceAssembler::default()
    }

    fn job_mut(&mut self, job: u32) -> &mut JobTrace {
        let idx = job as usize;
        while self.traces.len() <= idx {
            let j = self.traces.len() as u32;
            self.traces.push(JobTrace::new(j));
        }
        &mut self.traces[idx]
    }

    /// Fold one event into the traces.
    pub fn observe(&mut self, event: &TelemetryEvent) {
        match event {
            TelemetryEvent::JobReleased { t, job } => {
                let tr = self.job_mut(*job);
                tr.activated = Some(*t);
                tr.release = Some(t.saturating_sub(1));
            }
            TelemetryEvent::JobFirstAllot { t, job } => {
                let tr = self.job_mut(*job);
                if tr.first_allot.is_none() {
                    tr.first_allot = Some(*t);
                }
            }
            TelemetryEvent::JobExecSegment {
                job,
                from,
                to,
                tasks,
            } => {
                // Coalesce back-to-back segments (the emitter truncates
                // at quantum boundaries, so a job running across
                // boundaries arrives as contiguous pieces): the
                // assembled trace keeps maximal execution runs, and the
                // hot path updates the tail in place instead of
                // growing the vector once per quantum.
                let segments = &mut self.job_mut(*job).segments;
                if let Some(last) = segments.last_mut() {
                    if last.to + 1 == *from {
                        last.to = *to;
                        last.tasks += *tasks;
                        return;
                    }
                }
                segments.push(ExecSegment {
                    from: *from,
                    to: *to,
                    tasks: *tasks,
                });
            }
            TelemetryEvent::JobCompleted { t, job, response } => {
                let tr = self.job_mut(*job);
                tr.completion = Some(*t);
                tr.response = Some(*response);
                tr.release = Some(t - response);
            }
            _ => {}
        }
    }

    /// The traces assembled so far, indexed by engine job id.
    pub fn traces(&self) -> &[JobTrace] {
        &self.traces
    }

    /// One job's trace, if the stream has mentioned it.
    pub fn job(&self, job: u32) -> Option<&JobTrace> {
        self.traces.get(job as usize)
    }

    /// One job's trace, mutably (the service layer uses this to attach
    /// wall-clock stamps under its lock).
    pub fn job_mut_public(&mut self, job: u32) -> &mut JobTrace {
        self.job_mut(job)
    }

    /// Number of jobs seen.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether no job has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Consume the assembler, returning the traces.
    pub fn into_traces(self) -> Vec<JobTrace> {
        self.traces
    }
}

impl TelemetrySink for TraceAssembler {
    fn record(&mut self, event: TelemetryEvent) {
        self.observe(&event);
    }

    fn record_ref(&mut self, event: &TelemetryEvent) {
        self.observe(event);
    }

    fn interest(&self) -> u32 {
        crate::interest::JOB_LIFECYCLE
    }
}

/// Assemble every job's trace from a recorded event stream.
pub fn assemble_traces(events: &[TelemetryEvent]) -> Vec<JobTrace> {
    let mut asm = TraceAssembler::new();
    for e in events {
        asm.observe(e);
    }
    asm.into_traces()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> Vec<TelemetryEvent> {
        vec![
            TelemetryEvent::JobReleased { t: 6, job: 0 },
            TelemetryEvent::JobFirstAllot { t: 8, job: 0 },
            TelemetryEvent::JobExecSegment {
                job: 0,
                from: 8,
                to: 10,
                tasks: 5,
            },
            TelemetryEvent::JobExecSegment {
                job: 0,
                from: 12,
                to: 14,
                tasks: 4,
            },
            TelemetryEvent::JobCompleted {
                t: 14,
                job: 0,
                response: 9,
            },
        ]
    }

    #[test]
    fn assembles_wait_service_decomposition() {
        let traces = assemble_traces(&stream());
        let tr = &traces[0];
        assert_eq!(tr.release, Some(5));
        assert_eq!(tr.activated, Some(6));
        assert_eq!(tr.first_allot, Some(8));
        assert_eq!(tr.completion, Some(14));
        assert_eq!(tr.wait(), Some(2));
        assert_eq!(tr.service(), Some(7));
        assert_eq!(tr.wait().unwrap() + tr.service().unwrap(), 9);
        assert_eq!(tr.executed_tasks(), 9);
        tr.well_formed(9).unwrap();
    }

    #[test]
    fn well_formedness_catches_violations() {
        let traces = assemble_traces(&stream());
        let tr = &traces[0];
        assert!(tr.well_formed(10).unwrap_err().contains("tasks"));

        let mut bad = tr.clone();
        bad.segments[1].from = 9; // overlaps segment 0
        assert!(bad.well_formed(9).unwrap_err().contains("overlaps"));

        let mut bad = tr.clone();
        bad.first_allot = Some(4); // before activation
        assert!(bad.well_formed(9).is_err());

        let mut bad = tr.clone();
        bad.segments.pop();
        assert!(bad.well_formed(9).is_err());

        assert!(JobTrace::new(1).well_formed(0).is_err());
    }

    #[test]
    fn canonical_json_is_stable_and_excludes_wall_stamps() {
        let mut traces = assemble_traces(&stream());
        let plain = traces[0].canonical_json();
        assert_eq!(
            plain,
            "{\"job\":0,\"release\":5,\"activated\":6,\"first_allot\":8,\
             \"segments\":[{\"from\":8,\"to\":10,\"tasks\":5},\
             {\"from\":12,\"to\":14,\"tasks\":4}],\
             \"completion\":14,\"response\":9}"
        );
        traces[0].stamps.admit_ns = Some(1234);
        assert_eq!(traces[0].canonical_json(), plain);
    }

    #[test]
    fn renders_a_span_tree() {
        let traces = assemble_traces(&stream());
        let tree = traces[0].render_tree("0");
        assert!(tree.contains("release=5 completion=14 response=9"));
        assert!(tree.contains("wait    [6..7] (2 steps)"));
        assert!(tree.contains("service [8..14] (7 steps, 9 tasks)"));
        assert!(tree.contains("exec [8..10] (3 steps, 5 tasks)"));
        assert!(tree.contains("exec [12..14] (3 steps, 4 tasks)"));

        // Incomplete and empty traces render without panicking.
        let partial = assemble_traces(&stream()[..2]);
        assert!(partial[0].render_tree("0").contains("incomplete"));
        assert!(JobTrace::new(3).render_tree("3").contains("not yet"));
    }

    #[test]
    fn assembler_is_a_sink() {
        let mut asm = TraceAssembler::new();
        assert!(asm.is_empty());
        for e in stream() {
            asm.record(e);
        }
        assert_eq!(asm.len(), 1);
        assert!(asm.job(0).unwrap().is_complete());
        assert!(asm.job(7).is_none());
    }
}
