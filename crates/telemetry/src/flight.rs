//! A fixed-capacity flight recorder: the last N telemetry events,
//! retained in a ring buffer with zero steady-state allocation.
//!
//! The recorder is a [`TelemetrySink`], so it drops straight into the
//! existing handle/fanout plumbing: attach it alongside a user sink,
//! let the service run indefinitely, and on drain (or panic) dump the
//! tail for post-mortem replay. Slots are pre-allocated once at
//! construction; recording an event moves it into a slot and drops
//! whatever was there — no allocation, no unbounded growth.

use crate::sink::{TelemetryHandle, TelemetrySink};
use crate::TelemetryEvent;
use std::sync::{Arc, Mutex};

/// Schema identifier written in the first line of a flight dump.
pub const FLIGHT_DUMP_SCHEMA: &str = "krad-flight";

/// Current version of the flight-dump format. Bump when the header or
/// event framing changes so readers can branch on it.
pub const FLIGHT_DUMP_VERSION: u32 = 1;

/// The header line prefixed to every JSONL flight dump. Readers can
/// detect it cheaply: it is the only line starting with `{"schema"`.
pub fn flight_dump_header() -> String {
    format!("{{\"schema\":\"{FLIGHT_DUMP_SCHEMA}\",\"version\":{FLIGHT_DUMP_VERSION}}}")
}

/// A ring buffer retaining the most recent telemetry events.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    /// Pre-allocated slots; `None` until first written.
    slots: Vec<Option<TelemetryEvent>>,
    /// Index the next event lands in.
    next: usize,
    /// Live events (≤ capacity).
    len: usize,
    /// Total events ever recorded (monotone).
    recorded: u64,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder needs at least one slot");
        FlightRecorder {
            slots: vec![None; capacity],
            next: 0,
            len: 0,
            recorded: 0,
        }
    }

    /// A recorder wrapped the way instrumented code consumes it: a
    /// [`TelemetryHandle`] feeding it, plus the shared recorder for
    /// later snapshots.
    pub fn shared(capacity: usize) -> (TelemetryHandle, Arc<Mutex<FlightRecorder>>) {
        let rec = Arc::new(Mutex::new(FlightRecorder::new(capacity)));
        let handle = TelemetryHandle::from_shared(rec.clone());
        (handle, rec)
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been recorded (or everything was taken).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events ever pushed through the recorder.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events that fell off the ring (recorded − retained).
    pub fn dropped(&self) -> u64 {
        self.recorded - self.len as u64
    }

    /// Append one event, evicting the oldest when full.
    pub fn push(&mut self, event: TelemetryEvent) {
        self.slots[self.next] = Some(event);
        self.next = (self.next + 1) % self.slots.len();
        self.len = (self.len + 1).min(self.slots.len());
        self.recorded += 1;
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TelemetryEvent> {
        let cap = self.slots.len();
        let start = (self.next + cap - self.len) % cap;
        (0..self.len)
            .filter_map(|i| self.slots[(start + i) % cap].clone())
            .collect()
    }

    /// Drain the retained events (oldest first) and reset the ring.
    /// The lifetime `recorded` total is preserved.
    pub fn take(&mut self) -> Vec<TelemetryEvent> {
        let out = self.snapshot();
        for slot in &mut self.slots {
            *slot = None;
        }
        self.next = 0;
        self.len = 0;
        out
    }

    /// Render the retained events as JSONL: a schema/version header
    /// line ([`flight_dump_header`]) followed by one event per line —
    /// the same codec the offline replay path parses back.
    pub fn to_jsonl(&self) -> String {
        let mut out = flight_dump_header();
        out.push('\n');
        for event in self.snapshot() {
            out.push_str(&crate::json::to_json(&event));
            out.push('\n');
        }
        out
    }
}

impl TelemetrySink for FlightRecorder {
    fn record(&mut self, event: TelemetryEvent) {
        self.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> TelemetryEvent {
        TelemetryEvent::StepStart { t, active_jobs: 1 }
    }

    #[test]
    fn retains_tail_in_order_after_wraparound() {
        let mut fr = FlightRecorder::new(3);
        assert!(fr.is_empty());
        for t in 1..=5 {
            fr.push(ev(t));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.capacity(), 3);
        assert_eq!(fr.recorded(), 5);
        assert_eq!(fr.dropped(), 2);
        assert_eq!(fr.snapshot(), vec![ev(3), ev(4), ev(5)]);
    }

    #[test]
    fn partial_fill_snapshots_from_start() {
        let mut fr = FlightRecorder::new(8);
        fr.push(ev(1));
        fr.push(ev(2));
        assert_eq!(fr.snapshot(), vec![ev(1), ev(2)]);
        assert_eq!(fr.dropped(), 0);
    }

    #[test]
    fn take_drains_and_keeps_lifetime_total() {
        let mut fr = FlightRecorder::new(2);
        for t in 1..=3 {
            fr.push(ev(t));
        }
        assert_eq!(fr.take(), vec![ev(2), ev(3)]);
        assert!(fr.is_empty());
        assert_eq!(fr.recorded(), 3);
        fr.push(ev(9));
        assert_eq!(fr.snapshot(), vec![ev(9)]);
    }

    #[test]
    fn jsonl_round_trips_through_the_codec() {
        let mut fr = FlightRecorder::new(4);
        fr.push(ev(1));
        fr.push(TelemetryEvent::IdleSkip { from: 3, to: 10 });
        let dump = fr.to_jsonl();
        let (header, events) = dump.split_once('\n').unwrap();
        assert_eq!(header, flight_dump_header());
        assert_eq!(header, "{\"schema\":\"krad-flight\",\"version\":1}");
        let parsed = crate::json::parse_jsonl(events).unwrap();
        assert_eq!(parsed, fr.snapshot());
    }

    #[test]
    fn shared_recorder_feeds_through_a_handle() {
        let (tel, rec) = FlightRecorder::shared(2);
        assert!(tel.is_enabled());
        for t in 1..=3 {
            tel.emit(|| ev(t));
        }
        let guard = rec.lock().unwrap();
        assert_eq!(guard.snapshot(), vec![ev(2), ev(3)]);
        assert_eq!(guard.recorded(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        FlightRecorder::new(0);
    }
}
